//! # hope_art — Adaptive Radix Tree substrate
//!
//! A from-scratch ART (Leis et al., ICDE 2013) — the default index of
//! HyPer and one of the five search trees the HOPE paper evaluates on.
//! Nodes adapt among four layouts (Node4/16/48/256) by fan-out; paths with
//! single branches are compressed, and, as in the original, compressed
//! prefixes are stored **optimistically**: only the first
//! [`MAX_STORED_PREFIX`] bytes are kept inline (OCPS), with the full key
//! re-checked at the leaf — the partial-key behaviour §5 of the HOPE paper
//! discusses.
//!
//! Keys are arbitrary byte strings; a key may be a prefix of another key
//! (required for HOPE-encoded keys), handled by a per-node terminator slot.
//! The tree is generic over its value payload (`Art<V>`, any
//! [`hope::Value`]; defaults to `u64` record ids) and implements the
//! [`hope::OrderedIndex<V>`] contract serving layers program against.
//!
//! ```
//! use hope_art::Art;
//!
//! let mut art = Art::new();
//! art.insert(b"com.gmail@alice", 1);
//! art.insert(b"com.gmail@bob", 2);
//! assert_eq!(art.get(b"com.gmail@alice"), Some(1));
//! assert_eq!(art.scan(b"com.gmail@", 10).len(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Maximum number of compressed-prefix bytes stored inline (the paper's
/// optimistic common prefix skipping threshold).
pub const MAX_STORED_PREFIX: usize = 8;

const LEAF_TAG: u32 = 0x8000_0000;
const NONE_PTR: u32 = u32::MAX;

/// Tagged pointer: leaf index or node index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ptr(u32);

impl Ptr {
    const NONE: Ptr = Ptr(NONE_PTR);

    fn leaf(i: usize) -> Ptr {
        Ptr(i as u32 | LEAF_TAG)
    }

    fn node(i: usize) -> Ptr {
        debug_assert!((i as u32) < LEAF_TAG);
        Ptr(i as u32)
    }

    fn is_none(self) -> bool {
        self.0 == NONE_PTR
    }

    fn as_leaf(self) -> Option<usize> {
        (self.0 != NONE_PTR && self.0 & LEAF_TAG != 0).then_some((self.0 & !LEAF_TAG) as usize)
    }

    fn as_node(self) -> Option<usize> {
        (self.0 != NONE_PTR && self.0 & LEAF_TAG == 0).then_some(self.0 as usize)
    }
}

#[derive(Debug)]
struct Leaf<V> {
    key: Box<[u8]>,
    value: V,
}

/// Adaptive children container (Node4 → Node16 → Node48 → Node256).
#[derive(Debug)]
enum Children {
    N4 { count: u8, labels: [u8; 4], ptrs: [Ptr; 4] },
    N16 { count: u8, labels: [u8; 16], ptrs: [Ptr; 16] },
    N48 { index: Box<[u8; 256]>, ptrs: Box<[Ptr; 48]>, count: u8 },
    N256 { ptrs: Box<[Ptr; 256]> },
}

const NO_SLOT: u8 = 0xFF;

impl Children {
    fn new() -> Self {
        Children::N4 { count: 0, labels: [0; 4], ptrs: [Ptr::NONE; 4] }
    }

    fn get(&self, label: u8) -> Option<Ptr> {
        match self {
            Children::N4 { count, labels, ptrs } => {
                labels[..*count as usize].iter().position(|&l| l == label).map(|i| ptrs[i])
            }
            Children::N16 { count, labels, ptrs } => {
                labels[..*count as usize].iter().position(|&l| l == label).map(|i| ptrs[i])
            }
            Children::N48 { index, ptrs, .. } => {
                let s = index[label as usize];
                (s != NO_SLOT).then(|| ptrs[s as usize])
            }
            Children::N256 { ptrs } => {
                let p = ptrs[label as usize];
                (!p.is_none()).then_some(p)
            }
        }
    }

    /// Insert or replace; grows the node layout when full.
    fn set(&mut self, label: u8, ptr: Ptr) {
        match self {
            Children::N4 { count, labels, ptrs } => {
                if let Some(i) = labels[..*count as usize].iter().position(|&l| l == label) {
                    ptrs[i] = ptr;
                    return;
                }
                let c = *count as usize;
                if c < 4 {
                    let pos = labels[..c].partition_point(|&l| l < label);
                    for i in (pos..c).rev() {
                        labels[i + 1] = labels[i];
                        ptrs[i + 1] = ptrs[i];
                    }
                    labels[pos] = label;
                    ptrs[pos] = ptr;
                    *count += 1;
                    return;
                }
                self.grow();
                self.set(label, ptr);
            }
            Children::N16 { count, labels, ptrs } => {
                if let Some(i) = labels[..*count as usize].iter().position(|&l| l == label) {
                    ptrs[i] = ptr;
                    return;
                }
                let c = *count as usize;
                if c < 16 {
                    let pos = labels[..c].partition_point(|&l| l < label);
                    for i in (pos..c).rev() {
                        labels[i + 1] = labels[i];
                        ptrs[i + 1] = ptrs[i];
                    }
                    labels[pos] = label;
                    ptrs[pos] = ptr;
                    *count += 1;
                    return;
                }
                self.grow();
                self.set(label, ptr);
            }
            Children::N48 { index, ptrs, count } => {
                let s = index[label as usize];
                if s != NO_SLOT {
                    ptrs[s as usize] = ptr;
                    return;
                }
                if (*count as usize) < 48 {
                    index[label as usize] = *count;
                    ptrs[*count as usize] = ptr;
                    *count += 1;
                    return;
                }
                self.grow();
                self.set(label, ptr);
            }
            Children::N256 { ptrs } => {
                ptrs[label as usize] = ptr;
            }
        }
    }

    fn grow(&mut self) {
        *self = match std::mem::replace(self, Children::new()) {
            Children::N4 { count, labels, ptrs } => {
                let mut nl = [0u8; 16];
                let mut np = [Ptr::NONE; 16];
                nl[..4].copy_from_slice(&labels);
                np[..4].copy_from_slice(&ptrs);
                Children::N16 { count, labels: nl, ptrs: np }
            }
            Children::N16 { count, labels, ptrs } => {
                let mut index = Box::new([NO_SLOT; 256]);
                let mut np = Box::new([Ptr::NONE; 48]);
                for i in 0..count as usize {
                    index[labels[i] as usize] = i as u8;
                    np[i] = ptrs[i];
                }
                Children::N48 { index, ptrs: np, count }
            }
            Children::N48 { index, ptrs, .. } => {
                let mut np = Box::new([Ptr::NONE; 256]);
                for l in 0..256 {
                    let s = index[l];
                    if s != NO_SLOT {
                        np[l] = ptrs[s as usize];
                    }
                }
                Children::N256 { ptrs: np }
            }
            n256 => n256,
        };
    }

    /// Visit `(label, ptr)` in ascending label order starting at `from`;
    /// the callback returns `false` to stop.
    fn for_each_from(&self, from: u16, mut f: impl FnMut(u8, Ptr) -> bool) {
        match self {
            Children::N4 { count, labels, ptrs } => {
                for i in 0..*count as usize {
                    if (labels[i] as u16) >= from && !f(labels[i], ptrs[i]) {
                        return;
                    }
                }
            }
            Children::N16 { count, labels, ptrs } => {
                for i in 0..*count as usize {
                    if (labels[i] as u16) >= from && !f(labels[i], ptrs[i]) {
                        return;
                    }
                }
            }
            Children::N48 { index, ptrs, .. } => {
                for l in from..256 {
                    let s = index[l as usize];
                    if s != NO_SLOT && !f(l as u8, ptrs[s as usize]) {
                        return;
                    }
                }
            }
            Children::N256 { ptrs } => {
                for l in from..256 {
                    let p = ptrs[l as usize];
                    if !p.is_none() && !f(l as u8, p) {
                        return;
                    }
                }
            }
        }
    }

    /// First child in label order.
    fn first(&self) -> Option<(u8, Ptr)> {
        let mut out = None;
        self.for_each_from(0, |l, p| {
            out = Some((l, p));
            false
        });
        out
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Children::N4 { .. } | Children::N16 { .. } => 0,
            Children::N48 { .. } => 256 + 48 * 4,
            Children::N256 { .. } => 256 * 4,
        }
    }
}

#[derive(Debug)]
struct Node {
    /// First `min(prefix_len, MAX_STORED_PREFIX)` bytes of the compressed
    /// path (optimistic storage).
    prefix: Vec<u8>,
    /// Full compressed-path length in bytes (may exceed `prefix.len()`).
    prefix_len: u32,
    /// Leaf for a key ending exactly at this node (prefix-key support).
    term: Ptr,
    children: Children,
}

/// The Adaptive Radix Tree over byte-string keys and `V` values
/// (default: `u64` ids).
#[derive(Debug)]
pub struct Art<V = u64> {
    nodes: Vec<Node>,
    leaves: Vec<Leaf<V>>,
    root: Option<Ptr>,
}

impl<V> Default for Art<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Art<V> {
    /// New empty tree.
    pub fn new() -> Self {
        Art { nodes: Vec::new(), leaves: Vec::new(), root: None }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Memory footprint: adaptive nodes + leaf records (value and key
    /// bytes; see DESIGN.md on what the leaf represents).
    pub fn memory_bytes(&self) -> usize {
        self.node_memory_bytes()
            + self
                .leaves
                .iter()
                .map(|l| std::mem::size_of::<Leaf<V>>() + l.key.len())
                .sum::<usize>()
    }

    /// Memory of the inner structure only (leaf keys excluded).
    pub fn node_memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.prefix.capacity() + n.children.heap_bytes())
            .sum()
    }

    /// Point lookup with final-key verification (OCPS makes intermediate
    /// comparisons optimistic; the leaf check is authoritative), borrowing
    /// the stored value.
    pub fn get_ref(&self, key: &[u8]) -> Option<&V> {
        let mut ptr = self.root?;
        let mut pos = 0usize;
        loop {
            if let Some(leaf) = ptr.as_leaf() {
                let l = &self.leaves[leaf];
                return (l.key.as_ref() == key).then_some(&l.value);
            }
            let node = &self.nodes[ptr.as_node()?];
            let pl = node.prefix_len as usize;
            if pos + pl > key.len() {
                return None;
            }
            // Optimistic prefix check: compare only the stored bytes.
            let stored = &node.prefix;
            if key[pos..pos + stored.len()] != stored[..] {
                return None;
            }
            pos += pl; // skip the (possibly unstored) remainder
            if pos == key.len() {
                let l = self.leaves.get(node.term.as_leaf()?)?;
                return (l.key.as_ref() == key).then_some(&l.value);
            }
            ptr = node.children.get(key[pos])?;
            pos += 1;
        }
    }

    /// Insert or update; returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        match self.root {
            None => {
                self.root = Some(self.new_leaf(key, value));
                None
            }
            Some(root) => {
                let (ptr, old) = self.insert_rec(root, key, 0, value);
                self.root = Some(ptr);
                old
            }
        }
    }

    fn new_leaf(&mut self, key: &[u8], value: V) -> Ptr {
        self.leaves.push(Leaf { key: key.into(), value });
        Ptr::leaf(self.leaves.len() - 1)
    }

    /// Full bytes of a node's compressed path, recovered from the minimum
    /// leaf when the stored prefix was truncated (the standard OCPS trick:
    /// load the actual key from the record).
    fn full_prefix(&self, node_idx: usize, depth: usize) -> Vec<u8> {
        let node = &self.nodes[node_idx];
        let pl = node.prefix_len as usize;
        if pl <= node.prefix.len() {
            return node.prefix.clone();
        }
        let leaf = self.min_leaf(Ptr::node(node_idx));
        self.leaves[leaf].key[depth..depth + pl].to_vec()
    }

    fn min_leaf(&self, ptr: Ptr) -> usize {
        let mut p = ptr;
        loop {
            if let Some(l) = p.as_leaf() {
                return l;
            }
            let node = &self.nodes[p.as_node().expect("valid ptr")];
            if let Some(l) = node.term.as_leaf() {
                return l;
            }
            p = node.children.first().expect("non-empty node").1;
        }
    }

    fn store_prefix(full: &[u8]) -> Vec<u8> {
        full[..full.len().min(MAX_STORED_PREFIX)].to_vec()
    }

    /// Insert under `ptr` (subtree rooted at key depth `pos`); returns the
    /// possibly-new subtree pointer and any replaced value.
    fn insert_rec(&mut self, ptr: Ptr, key: &[u8], pos: usize, value: V) -> (Ptr, Option<V>) {
        if let Some(leaf_idx) = ptr.as_leaf() {
            if self.leaves[leaf_idx].key.as_ref() == key {
                let old = std::mem::replace(&mut self.leaves[leaf_idx].value, value);
                return (ptr, Some(old));
            }
            // Split into a node holding both leaves.
            let existing = self.leaves[leaf_idx].key.clone();
            let a = &existing[pos..];
            let b = &key[pos..];
            let m = lcp(a, b);
            let mut node = Node {
                prefix: Self::store_prefix(&b[..m]),
                prefix_len: m as u32,
                term: Ptr::NONE,
                children: Children::new(),
            };
            let new_leaf = self.new_leaf(key, value);
            if a.len() == m {
                node.term = ptr;
                node.children.set(b[m], new_leaf);
            } else if b.len() == m {
                node.term = new_leaf;
                node.children.set(a[m], ptr);
            } else {
                node.children.set(a[m], ptr);
                node.children.set(b[m], new_leaf);
            }
            self.nodes.push(node);
            return (Ptr::node(self.nodes.len() - 1), None);
        }

        let node_idx = ptr.as_node().expect("valid ptr");
        let pl = self.nodes[node_idx].prefix_len as usize;
        let rest = &key[pos..];
        // Pessimistic comparison against the *full* prefix (recovered from
        // a leaf if truncated) — required for correct splits.
        let full = self.full_prefix(node_idx, pos);
        let m = lcp(&full, rest);
        if m < pl {
            // Split the compressed path at m.
            let new_leaf = self.new_leaf(key, value);
            let mut parent = Node {
                prefix: Self::store_prefix(&full[..m]),
                prefix_len: m as u32,
                term: Ptr::NONE,
                children: Children::new(),
            };
            let old_branch = full[m];
            let tail = &full[m + 1..];
            {
                let old = &mut self.nodes[node_idx];
                old.prefix = Self::store_prefix(tail);
                old.prefix_len = tail.len() as u32;
            }
            parent.children.set(old_branch, ptr);
            if rest.len() == m {
                parent.term = new_leaf;
            } else {
                parent.children.set(rest[m], new_leaf);
            }
            self.nodes.push(parent);
            return (Ptr::node(self.nodes.len() - 1), None);
        }
        let pos = pos + pl;
        if pos == key.len() {
            let old_term = self.nodes[node_idx].term;
            if let Some(t) = old_term.as_leaf() {
                let old = std::mem::replace(&mut self.leaves[t].value, value);
                return (ptr, Some(old));
            }
            let new_leaf = self.new_leaf(key, value);
            self.nodes[node_idx].term = new_leaf;
            return (ptr, None);
        }
        let c = key[pos];
        match self.nodes[node_idx].children.get(c) {
            Some(child) => {
                let (new_child, old) = self.insert_rec(child, key, pos + 1, value);
                if new_child != child {
                    self.nodes[node_idx].children.set(c, new_child);
                }
                (ptr, old)
            }
            None => {
                let new_leaf = self.new_leaf(key, value);
                self.nodes[node_idx].children.set(c, new_leaf);
                (ptr, None)
            }
        }
    }

    /// Point lookup, cloning the stored value (a copy for `u64` ids). Use
    /// [`Art::get_ref`] to borrow instead.
    pub fn get(&self, key: &[u8]) -> Option<V>
    where
        V: Clone,
    {
        self.get_ref(key).cloned()
    }

    /// Range scan: values of up to `count` keys `>= start`, in key order.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(count.min(64));
        self.scan_bounded(start, None, count, &mut out);
        out
    }

    /// Allocation-free [`Art::scan`]: append up to `count` values to a
    /// caller-owned buffer (scan loops reuse one across probes).
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>)
    where
        V: Clone,
    {
        self.scan_bounded(start, None, count, out);
    }

    /// Bounded range scan: values of up to `limit` keys in `low..=high`
    /// (inclusive on both ends), in key order.
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(limit.min(64));
        self.range_into(low, high, limit, &mut out);
        out
    }

    /// Allocation-free [`Art::range`]: append up to `limit` values to a
    /// caller-owned buffer (scan loops reuse one across probes).
    pub fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>)
    where
        V: Clone,
    {
        if low > high {
            return;
        }
        self.scan_bounded(low, Some(high), limit, out);
    }

    fn scan_bounded(&self, start: &[u8], high: Option<&[u8]>, count: usize, out: &mut Vec<V>)
    where
        V: Clone,
    {
        let stop = out.len().saturating_add(count);
        if let Some(root) = self.root {
            self.scan_rec(root, 0, start, high, true, stop, out);
        }
    }

    /// Push one leaf's value unless it lies above the inclusive upper
    /// bound; returns false to halt the (in-order) traversal.
    fn emit(&self, leaf: usize, high: Option<&[u8]>, out: &mut Vec<V>) -> bool
    where
        V: Clone,
    {
        let l = &self.leaves[leaf];
        if let Some(h) = high {
            if l.key.as_ref() > h {
                return false; // every later key is larger still
            }
        }
        out.push(l.value.clone());
        true
    }

    /// In-order traversal; `bounded` = the subtree may still contain keys
    /// below `start` (we are on the boundary path). `high` is the optional
    /// inclusive upper bound; the first key above it stops the walk.
    /// `stop` is the absolute output length to halt at (append semantics).
    #[allow(clippy::too_many_arguments)]
    fn scan_rec(
        &self,
        ptr: Ptr,
        depth: usize,
        start: &[u8],
        high: Option<&[u8]>,
        bounded: bool,
        stop: usize,
        out: &mut Vec<V>,
    ) -> bool
    where
        V: Clone,
    {
        if out.len() >= stop {
            return false;
        }
        if let Some(leaf) = ptr.as_leaf() {
            if (!bounded || self.leaves[leaf].key.as_ref() >= start) && !self.emit(leaf, high, out)
            {
                return false;
            }
            return out.len() < stop;
        }
        let node_idx = ptr.as_node().expect("valid ptr");
        let node = &self.nodes[node_idx];
        let pl = node.prefix_len as usize;
        let mut from: u16 = 0;
        let mut boundary_child = false;
        let mut include_term = true;
        if bounded {
            let full = self.full_prefix(node_idx, depth);
            let rest = if depth <= start.len() { &start[depth..] } else { &[][..] };
            let m = lcp(&full, rest);
            if m < pl {
                if m < rest.len() && rest[m] > full[m] {
                    return true; // whole subtree below start
                }
                // Subtree entirely above start: scan it all.
            } else if rest.len() > pl {
                // Boundary continues into one child; term (= exactly the
                // node path) lies below start.
                from = rest[pl] as u16;
                boundary_child = true;
                include_term = false;
            }
            // else rest == full prefix: term is exactly start — include.
        }
        if let Some(t) = node.term.as_leaf() {
            // On the boundary path the term may still lie below start.
            let in_range = include_term || self.leaves[t].key.as_ref() >= start;
            if in_range && !self.emit(t, high, out) {
                return false;
            }
            if out.len() >= stop {
                return false;
            }
        }
        let mut keep_going = true;
        node.children.for_each_from(from, |label, child| {
            let child_bounded = boundary_child && (label as u16) == from;
            keep_going =
                self.scan_rec(child, depth + pl + 1, start, high, child_bounded, stop, out);
            keep_going
        });
        keep_going
    }

    /// Average leaf depth in node steps (tree-height diagnostic).
    pub fn avg_depth(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        let mut sum = 0u64;
        let mut stack = vec![(self.root.expect("non-empty"), 0u32)];
        while let Some((ptr, d)) = stack.pop() {
            if ptr.as_leaf().is_some() {
                sum += d as u64;
                continue;
            }
            let node = &self.nodes[ptr.as_node().expect("valid")];
            if node.term.as_leaf().is_some() {
                sum += d as u64 + 1;
            }
            node.children.for_each_from(0, |_, p| {
                stack.push((p, d + 1));
                true
            });
        }
        sum as f64 / self.leaves.len() as f64
    }
}

/// ART satisfies the generic ordered-index contract HOPE serving layers
/// program against, for any value payload.
impl<V: hope::Value> hope::OrderedIndex<V> for Art<V> {
    fn get(&self, key: &[u8]) -> Option<&V> {
        Art::get_ref(self, key)
    }

    fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        Art::insert(self, key, value)
    }

    fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>) {
        Art::scan_into(self, start, count, out)
    }

    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>) {
        Art::range_into(self, low, high, limit, out)
    }

    fn len(&self) -> usize {
        Art::len(self)
    }

    fn memory_bytes(&self) -> usize {
        Art::memory_bytes(self)
    }
}

#[inline]
fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut art = Art::new();
        assert_eq!(art.insert(b"hello", 1), None);
        assert_eq!(art.insert(b"help", 2), None);
        assert_eq!(art.insert(b"world", 3), None);
        assert_eq!(art.get(b"hello"), Some(1));
        assert_eq!(art.get(b"help"), Some(2));
        assert_eq!(art.get(b"world"), Some(3));
        assert_eq!(art.get(b"hel"), None);
        assert_eq!(art.get(b"helloo"), None);
        assert_eq!(art.len(), 3);
    }

    #[test]
    fn update_returns_old_value() {
        let mut art = Art::new();
        art.insert(b"k", 1);
        assert_eq!(art.insert(b"k", 2), Some(1));
        assert_eq!(art.get(b"k"), Some(2));
        assert_eq!(art.len(), 1);
    }

    #[test]
    fn prefix_keys_coexist() {
        let mut art = Art::new();
        art.insert(b"a", 1);
        art.insert(b"ab", 2);
        art.insert(b"abc", 3);
        art.insert(b"", 4);
        assert_eq!(art.get(b"a"), Some(1));
        assert_eq!(art.get(b"ab"), Some(2));
        assert_eq!(art.get(b"abc"), Some(3));
        assert_eq!(art.get(b""), Some(4));
    }

    #[test]
    fn long_common_prefixes_exceed_ocps_window() {
        let mut art = Art::new();
        let p = "very-long-shared-prefix-exceeding-eight-bytes/";
        art.insert(format!("{p}a").as_bytes(), 1);
        art.insert(format!("{p}b").as_bytes(), 2);
        art.insert(format!("{p}c/deeper").as_bytes(), 3);
        assert_eq!(art.get(format!("{p}a").as_bytes()), Some(1));
        assert_eq!(art.get(format!("{p}b").as_bytes()), Some(2));
        assert_eq!(art.get(format!("{p}c/deeper").as_bytes()), Some(3));
        assert_eq!(art.get(format!("{p}c").as_bytes()), None);
        // Splitting a truncated prefix must still work.
        art.insert(b"very-long-shXred", 4);
        assert_eq!(art.get(b"very-long-shXred"), Some(4));
        assert_eq!(art.get(format!("{p}a").as_bytes()), Some(1));
    }

    #[test]
    fn node_growth_through_all_kinds() {
        let mut art = Art::new();
        for b in 0..=255u8 {
            art.insert(&[b], b as u64);
        }
        for b in 0..=255u8 {
            assert_eq!(art.get(&[b]), Some(b as u64), "byte {b}");
        }
        assert_eq!(art.len(), 256);
    }

    #[test]
    fn scan_in_order_from_start() {
        let mut art = Art::new();
        let keys = ["apple", "banana", "cherry", "date", "elderberry", "fig"];
        for (i, k) in keys.iter().enumerate() {
            art.insert(k.as_bytes(), i as u64);
        }
        assert_eq!(art.scan(b"banana", 3), vec![1, 2, 3]);
        assert_eq!(art.scan(b"bananaz", 2), vec![2, 3]);
        assert_eq!(art.scan(b"", 100), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(art.scan(b"zz", 5), Vec::<u64>::new());
    }

    #[test]
    fn bounded_range_is_inclusive_and_ordered() {
        let mut art = Art::new();
        let keys = ["apple", "banana", "cherry", "date", "elderberry", "fig"];
        for (i, k) in keys.iter().enumerate() {
            art.insert(k.as_bytes(), i as u64);
        }
        assert_eq!(art.range(b"banana", b"date", 100), vec![1, 2, 3]);
        assert_eq!(art.range(b"b", b"dz", 100), vec![1, 2, 3]);
        assert_eq!(art.range(b"banana", b"date", 2), vec![1, 2]);
        assert!(art.range(b"date", b"banana", 100).is_empty());
        assert!(art.range(b"gg", b"zz", 100).is_empty());
        // Prefix keys along the bound path.
        art.insert(b"dat", 9);
        assert_eq!(art.range(b"dat", b"date", 100), vec![9, 3]);
    }

    #[test]
    fn memory_grows_with_keys() {
        let mut art = Art::new();
        let m0 = art.memory_bytes();
        for i in 0..100 {
            art.insert(format!("user{i:05}").as_bytes(), i);
        }
        assert!(art.memory_bytes() > m0);
        assert!(art.node_memory_bytes() < art.memory_bytes());
        assert!(art.avg_depth() > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn behaves_like_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..24), any::<u64>()), 1..200),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 0..50),
        ) {
            let mut art = Art::new();
            let mut model = BTreeMap::new();
            for (k, v) in &ops {
                let got = art.insert(k, *v);
                let want = model.insert(k.clone(), *v);
                prop_assert_eq!(got, want);
            }
            for (k, v) in &model {
                prop_assert_eq!(art.get(k), Some(*v), "missing {:?}", k);
            }
            for p in &probes {
                prop_assert_eq!(art.get(p), model.get(p).copied());
            }
            prop_assert_eq!(art.len(), model.len());
        }

        #[test]
        fn scan_matches_btreemap_range(
            kvs in proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 0..16), any::<u64>(), 1..150),
            start in proptest::collection::vec(any::<u8>(), 0..16),
            count in 1usize..40,
        ) {
            let mut art = Art::new();
            for (k, v) in &kvs {
                art.insert(k, *v);
            }
            let want: Vec<u64> = kvs.range(start.clone()..).take(count).map(|(_, v)| *v).collect();
            prop_assert_eq!(art.scan(&start, count), want);
        }

        #[test]
        fn range_matches_btreemap_range(
            kvs in proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 0..16), any::<u64>(), 1..150),
            low in proptest::collection::vec(any::<u8>(), 0..16),
            span in proptest::collection::vec(any::<u8>(), 0..4),
            count in 1usize..40,
        ) {
            let mut art = Art::new();
            for (k, v) in &kvs {
                art.insert(k, *v);
            }
            let mut high = low.clone();
            high.extend_from_slice(&span);
            let want: Vec<u64> =
                kvs.range(low.clone()..=high.clone()).take(count).map(|(_, v)| *v).collect();
            prop_assert_eq!(art.range(&low, &high, count), want);
        }
    }
}
