//! Fast-path / generic-path equivalence: the fast encoder
//! ([`hope::FastEncoder`], taken transparently by `encode`/`encode_to` —
//! a fused code table for the array schemes, a prefix automaton for the
//! trie schemes) must be **bit-identical** to the generic dictionary walk
//! ([`hope::Encoder::encode_generic`]) for every scheme, every key — the
//! fast path is an implementation detail, never a semantic change.
//!
//! Random samples build the dictionaries; random probe keys (including
//! bytes never sampled — completeness covers them) are encoded through
//! both paths, individually, pair-wise and in sorted batches. A second
//! suite squeezes the automaton's state budget down to a handful of rows
//! so the fallback edges (generic `Dict::lookup` per symbol) are
//! exercised on random dictionaries too.

use hope::bitpack::BitWriter;
use hope::code_assign::CodeAssigner;
use hope::dict::Dict;
use hope::selector::{self};
use hope::{EncodeScratch, FastEncoder, Hope, HopeBuilder, Scheme};
use proptest::prelude::*;

fn build(scheme: Scheme, sample: &[Vec<u8>]) -> Hope {
    HopeBuilder::new(scheme)
        .dictionary_entries(256)
        .build_from_sample(sample.iter().cloned())
        .expect("build")
}

fn check_equivalence(hope: &Hope, scheme: Scheme, probes: &[Vec<u8>]) {
    let mut scratch = EncodeScratch::new();
    for p in probes {
        let generic = hope.encoder().encode_generic(p);
        // Point encode (allocating) takes the fast path when present.
        assert_eq!(hope.encode(p), generic, "{scheme}: encode({p:?})");
        // Scratch encode returns the same padded bytes and bit length.
        let bytes = hope.encode_to(p, &mut scratch).expect("within MAX_KEY_BYTES");
        assert_eq!(bytes, generic.as_bytes(), "{scheme}: encode_to({p:?})");
        assert_eq!(scratch.bit_len(), generic.bit_len(), "{scheme}: encode_to({p:?}) bits");
    }
    // Pair encoding shares one traversal; results must still match the
    // per-key generic walk.
    for w in probes.windows(2) {
        let (mut low, mut high) = (w[0].clone(), w[1].clone());
        if low > high {
            std::mem::swap(&mut low, &mut high);
        }
        let (lo, hi) = hope.encode_pair(&low, &high);
        assert_eq!(lo, hope.encoder().encode_generic(&low), "{scheme}: pair low {low:?}");
        assert_eq!(hi, hope.encoder().encode_generic(&high), "{scheme}: pair high {high:?}");
    }
    // Sorted-batch encoding (Appendix B prefix reuse) as well.
    let mut sorted: Vec<&[u8]> = probes.iter().map(|p| p.as_slice()).collect();
    sorted.sort_unstable();
    for block in [2usize, 8] {
        let batch = hope.encode_batch(&sorted, block);
        for (k, e) in sorted.iter().zip(&batch) {
            assert_eq!(e, &hope.encoder().encode_generic(k), "{scheme}: batch({block}) {k:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn fast_path_is_bit_identical_across_all_schemes(
        sample in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..24), 1..24),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 2..24),
    ) {
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample);
            check_equivalence(&hope, scheme, &probes);
        }
    }

    /// Starved automata (1–12 states) must stay bit-identical: budget
    /// overflow only reroutes symbols through the generic-walk fallback.
    #[test]
    fn tiny_automaton_budgets_stay_bit_identical(
        sample in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..16), 1..16),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 1..16),
        budget in 1usize..12,
    ) {
        for scheme in [Scheme::ThreeGrams, Scheme::FourGrams, Scheme::AlmImproved] {
            let set = selector::select_intervals(scheme, &sample, 128).unwrap();
            let weights = selector::access_weights(&set, &sample);
            let codes = CodeAssigner::HuTucker.assign(&weights);
            let dict = Dict::build(scheme, &set, &codes);
            let fast = FastEncoder::automaton_from(&set, &codes, budget).expect("automaton");
            for p in &probes {
                let mut w = BitWriter::new();
                fast.encode_into(p, &dict, &mut w);
                let got = w.finish();
                let mut w = BitWriter::new();
                let mut rest = p.as_slice();
                while !rest.is_empty() {
                    let (code, n) = dict.lookup(rest);
                    w.put(code);
                    rest = &rest[n..];
                }
                prop_assert_eq!(got, w.finish(), "{}/budget {}: key {:?}", scheme, budget, p);
            }
        }
    }
}

/// Deterministic smoke over realistic (email-shaped) keys, so a failure
/// here is reproducible without the proptest RNG.
#[test]
fn fast_path_is_bit_identical_on_email_keys() {
    let sample: Vec<Vec<u8>> =
        (0..300).map(|i| format!("com.gmail@user{i:04}").into_bytes()).collect();
    let probes: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"com.gmail@user0000".to_vec(),
        b"com.gmail@zzz".to_vec(),
        b"org.never.sampled@x".to_vec(),
        b"\x00\xff\x7f\x80".to_vec(),
        b"odd".to_vec(),
    ];
    for scheme in Scheme::ALL {
        let hope = build(scheme, &sample);
        check_equivalence(&hope, scheme, &probes);
    }
}
