//! Compile-time thread-safety contract of the encode/decode pipeline.
//!
//! A built HOPE dictionary is immutable, so every stage must be shareable
//! across threads (`Send + Sync`): the `hope_store` serving layer parks a
//! `Hope` behind an `Arc` epoch handle and reads it from many threads at
//! once. These assertions are evaluated by the compiler — if a field ever
//! regresses to a non-thread-safe type (`Rc`, `Cell`, raw pointers without
//! impls), this test stops building rather than failing at runtime.

use hope::decoder::Decoder;
use hope::dict::{ArtDict, BitmapTrieDict, Dict, DoubleCharDict, SingleCharDict, SortedDict};
use hope::{Encoder, FastDecoder, Hope, HopeBuilder, HopeError, KeyCodec, OrderedIndex, Scheme};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}

#[test]
fn encoder_and_decoder_are_send_sync() {
    assert_send_sync::<Encoder>();
    assert_send_sync::<Decoder>();
    assert_send_sync::<FastDecoder>();
    assert_send_sync::<Hope>();
    assert_send_sync::<HopeError>();
}

#[test]
fn v1_trait_objects_are_send_sync() {
    // The unified codec surface and the generic index contract are both
    // usable behind shared references from many threads.
    assert_send_sync::<dyn KeyCodec>();
    assert_send_sync::<dyn OrderedIndex<u64>>();
    assert_send_sync::<dyn OrderedIndex<Vec<u8>>>();
    assert_send_sync::<Box<dyn OrderedIndex<u64>>>();
}

#[test]
fn all_dictionary_structures_are_send_sync() {
    // The four Table-1 dictionary structures…
    assert_send_sync::<SingleCharDict>();
    assert_send_sync::<DoubleCharDict>();
    assert_send_sync::<BitmapTrieDict>();
    assert_send_sync::<ArtDict>();
    // …plus the binary-search baseline and the dispatch wrapper.
    assert_send_sync::<SortedDict>();
    assert_send_sync::<Dict>();
}

/// Beyond the compile-time assertion: actually share one compressor across
/// threads and check every thread sees identical encodings.
#[test]
fn hope_encodes_identically_from_many_threads() {
    let sample: Vec<Vec<u8>> =
        (0..200).map(|i| format!("com.gmail@user{i:03}").into_bytes()).collect();
    let hope = std::sync::Arc::new(
        HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap(),
    );
    let want = hope.encode(b"com.gmail@probe");
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let h = std::sync::Arc::clone(&hope);
            let want = want.clone();
            std::thread::spawn(move || {
                for _ in 0..100 {
                    assert_eq!(h.encode(b"com.gmail@probe"), want);
                }
            })
        })
        .collect();
    for t in handles {
        t.join().unwrap();
    }
}
