//! Fast-decoder / reference-decoder equivalence: the byte-table
//! [`hope::FastDecoder`] must agree with the bit-walk [`hope::Decoder`]
//! on every stream — valid or corrupt — for every scheme and every state
//! budget. The table is an implementation detail, never a semantic
//! change; a tiny budget merely shifts work onto the bit-walk fallback.

use hope::{DecodeScratch, FastDecoder, Hope, HopeBuilder, Scheme};
use proptest::prelude::*;

fn build(scheme: Scheme, sample: &[Vec<u8>]) -> Hope {
    HopeBuilder::new(scheme)
        .dictionary_entries(256)
        .build_from_sample(sample.iter().cloned())
        .expect("build")
}

fn check_equivalence(hope: &Hope, scheme: Scheme, probes: &[Vec<u8>], budget: usize) {
    let walk = hope.decoder();
    let symbols: Vec<Box<[u8]>> =
        (0..hope.intervals().len()).map(|i| hope.intervals().symbol(i).into()).collect();
    let codes: Vec<hope::Code> = (0..hope.intervals().len())
        .map(|i| {
            // Recover each interval's code through the encoder's dictionary
            // (one lookup at the interval boundary).
            let (code, _) = hope.encoder().dict().lookup(hope.intervals().boundary(i));
            code
        })
        .collect();
    let fast = FastDecoder::new(&codes, symbols, budget);
    let mut scratch = DecodeScratch::new();
    for p in probes {
        let e = hope.encode(p);
        // Valid streams: both decoders recover the source key.
        assert_eq!(walk.decode(&e).as_deref(), Ok(p.as_slice()), "{scheme}: walk {p:?}");
        assert_eq!(
            fast.decode_to(&e, &mut scratch),
            Ok(p.as_slice()),
            "{scheme}/budget {budget}: fast {p:?}"
        );
    }
    // Batch decode agrees item-for-item.
    let encoded: Vec<hope::EncodedKey> = probes.iter().map(|p| hope.encode(p)).collect();
    let batch = fast.decode_batch_keys(&encoded, &mut scratch).expect("valid batch");
    assert_eq!(batch.len(), probes.len());
    for (i, p) in probes.iter().enumerate() {
        assert_eq!(batch.get(i), p.as_slice(), "{scheme}/budget {budget}: batch {i}");
    }
}

/// Truncated and bit-flipped streams must be judged identically (both
/// reject, or both accept with the same output).
fn check_corruption_agreement(hope: &Hope, scheme: Scheme, probes: &[Vec<u8>]) {
    let walk = hope.decoder();
    let fast = hope.fast_decoder();
    let mut scratch = DecodeScratch::new();
    for p in probes {
        let e = hope.encode(p);
        for cut in [e.bit_len() / 2, e.bit_len().saturating_sub(1), e.bit_len() / 3] {
            let bytes = e.as_bytes()[..cut.div_ceil(8)].to_vec();
            // Re-zero the padding bits the truncation exposed.
            let mut bytes = bytes;
            if cut % 8 != 0 {
                let last = bytes.len() - 1;
                bytes[last] &= 0xFFu8 << (8 - cut % 8);
            }
            let t = hope::EncodedKey::from_parts(bytes, cut);
            let a = walk.decode(&t);
            let b = fast.decode_to(&t, &mut scratch).map(|s| s.to_vec());
            assert_eq!(a, b, "{scheme}: truncated({cut}) of {p:?} judged differently");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn fast_decoder_matches_reference_across_schemes_and_budgets(
        sample in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..20), 1..16),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..28), 1..16),
        budget in 1usize..64,
    ) {
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample);
            check_equivalence(&hope, scheme, &probes, budget);
            check_corruption_agreement(&hope, scheme, &probes);
        }
    }
}

/// Deterministic smoke over realistic keys, reproducible without the
/// proptest RNG.
#[test]
fn fast_decoder_roundtrips_email_keys_under_every_scheme() {
    let sample: Vec<Vec<u8>> =
        (0..300).map(|i| format!("com.gmail@user{i:04}").into_bytes()).collect();
    let probes: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"com.gmail@user0000".to_vec(),
        b"com.gmail@zzz".to_vec(),
        b"org.never.sampled@x".to_vec(),
        b"\x00\xff\x7f\x80".to_vec(),
    ];
    for scheme in Scheme::ALL {
        let hope = build(scheme, &sample);
        let fast = hope.fast_decoder();
        let mut scratch = DecodeScratch::new();
        for p in &probes {
            let e = hope.encode(p);
            assert_eq!(fast.decode_to(&e, &mut scratch), Ok(p.as_slice()), "{scheme}");
        }
        check_corruption_agreement(&hope, scheme, &probes);
    }
}
