//! Code Assigners (§4.2): map per-interval access weights to monotonically
//! increasing prefix codes.
//!
//! Two assigners exist, matching Table 1:
//! * **fixed-length** — `ceil(log2 N)`-bit consecutive integers (ALM);
//! * **Hu-Tucker** — optimal order-preserving prefix codes (all others).

use crate::bitpack::Code;
use crate::hu_tucker;

/// Which code assigner a scheme uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodeAssigner {
    /// Monotone fixed-length codes of `ceil(log2 N)` bits.
    FixedLength,
    /// Optimal order-preserving prefix codes (Hu-Tucker via Garsia–Wachs).
    HuTucker,
}

impl CodeAssigner {
    /// Assign one code per weight. The result is always monotonically
    /// increasing in bitstring order and prefix-free.
    pub fn assign(&self, weights: &[u64]) -> Vec<Code> {
        match self {
            CodeAssigner::FixedLength => hu_tucker::fixed_len_codes(weights.len()),
            CodeAssigner::HuTucker => hu_tucker::hu_tucker_codes(weights),
        }
    }
}

/// Verify the two structural properties order preservation rests on
/// (§3.1): codes strictly increase in bitstring order, and no code is a
/// prefix of its successor (with monotonicity this implies global
/// prefix-freedom). Used by tests and debug assertions.
pub fn codes_are_order_preserving(codes: &[Code]) -> bool {
    codes
        .windows(2)
        .all(|w| w[0].cmp_bitstring(&w[1]) == std::cmp::Ordering::Less && !w[0].is_prefix_of(&w[1]))
}

/// Range-Encoding code assignment — the alternative §4.2 mentions and
/// rejects: "Range Encoding requires more bits than Hu-Tucker to ensure
/// that codes are exactly on range boundaries to guarantee
/// order-preserving". Implemented here as an ablation so that claim can be
/// measured (see the `bench_hu_tucker` Criterion bench and the unit tests
/// below).
///
/// Interval `i` occupies the probability range `[cum_i, cum_{i+1})`; its
/// code is the shortest dyadic interval fully inside that range, which
/// costs up to two bits more than `-log2(p_i)`.
pub fn range_encoding_codes(weights: &[u64]) -> Vec<Code> {
    let n = weights.len();
    assert!(n > 0);
    if n == 1 {
        return vec![Code::new(0, 1)];
    }
    let total: u128 = weights.iter().map(|&w| (w.max(1)) as u128).sum();
    let mut codes = Vec::with_capacity(n);
    let mut cum: u128 = 0;
    for &w in weights {
        let w = w.max(1) as u128;
        let lo = cum;
        let hi = cum + w;
        cum = hi;
        let mut assigned = None;
        for len in 1..=crate::hu_tucker::MAX_CODE_LEN {
            // Find the smallest dyadic cell [c, c+1)/2^len inside
            // [lo, hi)/total: c = ceil(lo * 2^len / total).
            let scale = 1u128 << len;
            let c = (lo * scale).div_ceil(total);
            if (c + 1) * total <= hi * scale {
                assigned = Some(Code::new(c as u64, len as u8));
                break;
            }
        }
        codes.push(assigned.expect("a dyadic cell fits within 64 bits"));
    }
    debug_assert!(codes_are_order_preserving(&codes));
    codes
}

/// Expected code length `sum(p_i * len_i)` under the given weights — the
/// quantity the Hu-Tucker-vs-Range-Encoding ablation compares.
pub fn expected_code_length(weights: &[u64], codes: &[Code]) -> f64 {
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return 0.0;
    }
    let bits: u128 = weights.iter().zip(codes).map(|(&w, c)| w as u128 * c.len as u128).sum();
    bits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_length_assigner() {
        let codes = CodeAssigner::FixedLength.assign(&[5, 1, 9]);
        assert_eq!(codes.len(), 3);
        assert!(codes.iter().all(|c| c.len == 2));
        assert!(codes_are_order_preserving(&codes));
    }

    #[test]
    fn hu_tucker_assigner_favors_heavy_intervals() {
        let codes = CodeAssigner::HuTucker.assign(&[100, 1, 1, 1]);
        assert!(codes[0].len < codes[2].len);
        assert!(codes_are_order_preserving(&codes));
    }

    #[test]
    fn monotone_prefix_free_check_rejects_bad_codes() {
        let bad = vec![Code::new(0b0, 1), Code::new(0b01, 2)]; // prefix
        assert!(!codes_are_order_preserving(&bad));
        let unordered = vec![Code::new(0b1, 1), Code::new(0b0, 1)];
        assert!(!codes_are_order_preserving(&unordered));
    }

    #[test]
    fn range_encoding_is_valid_but_never_beats_hu_tucker() {
        // The §4.2 claim: Range Encoding pays extra bits for alignment.
        let cases: Vec<Vec<u64>> = vec![
            vec![100, 1, 1, 1],
            vec![1; 16],
            vec![5, 10, 15, 20, 25, 25],
            vec![1, 1000, 1, 1000, 1],
        ];
        for w in cases {
            let re = range_encoding_codes(&w);
            assert!(codes_are_order_preserving(&re), "{w:?}");
            let ht = CodeAssigner::HuTucker.assign(&w);
            let e_re = expected_code_length(&w, &re);
            let e_ht = expected_code_length(&w, &ht);
            assert!(e_ht <= e_re + 1e-9, "weights {w:?}: Hu-Tucker {e_ht:.3} vs Range {e_re:.3}");
        }
    }

    #[test]
    fn range_encoding_single_entry() {
        assert_eq!(range_encoding_codes(&[7]), vec![Code::new(0, 1)]);
    }

    proptest::proptest! {
        #[test]
        fn range_encoding_random_weights(
            w in proptest::collection::vec(0u64..100_000, 1..300)
        ) {
            let re = range_encoding_codes(&w);
            proptest::prop_assert!(codes_are_order_preserving(&re) || re.len() == 1);
            // Shannon bound + 2 alignment bits per symbol.
            let total: f64 = w.iter().map(|&x| x.max(1) as f64).sum();
            for (x, c) in w.iter().zip(&re) {
                let p = (*x).max(1) as f64 / total;
                let bound = (-p.log2()).ceil() + 2.0;
                proptest::prop_assert!(
                    (c.len as f64) <= bound,
                    "p={p} len={} bound={bound}", c.len
                );
            }
        }
    }
}
