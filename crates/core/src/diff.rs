//! Dictionary diffing: which keys would a retrained dictionary encode
//! *identically*?
//!
//! A drift rebuild retrains the dictionary on a fresh sample and then
//! re-encodes every live key — even though retraining on similar data
//! usually perturbs only a fraction of the code assignments (Hu-Tucker
//! is deterministic in its weights, so symbols whose weights ranked the
//! same keep their exact codes). [`EncodingDiff`] compares an old and a
//! new [`Hope`](crate::Hope) at the *symbol* level and answers, per key,
//! whether the new dictionary's output is bit-for-bit the old one's —
//! in which case the already-encoded bytes can be reused verbatim and
//! the re-encode skipped. This is the engine behind the store's
//! incremental merge rebuild (Compressed Key Sort / Fast Index
//! Reconstruction style: a merge pass over already-encoded runs instead
//! of a stop-the-world re-encode).
//!
//! Two comparison strategies, chosen by the fused-table shapes:
//!
//! * **Table diff** — both dictionaries carry a fused array table
//!   (Single-/Double-Char). Since a table entry *is* the complete
//!   per-symbol encode, one upfront pass over the (at most 65 792)
//!   entries yields a changed-symbol bitset, and a key's verdict is a
//!   bitset probe per symbol: O(key length), no dictionary work at all.
//! * **Walk diff** — any other shape (prefix automaton, or mismatched
//!   table shapes). Each key is resolved symbol-by-symbol through
//!   *both* encoders ([`FastEncoder::lookup_symbol`]); the key is
//!   unchanged only if every step consumes the same source length with
//!   an identical code. Segmentation agreement matters: equal total bit
//!   patterns reached through different symbol boundaries would still
//!   be byte-identical, but the walk conservatively rejects anything
//!   whose step-wise agreement breaks, which is always safe (a `false`
//!   merely costs one ordinary re-encode).
//!
//! Identical per-symbol codes along the whole key imply an identical
//! concatenated bit stream, hence identical padded encoded bytes — the
//! reuse the store splices is exact, not approximate.

use crate::dict::Dict;
use crate::encoder::Encoder;
use crate::fast_encoder::FastEncoder;

/// One word per 64 symbols.
fn bitset(bits: usize) -> Box<[u64]> {
    vec![0u64; bits.div_ceil(64)].into_boxed_slice()
}

fn mark(bs: &mut [u64], i: usize) {
    bs[i / 64] |= 1 << (i % 64);
}

fn marked(bs: &[u64], i: usize) -> bool {
    (bs[i / 64] >> (i % 64)) & 1 == 1
}

/// How two dictionaries are compared (module docs).
#[derive(Debug)]
enum Shape<'a> {
    /// Fixed-gram fused tables on both sides: precomputed changed-symbol
    /// bitsets over the dense symbol space.
    Table {
        /// Symbol length of the main table (1 or 2 bytes).
        gram: usize,
        /// Changed bit per main-table entry.
        changed: Box<[u64]>,
        /// Changed bit per terminator entry (empty for Single-Char).
        term_changed: Box<[u64]>,
    },
    /// Per-key dual walk through both encoders.
    Walk {
        old_fast: &'a FastEncoder,
        old_dict: &'a Dict,
        new_fast: &'a FastEncoder,
        new_dict: &'a Dict,
    },
}

/// A symbol-level comparison of two trained dictionaries, answering
/// [`key_unchanged`](EncodingDiff::key_unchanged) per key. Built by
/// [`Hope::encoding_diff`](crate::Hope::encoding_diff); holds borrows of
/// both compressors.
///
/// ```
/// use hope::{HopeBuilder, Scheme};
///
/// let sample: Vec<Vec<u8>> = (0..200).map(|i| format!("user{i:04}").into_bytes()).collect();
/// let old = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample.clone()).unwrap();
/// let new = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample).unwrap();
/// let diff = old.encoding_diff(&new).unwrap();
/// // Identical samples ⇒ identical Hu-Tucker weights ⇒ nothing changed.
/// assert!(diff.key_unchanged(b"user0042"));
/// assert_eq!(diff.changed_symbols(), Some(0));
/// ```
#[derive(Debug)]
pub struct EncodingDiff<'a> {
    shape: Shape<'a>,
}

impl<'a> EncodingDiff<'a> {
    /// Compare two encoders; `None` when either lacks a fast encoder
    /// (extreme Hu-Tucker skew declined the table — rare, and then a
    /// symbol-exact diff has no precomputed form to lean on).
    pub(crate) fn new(old: &'a Encoder, new: &'a Encoder) -> Option<EncodingDiff<'a>> {
        let (old_fast, new_fast) = (old.fast()?, new.fast()?);
        let shape = match (old_fast.fused_tables(), new_fast.fused_tables()) {
            (Some((om, ot)), Some((nm, nt)))
                if old_fast.fixed_gram() == new_fast.fixed_gram()
                    && om.len() == nm.len()
                    && ot.len() == nt.len() =>
            {
                let gram = old_fast.fixed_gram().unwrap_or(1);
                let mut changed = bitset(om.len());
                for (i, (a, b)) in om.iter().zip(nm).enumerate() {
                    if a != b {
                        mark(&mut changed, i);
                    }
                }
                let mut term_changed = bitset(ot.len());
                for (i, (a, b)) in ot.iter().zip(nt).enumerate() {
                    if a != b {
                        mark(&mut term_changed, i);
                    }
                }
                Shape::Table { gram, changed, term_changed }
            }
            _ => Shape::Walk { old_fast, old_dict: old.dict(), new_fast, new_dict: new.dict() },
        };
        Some(EncodingDiff { shape })
    }

    /// `true` iff the new dictionary encodes `key` to byte-identical
    /// output, so its already-encoded form can be reused verbatim.
    /// Conservative: a `false` may still encode identically (walk-shape
    /// segmentation disagreement); a `true` is always exact.
    pub fn key_unchanged(&self, key: &[u8]) -> bool {
        match &self.shape {
            Shape::Table { gram: 1, changed, .. } => {
                key.iter().all(|&b| !marked(changed, b as usize))
            }
            Shape::Table { changed, term_changed, .. } => {
                let mut chunks = key.chunks_exact(2);
                for p in &mut chunks {
                    if marked(changed, (p[0] as usize) << 8 | p[1] as usize) {
                        return false;
                    }
                }
                match chunks.remainder() {
                    [b] => !marked(term_changed, *b as usize),
                    _ => true,
                }
            }
            Shape::Walk { old_fast, old_dict, new_fast, new_dict } => {
                let mut rest = key;
                while !rest.is_empty() {
                    let (oc, on) = old_fast.lookup_symbol(rest, old_dict);
                    let (nc, nn) = new_fast.lookup_symbol(rest, new_dict);
                    if on != nn || oc != nc || on == 0 {
                        return false;
                    }
                    rest = &rest[on..];
                }
                true
            }
        }
    }

    /// Symbols whose table entry changed, or `None` for the walk shape
    /// (whose symbol space has no dense enumeration). Diagnostics: `0`
    /// means every key is reusable.
    pub fn changed_symbols(&self) -> Option<usize> {
        match &self.shape {
            Shape::Table { changed, term_changed, .. } => Some(
                changed.iter().map(|w| w.count_ones() as usize).sum::<usize>()
                    + term_changed.iter().map(|w| w.count_ones() as usize).sum::<usize>(),
            ),
            Shape::Walk { .. } => None,
        }
    }

    /// Comparison strategy in use: `"table"` (precomputed bitsets) or
    /// `"walk"` (per-key dual lookup). Reports and telemetry.
    pub fn kind(&self) -> &'static str {
        match &self.shape {
            Shape::Table { .. } => "table",
            Shape::Walk { .. } => "walk",
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::HopeBuilder;
    use crate::selector::Scheme;

    fn sample_a() -> Vec<Vec<u8>> {
        (0..400).map(|i| format!("com.gmail@user{i:04}").into_bytes()).collect()
    }

    /// A sample with a shifted byte distribution: different weights for
    /// many symbols, so retraining genuinely moves codes.
    fn sample_b() -> Vec<Vec<u8>> {
        (0..400).map(|i| format!("zz{:04x}.example/{i:04}", i * 7).into_bytes()).collect()
    }

    fn build(scheme: Scheme, sample: Vec<Vec<u8>>) -> crate::builder::Hope {
        HopeBuilder::new(scheme).dictionary_entries(4096).build_from_sample(sample).unwrap()
    }

    #[test]
    fn identical_training_changes_nothing() {
        for scheme in [Scheme::SingleChar, Scheme::DoubleChar, Scheme::ThreeGrams] {
            let old = build(scheme, sample_a());
            let new = build(scheme, sample_a());
            let diff = old.encoding_diff(&new).unwrap();
            for key in sample_a() {
                assert!(diff.key_unchanged(&key), "{scheme}: {key:?}");
            }
            assert!(diff.key_unchanged(b""), "empty key is vacuously unchanged");
        }
    }

    #[test]
    fn table_diff_counts_changed_symbols_and_walk_does_not() {
        let old = build(Scheme::SingleChar, sample_a());
        let same = build(Scheme::SingleChar, sample_a());
        let diff = old.encoding_diff(&same).unwrap();
        assert_eq!(diff.kind(), "table");
        assert_eq!(diff.changed_symbols(), Some(0));

        let moved = build(Scheme::SingleChar, sample_b());
        let diff = old.encoding_diff(&moved).unwrap();
        assert!(diff.changed_symbols().unwrap() > 0, "shifted sample must move codes");

        let old = build(Scheme::ThreeGrams, sample_a());
        let new = build(Scheme::ThreeGrams, sample_a());
        let diff = old.encoding_diff(&new).unwrap();
        assert_eq!(diff.kind(), "walk");
        assert_eq!(diff.changed_symbols(), None);
    }

    #[test]
    fn unchanged_verdicts_are_exact_and_changed_keys_are_caught() {
        for scheme in [Scheme::SingleChar, Scheme::DoubleChar, Scheme::FourGrams] {
            let old = build(scheme, sample_a());
            let new = build(scheme, sample_b());
            let diff = old.encoding_diff(&new).unwrap();
            let mut unchanged = 0usize;
            let mut changed = 0usize;
            for key in sample_a().iter().chain(sample_b().iter()) {
                let same_bytes = old.encode(key) == new.encode(key);
                if diff.key_unchanged(key) {
                    unchanged += 1;
                    assert!(same_bytes, "{scheme}: reuse verdict must be exact for {key:?}");
                } else {
                    changed += 1;
                }
            }
            // The diff must be useful in both directions on this pair:
            // some keys reusable, some genuinely moved.
            assert!(changed > 0, "{scheme}: shifted dictionaries must change some keys");
            let _ = unchanged;
        }
    }

    #[test]
    fn scheme_mismatch_yields_no_diff() {
        let a = build(Scheme::SingleChar, sample_a());
        let b = build(Scheme::DoubleChar, sample_a());
        assert!(a.encoding_diff(&b).is_none());
    }
}
