//! Compression-rate and latency measurement helpers used by the figure
//! harnesses (§6.1): CPR = uncompressed size / compressed size.

use crate::builder::Hope;

/// Result of measuring a compressor over a dataset.
#[derive(Debug, Clone, Copy)]
pub struct CompressionStats {
    /// Total uncompressed bytes.
    pub src_bytes: u64,
    /// Total compressed bits.
    pub enc_bits: u64,
    /// Total compressed bytes after zero padding (what trees store).
    pub enc_bytes: u64,
    /// Total encode wall-clock nanoseconds.
    pub encode_ns: u64,
}

impl CompressionStats {
    /// Compression rate over padded bytes (the paper's CPR).
    pub fn cpr(&self) -> f64 {
        if self.enc_bytes == 0 {
            return 0.0;
        }
        self.src_bytes as f64 / self.enc_bytes as f64
    }

    /// Compression rate at bit granularity (upper bound on the byte CPR).
    pub fn cpr_bits(&self) -> f64 {
        if self.enc_bits == 0 {
            return 0.0;
        }
        (self.src_bytes * 8) as f64 / self.enc_bits as f64
    }

    /// Average encode latency in nanoseconds per source character — the
    /// y-axis of Figure 8 (row 2).
    pub fn latency_ns_per_char(&self) -> f64 {
        if self.src_bytes == 0 {
            return 0.0;
        }
        self.encode_ns as f64 / self.src_bytes as f64
    }
}

/// Encode every key once, collecting size and latency statistics.
pub fn measure<K: AsRef<[u8]>>(hope: &Hope, keys: &[K]) -> CompressionStats {
    let mut stats = CompressionStats { src_bytes: 0, enc_bits: 0, enc_bytes: 0, encode_ns: 0 };
    let start = std::time::Instant::now();
    for key in keys {
        let key = key.as_ref();
        let e = hope.encode(key);
        stats.src_bytes += key.len() as u64;
        stats.enc_bits += e.bit_len() as u64;
        stats.enc_bytes += e.byte_len() as u64;
    }
    stats.encode_ns = start.elapsed().as_nanos() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HopeBuilder;
    use crate::selector::Scheme;

    #[test]
    fn cpr_above_one_on_skewed_keys() {
        let sample: Vec<Vec<u8>> =
            (0..300).map(|i| format!("com.gmail@user{i}").into_bytes()).collect();
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample.clone()).unwrap();
        let stats = measure(&hope, &sample);
        assert!(stats.cpr() > 1.2, "cpr = {}", stats.cpr());
        assert!(stats.cpr_bits() >= stats.cpr());
        assert!(stats.latency_ns_per_char() > 0.0);
    }

    #[test]
    fn empty_dataset_yields_zero_stats() {
        let hope =
            HopeBuilder::new(Scheme::SingleChar).build_from_sample(vec![b"a".to_vec()]).unwrap();
        let stats = measure::<Vec<u8>>(&hope, &[]);
        assert_eq!(stats.cpr(), 0.0);
        assert_eq!(stats.latency_ns_per_char(), 0.0);
    }
}
