//! The Encoder (§4.2): repeated dictionary lookups + fast bit concatenation.
//!
//! Also implements the batch-encoding optimization (§4.2, Appendix B):
//! when encoding a sorted batch, the common prefix of a block is encoded
//! once and reused, provided the reuse point is aligned with dictionary
//! lookups (safe for the fixed-gram schemes; ALM's arbitrary-length symbols
//! make a-priori alignment impossible, as the paper notes, so those fall
//! back to individual encoding).

use crate::axis::lcp_len;
use crate::bitpack::{BitWriter, EncodedKey};
use crate::dict::Dict;

/// Key encoder: owns the dictionary and a reusable bit writer.
#[derive(Debug)]
pub struct Encoder {
    dict: Dict,
    /// Max dictionary boundary length: a lookup checkpoint at byte `p` is
    /// reusable for another key sharing `p + max_boundary_len` prefix bytes.
    /// `None` disables batch reuse (ALM schemes).
    reuse_gram: Option<usize>,
}

impl Encoder {
    /// Wrap a dictionary. `reuse_gram` is the scheme's maximum boundary
    /// length (1, 2, 3, 4) or `None` for variable-length-symbol schemes.
    pub fn new(dict: Dict, reuse_gram: Option<usize>) -> Self {
        Encoder { dict, reuse_gram }
    }

    /// Access the underlying dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Encode one key. The empty key encodes to the empty code.
    pub fn encode(&self, key: &[u8]) -> EncodedKey {
        let mut w = BitWriter::with_capacity(key.len());
        self.encode_into(key, &mut w);
        w.finish()
    }

    /// Encode `key`, appending to an existing writer (allocation reuse).
    #[inline]
    pub fn encode_into(&self, key: &[u8], w: &mut BitWriter) {
        let mut rest = key;
        while !rest.is_empty() {
            let (code, consumed) = self.dict.lookup(rest);
            debug_assert!(consumed >= 1 && consumed <= rest.len());
            w.put(code);
            rest = &rest[consumed..];
        }
    }

    /// Encode a batch of keys, exploiting shared prefixes within blocks of
    /// `block_size` **sorted** keys (Appendix B). `block_size = 1` encodes
    /// individually; `block_size = 2` is the paper's *pair-encoding* used
    /// for closed-range queries.
    pub fn encode_batch(&self, keys: &[&[u8]], block_size: usize) -> Vec<EncodedKey> {
        assert!(block_size >= 1);
        let mut out = Vec::with_capacity(keys.len());
        if block_size == 1 || self.reuse_gram.is_none() {
            for k in keys {
                out.push(self.encode(k));
            }
            return out;
        }
        let gram = self.reuse_gram.unwrap();
        for block in keys.chunks(block_size) {
            self.encode_block(block, gram, &mut out);
        }
        out
    }

    /// Pair-encode the two boundary keys of a closed-range query.
    pub fn encode_pair(&self, low: &[u8], high: &[u8]) -> (EncodedKey, EncodedKey) {
        let mut v = self.encode_batch(&[low, high], 2);
        let hi = v.pop().expect("two encodings");
        let lo = v.pop().expect("two encodings");
        (lo, hi)
    }

    /// Encode one sorted block: the first key records lookup checkpoints
    /// (source byte offset, encoded bit offset); subsequent keys bit-copy
    /// the longest safely-aligned shared prefix and resume encoding there.
    fn encode_block(&self, block: &[&[u8]], gram: usize, out: &mut Vec<EncodedKey>) {
        debug_assert!(!block.is_empty());
        let first = block[0];
        // (source bytes consumed, bits emitted) after each lookup.
        let mut checkpoints: Vec<(usize, usize)> = Vec::with_capacity(first.len());
        let mut w = BitWriter::with_capacity(first.len());
        let mut rest = first;
        let mut consumed_total = 0usize;
        while !rest.is_empty() {
            let (code, consumed) = self.dict.lookup(rest);
            w.put(code);
            consumed_total += consumed;
            rest = &rest[consumed..];
            checkpoints.push((consumed_total, w.bit_len()));
        }
        let first_enc = w.finish();
        out.push(first_enc.clone());

        for key in &block[1..] {
            let shared = lcp_len(first, key);
            // A checkpoint at byte p is valid if every lookup before it saw
            // identical bytes: boundaries are at most `gram` bytes, so
            // p + gram <= shared suffices (see DESIGN.md).
            let ck = checkpoints.iter().take_while(|&&(p, _)| p + gram <= shared).last().copied();
            match ck {
                Some((bytes, bits)) => {
                    let mut w = BitWriter::with_capacity(key.len());
                    copy_bit_prefix(&first_enc, bits, &mut w);
                    self.encode_into(&key[bytes..], &mut w);
                    out.push(w.finish());
                }
                None => out.push(self.encode(key)),
            }
        }
    }
}

/// Append the first `bits` bits of `src` to `w`.
fn copy_bit_prefix(src: &EncodedKey, bits: usize, w: &mut BitWriter) {
    debug_assert!(bits <= src.bit_len());
    let bytes = src.as_bytes();
    let whole = bits / 8;
    let mut i = 0;
    while i + 8 <= whole {
        let v = u64::from_be_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        w.put_bits(v, 64);
        i += 8;
    }
    while i < whole {
        w.put_bits(bytes[i] as u64, 8);
        i += 1;
    }
    let rem = bits % 8;
    if rem > 0 {
        w.put_bits((bytes[whole] >> (8 - rem)) as u64, rem as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::selector::{self, Scheme};

    fn build_encoder(scheme: Scheme, sample: &[Vec<u8>]) -> Encoder {
        let set = selector::select_intervals(scheme, sample, 512).unwrap();
        let weights = selector::access_weights(&set, sample);
        let codes = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker.assign(&weights)
        } else {
            CodeAssigner::FixedLength.assign(&weights)
        };
        let dict = Dict::build(scheme, &set, &codes);
        let gram = match scheme {
            Scheme::SingleChar => Some(1),
            Scheme::DoubleChar => Some(2),
            Scheme::ThreeGrams => Some(3),
            Scheme::FourGrams => Some(4),
            _ => None,
        };
        Encoder::new(dict, gram)
    }

    fn sample() -> Vec<Vec<u8>> {
        [
            "com.gmail@alice",
            "com.gmail@bob",
            "com.gmail@carol",
            "com.yahoo@dave",
            "org.acm@erin",
            "net.github@frank",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn empty_key_encodes_empty() {
        let enc = build_encoder(Scheme::SingleChar, &sample());
        let e = enc.encode(b"");
        assert_eq!(e.bit_len(), 0);
        assert_eq!(e.byte_len(), 0);
    }

    #[test]
    fn order_preserved_within_sample() {
        for scheme in Scheme::ALL {
            let s = sample();
            let enc = build_encoder(scheme, &s);
            let mut keys = s.clone();
            keys.push(b"com.gmail@".to_vec());
            keys.push(b"zzz".to_vec());
            keys.push(b"@".to_vec());
            keys.sort();
            let encoded: Vec<EncodedKey> = keys.iter().map(|k| enc.encode(k)).collect();
            for w in encoded.windows(2) {
                assert!(w[0] < w[1], "{scheme}: order violated");
            }
        }
    }

    #[test]
    fn compresses_skewed_text() {
        let s = sample();
        let enc = build_encoder(Scheme::DoubleChar, &s);
        let key = b"com.gmail@newuser";
        let e = enc.encode(key);
        assert!(
            e.byte_len() < key.len(),
            "expected compression: {} vs {}",
            e.byte_len(),
            key.len()
        );
    }

    #[test]
    fn batch_matches_individual_encoding() {
        let s = sample();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            let mut keys: Vec<&[u8]> = vec![
                b"com.gmail@aaa",
                b"com.gmail@aab",
                b"com.gmail@zzz",
                b"com.yahoo@x",
                b"org.acm@y",
                b"zebra",
            ];
            keys.sort();
            for bs in [1usize, 2, 3, 32] {
                let batch = enc.encode_batch(&keys, bs);
                for (k, e) in keys.iter().zip(&batch) {
                    assert_eq!(e, &enc.encode(k), "{scheme} block={bs} key={k:?}");
                }
            }
        }
    }

    #[test]
    fn pair_encoding_matches_individual() {
        let s = sample();
        let enc = build_encoder(Scheme::ThreeGrams, &s);
        let (lo, hi) = enc.encode_pair(b"com.gmail@foo", b"com.gmail@fop");
        assert_eq!(lo, enc.encode(b"com.gmail@foo"));
        assert_eq!(hi, enc.encode(b"com.gmail@fop"));
        assert!(lo < hi);
    }

    #[test]
    fn copy_bit_prefix_roundtrip() {
        let mut w = BitWriter::new();
        for i in 0..20u64 {
            w.put_bits(i % 256, 11);
        }
        let full = w.finish();
        for cut in [0usize, 1, 7, 8, 9, 63, 64, 65, 100, full.bit_len()] {
            let mut w2 = BitWriter::new();
            copy_bit_prefix(&full, cut, &mut w2);
            let partial = w2.finish();
            assert_eq!(partial.bit_len(), cut);
            for b in 0..cut {
                assert_eq!(partial.bit(b), full.bit(b), "bit {b} cut {cut}");
            }
        }
    }
}
