//! The Encoder (§4.2): repeated dictionary lookups + fast bit concatenation.
//!
//! ## Fast path vs slow path
//!
//! The encoder keeps **two** implementations of the per-symbol loop and
//! picks one per dictionary at construction time:
//!
//! * the **fast path** — a [`FastEncoder`] dense table covering all six
//!   schemes: a fused code table for the array dictionaries (Single-Char /
//!   Double-Char) and a flattened prefix automaton for the trie
//!   dictionaries (3/4-Grams, ALM / ALM-Improved) — pre-packed
//!   `(code, len)` entries, no enum dispatch (see [`crate::fast_encoder`]);
//! * the **slow path** — the generic dictionary walk
//!   ([`Encoder::encode_generic_into`]), which works for every dictionary
//!   structure (bitmap-trie, ART, sorted baseline), resolves the
//!   automaton's budget-overflow fallback edges, and serves as the
//!   reference the fast path is property-tested against.
//!
//! Both paths are allocation-free: they append to a caller-supplied
//! [`BitWriter`], and the `encode_into`-first API plus [`EncodeScratch`]
//! let query hot paths reuse buffers across probes instead of allocating
//! an [`EncodedKey`] per call. See DESIGN.md, "Performance guide".
//!
//! ## Batch and pair encoding
//!
//! Also implements the batch-encoding optimization (§4.2, Appendix B):
//! when encoding a sorted batch, the common prefix of a block is encoded
//! once and reused, provided the reuse point is aligned with dictionary
//! lookups (safe for the fixed-gram schemes; ALM's arbitrary-length symbols
//! make a-priori alignment impossible, as the paper notes, so those fall
//! back to individual encoding). [`Encoder::encode_pair`] is the two-key
//! special case used for closed-range query bounds: it walks the
//! dictionary **once** for the two keys' common prefix and resumes the
//! second key from the recorded checkpoint.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::axis::{lcp_len, IntervalSet};
use crate::bitpack::{BitWriter, Code, EncodedKey};
use crate::dict::Dict;
use crate::fast_encoder::{FastEncoder, AUTOMATON_STATE_BUDGET};

/// Key encoder: owns the dictionary and a precomputed [`FastEncoder`]
/// table (fused code table or prefix automaton) when one can be built.
#[derive(Debug)]
pub struct Encoder {
    dict: Dict,
    /// Fast-path table: fused (array schemes) or automaton (trie schemes).
    fast: Option<FastEncoder>,
    /// Max dictionary boundary length: a lookup checkpoint at byte `p` is
    /// reusable for another key sharing `p + max_boundary_len` prefix bytes.
    /// `None` disables batch reuse (ALM schemes).
    reuse_gram: Option<usize>,
    /// Keys encoded through the fast table (telemetry; relaxed).
    fast_keys: AtomicU64,
    /// Keys encoded through the generic walk because no fast table was
    /// built (telemetry; relaxed).
    generic_keys: AtomicU64,
}

/// Reusable encode buffers for the allocation-free query hot paths.
///
/// Holds a [`BitWriter`] plus output byte buffers for a key (or a pair of
/// range-bound keys); every [`Encoder::encode_to`] /
/// [`Encoder::encode_pair_to`] call clears and refills them, retaining the
/// allocations. One scratch per thread (or per query loop) is the intended
/// usage — `hope_store` keeps one in a thread-local.
///
/// ```
/// use hope::encoder::EncodeScratch;
/// use hope::{HopeBuilder, Scheme};
///
/// let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
/// let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
///
/// let mut scratch = EncodeScratch::new();
/// let bytes = hope.encode_to(b"com.gmail@carol", &mut scratch).unwrap().to_vec();
/// assert_eq!(bytes, hope.encode(b"com.gmail@carol").into_bytes());
/// assert_eq!(scratch.bit_len(), hope.encode(b"com.gmail@carol").bit_len());
/// ```
#[derive(Debug, Default)]
pub struct EncodeScratch {
    writer: BitWriter,
    lo: Vec<u8>,
    hi: Vec<u8>,
    lo_bits: usize,
    hi_bits: usize,
    /// Path-taken counts not yet flushed to the encoder's shared atomics
    /// (see [`Encoder::encode_to`]): `(fast, generic)` keys.
    pending_fast: u32,
    pending_generic: u32,
}

/// How many [`Encoder::encode_to`] calls a scratch accumulates locally
/// before flushing its path-taken counts into the encoder's shared
/// atomics. A per-key `fetch_add` measurably taxed the Single-Char fast
/// path (~4% in `perf_baseline`) and would bounce one cache line between
/// every encoding thread; batching divides that traffic by the batch
/// size at the cost of snapshots lagging each live scratch by up to
/// `COUNT_FLUSH_EVERY - 1` keys.
pub(crate) const COUNT_FLUSH_EVERY: u32 = 64;

impl EncodeScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact bit length of the last [`Encoder::encode_to`] result (or of
    /// the *low* bound after [`Encoder::encode_pair_to`]).
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.lo_bits
    }

    /// Exact bit lengths `(low, high)` of the last
    /// [`Encoder::encode_pair_to`] result.
    #[inline]
    pub fn pair_bit_lens(&self) -> (usize, usize) {
        (self.lo_bits, self.hi_bits)
    }

    /// Fill the scratch with the key's own bytes (identity encoding) —
    /// used by [`IdentityCodec`](crate::codec::IdentityCodec).
    pub(crate) fn fill_identity(&mut self, key: &[u8]) -> &[u8] {
        self.lo.clear();
        self.lo.extend_from_slice(key);
        self.lo_bits = key.len() * 8;
        &self.lo
    }

    /// Pair form of [`EncodeScratch::fill_identity`].
    pub(crate) fn fill_identity_pair(&mut self, low: &[u8], high: &[u8]) -> (&[u8], &[u8]) {
        self.lo.clear();
        self.lo.extend_from_slice(low);
        self.lo_bits = low.len() * 8;
        self.hi.clear();
        self.hi.extend_from_slice(high);
        self.hi_bits = high.len() * 8;
        (&self.lo, &self.hi)
    }
}

impl Encoder {
    /// Wrap a dictionary. `reuse_gram` is the scheme's maximum boundary
    /// length (1, 2, 3, 4) or `None` for variable-length-symbol schemes.
    /// Builds the fused array fast path when the dictionary supports one;
    /// trie dictionaries get their prefix automaton via
    /// [`Encoder::with_intervals`] (the builder's entry point), which has
    /// the interval division the automaton is flattened from.
    pub fn new(dict: Dict, reuse_gram: Option<usize>) -> Self {
        let fast = FastEncoder::from_dict(&dict);
        Encoder {
            dict,
            fast,
            reuse_gram,
            fast_keys: AtomicU64::new(0),
            generic_keys: AtomicU64::new(0),
        }
    }

    /// Like [`Encoder::new`], but additionally flattens trie dictionaries
    /// (bitmap-trie / ART) into a [`FastEncoder`] prefix automaton built
    /// from the interval division, so every scheme gets a fast path.
    ///
    /// The n-gram dictionaries get the full state budget — their bounded
    /// depth means even a 64K-entry dictionary tables completely, with
    /// zero fallback edges. ALM's arbitrary-length boundaries can demand
    /// unbounded state, so its ART dictionaries get a quarter budget:
    /// past that point extra rows buy mostly cold fallback edges.
    pub fn with_intervals(
        dict: Dict,
        reuse_gram: Option<usize>,
        set: &IntervalSet,
        codes: &[Code],
    ) -> Self {
        let fast = FastEncoder::from_dict(&dict).or_else(|| match &dict {
            Dict::Bitmap(_) => FastEncoder::automaton_from(set, codes, AUTOMATON_STATE_BUDGET),
            Dict::Art(_) => FastEncoder::automaton_from(set, codes, AUTOMATON_STATE_BUDGET / 4),
            _ => None,
        });
        Encoder {
            dict,
            fast,
            reuse_gram,
            fast_keys: AtomicU64::new(0),
            generic_keys: AtomicU64::new(0),
        }
    }

    /// Access the underlying dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// The fast-path table (fused or automaton), when this dictionary has
    /// one.
    pub fn fast(&self) -> Option<&FastEncoder> {
        self.fast.as_ref()
    }

    /// Keys the production dispatch ([`Encoder::encode_into`] /
    /// [`Encoder::encode_to`]) sent through the fast table since
    /// construction. Telemetry counter: relaxed, and scratch-based encodes
    /// batch their counts (a flush every 64 keys), so a snapshot taken
    /// under concurrent encodes lags each live scratch by up to one batch.
    pub fn fast_key_count(&self) -> u64 {
        self.fast_keys.load(Ordering::Relaxed)
    }

    /// Keys the production dispatch sent through the generic dictionary
    /// walk because no fast table was built (same snapshot caveats as
    /// [`Encoder::fast_key_count`]). Direct
    /// [`Encoder::encode_generic_into`] calls (benchmarks, differential
    /// tests) are deliberately *not* counted: the counter reports what the
    /// production dispatch chose.
    pub fn generic_key_count(&self) -> u64 {
        self.generic_keys.load(Ordering::Relaxed)
    }

    /// Encode one key. The empty key encodes to the empty code.
    ///
    /// Allocates a fresh [`EncodedKey`]; query loops should prefer
    /// [`Encoder::encode_to`] with a reused [`EncodeScratch`].
    pub fn encode(&self, key: &[u8]) -> EncodedKey {
        let mut w = BitWriter::with_capacity(key.len());
        self.encode_into(key, &mut w);
        w.finish()
    }

    /// Encode `key`, appending to an existing writer (allocation reuse).
    /// Takes the fast path (fused table or prefix automaton) when the
    /// dictionary has one.
    #[inline]
    pub fn encode_into(&self, key: &[u8], w: &mut BitWriter) {
        match &self.fast {
            Some(fast) => {
                self.fast_keys.fetch_add(1, Ordering::Relaxed);
                fast.encode_into(key, &self.dict, w);
            }
            None => {
                self.generic_keys.fetch_add(1, Ordering::Relaxed);
                self.encode_generic_into(key, w);
            }
        }
    }

    /// Resolve one symbol at the head of `rest` — the fast table when
    /// present, otherwise [`Dict::lookup`]. The per-symbol primitive of
    /// the checkpoint-tracking walks (batch and pair encoding).
    #[inline]
    fn lookup_symbol(&self, rest: &[u8]) -> (Code, usize) {
        match &self.fast {
            Some(fast) => fast.lookup_symbol(rest, &self.dict),
            None => self.dict.lookup(rest),
        }
    }

    /// The generic (slow-path) encode loop: one dictionary lookup per
    /// symbol through the [`Dict`] dispatch. Works for every dictionary
    /// structure; the fast path is property-tested bit-identical to it.
    #[inline]
    pub fn encode_generic_into(&self, key: &[u8], w: &mut BitWriter) {
        let mut rest = key;
        while !rest.is_empty() {
            let (code, consumed) = self.dict.lookup(rest);
            debug_assert!(consumed >= 1 && consumed <= rest.len());
            w.put(code);
            rest = &rest[consumed..];
        }
    }

    /// Allocating wrapper over [`Encoder::encode_generic_into`] — the
    /// encode hot path as it existed before the fused table, kept callable
    /// for benchmarks (`perf_baseline`) and differential tests.
    pub fn encode_generic(&self, key: &[u8]) -> EncodedKey {
        let mut w = BitWriter::with_capacity(key.len());
        self.encode_generic_into(key, &mut w);
        w.finish()
    }

    /// Allocation-free point encode: fill `scratch` and return the padded
    /// encoded bytes (exact bit length via [`EncodeScratch::bit_len`]).
    ///
    /// Path-taken telemetry is accumulated in the scratch and flushed to
    /// the shared counters once per `COUNT_FLUSH_EVERY` (64) keys, keeping
    /// the per-key cost to one plain increment on an already-hot line.
    #[inline]
    pub fn encode_to<'s>(&self, key: &[u8], scratch: &'s mut EncodeScratch) -> &'s [u8] {
        match &self.fast {
            Some(fast) => {
                scratch.pending_fast += 1;
                fast.encode_into(key, &self.dict, &mut scratch.writer);
            }
            None => {
                scratch.pending_generic += 1;
                self.encode_generic_into(key, &mut scratch.writer);
            }
        }
        if scratch.pending_fast + scratch.pending_generic >= COUNT_FLUSH_EVERY {
            self.flush_counts(scratch);
        }
        scratch.lo_bits = scratch.writer.finish_into(&mut scratch.lo);
        &scratch.lo
    }

    /// Move a scratch's pending path-taken counts into the shared atomics.
    #[cold]
    fn flush_counts(&self, scratch: &mut EncodeScratch) {
        if scratch.pending_fast > 0 {
            self.fast_keys.fetch_add(u64::from(scratch.pending_fast), Ordering::Relaxed);
            scratch.pending_fast = 0;
        }
        if scratch.pending_generic > 0 {
            self.generic_keys.fetch_add(u64::from(scratch.pending_generic), Ordering::Relaxed);
            scratch.pending_generic = 0;
        }
    }

    /// Encode a batch of keys, exploiting shared prefixes within blocks of
    /// `block_size` **sorted** keys (Appendix B). `block_size = 1` encodes
    /// individually; `block_size = 2` is the paper's *pair-encoding* used
    /// for closed-range queries.
    ///
    /// The [`BitWriter`] and the per-block checkpoint list are allocated
    /// once and reused across the whole batch; the only per-key allocation
    /// is the exact-size byte buffer of each returned [`EncodedKey`].
    pub fn encode_batch(&self, keys: &[&[u8]], block_size: usize) -> Vec<EncodedKey> {
        assert!(block_size >= 1);
        let mut out = Vec::with_capacity(keys.len());
        let mut w = BitWriter::with_capacity(keys.first().map_or(0, |k| k.len()));
        if block_size == 1 || self.reuse_gram.is_none() {
            let mut buf = Vec::new();
            for k in keys {
                self.encode_into(k, &mut w);
                let bits = w.finish_into(&mut buf);
                out.push(EncodedKey::from_parts(buf.clone(), bits));
            }
            return out;
        }
        let gram = self.reuse_gram.unwrap();
        let mut checkpoints: Vec<(usize, usize)> = Vec::new();
        let mut bufs = (Vec::new(), Vec::new());
        for block in keys.chunks(block_size) {
            self.encode_block(block, gram, &mut w, &mut checkpoints, &mut bufs, &mut out);
        }
        out
    }

    /// Pair-encode the two boundary keys of a closed-range query.
    ///
    /// The dictionary is traversed **once** for the keys' common prefix:
    /// while walking `low`, the last lookup checkpoint that is safely
    /// aligned for `high` (at most `lcp - gram` source bytes, see
    /// `encode_block`) is remembered, and `high` bit-copies `low`'s
    /// encoding up to that checkpoint before resuming the walk. ALM
    /// schemes (no alignment guarantee) fall back to two independent
    /// walks.
    pub fn encode_pair(&self, low: &[u8], high: &[u8]) -> (EncodedKey, EncodedKey) {
        let mut scratch = EncodeScratch::new();
        self.encode_pair_to(low, high, &mut scratch);
        let EncodeScratch { lo, hi, lo_bits, hi_bits, .. } = scratch;
        (EncodedKey::from_parts(lo, lo_bits), EncodedKey::from_parts(hi, hi_bits))
    }

    /// Allocation-free [`Encoder::encode_pair`]: fill `scratch` and return
    /// the two padded byte strings (bit lengths via
    /// [`EncodeScratch::pair_bit_lens`]).
    pub fn encode_pair_to<'s>(
        &self,
        low: &[u8],
        high: &[u8],
        scratch: &'s mut EncodeScratch,
    ) -> (&'s [u8], &'s [u8]) {
        let w = &mut scratch.writer;
        match self.reuse_gram {
            None => {
                self.encode_into(low, w);
                scratch.lo_bits = w.finish_into(&mut scratch.lo);
                self.encode_into(high, w);
                scratch.hi_bits = w.finish_into(&mut scratch.hi);
            }
            Some(gram) => {
                // One traversal serves both keys: record the deepest
                // checkpoint usable by `high` while encoding `low`.
                let shared = lcp_len(low, high);
                let fixed = self.fast.as_ref().and_then(|f| f.fixed_gram());
                let resume = if let (Some(fast), Some(fg)) = (&self.fast, fixed) {
                    // Fixed-gram consumption is deterministic (every
                    // lookup consumes exactly `gram` bytes until the
                    // tail), so the deepest safely-aligned checkpoint —
                    // the largest multiple of `gram` at most
                    // `shared - gram` — is known a priori and both keys
                    // take the fused table. Only the array tables have
                    // this property; the automaton's symbols are
                    // variable-length and use the checkpoint walk below.
                    debug_assert_eq!(fg, gram);
                    let bytes = if shared >= 2 * gram { (shared - gram) / gram * gram } else { 0 };
                    fast.encode_into(&low[..bytes], &self.dict, w);
                    let bits = w.bit_len();
                    fast.encode_into(&low[bytes..], &self.dict, w);
                    (bytes, bits)
                } else {
                    let mut resume = (0usize, 0usize); // (source bytes, bits)
                    let mut rest = low;
                    let mut consumed = 0usize;
                    while !rest.is_empty() {
                        let (code, n) = self.lookup_symbol(rest);
                        w.put(code);
                        consumed += n;
                        rest = &rest[n..];
                        if consumed + gram <= shared {
                            resume = (consumed, w.bit_len());
                        }
                    }
                    resume
                };
                scratch.lo_bits = w.finish_into(&mut scratch.lo);
                copy_bit_prefix(&scratch.lo, resume.1, w);
                self.encode_into(&high[resume.0..], w);
                scratch.hi_bits = w.finish_into(&mut scratch.hi);
            }
        }
        (&scratch.lo, &scratch.hi)
    }

    /// Encode one sorted block: the first key records lookup checkpoints
    /// (source byte offset, encoded bit offset); subsequent keys bit-copy
    /// the longest safely-aligned shared prefix and resume encoding there.
    /// `w`, `checkpoints` and the `bufs` staging buffers are caller-owned
    /// so a batch amortizes their allocations across every block; the only
    /// per-key allocation is each output key's exact-size byte buffer.
    fn encode_block(
        &self,
        block: &[&[u8]],
        gram: usize,
        w: &mut BitWriter,
        checkpoints: &mut Vec<(usize, usize)>,
        bufs: &mut (Vec<u8>, Vec<u8>),
        out: &mut Vec<EncodedKey>,
    ) {
        debug_assert!(!block.is_empty());
        let (first_buf, buf) = bufs;
        let first = block[0];
        // (source bytes consumed, bits emitted) after each lookup.
        checkpoints.clear();
        let mut rest = first;
        let mut consumed_total = 0usize;
        while !rest.is_empty() {
            let (code, consumed) = self.lookup_symbol(rest);
            w.put(code);
            consumed_total += consumed;
            rest = &rest[consumed..];
            checkpoints.push((consumed_total, w.bit_len()));
        }
        let first_bits = w.finish_into(first_buf);
        out.push(EncodedKey::from_parts(first_buf.clone(), first_bits));

        for key in &block[1..] {
            let shared = lcp_len(first, key);
            // A checkpoint at byte p is valid if every lookup before it saw
            // identical bytes: boundaries are at most `gram` bytes, so
            // p + gram <= shared suffices (see DESIGN.md).
            let ck = checkpoints.iter().take_while(|&&(p, _)| p + gram <= shared).last().copied();
            match ck {
                Some((bytes, bits)) => {
                    copy_bit_prefix(first_buf, bits, w);
                    self.encode_into(&key[bytes..], w);
                }
                None => self.encode_into(key, w),
            }
            let bits = w.finish_into(buf);
            out.push(EncodedKey::from_parts(buf.clone(), bits));
        }
    }
}

/// Append the first `bits` bits of the padded byte string `src` to `w`.
fn copy_bit_prefix(src: &[u8], bits: usize, w: &mut BitWriter) {
    debug_assert!(bits <= src.len() * 8);
    let whole = bits / 8;
    let mut i = 0;
    while i + 8 <= whole {
        let v = u64::from_be_bytes(src[i..i + 8].try_into().expect("8 bytes"));
        w.put_bits(v, 64);
        i += 8;
    }
    while i < whole {
        w.put_bits(src[i] as u64, 8);
        i += 1;
    }
    let rem = bits % 8;
    if rem > 0 {
        w.put_bits((src[whole] >> (8 - rem)) as u64, rem as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::selector::{self, Scheme};

    fn build_encoder(scheme: Scheme, sample: &[Vec<u8>]) -> Encoder {
        let set = selector::select_intervals(scheme, sample, 512).unwrap();
        let weights = selector::access_weights(&set, sample);
        let codes = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker.assign(&weights)
        } else {
            CodeAssigner::FixedLength.assign(&weights)
        };
        let dict = Dict::build(scheme, &set, &codes);
        let gram = match scheme {
            Scheme::SingleChar => Some(1),
            Scheme::DoubleChar => Some(2),
            Scheme::ThreeGrams => Some(3),
            Scheme::FourGrams => Some(4),
            _ => None,
        };
        Encoder::with_intervals(dict, gram, &set, &codes)
    }

    fn sample() -> Vec<Vec<u8>> {
        [
            "com.gmail@alice",
            "com.gmail@bob",
            "com.gmail@carol",
            "com.yahoo@dave",
            "org.acm@erin",
            "net.github@frank",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn empty_key_encodes_empty() {
        let enc = build_encoder(Scheme::SingleChar, &sample());
        let e = enc.encode(b"");
        assert_eq!(e.bit_len(), 0);
        assert_eq!(e.byte_len(), 0);
    }

    #[test]
    fn order_preserved_within_sample() {
        for scheme in Scheme::ALL {
            let s = sample();
            let enc = build_encoder(scheme, &s);
            let mut keys = s.clone();
            keys.push(b"com.gmail@".to_vec());
            keys.push(b"zzz".to_vec());
            keys.push(b"@".to_vec());
            keys.sort();
            let encoded: Vec<EncodedKey> = keys.iter().map(|k| enc.encode(k)).collect();
            for w in encoded.windows(2) {
                assert!(w[0] < w[1], "{scheme}: order violated");
            }
        }
    }

    #[test]
    fn every_scheme_gets_a_fast_path() {
        let s = sample();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            let fast = enc.fast().expect("fast path");
            let expect_fixed = matches!(scheme, Scheme::SingleChar | Scheme::DoubleChar);
            assert_eq!(fast.fixed_gram().is_some(), expect_fixed, "{scheme}");
            assert_eq!(fast.automaton_stats().is_some(), !expect_fixed, "{scheme}");
        }
        // A plain `new` (no interval division available) keeps the generic
        // walk for trie dictionaries — the automaton needs the boundaries.
        let set = selector::select_intervals(Scheme::ThreeGrams, &s, 512).unwrap();
        let weights = selector::access_weights(&set, &s);
        let codes = CodeAssigner::HuTucker.assign(&weights);
        let enc = Encoder::new(Dict::build(Scheme::ThreeGrams, &set, &codes), Some(3));
        assert!(enc.fast().is_none());
    }

    #[test]
    fn fast_path_matches_generic_path() {
        let s = sample();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            for key in
                [b"".as_slice(), b"a", b"com.gmail@zzz", b"odd len", b"\x00\xff", b"unseen bytes"]
            {
                assert_eq!(enc.encode(key), enc.encode_generic(key), "{scheme}: key {key:?}");
            }
        }
    }

    #[test]
    fn encode_to_reuses_scratch_and_matches_encode() {
        let s = sample();
        let mut scratch = EncodeScratch::new();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            for key in [b"com.gmail@alice".as_slice(), b"", b"x", b"com.yahoo@dave!"] {
                let reference = enc.encode(key);
                let bytes = enc.encode_to(key, &mut scratch);
                assert_eq!(bytes, reference.as_bytes(), "{scheme}: key {key:?}");
                assert_eq!(scratch.bit_len(), reference.bit_len(), "{scheme}: key {key:?}");
            }
        }
    }

    #[test]
    fn compresses_skewed_text() {
        let s = sample();
        let enc = build_encoder(Scheme::DoubleChar, &s);
        let key = b"com.gmail@newuser";
        let e = enc.encode(key);
        assert!(
            e.byte_len() < key.len(),
            "expected compression: {} vs {}",
            e.byte_len(),
            key.len()
        );
    }

    #[test]
    fn batch_matches_individual_encoding() {
        let s = sample();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            let mut keys: Vec<&[u8]> = vec![
                b"com.gmail@aaa",
                b"com.gmail@aab",
                b"com.gmail@zzz",
                b"com.yahoo@x",
                b"org.acm@y",
                b"zebra",
            ];
            keys.sort();
            for bs in [1usize, 2, 3, 32] {
                let batch = enc.encode_batch(&keys, bs);
                for (k, e) in keys.iter().zip(&batch) {
                    assert_eq!(e, &enc.encode(k), "{scheme} block={bs} key={k:?}");
                }
            }
        }
    }

    #[test]
    fn pair_encoding_matches_individual() {
        let s = sample();
        for scheme in Scheme::ALL {
            let enc = build_encoder(scheme, &s);
            for (low, high) in [
                (b"com.gmail@foo".as_slice(), b"com.gmail@fop".as_slice()),
                (b"com.gmail@foo", b"com.gmail@foo"),
                (b"", b"com.gmail@foo"),
                (b"aaa", b"zzz"),
                (b"com.gmail@", b"com.gmail@zzzzzz"),
            ] {
                let (lo, hi) = enc.encode_pair(low, high);
                assert_eq!(lo, enc.encode(low), "{scheme}: low {low:?}");
                assert_eq!(hi, enc.encode(high), "{scheme}: high {high:?}");
            }
        }
    }

    #[test]
    fn pair_scratch_matches_pair() {
        let s = sample();
        let mut scratch = EncodeScratch::new();
        let enc = build_encoder(Scheme::DoubleChar, &s);
        let (lo, hi) = enc.encode_pair(b"com.gmail@foo", b"com.gmail@fop");
        let (lo2, hi2) = enc.encode_pair_to(b"com.gmail@foo", b"com.gmail@fop", &mut scratch);
        assert_eq!((lo2, hi2), (lo.as_bytes(), hi.as_bytes()));
        assert_eq!(scratch.pair_bit_lens(), (lo.bit_len(), hi.bit_len()));
        assert!(lo < hi);
    }

    #[test]
    fn copy_bit_prefix_roundtrip() {
        let mut w = BitWriter::new();
        for i in 0..20u64 {
            w.put_bits(i % 256, 11);
        }
        let full = w.finish();
        for cut in [0usize, 1, 7, 8, 9, 63, 64, 65, 100, full.bit_len()] {
            let mut w2 = BitWriter::new();
            copy_bit_prefix(full.as_bytes(), cut, &mut w2);
            let partial = w2.finish();
            assert_eq!(partial.bit_len(), cut);
            for b in 0..cut {
                assert_eq!(partial.bit(b), full.bit(b), "bit {b} cut {cut}");
            }
        }
    }
}
