//! Optimal order-preserving (alphabetic) prefix codes — the paper's
//! "Hu-Tucker" Code Assigner (§4.2).
//!
//! The paper computes Hu-Tucker codes with an improved O(N²) algorithm. We
//! use the Garsia–Wachs algorithm (Knuth, TAOCP 6.2.2), which produces an
//! optimal alphabetic binary tree with the same optimal expected depth as
//! Hu-Tucker, in O(N²) worst case and near-linear time on the weight
//! distributions HOPE produces. From the per-leaf depths we derive the
//! canonical alphabetic code: monotonically increasing, prefix-free codes —
//! exactly the properties §3.1 requires for order preservation.

use crate::bitpack::Code;

/// Maximum code length we can store in a [`Code`].
pub const MAX_CODE_LEN: u32 = 64;

/// Compute optimal alphabetic code lengths (leaf depths of an optimal
/// alphabetic binary tree) for the given interval access weights.
///
/// Zero weights are permitted; callers typically apply +1 smoothing first to
/// bound depths. For `n == 1` the single depth is 1 (a 0-bit code would not
/// be uniquely decodable).
pub fn optimal_code_lengths(weights: &[u64]) -> Vec<u32> {
    let n = weights.len();
    assert!(n > 0, "cannot build a code over zero intervals");
    if n == 1 {
        return vec![1];
    }
    garsia_wachs_depths(weights)
}

/// Assign Hu-Tucker (optimal alphabetic) codes to the given weights.
///
/// If the optimal code would exceed [`MAX_CODE_LEN`] bits (possible only for
/// pathologically skewed weights), falls back to the balanced alphabetic
/// code of `ceil(log2 n)` bits, which is always representable.
pub fn hu_tucker_codes(weights: &[u64]) -> Vec<Code> {
    let depths = optimal_code_lengths(weights);
    if depths.iter().any(|&d| d > MAX_CODE_LEN) {
        return fixed_len_codes(weights.len());
    }
    canonical_alphabetic_codes(&depths)
}

/// Monotonically increasing fixed-length codes of `ceil(log2 n)` bits — the
/// paper's fixed-length Code Assigner (used by the ALM/VIFC scheme).
pub fn fixed_len_codes(n: usize) -> Vec<Code> {
    assert!(n > 0);
    let len = if n == 1 { 1 } else { (usize::BITS - (n - 1).leading_zeros()).max(1) };
    assert!(len <= MAX_CODE_LEN);
    (0..n as u64).map(|i| Code::new(i, len as u8)).collect()
}

/// Expected code length `sum(w_i * l_i) / sum(w_i)` — the quantity both the
/// DP reference and Garsia–Wachs minimize.
pub fn weighted_depth(weights: &[u64], depths: &[u32]) -> f64 {
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return 0.0;
    }
    let cost: u128 = weights.iter().zip(depths).map(|(&w, &d)| w as u128 * d as u128).sum();
    cost as f64 / total as f64
}

/// Build the canonical alphabetic code from a valid alphabetic depth
/// sequence (left-to-right leaf depths of some binary tree).
///
/// # Panics
/// Panics if the depth sequence does not correspond to a binary tree (which
/// would indicate a bug in the depth computation).
pub fn canonical_alphabetic_codes(depths: &[u32]) -> Vec<Code> {
    let n = depths.len();
    let mut codes = Vec::with_capacity(n);
    if n == 0 {
        return codes;
    }
    // First leaf: all-zero path of its depth.
    codes.push(Code::new(0, depths[0] as u8));
    let mut prev: u128 = 0;
    for i in 1..n {
        let (lp, lc) = (depths[i - 1], depths[i]);
        let mut c = prev + 1;
        if lc >= lp {
            c <<= lc - lp;
        } else {
            let shift = lp - lc;
            debug_assert!(
                c.trailing_zeros() >= shift || c == 0,
                "invalid alphabetic depth sequence at leaf {i}"
            );
            c >>= shift;
        }
        assert!(
            c < (1u128 << lc),
            "depth sequence overflows at leaf {i}: not a valid alphabetic tree"
        );
        codes.push(Code::new(c as u64, lc as u8));
        prev = c;
    }
    codes
}

// ---------------------------------------------------------------------------
// Garsia–Wachs phase 1 + 2
// ---------------------------------------------------------------------------

/// Arena node for the Garsia–Wachs merge tree.
struct GwNode {
    weight: u64,
    /// Children in the merge tree; `usize::MAX` for leaves.
    left: usize,
    right: usize,
}

const NIL: usize = usize::MAX;

fn garsia_wachs_depths(weights: &[u64]) -> Vec<u32> {
    let n = weights.len();
    debug_assert!(n >= 2);

    // Arena of merge-tree nodes; the first n are the leaves in order.
    let mut arena: Vec<GwNode> =
        weights.iter().map(|&w| GwNode { weight: w, left: NIL, right: NIL }).collect();
    arena.reserve(n - 1);

    // Doubly-linked working sequence over arena ids, with sentinel slots.
    // prev/next are indexed by "list slot" = arena id, plus two sentinels.
    let head = n * 2; // virtual slot ids for sentinels
    let tail = n * 2 + 1;
    let cap = n * 2 + 2;
    let mut next = vec![NIL; cap];
    let mut prev = vec![NIL; cap];
    next[head] = 0;
    prev[tail] = n - 1;
    for i in 0..n {
        prev[i] = if i == 0 { head } else { i - 1 };
        next[i] = if i == n - 1 { tail } else { i + 1 };
    }

    let w = |arena: &Vec<GwNode>, slot: usize| -> u64 {
        if slot == head || slot == tail {
            u64::MAX
        } else {
            arena[slot].weight
        }
    };

    // `scan` points at the left element `a` of the candidate triple
    // (a, b, c); everything strictly left of `scan` is known to contain no
    // mergeable triple.
    let mut scan = next[head];
    let mut remaining = n;
    while remaining > 1 {
        // Phase 1a: find the first triple (a, b, c) with w(a) <= w(c).
        let mut a = scan;
        loop {
            let b = next[a];
            debug_assert!(b != tail, "right sentinel guarantees a merge");
            let c = next[b];
            if w(&arena, a) <= w(&arena, c) {
                // Merge (a, b) into z.
                let zw = arena[a].weight.saturating_add(arena[b].weight);
                let z = arena.len();
                arena.push(GwNode { weight: zw, left: a, right: b });
                if next.len() <= z {
                    next.resize(z + 1, NIL);
                    prev.resize(z + 1, NIL);
                }
                // Unlink a and b.
                let before = prev[a];
                let after = next[b];
                next[before] = after;
                prev[after] = before;
                // Phase 1b: move z leftwards — insert after the nearest
                // element to the left with weight >= w(z).
                let mut e = before;
                while w(&arena, e) < zw {
                    e = prev[e];
                }
                let f = next[e];
                next[e] = z;
                prev[z] = e;
                next[z] = f;
                prev[f] = z;
                remaining -= 1;
                // Resume two positions left of z: only neighborhoods at or
                // right of there changed (see DESIGN.md).
                let mut s = prev[z];
                if s != head {
                    s = prev[s];
                }
                scan = if s == head { next[head] } else { s };
                break;
            }
            a = b;
        }
    }

    // Phase 2: leaf depths of the merge tree.
    let root = next[head];
    let mut depths = vec![0u32; n];
    let mut stack: Vec<(usize, u32)> = vec![(root, 0)];
    while let Some((id, d)) = stack.pop() {
        let node = &arena[id];
        if node.left == NIL {
            depths[id] = d;
        } else {
            stack.push((node.left, d + 1));
            stack.push((node.right, d + 1));
        }
    }
    depths
}

// ---------------------------------------------------------------------------
// Reference DP (used by tests): optimal alphabetic tree cost in O(n^3).
// ---------------------------------------------------------------------------

/// Minimum total weighted depth `sum(w_i * depth_i)` of any alphabetic
/// binary tree over `weights`. Exponential-free reference for testing;
/// O(n^3), intended for small n only.
pub fn optimal_alphabetic_cost_reference(weights: &[u64]) -> u128 {
    let n = weights.len();
    assert!(n > 0);
    if n == 1 {
        return weights[0] as u128; // depth 1 by our single-leaf convention
    }
    // prefix sums for range weight
    let mut pre = vec![0u128; n + 1];
    for i in 0..n {
        pre[i + 1] = pre[i] + weights[i] as u128;
    }
    let range_w = |i: usize, j: usize| pre[j + 1] - pre[i];
    // cost[i][j] = min internal cost of alphabetic tree over leaves i..=j,
    // where each merge adds the merged range weight once. Total weighted
    // depth = cost[0][n-1].
    let mut cost = vec![vec![0u128; n]; n];
    for len in 2..=n {
        for i in 0..=(n - len) {
            let j = i + len - 1;
            let mut best = u128::MAX;
            for k in i..j {
                let c = cost[i][k] + cost[k + 1][j];
                if c < best {
                    best = c;
                }
            }
            cost[i][j] = best + range_w(i, j);
        }
    }
    cost[0][n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cost_of_depths(weights: &[u64], depths: &[u32]) -> u128 {
        weights.iter().zip(depths).map(|(&w, &d)| w as u128 * d as u128).sum()
    }

    fn assert_valid_alphabetic_code(codes: &[Code]) {
        // monotone increasing as bitstrings, and prefix-free
        for pair in codes.windows(2) {
            assert_eq!(
                pair[0].cmp_bitstring(&pair[1]),
                std::cmp::Ordering::Less,
                "codes not monotone: {} vs {}",
                pair[0].to_bit_string(),
                pair[1].to_bit_string()
            );
        }
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.is_prefix_of(b),
                        "code {} is a prefix of {}",
                        a.to_bit_string(),
                        b.to_bit_string()
                    );
                }
            }
        }
        // Kraft equality: a full binary tree satisfies sum 2^-l == 1.
        let kraft: f64 = codes.iter().map(|c| 2f64.powi(-(c.len as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-9, "Kraft sum {kraft} != 1");
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let codes = hu_tucker_codes(&[42]);
        assert_eq!(codes, vec![Code::new(0, 1)]);
    }

    #[test]
    fn two_symbols() {
        let codes = hu_tucker_codes(&[3, 5]);
        assert_eq!(codes, vec![Code::new(0, 1), Code::new(1, 1)]);
    }

    #[test]
    fn classic_example_is_optimal() {
        // Example from Knuth: weights whose optimal alphabetic tree differs
        // from the Huffman tree.
        let w = [25u64, 20, 13, 7, 9];
        let depths = optimal_code_lengths(&w);
        let got = cost_of_depths(&w, &depths);
        let want = optimal_alphabetic_cost_reference(&w);
        assert_eq!(got, want, "GW depths {depths:?} not optimal");
        assert_valid_alphabetic_code(&canonical_alphabetic_codes(&depths));
    }

    #[test]
    fn equal_weights_yield_balanced_code() {
        let w = vec![10u64; 8];
        let depths = optimal_code_lengths(&w);
        assert!(depths.iter().all(|&d| d == 3), "{depths:?}");
    }

    #[test]
    fn skewed_weights_give_short_code_to_heavy_symbol() {
        let w = [1000u64, 1, 1, 1];
        let depths = optimal_code_lengths(&w);
        assert_eq!(depths[0], 1, "{depths:?}");
    }

    #[test]
    fn zero_weights_tolerated() {
        let w = [0u64, 0, 5, 0];
        let depths = optimal_code_lengths(&w);
        assert_eq!(depths.len(), 4);
        assert_valid_alphabetic_code(&canonical_alphabetic_codes(&depths));
    }

    #[test]
    fn fixed_len_codes_are_monotone_and_sized() {
        let codes = fixed_len_codes(5);
        assert!(codes.iter().all(|c| c.len == 3));
        for pair in codes.windows(2) {
            assert!(pair[0].cmp_bitstring(&pair[1]) == std::cmp::Ordering::Less);
        }
        assert_eq!(fixed_len_codes(1)[0].len, 1);
        assert_eq!(fixed_len_codes(2)[0].len, 1);
        assert_eq!(fixed_len_codes(256)[0].len, 8);
        assert_eq!(fixed_len_codes(257)[0].len, 9);
    }

    #[test]
    fn moderately_large_input_runs_fast_and_valid() {
        // 4096 pseudo-random weights; verifies structural validity.
        let mut x = 0x9E3779B97F4A7C15u64;
        let w: Vec<u64> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1000) + 1
            })
            .collect();
        let codes = hu_tucker_codes(&w);
        assert_valid_alphabetic_code(&codes);
    }

    #[test]
    fn weighted_depth_helper() {
        let w = [1u64, 1];
        let d = [1u32, 1];
        assert!((weighted_depth(&w, &d) - 1.0).abs() < 1e-12);
        assert_eq!(weighted_depth(&[], &[]), 0.0);
    }

    proptest! {
        #[test]
        fn gw_matches_dp_reference(w in proptest::collection::vec(0u64..10_000, 2..12)) {
            let depths = optimal_code_lengths(&w);
            let got = cost_of_depths(&w, &depths);
            let want = optimal_alphabetic_cost_reference(&w);
            prop_assert_eq!(got, want, "weights {:?} depths {:?}", w, depths);
        }

        #[test]
        fn codes_always_structurally_valid(w in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let codes = hu_tucker_codes(&w);
            prop_assert_eq!(codes.len(), w.len());
            if w.len() > 1 {
                assert_valid_alphabetic_code(&codes);
            }
        }

        #[test]
        fn extreme_skew_stays_within_64_bits(exp in 1u32..60) {
            // Geometric weights stress maximal depth.
            let w: Vec<u64> = (0..exp).map(|i| 1u64 << i).collect();
            let codes = hu_tucker_codes(&w);
            prop_assert!(codes.iter().all(|c| c.len as u32 <= MAX_CODE_LEN));
        }
    }
}
