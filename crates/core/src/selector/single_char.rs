//! Single-Char selector (§3.3, Figure 4a): fixed-length intervals with
//! consecutive single characters as boundaries — `[a, b)`, `[b, c)`, …
//!
//! The dictionary always has exactly 256 entries; the interval layout is
//! independent of the sample (only the access weights depend on it).

use crate::axis::IntervalSet;

/// The 256 single-byte intervals `[b, b+1)` covering the whole axis.
pub fn single_char_intervals() -> IntervalSet {
    // An empty pattern set degenerates to exactly the byte-identity
    // division: one interval per leading byte.
    IntervalSet::from_patterns(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_256_byte_intervals() {
        let set = single_char_intervals();
        assert_eq!(set.len(), 256);
        set.validate().unwrap();
        assert_eq!(set.boundary(0x61), b"a");
        assert_eq!(set.symbol(0x61), b"a");
        assert_eq!(set.symbol_len(0x61), 1);
    }

    #[test]
    fn floor_is_leading_byte() {
        let set = single_char_intervals();
        assert_eq!(set.floor_index(b"hello"), b'h' as usize);
        assert_eq!(set.floor_index(b"\x00"), 0);
        assert_eq!(set.floor_index(b"\xff\xff"), 255);
    }
}
