//! Symbol Selectors (§4.2): turn a sampled key list into a complete,
//! order-preserving division of the string axis plus per-interval access
//! weights for the Code Assigner.
//!
//! Each selector implements the interval-division heuristic of one paper
//! scheme. The access probabilities are obtained the way the paper
//! describes: a *test encoding* of the sample keys against the chosen
//! intervals, counting how often each interval is hit.
//!
//! ```
//! use hope::selector::{access_weights, select_intervals, Scheme};
//!
//! let sample = vec![b"singing".to_vec(), b"ringing".to_vec()];
//! let set = select_intervals(Scheme::ThreeGrams, &sample, 64).unwrap();
//! let weights = access_weights(&set, &sample);
//! assert_eq!(weights.len(), set.len());   // one weight per interval
//! assert!(set.validate().is_ok());        // complete division (§3.2)
//! ```

pub mod alm;
pub mod double_char;
pub mod ngram;
pub mod single_char;

pub use alm::{AlmSelector, BLEND_DOC};
pub use double_char::double_char_intervals;
pub use ngram::NGramSelector;
pub use single_char::single_char_intervals;

use crate::axis::IntervalSet;
use crate::builder::HopeError;

/// The six compression schemes of the paper (§3.3, Table 1).
///
/// `#[non_exhaustive]`: future PRs may add schemes without a breaking
/// change, so downstream matches need a wildcard arm (iterate
/// [`Scheme::ALL`] for "every scheme" loops).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scheme {
    /// FIVC: 256 single-character intervals, Hu-Tucker codes (the classic
    /// order-preserving Huffman analogue).
    SingleChar,
    /// FIVC: 65 792 double-character intervals (with terminator slots),
    /// Hu-Tucker codes. Exploits first-order entropy.
    DoubleChar,
    /// VIFC: ALM variable-length intervals with fixed-length codes
    /// (Antoshenkov '97).
    Alm,
    /// VIVC: top frequent 3-byte patterns + gap intervals, Hu-Tucker codes.
    ThreeGrams,
    /// VIVC: top frequent 4-byte patterns + gap intervals, Hu-Tucker codes.
    FourGrams,
    /// VIVC: ALM intervals from suffix statistics, Hu-Tucker codes.
    AlmImproved,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub const ALL: [Scheme; 6] = [
        Scheme::SingleChar,
        Scheme::DoubleChar,
        Scheme::Alm,
        Scheme::ThreeGrams,
        Scheme::FourGrams,
        Scheme::AlmImproved,
    ];

    /// Human-readable scheme name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::SingleChar => "Single-Char",
            Scheme::DoubleChar => "Double-Char",
            Scheme::Alm => "ALM",
            Scheme::ThreeGrams => "3-Grams",
            Scheme::FourGrams => "4-Grams",
            Scheme::AlmImproved => "ALM-Improved",
        }
    }

    /// Dictionary-model category (Figure 3).
    pub fn category(&self) -> &'static str {
        match self {
            Scheme::SingleChar | Scheme::DoubleChar => "FIVC",
            Scheme::Alm => "VIFC",
            Scheme::ThreeGrams | Scheme::FourGrams | Scheme::AlmImproved => "VIVC",
        }
    }

    /// Whether the number of dictionary entries is fixed by the scheme.
    pub fn fixed_dict_size(&self) -> Option<usize> {
        match self {
            Scheme::SingleChar => Some(256),
            Scheme::DoubleChar => Some(256 * 257),
            _ => None,
        }
    }

    /// Whether the scheme uses optimal order-preserving (Hu-Tucker) codes;
    /// `false` means monotone fixed-length codes (Table 1).
    pub fn uses_hu_tucker(&self) -> bool {
        !matches!(self, Scheme::Alm)
    }

    /// Dictionary data structure used for this scheme (Table 1).
    pub fn dictionary_kind(&self) -> &'static str {
        match self {
            Scheme::SingleChar | Scheme::DoubleChar => "Array",
            Scheme::ThreeGrams | Scheme::FourGrams => "Bitmap-Trie",
            Scheme::Alm | Scheme::AlmImproved => "ART-based",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run the scheme's interval-division heuristic over the sample.
///
/// `target_entries` bounds the dictionary size for the variable-size schemes
/// and is ignored by Single-Char/Double-Char.
///
/// The returned division is validated against the complete-division
/// invariant (§3.2); a selector bug surfaces as
/// [`HopeError::InvalidIntervals`] instead of corrupting downstream stages.
pub fn select_intervals(
    scheme: Scheme,
    sample: &[Vec<u8>],
    target_entries: usize,
) -> Result<IntervalSet, HopeError> {
    let set = match scheme {
        Scheme::SingleChar => single_char_intervals(),
        Scheme::DoubleChar => double_char_intervals(),
        Scheme::ThreeGrams => NGramSelector::new(3).select(sample, target_entries),
        Scheme::FourGrams => NGramSelector::new(4).select(sample, target_entries),
        Scheme::Alm => AlmSelector::original().select(sample, target_entries),
        Scheme::AlmImproved => AlmSelector::improved().select(sample, target_entries),
    };
    set.validate()
        .map_err(|detail| HopeError::InvalidIntervals { scheme: scheme.name(), detail })?;
    Ok(set)
}

/// Weight put on one observed interval hit, relative to the +1 smoothing
/// floor every interval receives. Smoothing keeps zero-probability
/// intervals encodable with bounded code length; the scale keeps real
/// observations dominant even for small samples over large dictionaries.
pub const HIT_WEIGHT: u64 = 64;

/// Test-encode the sample against `set` and return per-interval access
/// counts (scaled by [`HIT_WEIGHT`], with +1 smoothing).
pub fn access_weights(set: &IntervalSet, sample: &[Vec<u8>]) -> Vec<u64> {
    let mut w = vec![1u64; set.len()];
    for key in sample {
        let mut rest: &[u8] = key;
        while !rest.is_empty() {
            let i = set.floor_index(rest);
            w[i] += HIT_WEIGHT;
            let consumed = set.symbol_len(i);
            debug_assert!(consumed >= 1 && consumed <= rest.len());
            rest = &rest[consumed..];
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_metadata_matches_table1() {
        assert_eq!(Scheme::SingleChar.fixed_dict_size(), Some(256));
        assert_eq!(Scheme::DoubleChar.fixed_dict_size(), Some(65792));
        assert_eq!(Scheme::ThreeGrams.fixed_dict_size(), None);
        assert!(Scheme::AlmImproved.uses_hu_tucker());
        assert!(!Scheme::Alm.uses_hu_tucker());
        assert_eq!(Scheme::Alm.category(), "VIFC");
        assert_eq!(Scheme::FourGrams.dictionary_kind(), "Bitmap-Trie");
        assert_eq!(Scheme::SingleChar.to_string(), "Single-Char");
    }

    #[test]
    fn access_weights_count_encode_steps() {
        let set = single_char_intervals();
        let sample = vec![b"ab".to_vec(), b"aa".to_vec()];
        let w = access_weights(&set, &sample);
        assert_eq!(w[b'a' as usize], 1 + 3 * HIT_WEIGHT); // 'a' hit three times
        assert_eq!(w[b'b' as usize], 1 + HIT_WEIGHT);
        assert_eq!(w[b'c' as usize], 1);
    }

    #[test]
    fn every_scheme_selects_valid_intervals() -> Result<(), HopeError> {
        let sample: Vec<Vec<u8>> = [
            "com.gmail@alice",
            "com.gmail@bob",
            "com.yahoo@carol",
            "org.wikipedia@dave",
            "net.github@erin",
            "com.gmail@frank",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
        for scheme in Scheme::ALL {
            // A division violating §3.2 comes back as a HopeError here.
            let set = select_intervals(scheme, &sample, 64)?;
            let w = access_weights(&set, &sample);
            assert_eq!(w.len(), set.len());
        }
        Ok(())
    }

    #[test]
    fn invalid_intervals_error_names_the_scheme() {
        let err = HopeError::InvalidIntervals {
            scheme: Scheme::ThreeGrams.name(),
            detail: "boundary 3 out of order".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("3-Grams") && msg.contains("out of order"), "{msg}");
    }
}
