//! 3-Grams / 4-Grams selectors (§3.3, Figures 4d/4e): variable-length
//! intervals whose boundaries are the top `n/2` most frequent N-byte
//! patterns; the gaps between pattern intervals become dictionary entries of
//! their own (with the gap's max common prefix as symbol).

use std::collections::HashMap;

use crate::axis::IntervalSet;

/// Selector for fixed-N-byte frequent patterns (N = 3 or 4 in the paper;
/// any N >= 1 is supported).
#[derive(Clone, Copy, Debug)]
pub struct NGramSelector {
    n: usize,
}

impl NGramSelector {
    /// Create a selector over N-byte patterns.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "n-gram length must be positive");
        NGramSelector { n }
    }

    /// Count all overlapping N-byte substrings of the sample keys.
    pub fn count_patterns(&self, sample: &[Vec<u8>]) -> HashMap<Vec<u8>, u64> {
        let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
        for key in sample {
            if key.len() < self.n {
                continue;
            }
            for w in key.windows(self.n) {
                *counts.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Divide the string axis: pick the top `target_entries / 2` patterns by
    /// frequency, fill the gaps (§3.3: "for each interval gap between the
    /// selected patterns, create a dictionary entry to cover the gap").
    pub fn select(&self, sample: &[Vec<u8>], target_entries: usize) -> IntervalSet {
        let counts = self.count_patterns(sample);
        let take = (target_entries / 2).max(1);
        let mut by_freq: Vec<(Vec<u8>, u64)> = counts.into_iter().collect();
        // Deterministic order: frequency descending, then lexicographic.
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(take);
        let mut patterns: Vec<Vec<u8>> = by_freq.into_iter().map(|(p, _)| p).collect();
        patterns.sort_unstable();
        IntervalSet::from_patterns(&patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<u8>> {
        [
            "singing", "sing", "ringing", "sting", "ingest", "kingdom", "winging", "pinging",
            "longing",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn counts_overlapping_windows() {
        let sel = NGramSelector::new(3);
        let counts = sel.count_patterns(&[b"aaaa".to_vec()]);
        assert_eq!(counts[b"aaa".as_slice()], 2);
    }

    #[test]
    fn short_keys_are_skipped_in_counting() {
        let sel = NGramSelector::new(4);
        let counts = sel.count_patterns(&[b"ab".to_vec(), b"abcd".to_vec()]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[b"abcd".as_slice()], 1);
    }

    #[test]
    fn frequent_pattern_becomes_interval() {
        let sel = NGramSelector::new(3);
        let set = sel.select(&sample(), 16);
        set.validate().unwrap();
        // "ing" is by far the most frequent 3-gram.
        let i = set.floor_index(b"inging");
        assert_eq!(set.symbol(i), b"ing");
        assert_eq!(set.symbol_len(i), 3);
    }

    #[test]
    fn dictionary_size_tracks_target() {
        let sel = NGramSelector::new(3);
        let small = sel.select(&sample(), 8);
        let large = sel.select(&sample(), 64);
        assert!(small.len() < large.len());
        // At most take + gaps; gaps bounded by ~2x selected + 256.
        assert!(small.len() <= 8 / 2 * 2 + 257);
    }

    #[test]
    fn four_grams_capture_higher_order_patterns() {
        let sel = NGramSelector::new(4);
        let set = sel.select(&sample(), 32);
        set.validate().unwrap();
        let i = set.floor_index(b"ginger");
        assert!(set.symbol_len(i) >= 1);
        // "ging" should be selected (appears in singing/ringing/…).
        let i = set.floor_index(b"gingx");
        assert_eq!(set.symbol(i), b"ging");
    }

    #[test]
    fn empty_sample_degenerates_to_byte_identity() {
        let sel = NGramSelector::new(3);
        let set = sel.select(&[], 64);
        set.validate().unwrap();
        assert_eq!(set.len(), 256);
    }
}
