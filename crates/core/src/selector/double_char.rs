//! Double-Char selector (§3.3, Figure 4b): fixed-length intervals with
//! consecutive double characters as boundaries, plus a terminator slot per
//! leading byte so the dictionary is complete for odd-length tails.
//!
//! Layout (matching the paper's §4.2 array dictionary): for each leading
//! byte `b0` there are 257 consecutive intervals:
//!
//! * slot `b0*257 + 0`   — boundary `[b0]`, symbol `b0` (the "`b0∅`"
//!   terminator interval `[b0·∅, b0·\x00)`), consumed when exactly one byte
//!   of source remains;
//! * slot `b0*257 + b1 + 1` — boundary `[b0, b1]`, symbol `b0 b1`.
//!
//! The paper's example (footnote 4) gives index `24770 = 96*(256+1)+97+1`
//! for symbol "aa", mixing 96 and 97 for ASCII 'a' (= 97); the consistent
//! version of the same formula, `b0*257 + b1 + 1`, is used here.

use crate::axis::IntervalSet;

/// Total number of Double-Char dictionary entries: 256 * 257.
pub const DOUBLE_CHAR_ENTRIES: usize = 256 * 257;

/// The 65 792 Double-Char intervals.
pub fn double_char_intervals() -> IntervalSet {
    let mut boundaries = Vec::with_capacity(DOUBLE_CHAR_ENTRIES);
    let mut symbol_lens = Vec::with_capacity(DOUBLE_CHAR_ENTRIES);
    for b0 in 0..=255u8 {
        boundaries.push(vec![b0].into_boxed_slice());
        symbol_lens.push(1u16);
        for b1 in 0..=255u8 {
            boundaries.push(vec![b0, b1].into_boxed_slice());
            symbol_lens.push(2u16);
        }
    }
    IntervalSet::from_parts(boundaries, symbol_lens)
}

/// Array index of the interval that a source suffix falls into — the O(1)
/// lookup the array dictionary uses.
#[inline]
pub fn double_char_slot(src: &[u8]) -> usize {
    debug_assert!(!src.is_empty());
    let b0 = src[0] as usize;
    if src.len() >= 2 {
        b0 * 257 + src[1] as usize + 1
    } else {
        b0 * 257
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_paper_formula() {
        // Paper footnote 4 writes `24770 = 96*(256+1) + 97 + 1` for "aa",
        // but uses 96 for 'a' (ASCII 97) in the first factor and 97 in the
        // second — an internal off-by-one. With the consistent formula
        // `b0*257 + b1 + 1` and ASCII 'a' = 97, "aa" sits at 25027.
        assert_eq!(double_char_slot(b"aa"), 97 * 257 + 97 + 1);
        let set = double_char_intervals();
        assert_eq!(set.len(), DOUBLE_CHAR_ENTRIES);
        assert_eq!(set.boundary(25027), b"aa");
        assert_eq!(set.symbol(25027), b"aa");
    }

    #[test]
    fn terminator_slot_for_single_trailing_byte() {
        let set = double_char_intervals();
        let slot = double_char_slot(b"a");
        assert_eq!(slot, 97 * 257);
        assert_eq!(set.boundary(slot), b"a");
        assert_eq!(set.symbol_len(slot), 1);
    }

    #[test]
    fn slot_agrees_with_binary_search_floor() {
        let set = double_char_intervals();
        for probe in [
            b"\x00\x00\x00".as_slice(),
            b"a",
            b"ab",
            b"abc",
            b"zz",
            b"\xff",
            b"\xff\xff",
            b"a\x00",
            b"a\xff",
        ] {
            assert_eq!(double_char_slot(probe), set.floor_index(probe), "probe {probe:?}");
        }
    }

    #[test]
    fn intervals_validate() {
        double_char_intervals().validate().unwrap();
    }
}
