//! ALM and ALM-Improved selectors (§3.3, Figures 4c/4f).
//!
//! ALM (Antoshenkov–Lomet–Murray '96/'97) selects substring patterns that
//! are *long and frequent*: a pattern `s` enters the dictionary when
//! `len(s) × freq(s)` exceeds a threshold `W`; `W` is binary-searched to hit
//! a desired dictionary size. Selected patterns must satisfy the prefix
//! property, which is restored by *blending*: the occurrence count of a
//! pattern that is a prefix of another selected candidate is redistributed
//! to its longest extension in the frequency list.
//!
//! ALM-Improved (the paper's contribution) differs in two ways:
//! 1. statistics are collected only for substrings that are **suffixes** of
//!    the sample keys (much cheaper than all-substrings), and
//! 2. codes are Hu-Tucker instead of fixed-length (handled by the Code
//!    Assigner; this module only changes the statistics source).

use std::collections::HashMap;

use crate::axis::IntervalSet;

/// Documentation note: how blending redistributes prefix-pattern counts.
pub const BLEND_DOC: &str =
    "blending moves the count of a prefix pattern onto its longest extension";

/// Which statistics the ALM selector collects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StatsSource {
    /// Original ALM: every substring of every sample key (length-capped for
    /// tractability; the paper notes this pass is super-linear and slow).
    AllSubstrings { max_len: usize },
    /// ALM-Improved: only suffixes of the sample keys (length-capped).
    Suffixes { max_len: usize },
}

/// Variable-length-interval selector implementing ALM and ALM-Improved.
#[derive(Clone, Copy, Debug)]
pub struct AlmSelector {
    source: StatsSource,
}

impl AlmSelector {
    /// The original ALM selector (all substrings, capped at 8 bytes).
    pub fn original() -> Self {
        AlmSelector { source: StatsSource::AllSubstrings { max_len: 8 } }
    }

    /// The ALM-Improved selector (suffix statistics, capped at 16 bytes).
    pub fn improved() -> Self {
        AlmSelector { source: StatsSource::Suffixes { max_len: 16 } }
    }

    /// Collect raw pattern counts from the sample.
    fn count_patterns(&self, sample: &[Vec<u8>]) -> HashMap<Vec<u8>, u64> {
        let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
        match self.source {
            StatsSource::AllSubstrings { max_len } => {
                for key in sample {
                    for start in 0..key.len() {
                        let end = (start + max_len).min(key.len());
                        for stop in (start + 1)..=end {
                            *counts.entry(key[start..stop].to_vec()).or_insert(0) += 1;
                        }
                    }
                }
            }
            StatsSource::Suffixes { max_len } => {
                for key in sample {
                    for start in 0..key.len() {
                        let stop = (start + max_len).min(key.len());
                        *counts.entry(key[start..stop].to_vec()).or_insert(0) += 1;
                    }
                }
            }
        }
        counts
    }

    /// Divide the axis targeting roughly `target_entries` dictionary
    /// entries (pattern intervals plus gap intervals).
    pub fn select(&self, sample: &[Vec<u8>], target_entries: usize) -> IntervalSet {
        let counts = self.count_patterns(sample);
        if counts.is_empty() {
            return IntervalSet::from_patterns(&[]);
        }
        let blended = blend(counts);

        // Binary-search the threshold W over the distinct len*freq products
        // so that the resulting interval count lands at or under the target.
        let mut products: Vec<u64> = blended.iter().map(|(p, c)| p.len() as u64 * c).collect();
        products.sort_unstable();
        products.dedup();

        // Larger W -> fewer patterns -> fewer intervals (monotone).
        let build = |w: u64| -> IntervalSet {
            let mut pats: Vec<Vec<u8>> = blended
                .iter()
                .filter(|(p, c)| p.len() as u64 * *c >= w)
                .map(|(p, _)| p.clone())
                .collect();
            pats.sort_unstable();
            drop_prefix_patterns(&mut pats);
            IntervalSet::from_patterns(&pats)
        };

        // Find the smallest W (largest dictionary) with len <= target.
        let mut lo = 0usize; // index into products (descending W by index!)
        let mut hi = products.len(); // products[lo..] are candidate thresholds
        let mut best = build(*products.last().unwrap());
        while lo < hi {
            let mid = (lo + hi) / 2;
            let set = build(products[mid]);
            if set.len() <= target_entries {
                best = set;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        best
    }
}

/// Blending (§4.2): redistribute the count of every pattern that is a prefix
/// of another pattern onto its **longest** extension present in the list,
/// then remove the prefix pattern. Restores the prefix property the
/// interval-division step requires.
///
/// In lexicographic order, the extensions of `entries[i]` form a contiguous
/// run immediately following it, and runs nest; memoizing each run's end and
/// its longest member makes the whole pass near-linear instead of quadratic
/// (the all-substrings statistics of original ALM produce deep prefix
/// chains).
pub fn blend(counts: HashMap<Vec<u8>, u64>) -> Vec<(Vec<u8>, u64)> {
    let mut entries: Vec<(Vec<u8>, u64)> = counts.into_iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let n = entries.len();
    // run_end[i]: first index > i whose pattern does not extend pattern i.
    // longest[i]: index of the longest pattern within {i} ∪ run(i).
    let mut run_end = vec![0usize; n];
    let mut longest = vec![0usize; n];
    for i in (0..n).rev() {
        let mut j = i + 1;
        let mut best = i;
        while j < n && entries[j].0.starts_with(&entries[i].0) {
            if entries[longest[j]].0.len() > entries[best].0.len() {
                best = longest[j];
            }
            j = run_end[j];
        }
        run_end[i] = j;
        longest[i] = best;
    }
    // Cascade counts onto the longest extension; the longest member of a
    // run is never itself extended within the run, so it survives.
    let mut removed = vec![false; n];
    for i in 0..n {
        let t = longest[i];
        if t != i {
            let c = entries[i].1;
            entries[t].1 += c;
            removed[i] = true;
        }
    }
    entries.into_iter().zip(removed).filter(|(_, r)| !r).map(|(e, _)| e).collect()
}

/// Remove any pattern that is a prefix of a later (sorted) pattern, keeping
/// the longest. In sorted order the element immediately after a prefix is
/// always one of its extensions, so an adjacent check suffices.
fn drop_prefix_patterns(pats: &mut Vec<Vec<u8>>) {
    let n = pats.len();
    let mut keep = vec![true; n];
    for i in 0..n.saturating_sub(1) {
        if pats[i + 1].starts_with(&pats[i]) {
            keep[i] = false;
        }
    }
    let mut it = keep.iter();
    pats.retain(|_| *it.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<u8>> {
        [
            "com.gmail@anna",
            "com.gmail@bob",
            "com.gmail@chris",
            "com.yahoo@dora",
            "com.yahoo@emma",
            "org.acm@frank",
            "org.acm@grace",
            "net.slashdot@hugo",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn blending_moves_count_to_longest_extension() {
        let mut counts = HashMap::new();
        counts.insert(b"sig".to_vec(), 10u64);
        counts.insert(b"sigmod".to_vec(), 4u64);
        counts.insert(b"sigmo".to_vec(), 2u64);
        let out = blend(counts);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b"sigmod");
        assert_eq!(out[0].1, 16);
    }

    #[test]
    fn blending_keeps_unrelated_patterns() {
        let mut counts = HashMap::new();
        counts.insert(b"abc".to_vec(), 3u64);
        counts.insert(b"xyz".to_vec(), 5u64);
        let out = blend(counts);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn improved_selector_produces_valid_intervals() {
        // Gap filling needs up to ~260 intervals at minimum, so target above
        // that; the builder returns the smallest achievable set otherwise.
        let set = AlmSelector::improved().select(&sample(), 512);
        set.validate().unwrap();
        assert!(set.len() <= 512, "len = {}", set.len());
        // The shared "com.gmail@" style prefixes should yield multi-byte
        // symbols somewhere.
        let max_sym = (0..set.len()).map(|i| set.symbol_len(i)).max().unwrap();
        assert!(max_sym >= 3, "expected long symbols, max {max_sym}");
    }

    #[test]
    fn original_selector_produces_valid_intervals() {
        let set = AlmSelector::original().select(&sample(), 512);
        set.validate().unwrap();
        assert!(set.len() <= 512);
    }

    #[test]
    fn larger_target_gives_no_smaller_dictionary() {
        let s = sample();
        let small = AlmSelector::improved().select(&s, 32);
        let large = AlmSelector::improved().select(&s, 512);
        assert!(small.len() <= large.len());
    }

    #[test]
    fn empty_sample_degenerates() {
        let set = AlmSelector::improved().select(&[], 64);
        set.validate().unwrap();
        assert_eq!(set.len(), 256);
    }

    #[test]
    fn drop_prefix_patterns_keeps_longest() {
        let mut pats = vec![b"a".to_vec(), b"ab".to_vec(), b"abc".to_vec(), b"b".to_vec()];
        drop_prefix_patterns(&mut pats);
        assert_eq!(pats, vec![b"abc".to_vec(), b"b".to_vec()]);
    }
}
