//! The unified, fallible codec surface: [`KeyCodec`].
//!
//! Before the v1 API, the encode side (`Hope::encode_to`), the decode side
//! (`Decoder`/`FastDecoder`) and the range-bound helper each had their own
//! shape — some infallible, some `Option`-returning. [`KeyCodec`] folds
//! them into one object-safe trait with a single error type
//! ([`HopeError`]), so a serving layer can program
//! against *any* order-preserving key transform:
//!
//! * [`Hope`](crate::Hope) — the paper's compressor — implements it with
//!   its zero-allocation fast paths (fused code tables / prefix automaton
//!   on encode, the cached byte-table [`FastDecoder`](crate::FastDecoder)
//!   on decode);
//! * [`IdentityCodec`] stores keys verbatim — the "compression off"
//!   baseline, useful for differential tests and for running a
//!   `hope_store`-shaped stack without a dictionary.
//!
//! All three methods write into caller-owned scratch so query loops stay
//! allocation-free, and all three return `Result`: encoding validates the
//! key (see [`MAX_KEY_BYTES`]) and decoding surfaces stream corruption
//! instead of panicking or returning a bare `None`.

use crate::builder::HopeError;
use crate::decoder::DecodeScratch;
use crate::encoder::EncodeScratch;

/// Hard upper bound on the length of a single source key, in bytes.
///
/// Encoding itself is total — any byte string has an order-preserving
/// encoding — but the serving stack buffers whole keys in per-thread and
/// per-cursor scratch, so a pathological multi-megabyte "key" would pin
/// that much memory on every thread that ever touched it. 1 MiB is far
/// above every dataset the paper evaluates (emails, URLs, words) while
/// still bounding scratch growth; [`KeyCodec::encode_to`] and the
/// `hope_store` write path reject longer keys with
/// [`HopeError::KeyTooLong`].
pub const MAX_KEY_BYTES: usize = 1 << 20;

/// An order-preserving, lossless byte-string codec.
///
/// The contract:
///
/// * **order preservation** — for any keys `a <= b`, the padded encoded
///   bytes satisfy `enc(a) <= enc(b)`;
/// * **losslessness** — `decode_to` of an `encode_to` result returns the
///   original key;
/// * **range bracketing** — `encode_range_bounds_to(lo, hi)` returns byte
///   strings that bracket the encoding of every key in `lo..=hi` (the
///   zero-extension tie corner is documented on
///   [`Hope::encode_range_bounds`](crate::Hope::encode_range_bounds):
///   boundary byte strings may also be shared by keys just outside the
///   range, so exact consumers re-check source bounds).
///
/// The trait is object-safe; `hope_store` generations hold their codec as
/// a concrete [`Hope`](crate::Hope), but adapters can box a
/// `dyn KeyCodec` (see the `send_sync` integration test).
pub trait KeyCodec: Send + Sync + std::fmt::Debug {
    /// Encode one key into `scratch` and return its padded encoded bytes
    /// (exact bit length via [`EncodeScratch::bit_len`]).
    ///
    /// # Errors
    ///
    /// [`HopeError::KeyTooLong`] when `key` exceeds [`MAX_KEY_BYTES`].
    fn encode_to<'s>(
        &self,
        key: &[u8],
        scratch: &'s mut EncodeScratch,
    ) -> Result<&'s [u8], HopeError>;

    /// Encode the inclusive boundaries of a range query into `scratch`
    /// and return the two padded byte strings `(low, high)`.
    ///
    /// # Errors
    ///
    /// [`HopeError::KeyTooLong`] when either bound exceeds
    /// [`MAX_KEY_BYTES`].
    fn encode_range_bounds_to<'s>(
        &self,
        low: &[u8],
        high: &[u8],
        scratch: &'s mut EncodeScratch,
    ) -> Result<(&'s [u8], &'s [u8]), HopeError>;

    /// Decode `bit_len` bits of `enc` (the padded encoded bytes) back to
    /// the source key, filling `scratch` and returning the decoded bytes
    /// (invalidated by the next call on the same scratch).
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] when the bitstream does not end
    /// exactly on a code boundary — impossible for this codec's own
    /// output, so it indicates corruption.
    fn decode_to<'s>(
        &self,
        enc: &[u8],
        bit_len: usize,
        scratch: &'s mut DecodeScratch,
    ) -> Result<&'s [u8], HopeError>;
}

/// The trivial codec: keys encode to themselves.
///
/// Order preservation and losslessness are immediate; the bit length is
/// always `8 * len`. Serves as the "Uncompressed" baseline wherever a
/// [`KeyCodec`] is expected.
///
/// ```
/// use hope::codec::{IdentityCodec, KeyCodec};
/// use hope::{DecodeScratch, EncodeScratch};
///
/// let mut enc = EncodeScratch::new();
/// let mut dec = DecodeScratch::new();
/// let bytes = IdentityCodec.encode_to(b"com.gmail@alice", &mut enc).unwrap().to_vec();
/// assert_eq!(bytes, b"com.gmail@alice");
/// let back = IdentityCodec.decode_to(&bytes, enc.bit_len(), &mut dec).unwrap();
/// assert_eq!(back, b"com.gmail@alice");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCodec;

impl KeyCodec for IdentityCodec {
    fn encode_to<'s>(
        &self,
        key: &[u8],
        scratch: &'s mut EncodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        validate_key_len(key)?;
        Ok(scratch.fill_identity(key))
    }

    fn encode_range_bounds_to<'s>(
        &self,
        low: &[u8],
        high: &[u8],
        scratch: &'s mut EncodeScratch,
    ) -> Result<(&'s [u8], &'s [u8]), HopeError> {
        validate_key_len(low)?;
        validate_key_len(high)?;
        Ok(scratch.fill_identity_pair(low, high))
    }

    fn decode_to<'s>(
        &self,
        enc: &[u8],
        bit_len: usize,
        scratch: &'s mut DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        if !bit_len.is_multiple_of(8) || bit_len / 8 > enc.len() {
            return Err(HopeError::CorruptEncoding { bit_len });
        }
        Ok(scratch.fill(&enc[..bit_len / 8]))
    }
}

/// Shared key-length validation for [`KeyCodec`] implementations (and
/// for serving layers that must reject keys *before* encoding them —
/// `hope_store` validates bulk-load keys with this ahead of the
/// unvalidated batch encoder).
pub fn validate_key_len(key: &[u8]) -> Result<(), HopeError> {
    if key.len() > MAX_KEY_BYTES {
        return Err(HopeError::KeyTooLong { len: key.len(), max: MAX_KEY_BYTES });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_codec_round_trips_and_orders() {
        let mut enc = EncodeScratch::new();
        let mut dec = DecodeScratch::new();
        let a = IdentityCodec.encode_to(b"abc", &mut enc).unwrap().to_vec();
        let bits_a = enc.bit_len();
        let b = IdentityCodec.encode_to(b"abd", &mut enc).unwrap().to_vec();
        assert!(a < b);
        assert_eq!(IdentityCodec.decode_to(&a, bits_a, &mut dec).unwrap(), b"abc");
        let (lo, hi) = IdentityCodec.encode_range_bounds_to(b"a", b"b", &mut enc).unwrap();
        assert_eq!((lo, hi), (&b"a"[..], &b"b"[..]));
    }

    #[test]
    fn identity_codec_rejects_oversized_keys_and_ragged_streams() {
        let mut enc = EncodeScratch::new();
        let mut dec = DecodeScratch::new();
        let giant = vec![0u8; MAX_KEY_BYTES + 1];
        assert!(matches!(
            IdentityCodec.encode_to(&giant, &mut enc),
            Err(HopeError::KeyTooLong { .. })
        ));
        assert!(matches!(
            IdentityCodec.decode_to(b"ab", 9, &mut dec),
            Err(HopeError::CorruptEncoding { bit_len: 9 })
        ));
    }

    #[test]
    fn codec_is_object_safe() {
        let codecs: Vec<Box<dyn KeyCodec>> = vec![Box::new(IdentityCodec)];
        let mut scratch = EncodeScratch::new();
        assert_eq!(codecs[0].encode_to(b"k", &mut scratch).unwrap(), b"k");
    }
}
