//! The string axis model (§3.1): complete, order-preserving interval
//! dictionaries over the space of byte strings.
//!
//! A dictionary divides the axis of all byte strings into consecutive
//! intervals `[b_i, b_{i+1})`. Every interval has a *symbol*: a non-empty
//! common prefix of all (non-empty) strings in the interval. Encoding looks
//! up the remaining source suffix, emits the interval's code, and consumes
//! `symbol.len()` bytes; completeness guarantees progress on every step.
//!
//! This module owns the interval arithmetic: longest-common-prefix, prefix
//! successor (`next_prefix`), the max-common-prefix of an interval (`mcp`),
//! and gap filling between selected patterns so that the union of intervals
//! covers the whole axis while every symbol stays non-empty.

/// Longest common prefix length of two byte strings.
#[inline]
pub fn lcp_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0;
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// The exclusive upper bound of the set of strings prefixed by `p`:
/// increment the last byte, dropping trailing `0xff` bytes first.
/// Returns `None` when `p` is all `0xff` (the prefix region extends to the
/// end of the axis).
pub fn next_prefix(p: &[u8]) -> Option<Vec<u8>> {
    let mut v = p.to_vec();
    while let Some(&last) = v.last() {
        if last == 0xff {
            v.pop();
        } else {
            *v.last_mut().unwrap() += 1;
            return Some(v);
        }
    }
    None
}

/// Length of the max-length common prefix (mcp) of the interval `[x, y)`
/// (`y = None` means the end of the axis). The mcp is always a prefix of
/// `x`; the returned length may be 0, in which case the interval spans
/// multiple leading bytes and must be split by the caller.
///
/// `x` must be non-empty and lexicographically below `y`.
pub fn mcp_len(x: &[u8], y: Option<&[u8]>) -> usize {
    debug_assert!(!x.is_empty());
    match y {
        None => {
            // [x, inf): members share x's leading run of 0xff bytes.
            x.iter().take_while(|&&b| b == 0xff).count()
        }
        Some(y) => {
            debug_assert!(x < y, "empty interval [{x:?}, {y:?})");
            if y.starts_with(x) {
                // x is a proper prefix of y: every member starts with x.
                return x.len();
            }
            let mut yd = y.to_vec();
            while yd.last() == Some(&0) {
                yd.pop();
            }
            if yd.is_empty() {
                // y is all zero bytes; x < y means x is a shorter run of
                // zero bytes, and every member starts with x.
                return x.len();
            }
            if yd.len() < y.len() {
                // y had trailing zero bytes: its immediate predecessor is
                // exactly the stripped string, which is the interval's
                // largest member — the mcp is its lcp with x.
                return lcp_len(x, &yd);
            }
            // Otherwise the largest strings below y look like
            // dec(y) ++ 0xff...: compare x against that.
            *yd.last_mut().unwrap() -= 1;
            let k = lcp_len(x, &yd);
            if k == yd.len() {
                // dec(y) is a prefix of x; the virtual 0xff tail keeps
                // matching any 0xff run in x.
                k + x[k..].iter().take_while(|&&b| b == 0xff).count()
            } else {
                k
            }
        }
    }
}

/// A complete, ordered division of the string axis into intervals, each with
/// a non-empty symbol (stored as a prefix length of the left boundary).
///
/// Invariants (checked by [`IntervalSet::validate`]):
/// * boundaries strictly ascending; `boundaries[0] == [0x00]` so every
///   non-empty string has a floor interval,
/// * `1 <= symbol_len[i] <= boundaries[i].len()`,
/// * `boundaries[i][..symbol_len[i]]` is a common prefix of every non-empty
///   string in `[b_i, b_{i+1})`.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    boundaries: Vec<Box<[u8]>>,
    symbol_lens: Vec<u16>,
}

impl IntervalSet {
    /// Build a complete interval set from selected patterns.
    ///
    /// `patterns` must be sorted, deduplicated, non-empty strings, and no
    /// pattern may be a prefix of another (the selectors guarantee this;
    /// debug-asserted here). Gaps between pattern intervals are filled with
    /// intervals whose symbols are the gap's max common prefix, split at
    /// leading-byte boundaries when necessary.
    pub fn from_patterns(patterns: &[Vec<u8>]) -> Self {
        let mut set = IntervalSet::default();
        let mut pos: Option<Vec<u8>> = Some(vec![0x00]);
        for p in patterns {
            debug_assert!(!p.is_empty(), "empty pattern");
            let Some(cur) = pos.as_deref() else {
                debug_assert!(false, "pattern {p:?} after axis end");
                break;
            };
            debug_assert!(cur <= p.as_slice(), "patterns unsorted or overlapping at {p:?}");
            if cur < p.as_slice() {
                set.fill_gap(cur.to_vec(), Some(p));
            }
            set.push(p.clone(), p.len());
            pos = next_prefix(p);
        }
        if let Some(cur) = pos {
            set.fill_gap(cur, None);
        }
        set
    }

    /// Append interval boundaries covering `[x, y)` (`y = None` = axis end),
    /// splitting at leading-byte boundaries so every symbol is non-empty.
    fn fill_gap(&mut self, x: Vec<u8>, y: Option<&[u8]>) {
        debug_assert!(!x.is_empty());
        let m = mcp_len(&x, y);
        if m > 0 {
            self.push(x, m);
            return;
        }
        // The gap spans multiple leading bytes: [x, b0+1) has mcp >= 1 byte,
        // then one single-byte interval per intermediate leading byte, then
        // [[y0], y) if y extends past its own leading byte.
        let b0 = x[0];
        debug_assert!(b0 < 0xff, "mcp of an 0xff-leading gap is non-empty");
        let first_split = vec![b0 + 1];
        let m2 = mcp_len(&x, Some(&first_split));
        debug_assert!(m2 > 0);
        self.push(x, m2);
        let y0 = y.map(|y| y[0] as u16).unwrap_or(0x100);
        for v in (b0 as u16 + 1)..y0 {
            self.push(vec![v as u8], 1);
        }
        if let Some(y) = y {
            if y.len() > 1 {
                self.push(vec![y[0]], 1);
            }
        }
    }

    fn push(&mut self, boundary: Vec<u8>, symbol_len: usize) {
        debug_assert!(symbol_len >= 1 && symbol_len <= boundary.len());
        debug_assert!(
            self.boundaries.last().is_none_or(|b| b.as_ref() < boundary.as_slice()),
            "boundaries must be strictly ascending"
        );
        self.boundaries.push(boundary.into_boxed_slice());
        self.symbol_lens.push(symbol_len as u16);
    }

    /// Construct directly from parallel boundary/symbol-length arrays
    /// (used by the fixed-interval selectors where the layout is implied).
    pub fn from_parts(boundaries: Vec<Box<[u8]>>, symbol_lens: Vec<u16>) -> Self {
        assert_eq!(boundaries.len(), symbol_lens.len());
        IntervalSet { boundaries, symbol_lens }
    }

    /// Number of intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    /// True if the set holds no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// Left boundary of interval `i`.
    #[inline]
    pub fn boundary(&self, i: usize) -> &[u8] {
        &self.boundaries[i]
    }

    /// Symbol (common prefix) of interval `i`.
    #[inline]
    pub fn symbol(&self, i: usize) -> &[u8] {
        &self.boundaries[i][..self.symbol_lens[i] as usize]
    }

    /// Symbol length of interval `i` in bytes.
    #[inline]
    pub fn symbol_len(&self, i: usize) -> usize {
        self.symbol_lens[i] as usize
    }

    /// Index of the interval containing `s` (floor lookup by binary
    /// search). `s` must be non-empty and `>= boundaries[0]`.
    #[inline]
    pub fn floor_index(&self, s: &[u8]) -> usize {
        debug_assert!(!s.is_empty());
        let idx = self.boundaries.partition_point(|b| b.as_ref() <= s);
        debug_assert!(idx > 0, "string below the first boundary");
        idx - 1
    }

    /// Iterate over `(boundary, symbol_len)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], usize)> + '_ {
        self.boundaries.iter().zip(&self.symbol_lens).map(|(b, &l)| (b.as_ref(), l as usize))
    }

    /// Check all structural invariants; returns a description of the first
    /// violation. Intended for tests and debug builds.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("empty interval set".into());
        }
        if self.boundaries[0].as_ref() != [0x00] && !self.boundaries[0].is_empty() {
            return Err(format!(
                "first boundary {:?} does not cover the axis start",
                self.boundaries[0]
            ));
        }
        for i in 0..self.len() {
            let sl = self.symbol_lens[i] as usize;
            if sl == 0 || sl > self.boundaries[i].len() {
                return Err(format!("interval {i}: bad symbol length {sl}"));
            }
            if i + 1 < self.len() && self.boundaries[i] >= self.boundaries[i + 1] {
                return Err(format!("interval {i}: boundaries not ascending"));
            }
            // The symbol must be the common prefix of the whole interval:
            // check that the region of strings prefixed by the symbol
            // contains the interval.
            let sym = self.symbol(i);
            if !self.boundaries[i].starts_with(sym) {
                return Err(format!("interval {i}: symbol not a prefix of boundary"));
            }
            if let Some(end) = next_prefix(sym) {
                if i + 1 < self.len() {
                    if self.boundaries[i + 1].as_ref() > end.as_slice() {
                        return Err(format!(
                            "interval {i}: symbol {sym:?} does not prefix the right end"
                        ));
                    }
                } else {
                    // The last interval extends to the axis end; only an
                    // all-0xff symbol (next_prefix == None) can cover it.
                    return Err(format!("last interval symbol {sym:?} cannot cover the axis tail"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lcp_basics() {
        assert_eq!(lcp_len(b"abc", b"abd"), 2);
        assert_eq!(lcp_len(b"", b"abc"), 0);
        assert_eq!(lcp_len(b"abc", b"abc"), 3);
        assert_eq!(lcp_len(b"abc", b"abcd"), 3);
    }

    #[test]
    fn next_prefix_simple_and_carry() {
        assert_eq!(next_prefix(b"abc").unwrap(), b"abd");
        assert_eq!(next_prefix(b"ab\xff").unwrap(), b"ac");
        assert_eq!(next_prefix(b"a\xff\xff").unwrap(), b"b");
        assert_eq!(next_prefix(b"\xff\xff"), None);
        assert_eq!(next_prefix(b"\x00").unwrap(), b"\x01");
    }

    #[test]
    fn mcp_prefix_case() {
        assert_eq!(mcp_len(b"a", Some(b"abc")), 1); // [a, abc): all start with "a"
        assert_eq!(mcp_len(b"ing", Some(b"inh")), 3); // [ing, inh): all start "ing"
    }

    #[test]
    fn mcp_sibling_case() {
        assert_eq!(mcp_len(b"inh", Some(b"ion")), 1); // lcp via "iom\xff..."
        assert_eq!(mcp_len(b"sinh", Some(b"sion")), 2); // "si"
    }

    #[test]
    fn mcp_carry_case() {
        // [az{, b): every member starts with 'a'.
        assert_eq!(mcp_len(b"az{", Some(b"b")), 1);
        // [a\xff, b): members start with "a\xff".
        assert_eq!(mcp_len(b"a\xff", Some(b"b")), 2);
    }

    #[test]
    fn mcp_cross_byte_gap_is_empty() {
        assert_eq!(mcp_len(b"az", Some(b"ca")), 0);
        assert_eq!(mcp_len(b"\x00", Some(b"aaa")), 0);
    }

    #[test]
    fn mcp_axis_end() {
        assert_eq!(mcp_len(b"q", None), 0);
        assert_eq!(mcp_len(b"\xffq", None), 1);
        assert_eq!(mcp_len(b"\xff\xff", None), 2);
    }

    #[test]
    fn mcp_all_zero_upper() {
        assert_eq!(mcp_len(b"\x00", Some(b"\x00\x00")), 1);
    }

    #[test]
    fn empty_pattern_set_gives_byte_identity() {
        let set = IntervalSet::from_patterns(&[]);
        assert_eq!(set.len(), 256);
        set.validate().unwrap();
        for v in 0..=255u8 {
            assert_eq!(set.boundary(v as usize), &[v]);
            assert_eq!(set.symbol_len(v as usize), 1);
        }
    }

    #[test]
    fn paper_example_three_grams() {
        // Figure 4d: patterns "ing" and "ion" produce gap intervals with
        // symbols "i" (between) among others.
        let pats = vec![b"ing".to_vec(), b"ion".to_vec()];
        let set = IntervalSet::from_patterns(&pats);
        set.validate().unwrap();
        // find interval [inh, ion): symbol must be "i"
        let i = set.floor_index(b"inz");
        assert_eq!(set.boundary(i), b"inh");
        assert_eq!(set.symbol(i), b"i");
        // the pattern intervals exist with full symbols
        let i = set.floor_index(b"ingest");
        assert_eq!(set.boundary(i), b"ing");
        assert_eq!(set.symbol(i), b"ing");
        let i = set.floor_index(b"ion");
        assert_eq!(set.symbol(i), b"ion");
        // after [ion, ioo): gap with symbol "i" then single bytes
        let i = set.floor_index(b"iz");
        assert_eq!(set.symbol(i), b"i");
        let i = set.floor_index(b"zebra");
        assert_eq!(set.symbol(i), b"z");
    }

    #[test]
    fn adjacent_patterns_no_gap() {
        let pats = vec![b"abc".to_vec(), b"abd".to_vec()];
        let set = IntervalSet::from_patterns(&pats);
        set.validate().unwrap();
        let i = set.floor_index(b"abcz");
        assert_eq!(set.boundary(i), b"abc");
        assert_eq!(set.boundary(i + 1), b"abd");
    }

    #[test]
    fn pattern_with_ff_tail() {
        let pats = vec![b"a\xff\xff".to_vec()];
        let set = IntervalSet::from_patterns(&pats);
        set.validate().unwrap();
        // next_prefix carries to "b"
        let i = set.floor_index(b"a\xff\xff\x33");
        assert_eq!(set.symbol(i), b"a\xff\xff");
        let i = set.floor_index(b"baz");
        assert_eq!(set.symbol(i), b"b");
    }

    #[test]
    fn floor_of_every_nonempty_string_has_prefix_symbol() {
        let pats = vec![b"com".to_vec(), b"net".to_vec(), b"org".to_vec()];
        let set = IntervalSet::from_patterns(&pats);
        set.validate().unwrap();
        for probe in [
            b"\x00".as_slice(),
            b"a",
            b"com",
            b"communication",
            b"con",
            b"cz",
            b"m",
            b"nets",
            b"organic",
            b"p",
            b"\xff\xff\xff",
        ] {
            let i = set.floor_index(probe);
            let sym = set.symbol(i);
            assert!(probe.starts_with(sym), "probe {probe:?} in interval {i} with symbol {sym:?}");
        }
    }

    proptest! {
        /// Core completeness property: for arbitrary pattern sets (same
        /// length, like n-grams), every non-empty probe string lands in an
        /// interval whose symbol prefixes it.
        #[test]
        fn interval_symbols_prefix_members(
            mut pats in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 3), 0..40),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..8), 1..50),
        ) {
            let pats: Vec<Vec<u8>> = std::mem::take(&mut pats).into_iter().collect();
            let set = IntervalSet::from_patterns(&pats);
            prop_assert!(set.validate().is_ok());
            for probe in &probes {
                let i = set.floor_index(probe);
                let sym = set.symbol(i);
                prop_assert!(probe.starts_with(sym),
                    "probe {:?} interval {} symbol {:?}", probe, i, sym);
                // floor is correct
                prop_assert!(set.boundary(i) <= probe.as_slice());
                if i + 1 < set.len() {
                    prop_assert!(probe.as_slice() < set.boundary(i + 1));
                }
            }
        }

        /// Variable-length patterns (ALM-like), prefix-free by construction.
        #[test]
        fn variable_length_patterns_cover_axis(
            raw in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 1..6), 0..30),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..10), 1..50),
        ) {
            // drop patterns that are prefixes of other patterns
            let all: Vec<Vec<u8>> = raw.iter().cloned().collect();
            let pats: Vec<Vec<u8>> = all
                .iter()
                .filter(|p| !all.iter().any(|q| q.as_slice() != p.as_slice() && q.starts_with(p)))
                .cloned()
                .collect();
            let set = IntervalSet::from_patterns(&pats);
            prop_assert!(set.validate().is_ok(), "{:?}", set.validate());
            for probe in &probes {
                let i = set.floor_index(probe);
                prop_assert!(probe.starts_with(set.symbol(i)));
            }
        }
    }
}
