//! Verification decoder.
//!
//! The paper deliberately skips building decoders ("our target search tree
//! queries need not reconstruct the original keys"), but notes the encoding
//! is lossless. This module provides the lossless inverse used by the test
//! suite to prove unique decodability (§3.1): a binary trie over the code
//! set maps the encoded bitstream back to interval symbols.

use crate::bitpack::{BitReader, Code, EncodedKey};

/// Binary code trie: node `i` has children `2i+1` (bit 0) and `2i+2`-style
/// links stored explicitly, leaves carry the interval index.
#[derive(Debug)]
pub struct Decoder {
    /// `nodes[i] = [zero_child, one_child]`; `u32::MAX` = absent.
    nodes: Vec<[u32; 2]>,
    /// Leaf payload per node (interval index), `u32::MAX` if internal.
    leaf: Vec<u32>,
    /// Interval symbols, indexed by interval.
    symbols: Vec<Box<[u8]>>,
}

const ABSENT: u32 = u32::MAX;

impl Decoder {
    /// Build from the interval codes and symbols.
    ///
    /// # Panics
    /// Panics if the codes are not prefix-free (a violation of §3.1).
    pub fn new(codes: &[Code], symbols: Vec<Box<[u8]>>) -> Self {
        assert_eq!(codes.len(), symbols.len());
        let mut dec = Decoder { nodes: vec![[ABSENT; 2]], leaf: vec![ABSENT], symbols };
        for (i, code) in codes.iter().enumerate() {
            let mut at = 0usize;
            for b in (0..code.len).rev() {
                let bit = ((code.bits >> b) & 1) as usize;
                assert_eq!(dec.leaf[at], ABSENT, "code {i} extends another code");
                if dec.nodes[at][bit] == ABSENT {
                    dec.nodes[at][bit] = dec.nodes.len() as u32;
                    dec.nodes.push([ABSENT; 2]);
                    dec.leaf.push(ABSENT);
                }
                at = dec.nodes[at][bit] as usize;
            }
            assert_eq!(dec.leaf[at], ABSENT, "duplicate code for interval {i}");
            assert_eq!(dec.nodes[at], [ABSENT; 2], "code {i} is a prefix of another code");
            dec.leaf[at] = i as u32;
        }
        dec
    }

    /// Decode an encoded key back to the original bytes.
    ///
    /// Returns `None` if the bitstream does not end exactly on a code
    /// boundary (impossible for encoder output; indicates corruption).
    pub fn decode(&self, key: &EncodedKey) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(key.byte_len() * 2);
        let mut r = BitReader::new(key);
        let mut at = 0usize;
        loop {
            if self.leaf[at] != ABSENT {
                out.extend_from_slice(&self.symbols[self.leaf[at] as usize]);
                at = 0;
                if r.remaining() == 0 {
                    return Some(out);
                }
                continue;
            }
            match r.next_bit() {
                Some(bit) => {
                    let next = self.nodes[at][bit as usize];
                    if next == ABSENT {
                        return None;
                    }
                    at = next as usize;
                }
                None => return if at == 0 { Some(out) } else { None },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::dict::Dict;
    use crate::encoder::Encoder;
    use crate::selector::{self, Scheme};
    use proptest::prelude::*;

    fn roundtrip_scheme(scheme: Scheme, sample: &[Vec<u8>], keys: &[Vec<u8>]) {
        let set = selector::select_intervals(scheme, sample, 512).unwrap();
        let weights = selector::access_weights(&set, sample);
        let assigner = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker
        } else {
            CodeAssigner::FixedLength
        };
        let codes = assigner.assign(&weights);
        let symbols: Vec<Box<[u8]>> = (0..set.len()).map(|i| set.symbol(i).into()).collect();
        let dict = Dict::build(scheme, &set, &codes);
        let enc = Encoder::new(dict, None);
        let dec = Decoder::new(&codes, symbols);
        for key in keys {
            let e = enc.encode(key);
            let back = dec.decode(&e);
            assert_eq!(back.as_deref(), Some(key.as_slice()), "{scheme}: key {key:?}");
        }
    }

    fn sample() -> Vec<Vec<u8>> {
        ["information", "informal", "informant", "covert", "cover", "coverage"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn lossless_roundtrip_all_schemes() {
        let s = sample();
        let keys: Vec<Vec<u8>> =
            ["info", "informant", "unseen-key", "c", "", "\u{0}\u{0}", "zzzz", "informationally"]
                .iter()
                .map(|s| s.as_bytes().to_vec())
                .collect();
        for scheme in Scheme::ALL {
            roundtrip_scheme(scheme, &s, &keys);
        }
    }

    #[test]
    fn rejects_prefix_violating_codes() {
        let codes = vec![Code::new(0b0, 1), Code::new(0b01, 2)];
        let symbols = vec![b"a".to_vec().into_boxed_slice(), b"b".to_vec().into_boxed_slice()];
        let r = std::panic::catch_unwind(|| Decoder::new(&codes, symbols));
        assert!(r.is_err());
    }

    #[test]
    fn corrupt_stream_detected() {
        let codes = vec![Code::new(0b10, 2), Code::new(0b11, 2)];
        let symbols = vec![b"x".to_vec().into_boxed_slice(), b"y".to_vec().into_boxed_slice()];
        let dec = Decoder::new(&codes, symbols);
        // "1" alone is a dangling half-code.
        let bad = EncodedKey::from_parts(vec![0b1000_0000], 1);
        assert_eq!(dec.decode(&bad), None);
        // "0" hits an absent branch.
        let bad = EncodedKey::from_parts(vec![0b0000_0000], 1);
        assert_eq!(dec.decode(&bad), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn random_keys_roundtrip(
            sample in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..16), 1..12),
            keys in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 1..24),
        ) {
            for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
                roundtrip_scheme(scheme, &sample, &keys);
            }
        }
    }
}
