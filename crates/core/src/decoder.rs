//! Lossless decoders: the bit-walk reference [`Decoder`] and the
//! table-driven [`FastDecoder`] used on scan paths.
//!
//! The paper deliberately skips building decoders ("our target search tree
//! queries need not reconstruct the original keys"), but notes the encoding
//! is lossless. This module provides the inverse, in two tiers:
//!
//! * [`Decoder`] — a binary trie over the code set, walked **one bit at a
//!   time**. It is the reference implementation: simple, obviously
//!   correct, and the structure that proves unique decodability (§3.1).
//! * [`FastDecoder`] — the same trie flattened into a **byte-at-a-time**
//!   DFA: for each resume state (a trie node, i.e. a position inside a
//!   partially consumed code) and each possible next byte, a precomputed
//!   entry lists the symbols those eight bits emit and the state they end
//!   in. One table load replaces eight branchy bit steps. States are
//!   allocated breadth-first up to a budget ([`DECODER_STATE_BUDGET`]), so
//!   the shallow states that Hu-Tucker's skew makes hot are always
//!   resident; bytes starting from a cold deep state fall back to the bit
//!   walk. Output is identical to [`Decoder`] by construction and by
//!   property test (`tests/decode_fast_equiv.rs`).
//!
//! Both decoders expose allocation-free variants on top of a reusable
//! [`DecodeScratch`]: [`Decoder::decode_to`] / [`FastDecoder::decode_to`]
//! for a single key, and [`FastDecoder::decode_batch`] for the scan shape —
//! N encoded hits decoded back-to-back into one flat buffer, zero heap
//! allocations once the scratch is warm. See DESIGN.md, "Decode path".
//!
//! ```
//! use hope::{DecodeScratch, HopeBuilder, Scheme};
//!
//! let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
//! let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
//! let fast = hope.fast_decoder();
//!
//! // Zero-allocation single-key decode (scratch buffers are reused).
//! let mut scratch = DecodeScratch::new();
//! let encoded = hope.encode(b"com.gmail@carol");
//! let decoded = fast.decode_to(&encoded, &mut scratch).expect("valid stream");
//! assert_eq!(decoded, b"com.gmail@carol");
//!
//! // Batch decode: N hits into one flat buffer, as a range scan would.
//! let hits = [hope.encode(b"com.gmail@dave"), hope.encode(b"com.gmail@erin")];
//! let batch = fast.decode_batch_keys(&hits, &mut scratch).expect("valid streams");
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch.get(0), b"com.gmail@dave");
//! assert_eq!(batch.iter().last().unwrap(), b"com.gmail@erin");
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use crate::bitpack::{Code, EncodedKey};
use crate::builder::HopeError;

/// Default cap on the number of [`FastDecoder`] byte-table states. One
/// state is a 256-entry row of 16-byte entries (4 KiB), so 2048 states
/// bound the table at 8 MiB; breadth-first allocation keeps the hot
/// shallow states resident and lets cold deep resume points fall back to
/// the bit walk.
pub const DECODER_STATE_BUDGET: usize = 2048;

const ABSENT: u32 = u32::MAX;
/// `node_state` marker: this trie node has no byte-table row.
const STATE_NONE: u32 = u32::MAX;
/// `next` marker: no valid stream passes through this (state, byte) pair.
const NEXT_INVALID: u32 = u32::MAX;
/// `next` marker: resolve this (state, byte) pair through the bit walk
/// (its flattened output run exceeds a `u16` — giant symbols only).
const NEXT_BITWALK: u32 = u32::MAX - 1;
/// Tag bit on a `next` value (and on the hot loop's cursor): the low bits
/// are a raw trie-node id with no byte-table row, not a state id.
const NODE_TAG: u32 = 1 << 31;
/// Emit runs at most this long live inline in the entry; longer runs
/// spill to the shared `emit_bytes` buffer.
const INLINE_CAP: usize = 10;

/// Reusable decode buffers for the allocation-free decode paths.
///
/// Holds the output buffer of a single-key [`Decoder::decode_to`] /
/// [`FastDecoder::decode_to`] call, plus the flat byte buffer and offset
/// list a [`FastDecoder::decode_batch`] fills. Every call clears and
/// refills the buffers it uses, retaining the allocations; one scratch per
/// thread (or per scan loop) is the intended usage, mirroring
/// [`EncodeScratch`](crate::encoder::EncodeScratch) on the encode side.
/// Returned slices are invalidated by the next call on the same scratch.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    out: Vec<u8>,
    flat: Vec<u8>,
    ends: Vec<usize>,
}

impl DecodeScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fill the single-key buffer with raw bytes and return it — the
    /// identity "decode" used by [`IdentityCodec`](crate::codec::IdentityCodec).
    pub(crate) fn fill(&mut self, bytes: &[u8]) -> &[u8] {
        self.out.clear();
        self.out.extend_from_slice(bytes);
        &self.out
    }
}

/// A batch of decoded keys, laid out back-to-back in one flat buffer
/// (borrowed from the [`DecodeScratch`] that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedBatch<'s> {
    flat: &'s [u8],
    ends: &'s [usize],
}

impl<'s> DecodedBatch<'s> {
    /// Number of decoded keys.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// True if the batch holds no keys.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The `i`-th decoded key.
    pub fn get(&self, i: usize) -> &'s [u8] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        &self.flat[start..self.ends[i]]
    }

    /// Iterate over the decoded keys in batch order.
    pub fn iter(&self) -> impl Iterator<Item = &'s [u8]> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Binary code trie: the bit-at-a-time reference decoder.
///
/// Maps an encoded bitstream back to interval symbols by walking one bit
/// per step; leaves carry the interval index. Build one via
/// [`Hope::decoder`](crate::Hope::decoder).
///
/// ```
/// use hope::{HopeBuilder, Scheme};
///
/// let sample = vec![b"information".to_vec(), b"informal".to_vec()];
/// let hope = HopeBuilder::new(Scheme::ThreeGrams)
///     .dictionary_entries(512)
///     .build_from_sample(sample)
///     .unwrap();
/// let dec = hope.decoder();
/// let e = hope.encode(b"informant");
/// assert_eq!(dec.decode(&e).unwrap(), b"informant"); // lossless (§3.1)
/// ```
#[derive(Debug)]
pub struct Decoder {
    /// `nodes[i] = [zero_child, one_child]`; `u32::MAX` = absent.
    nodes: Vec<[u32; 2]>,
    /// Leaf payload per node (interval index), `u32::MAX` if internal.
    leaf: Vec<u32>,
    /// Interval symbols, indexed by interval.
    symbols: Vec<Box<[u8]>>,
}

impl Decoder {
    /// Build from the interval codes and symbols.
    ///
    /// # Panics
    /// Panics if the codes are not prefix-free (a violation of §3.1).
    pub fn new(codes: &[Code], symbols: Vec<Box<[u8]>>) -> Self {
        assert_eq!(codes.len(), symbols.len());
        let mut dec = Decoder { nodes: vec![[ABSENT; 2]], leaf: vec![ABSENT], symbols };
        for (i, code) in codes.iter().enumerate() {
            let mut at = 0usize;
            for b in (0..code.len).rev() {
                let bit = ((code.bits >> b) & 1) as usize;
                assert_eq!(dec.leaf[at], ABSENT, "code {i} extends another code");
                if dec.nodes[at][bit] == ABSENT {
                    dec.nodes[at][bit] = dec.nodes.len() as u32;
                    dec.nodes.push([ABSENT; 2]);
                    dec.leaf.push(ABSENT);
                }
                at = dec.nodes[at][bit] as usize;
            }
            assert_eq!(dec.leaf[at], ABSENT, "duplicate code for interval {i}");
            assert_eq!(dec.nodes[at], [ABSENT; 2], "code {i} is a prefix of another code");
            dec.leaf[at] = i as u32;
        }
        dec
    }

    /// Walk the top `n` bits of `byte` from trie node `at`, appending the
    /// symbol of every completed code to `out` (leaves resolve eagerly, so
    /// the returned node is never a leaf). `None` on an absent branch.
    #[inline]
    fn walk_bits(&self, mut at: usize, byte: u8, n: usize, out: &mut Vec<u8>) -> Option<usize> {
        debug_assert!(n <= 8);
        for i in 0..n {
            let bit = (byte >> (7 - i)) & 1;
            let next = self.nodes[at][bit as usize];
            if next == ABSENT {
                return None;
            }
            at = next as usize;
            let l = self.leaf[at];
            if l != ABSENT {
                out.extend_from_slice(&self.symbols[l as usize]);
                at = 0;
            }
        }
        Some(at)
    }

    /// Decode `bit_len` bits of the padded bytes, appending the source
    /// bytes to `out`. `false` if the stream does not end exactly on a
    /// code boundary or leaves the trie (corruption).
    fn decode_append(&self, bytes: &[u8], bit_len: usize, out: &mut Vec<u8>) -> bool {
        debug_assert!(bytes.len() * 8 >= bit_len);
        let full = bit_len / 8;
        let mut at = 0usize;
        for &b in &bytes[..full] {
            match self.walk_bits(at, b, 8, out) {
                Some(n) => at = n,
                None => return false,
            }
        }
        let rem = bit_len % 8;
        if rem > 0 {
            match self.walk_bits(at, bytes[full], rem, out) {
                Some(n) => at = n,
                None => return false,
            }
        }
        at == 0
    }

    /// Decode an encoded key back to the original bytes.
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] if the bitstream does not end
    /// exactly on a code boundary (impossible for encoder output;
    /// indicates corruption).
    ///
    /// Allocates a fresh `Vec`; loops should prefer [`Decoder::decode_to`]
    /// with a reused [`DecodeScratch`].
    pub fn decode(&self, key: &EncodedKey) -> Result<Vec<u8>, HopeError> {
        let mut out = Vec::with_capacity(key.byte_len() * 2);
        if self.decode_append(key.as_bytes(), key.bit_len(), &mut out) {
            Ok(out)
        } else {
            Err(HopeError::CorruptEncoding { bit_len: key.bit_len() })
        }
    }

    /// Allocation-free [`Decoder::decode`]: fill `scratch` and return the
    /// decoded bytes (invalidated by the next call on the same scratch).
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] on a corrupt stream.
    pub fn decode_to<'s>(
        &self,
        key: &EncodedKey,
        scratch: &'s mut DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        scratch.out.clear();
        if self.decode_append(key.as_bytes(), key.bit_len(), &mut scratch.out) {
            Ok(scratch.out.as_slice())
        } else {
            Err(HopeError::CorruptEncoding { bit_len: key.bit_len() })
        }
    }

    /// Bytes of memory used by the trie.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * 8
            + self.leaf.len() * 4
            + self.symbols.iter().map(|s| s.len()).sum::<usize>()
    }
}

/// One byte-table entry: where the 8 bits land and what they emit — a
/// single 16-byte load on the decode hot loop, with the decoded output
/// run stored **inline** for all but giant entries.
#[derive(Debug, Clone, Copy)]
struct ByteEntry {
    /// Where the 8 bits land: a state id, `NODE_TAG | trie node` for an
    /// untabled landing node, `NEXT_INVALID` for a corrupt stream, or
    /// `NEXT_BITWALK` to resolve this entry through the bit walk.
    next: u32,
    /// Length of the decoded output run.
    len: u16,
    /// The output run itself when `len <= INLINE_CAP`; otherwise the
    /// first four bytes hold its little-endian offset in `emit_bytes`.
    inline: [u8; INLINE_CAP],
}

/// Byte-at-a-time table decoder: the scan-path counterpart of
/// [`FastEncoder`](crate::fast_encoder::FastEncoder).
///
/// Flattens the code trie into `state × next byte → (emitted bytes,
/// next state)` so a warm decode does one table load per input byte
/// instead of eight bit steps. Build one via
/// [`Hope::fast_decoder`](crate::Hope::fast_decoder); decode with
/// [`FastDecoder::decode_to`] or, for range-scan hits,
/// [`FastDecoder::decode_batch`] — see the module example.
#[derive(Debug)]
pub struct FastDecoder {
    trie: Decoder,
    /// Byte-table state per trie node (`STATE_NONE` = not tabled).
    node_state: Box<[u32]>,
    /// Trie node of each tabled state (for bit-walk resumes).
    state_node: Box<[u32]>,
    /// `(state << 8) | byte` → packed entry.
    entries: Box<[ByteEntry]>,
    /// Spill buffer for output runs longer than [`INLINE_CAP`].
    emit_bytes: Vec<u8>,
    /// Keys decoded entirely through the byte table (telemetry; relaxed).
    table_keys: AtomicU64,
    /// Keys that needed at least one bit-walk fallback (cold state or
    /// giant-symbol entry) mid-stream (telemetry; relaxed).
    walk_keys: AtomicU64,
}

impl FastDecoder {
    /// Build from the interval codes and symbols, tabling at most
    /// `max_states` trie nodes (breadth-first — shallow, hot states
    /// first).
    ///
    /// # Panics
    /// Panics if the codes are not prefix-free (a violation of §3.1).
    pub fn new(codes: &[Code], symbols: Vec<Box<[u8]>>, max_states: usize) -> Self {
        let trie = Decoder::new(codes, symbols);
        assert!(trie.nodes.len() < NODE_TAG as usize, "code trie exceeds 2^31 nodes");
        // Breadth-first selection of internal nodes (leaves are resolved
        // eagerly, so they are never a resume point between bytes).
        let mut node_state = vec![STATE_NONE; trie.nodes.len()];
        let mut states: Vec<u32> = Vec::new();
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(n) = queue.pop_front() {
            if states.len() >= max_states.max(1) {
                break;
            }
            node_state[n as usize] = states.len() as u32;
            states.push(n);
            for &c in &trie.nodes[n as usize] {
                if c != ABSENT && trie.leaf[c as usize] == ABSENT {
                    queue.push_back(c);
                }
            }
        }

        let rows = states.len();
        let mut entries =
            vec![ByteEntry { next: NEXT_INVALID, len: 0, inline: [0; INLINE_CAP] }; rows << 8];
        let mut emit_bytes: Vec<u8> = Vec::new();
        let mut run: Vec<u8> = Vec::new();
        for (s, &tn) in states.iter().enumerate() {
            for byte in 0..256usize {
                // Simulate the 8-bit walk once (the same walk_bits the
                // bit-walk tier runs), flattening the symbols it completes
                // into one contiguous output run.
                run.clear();
                let e = &mut entries[(s << 8) | byte];
                let Some(at) = trie.walk_bits(tn as usize, byte as u8, 8, &mut run) else {
                    continue; // stays NEXT_INVALID
                };
                let Ok(len) = u16::try_from(run.len()) else {
                    // Over 64 KiB of output from one byte (giant symbols):
                    // resolve this entry via the bit walk.
                    e.next = NEXT_BITWALK;
                    continue;
                };
                // Pre-resolve the landing node into a state id (hot) or a
                // tagged raw node (cold), saving a lookup per input byte.
                e.next = if node_state[at] != STATE_NONE {
                    node_state[at]
                } else {
                    NODE_TAG | at as u32
                };
                e.len = len;
                if run.len() <= INLINE_CAP {
                    e.inline[..run.len()].copy_from_slice(&run);
                } else {
                    e.inline[..4].copy_from_slice(&(emit_bytes.len() as u32).to_le_bytes());
                    emit_bytes.extend_from_slice(&run);
                }
            }
        }
        FastDecoder {
            trie,
            node_state: node_state.into_boxed_slice(),
            state_node: states.into_boxed_slice(),
            entries: entries.into_boxed_slice(),
            emit_bytes,
            table_keys: AtomicU64::new(0),
            walk_keys: AtomicU64::new(0),
        }
    }

    /// Keys decoded entirely through the byte table since construction
    /// (telemetry counter; relaxed). Corrupt streams count too: the
    /// counters classify the path taken, not the outcome.
    pub fn table_key_count(&self) -> u64 {
        self.table_keys.load(Ordering::Relaxed)
    }

    /// Keys whose decode fell back to the bit walk at least once — a cold
    /// (untabled) resume state or a giant-symbol entry mid-stream
    /// (telemetry counter; relaxed).
    pub fn walk_key_count(&self) -> u64 {
        self.walk_keys.load(Ordering::Relaxed)
    }

    /// Trie node behind the hot loop's tagged cursor.
    #[inline]
    fn cursor_node(&self, cur: u32) -> usize {
        if cur & NODE_TAG == 0 {
            self.state_node[cur as usize] as usize
        } else {
            (cur & !NODE_TAG) as usize
        }
    }

    /// Decode `bit_len` bits of `bytes`, appending to `out`; `false` on a
    /// corrupt stream. Tallies one key on the table or walk counter
    /// depending on the path the stream took.
    fn decode_append(&self, bytes: &[u8], bit_len: usize, out: &mut Vec<u8>) -> bool {
        let mut walked = false;
        let ok = self.decode_append_inner(bytes, bit_len, out, &mut walked);
        if walked {
            self.walk_keys.fetch_add(1, Ordering::Relaxed);
        } else {
            self.table_keys.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// The table hot loop: one entry load per input byte, inline output
    /// copy, bit-walk fallback for cold states (which sets `walked`).
    fn decode_append_inner(
        &self,
        bytes: &[u8],
        bit_len: usize,
        out: &mut Vec<u8>,
        walked: &mut bool,
    ) -> bool {
        debug_assert!(bytes.len() * 8 >= bit_len);
        let full = bit_len / 8;
        // Tagged cursor: state id (root state 0 = trie root) or
        // NODE_TAG | untabled trie node.
        let mut cur: u32 = 0;
        for &b in &bytes[..full] {
            if cur & NODE_TAG == 0 {
                let e = &self.entries[((cur as usize) << 8) | b as usize];
                if e.next < NEXT_BITWALK {
                    let len = e.len as usize;
                    if len <= INLINE_CAP {
                        out.extend_from_slice(&e.inline[..len]);
                    } else {
                        let off =
                            u32::from_le_bytes(e.inline[..4].try_into().expect("4 bytes")) as usize;
                        out.extend_from_slice(&self.emit_bytes[off..off + len]);
                    }
                    cur = e.next;
                    continue;
                }
                if e.next == NEXT_INVALID {
                    return false;
                }
            }
            *walked = true;
            match self.trie.walk_bits(self.cursor_node(cur), b, 8, out) {
                Some(n) => {
                    let s = self.node_state[n];
                    cur = if s != STATE_NONE { s } else { NODE_TAG | n as u32 };
                }
                None => return false,
            }
        }
        let rem = bit_len % 8;
        let mut at = self.cursor_node(cur);
        if rem > 0 {
            match self.trie.walk_bits(at, bytes[full], rem, out) {
                Some(n) => at = n,
                None => return false,
            }
        }
        at == 0
    }

    /// Decode an encoded key back to the original bytes
    /// ([`HopeError::CorruptEncoding`] on a corrupt stream). Allocates;
    /// loops should prefer [`FastDecoder::decode_to`] /
    /// [`FastDecoder::decode_batch`].
    pub fn decode(&self, key: &EncodedKey) -> Result<Vec<u8>, HopeError> {
        let mut out = Vec::with_capacity(key.byte_len() * 2);
        if self.decode_append(key.as_bytes(), key.bit_len(), &mut out) {
            Ok(out)
        } else {
            Err(HopeError::CorruptEncoding { bit_len: key.bit_len() })
        }
    }

    /// Allocation-free single-key decode into a reused scratch.
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] on a corrupt stream.
    pub fn decode_to<'s>(
        &self,
        key: &EncodedKey,
        scratch: &'s mut DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        self.decode_bits_to(key.as_bytes(), key.bit_len(), scratch)
    }

    /// Allocation-free decode of raw padded bytes with an exact bit
    /// length (the form scan paths carry).
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] on a corrupt stream.
    pub fn decode_bits_to<'s>(
        &self,
        bytes: &[u8],
        bit_len: usize,
        scratch: &'s mut DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        scratch.out.clear();
        if self.decode_append(bytes, bit_len, &mut scratch.out) {
            Ok(scratch.out.as_slice())
        } else {
            Err(HopeError::CorruptEncoding { bit_len })
        }
    }

    /// Decode a batch of `(padded bytes, bit length)` items back-to-back
    /// into the scratch's flat buffer — the shape of a range scan's hit
    /// list. Zero heap allocations once the scratch is warm.
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] if any item is corrupt
    /// (all-or-nothing).
    pub fn decode_batch<'s>(
        &self,
        items: &[(&[u8], usize)],
        scratch: &'s mut DecodeScratch,
    ) -> Result<DecodedBatch<'s>, HopeError> {
        scratch.flat.clear();
        scratch.ends.clear();
        for &(bytes, bit_len) in items {
            if !self.decode_append(bytes, bit_len, &mut scratch.flat) {
                return Err(HopeError::CorruptEncoding { bit_len });
            }
            scratch.ends.push(scratch.flat.len());
        }
        Ok(DecodedBatch { flat: &scratch.flat, ends: &scratch.ends })
    }

    /// [`FastDecoder::decode_batch`] over [`EncodedKey`]s.
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] if any key is corrupt
    /// (all-or-nothing).
    pub fn decode_batch_keys<'s>(
        &self,
        keys: &[EncodedKey],
        scratch: &'s mut DecodeScratch,
    ) -> Result<DecodedBatch<'s>, HopeError> {
        scratch.flat.clear();
        scratch.ends.clear();
        for key in keys {
            if !self.decode_append(key.as_bytes(), key.bit_len(), &mut scratch.flat) {
                return Err(HopeError::CorruptEncoding { bit_len: key.bit_len() });
            }
            scratch.ends.push(scratch.flat.len());
        }
        Ok(DecodedBatch { flat: &scratch.flat, ends: &scratch.ends })
    }

    /// Number of tabled states (≤ the build-time budget; diagnostics).
    pub fn states(&self) -> usize {
        self.entries.len() >> 8
    }

    /// Bytes of memory used by the byte table and the underlying trie.
    pub fn memory_bytes(&self) -> usize {
        self.trie.memory_bytes()
            + self.node_state.len() * 4
            + self.state_node.len() * 4
            + self.entries.len() * std::mem::size_of::<ByteEntry>()
            + self.emit_bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::dict::Dict;
    use crate::encoder::Encoder;
    use crate::selector::{self, Scheme};
    use proptest::prelude::*;

    fn build(scheme: Scheme, sample: &[Vec<u8>]) -> (Encoder, Decoder, FastDecoder) {
        let set = selector::select_intervals(scheme, sample, 512).unwrap();
        let weights = selector::access_weights(&set, sample);
        let assigner = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker
        } else {
            CodeAssigner::FixedLength
        };
        let codes = assigner.assign(&weights);
        let symbols: Vec<Box<[u8]>> = (0..set.len()).map(|i| set.symbol(i).into()).collect();
        let dict = Dict::build(scheme, &set, &codes);
        let enc = Encoder::new(dict, None);
        let dec = Decoder::new(&codes, symbols.clone());
        let fast = FastDecoder::new(&codes, symbols, 64);
        (enc, dec, fast)
    }

    fn roundtrip_scheme(scheme: Scheme, sample: &[Vec<u8>], keys: &[Vec<u8>]) {
        let (enc, dec, fast) = build(scheme, sample);
        let mut scratch = DecodeScratch::new();
        for key in keys {
            let e = enc.encode(key);
            assert_eq!(dec.decode(&e).as_deref(), Ok(key.as_slice()), "{scheme}: {key:?}");
            assert_eq!(dec.decode_to(&e, &mut scratch), Ok(key.as_slice()), "{scheme}");
            assert_eq!(fast.decode(&e).as_deref(), Ok(key.as_slice()), "{scheme}");
            assert_eq!(fast.decode_to(&e, &mut scratch), Ok(key.as_slice()), "{scheme}");
        }
        // Batch decode reproduces every key in order.
        let encoded: Vec<EncodedKey> = keys.iter().map(|k| enc.encode(k)).collect();
        let batch = fast.decode_batch_keys(&encoded, &mut scratch).expect("valid batch");
        assert_eq!(batch.len(), keys.len());
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(batch.get(i), key.as_slice(), "{scheme}: batch item {i}");
        }
        assert_eq!(batch.iter().count(), keys.len());
    }

    fn sample() -> Vec<Vec<u8>> {
        ["information", "informal", "informant", "covert", "cover", "coverage"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect()
    }

    #[test]
    fn lossless_roundtrip_all_schemes() {
        let s = sample();
        let keys: Vec<Vec<u8>> =
            ["info", "informant", "unseen-key", "c", "", "\u{0}\u{0}", "zzzz", "informationally"]
                .iter()
                .map(|s| s.as_bytes().to_vec())
                .collect();
        for scheme in Scheme::ALL {
            roundtrip_scheme(scheme, &s, &keys);
        }
    }

    #[test]
    fn rejects_prefix_violating_codes() {
        let codes = vec![Code::new(0b0, 1), Code::new(0b01, 2)];
        let symbols = vec![b"a".to_vec().into_boxed_slice(), b"b".to_vec().into_boxed_slice()];
        let r = std::panic::catch_unwind(|| Decoder::new(&codes, symbols));
        assert!(r.is_err());
    }

    #[test]
    fn corrupt_stream_detected_by_both_decoders() {
        let codes = vec![Code::new(0b10, 2), Code::new(0b11, 2)];
        let symbols = vec![b"x".to_vec().into_boxed_slice(), b"y".to_vec().into_boxed_slice()];
        let dec = Decoder::new(&codes, symbols.clone());
        let fast = FastDecoder::new(&codes, symbols, 8);
        let mut scratch = DecodeScratch::new();
        // "1" alone is a dangling half-code.
        let bad = EncodedKey::from_parts(vec![0b1000_0000], 1);
        assert_eq!(dec.decode(&bad), Err(HopeError::CorruptEncoding { bit_len: 1 }));
        assert!(fast.decode_to(&bad, &mut scratch).is_err());
        // "0" hits an absent branch.
        let bad = EncodedKey::from_parts(vec![0b0000_0000], 1);
        assert!(dec.decode(&bad).is_err());
        assert!(fast.decode_to(&bad, &mut scratch).is_err());
        // A full byte of absent branches exercises the table's invalid
        // entries (8 zero bits can never complete these codes).
        let bad = EncodedKey::from_parts(vec![0u8], 8);
        assert!(dec.decode(&bad).is_err());
        assert!(fast.decode(&bad).is_err());
        assert_eq!(
            fast.decode_batch(&[(&[0u8][..], 8)], &mut scratch),
            Err(HopeError::CorruptEncoding { bit_len: 8 })
        );
    }

    #[test]
    fn fast_decoder_budget_bounds_states() {
        let codes = crate::hu_tucker::fixed_len_codes(256);
        let symbols: Vec<Box<[u8]>> = (0..=255u8).map(|b| vec![b].into_boxed_slice()).collect();
        let full = FastDecoder::new(&codes, symbols.clone(), usize::MAX);
        let tiny = FastDecoder::new(&codes, symbols, 2);
        assert!(full.states() > tiny.states());
        assert_eq!(tiny.states(), 2);
        assert!(tiny.memory_bytes() < full.memory_bytes());
        // Both decode identically regardless of budget.
        let key = EncodedKey::from_parts(vec![0xAB, 0xCD], 16);
        assert_eq!(full.decode(&key).ok(), tiny.decode(&key).ok());
    }

    #[test]
    fn batch_view_accessors() {
        let codes = crate::hu_tucker::fixed_len_codes(256);
        let symbols: Vec<Box<[u8]>> = (0..=255u8).map(|b| vec![b].into_boxed_slice()).collect();
        let fast = FastDecoder::new(&codes, symbols, 64);
        let mut scratch = DecodeScratch::new();
        let batch = fast.decode_batch(&[], &mut scratch).unwrap();
        assert!(batch.is_empty());
        let keys = [EncodedKey::from_parts(vec![b'h', b'i'], 16)];
        let batch = fast.decode_batch_keys(&keys, &mut scratch).unwrap();
        assert!(!batch.is_empty());
        assert_eq!(batch.get(0), b"hi");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn random_keys_roundtrip(
            sample in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..16), 1..12),
            keys in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 1..24),
        ) {
            for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
                roundtrip_scheme(scheme, &sample, &keys);
            }
        }
    }
}
