//! # HOPE — High-speed Order-Preserving Encoder
//!
//! A from-scratch Rust reproduction of *"Order-Preserving Key Compression
//! for In-Memory Search Trees"* (Zhang et al., SIGMOD 2020).
//!
//! HOPE compresses arbitrary byte-string keys while preserving their
//! lexicographic order, so compressed keys can be stored directly in
//! order-sensitive structures (B+trees, tries, range filters) and still
//! support range queries. It samples an initial key set, selects dictionary
//! symbols according to one of six schemes, assigns order-preserving prefix
//! codes, and then encodes keys with a handful of dictionary lookups and bit
//! concatenations per key.
//!
//! ## Quick start
//!
//! ```
//! use hope::{Scheme, HopeBuilder};
//!
//! let sample: Vec<&[u8]> = vec![b"com.gmail@alice", b"com.gmail@bob", b"org.acm@carol"];
//! let hope = HopeBuilder::new(Scheme::DoubleChar)
//!     .build_from_sample(sample.iter().map(|k| k.to_vec()))
//!     .unwrap();
//!
//! let a = hope.encode(b"com.gmail@alice");
//! let b = hope.encode(b"com.gmail@bob");
//! assert!(a < b); // order preserved
//! ```
//!
//! ## Schemes (paper §3.3, Table 1)
//!
//! | Scheme | Category | Dictionary | Codes |
//! |---|---|---|---|
//! | [`Scheme::SingleChar`] | FIVC | 256-entry array | Hu-Tucker |
//! | [`Scheme::DoubleChar`] | FIVC | 65 792-entry array | Hu-Tucker |
//! | [`Scheme::Alm`] | VIFC | ART | fixed-length |
//! | [`Scheme::ThreeGrams`] | VIVC | bitmap-trie | Hu-Tucker |
//! | [`Scheme::FourGrams`] | VIVC | bitmap-trie | Hu-Tucker |
//! | [`Scheme::AlmImproved`] | VIVC | ART | Hu-Tucker |

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod axis;
pub mod bitpack;
pub mod builder;
pub mod code_assign;
pub mod codec;
pub mod decoder;
pub mod dict;
pub mod diff;
pub mod encoder;
pub mod fast_encoder;
pub mod hu_tucker;
pub mod index;
pub mod selector;
pub mod stats;

pub use bitpack::{Code, EncodedKey};
pub use builder::{BuildTimings, CodecStats, Hope, HopeBuilder, HopeError};
pub use codec::{IdentityCodec, KeyCodec, MAX_KEY_BYTES};
pub use decoder::{DecodeScratch, DecodedBatch, Decoder, FastDecoder};
pub use diff::EncodingDiff;
pub use encoder::{EncodeScratch, Encoder};
pub use fast_encoder::FastEncoder;
pub use index::{OrderedIndex, Value};
pub use selector::Scheme;

/// One-stop import for the v1 public API.
///
/// Pulls in the builder, the compressor, the unified codec surface, the
/// generic ordered-index contract and the reusable scratch types — the
/// names ~every embedding needs:
///
/// ```
/// use hope::prelude::*;
///
/// let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
/// let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample)?;
/// let mut enc = EncodeScratch::new();
/// let mut dec = DecodeScratch::new();
/// let bytes = hope.encode_to(b"com.gmail@carol", &mut enc)?.to_vec();
/// assert_eq!(hope.decode_to(&bytes, enc.bit_len(), &mut dec)?, b"com.gmail@carol");
/// # Ok::<(), HopeError>(())
/// ```
pub mod prelude {
    pub use crate::bitpack::EncodedKey;
    pub use crate::builder::{CodecStats, Hope, HopeBuilder, HopeError};
    pub use crate::codec::{IdentityCodec, KeyCodec, MAX_KEY_BYTES};
    pub use crate::decoder::{DecodeScratch, DecodedBatch, Decoder, FastDecoder};
    pub use crate::encoder::EncodeScratch;
    pub use crate::index::{OrderedIndex, Value};
    pub use crate::selector::Scheme;
}
