//! Bitmap-trie dictionary for the 3-Grams / 4-Grams schemes (§4.2,
//! Figure 6).
//!
//! Nodes live in a breadth-first array. Each node holds a 256-bit bitmap of
//! its branches plus base offsets; child addressing uses POPCNT over the
//! bitmap. Interval boundaries shorter than the gram length terminate early
//! (the paper's terminator character ∅), recorded by a per-node flag.
//!
//! A lookup is a *floor* search: walk down matching the source bytes,
//! remembering the best smaller boundary seen (terminator slots and the
//! rightmost leaf of any smaller sibling subtree) as a last resort for when
//! the walk falls off the trie.

use super::DictLookup;
use crate::axis::IntervalSet;
use crate::bitpack::Code;

/// One trie node: 256-bit branch bitmap + subtree bookkeeping.
#[derive(Debug, Clone)]
struct Node {
    bitmap: [u64; 4],
    /// Node index of the first child (children are consecutive in BFS
    /// order); meaningless at the deepest level, where branches are leaves.
    child_base: u32,
    /// First and one-past-last interval index in this node's subtree.
    leaf_base: u32,
    leaf_end: u32,
    /// True if a boundary ends exactly at this node (terminator ∅); that
    /// boundary is interval `leaf_base`.
    term: bool,
}

impl Node {
    fn empty() -> Self {
        Node { bitmap: [0; 4], child_base: 0, leaf_base: 0, leaf_end: 0, term: false }
    }

    #[inline]
    fn has(&self, label: u8) -> bool {
        self.bitmap[(label >> 6) as usize] >> (label & 63) & 1 == 1
    }

    #[inline]
    fn set(&mut self, label: u8) {
        self.bitmap[(label >> 6) as usize] |= 1 << (label & 63);
    }

    /// Number of set bits strictly below `label`.
    #[inline]
    fn rank(&self, label: u8) -> u32 {
        let word = (label >> 6) as usize;
        let mut r = 0;
        for w in &self.bitmap[..word] {
            r += w.count_ones();
        }
        let bit = label & 63;
        if bit > 0 {
            r += (self.bitmap[word] & ((1u64 << bit) - 1)).count_ones();
        }
        r
    }

    /// Largest set label strictly below `label`, if any.
    #[inline]
    fn prev_set(&self, label: u8) -> Option<u8> {
        let word = (label >> 6) as usize;
        let bit = label & 63;
        let masked = if bit == 0 { 0 } else { self.bitmap[word] & ((1u64 << bit) - 1) };
        if masked != 0 {
            return Some(((word as u32) * 64 + 63 - masked.leading_zeros()) as u8);
        }
        for w in (0..word).rev() {
            if self.bitmap[w] != 0 {
                return Some(((w as u32) * 64 + 63 - self.bitmap[w].leading_zeros()) as u8);
            }
        }
        None
    }
}

/// The bitmap-trie dictionary (Figure 6).
#[derive(Debug)]
pub struct BitmapTrieDict {
    nodes: Vec<Node>,
    /// Per-node first-child offsets are implicit in `child_base`; leaves are
    /// the interval indices themselves, payload in the arrays below.
    code_bits: Vec<u64>,
    code_len: Vec<u8>,
    sym_len: Vec<u8>,
    /// Gram length (trie depth): 3 or 4 in the paper, any >= 1 here.
    depth: usize,
}

impl BitmapTrieDict {
    /// Build from an interval set (all boundaries at most `N` bytes, as the
    /// n-gram selectors produce) and its assigned codes.
    pub fn build(set: &IntervalSet, codes: &[Code]) -> Self {
        assert_eq!(set.len(), codes.len());
        let depth = (0..set.len()).map(|i| set.boundary(i).len()).max().unwrap_or(1);
        let mut dict = BitmapTrieDict {
            nodes: Vec::new(),
            code_bits: codes.iter().map(|c| c.bits).collect(),
            code_len: codes.iter().map(|c| c.len).collect(),
            sym_len: (0..set.len())
                .map(|i| {
                    let l = set.symbol_len(i);
                    debug_assert!(l <= u8::MAX as usize);
                    l as u8
                })
                .collect(),
            depth,
        };

        // BFS construction: a work item is a contiguous boundary range
        // sharing its first `d` bytes.
        use std::collections::VecDeque;
        let mut queue: VecDeque<(usize, usize, usize)> = VecDeque::new(); // (lo, hi, d)
        queue.push_back((0, set.len(), 0));
        let mut next_node_id: usize = 1;
        while let Some((lo, hi, d)) = queue.pop_front() {
            let mut node = Node::empty();
            node.leaf_base = lo as u32;
            node.leaf_end = hi as u32;
            node.term = set.boundary(lo).len() == d;
            let start = lo + node.term as usize;
            // Group the remaining boundaries by their byte at position d.
            let mut i = start;
            let mut first_child = true;
            while i < hi {
                let label = set.boundary(i)[d];
                let mut j = i + 1;
                while j < hi && set.boundary(j)[d] == label {
                    j += 1;
                }
                node.set(label);
                if d + 1 == depth {
                    // Deepest level: branches are leaves (full-length
                    // boundaries); uniqueness follows from strict sorting.
                    debug_assert_eq!(j - i, 1, "duplicate full-length boundary");
                    debug_assert_eq!(set.boundary(i).len(), depth);
                } else {
                    if first_child {
                        node.child_base = next_node_id as u32;
                        first_child = false;
                    }
                    next_node_id += 1;
                    queue.push_back((i, j, d + 1));
                }
                i = j;
            }
            dict.nodes.push(node);
        }
        debug_assert_eq!(dict.nodes.len(), next_node_id);
        dict
    }

    /// Index of the child node reached via `label` from `node`.
    #[inline]
    fn child(&self, node: &Node, label: u8) -> usize {
        node.child_base as usize + node.rank(label) as usize
    }

    /// Interval index of the leaf reached via `label` at the deepest level.
    #[inline]
    fn leaf_at(&self, node: &Node, label: u8) -> usize {
        node.leaf_base as usize + node.term as usize + node.rank(label) as usize
    }

    /// Rightmost interval index in the subtree hanging off `label`.
    #[inline]
    fn branch_max(&self, node: &Node, label: u8, d: usize) -> usize {
        if d + 1 == self.depth {
            self.leaf_at(node, label)
        } else {
            self.nodes[self.child(node, label)].leaf_end as usize - 1
        }
    }

    #[inline]
    fn payload(&self, i: usize) -> (Code, usize) {
        (Code { bits: self.code_bits[i], len: self.code_len[i] }, self.sym_len[i] as usize)
    }

    /// Trie depth (gram length).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of trie nodes (for memory analysis).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DictLookup for BitmapTrieDict {
    #[inline]
    fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        let mut last_resort = usize::MAX;
        let mut node = &self.nodes[0];
        let mut d = 0usize;
        loop {
            if d >= src.len() {
                // Source exhausted: exact boundary iff terminator.
                let i = if node.term { node.leaf_base as usize } else { last_resort };
                debug_assert_ne!(i, usize::MAX, "no floor boundary for {src:?}");
                return self.payload(i);
            }
            let c = src[d];
            if node.term {
                last_resort = node.leaf_base as usize;
            }
            if let Some(below) = node.prev_set(c) {
                last_resort = self.branch_max(node, below, d);
            }
            if node.has(c) {
                if d + 1 == self.depth {
                    return self.payload(self.leaf_at(node, c));
                }
                node = &self.nodes[self.child(node, c)];
                d += 1;
            } else {
                debug_assert_ne!(last_resort, usize::MAX, "no floor boundary for {src:?}");
                return self.payload(last_resort);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.code_bits.len() * 8
            + self.code_len.len()
            + self.sym_len.len()
    }

    fn num_entries(&self) -> usize {
        self.code_bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::sorted_dict::SortedDict;
    use crate::hu_tucker::fixed_len_codes;
    use proptest::prelude::*;

    fn build_pair(patterns: &[&[u8]]) -> (BitmapTrieDict, SortedDict) {
        let pats: Vec<Vec<u8>> = patterns.iter().map(|p| p.to_vec()).collect();
        let set = IntervalSet::from_patterns(&pats);
        let codes = fixed_len_codes(set.len());
        (BitmapTrieDict::build(&set, &codes), SortedDict::build(&set, &codes))
    }

    #[test]
    fn basic_three_gram_lookups() {
        let (trie, base) = build_pair(&[b"ing", b"ion"]);
        for probe in [
            b"ingest".as_slice(),
            b"inz",
            b"ion",
            b"io",
            b"i",
            b"a",
            b"zzz",
            b"\x00",
            b"\xff\xff\xff\xff",
        ] {
            assert_eq!(trie.lookup(probe), base.lookup(probe), "probe {probe:?}");
        }
    }

    #[test]
    fn exhausted_source_hits_terminator() {
        let (trie, base) = build_pair(&[b"abc"]);
        // probe "ab": shorter than any pattern; must hit the [a, abc) gap
        // boundary ("a" with symbol "a").
        assert_eq!(trie.lookup(b"ab"), base.lookup(b"ab"));
        let (_, consumed) = trie.lookup(b"ab");
        assert_eq!(consumed, 1);
    }

    #[test]
    fn node_bit_operations() {
        let mut n = Node::empty();
        n.set(0);
        n.set(63);
        n.set(64);
        n.set(255);
        assert!(n.has(0) && n.has(63) && n.has(64) && n.has(255));
        assert!(!n.has(100));
        assert_eq!(n.rank(0), 0);
        assert_eq!(n.rank(64), 2);
        assert_eq!(n.rank(255), 3);
        assert_eq!(n.prev_set(255), Some(64));
        assert_eq!(n.prev_set(64), Some(63));
        assert_eq!(n.prev_set(0), None);
        assert_eq!(n.prev_set(1), Some(0));
    }

    #[test]
    fn depth_matches_longest_boundary() {
        let (trie, _) = build_pair(&[b"abcd", b"abce"]);
        assert_eq!(trie.depth(), 4);
        let (trie, _) = build_pair(&[]);
        assert_eq!(trie.depth(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn trie_matches_binary_search(
            pats in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 3), 0..60),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..8), 1..60),
        ) {
            let pats: Vec<Vec<u8>> = pats.into_iter().collect();
            let set = IntervalSet::from_patterns(&pats);
            let codes = fixed_len_codes(set.len());
            let trie = BitmapTrieDict::build(&set, &codes);
            let base = SortedDict::build(&set, &codes);
            for p in &probes {
                prop_assert_eq!(trie.lookup(p), base.lookup(p), "probe {:?}", p);
            }
        }
    }
}
