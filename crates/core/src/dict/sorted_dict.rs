//! Binary-search dictionary: the baseline the paper compares the bitmap
//! trie against (§4.2 reports the trie is ~2.3× faster). Also serves as the
//! reference implementation the fast structures are differential-tested
//! against.

use super::DictLookup;
use crate::axis::IntervalSet;
use crate::bitpack::Code;

/// Sorted boundary list + parallel code/symbol-length arrays; floor lookup
/// by binary search.
#[derive(Debug)]
pub struct SortedDict {
    boundaries: Vec<Box<[u8]>>,
    code_bits: Vec<u64>,
    code_len: Vec<u8>,
    sym_len: Vec<u16>,
}

impl SortedDict {
    /// Build from an interval set and its assigned codes.
    pub fn build(set: &IntervalSet, codes: &[Code]) -> Self {
        assert_eq!(set.len(), codes.len());
        SortedDict {
            boundaries: (0..set.len()).map(|i| set.boundary(i).into()).collect(),
            code_bits: codes.iter().map(|c| c.bits).collect(),
            code_len: codes.iter().map(|c| c.len).collect(),
            sym_len: (0..set.len()).map(|i| set.symbol_len(i) as u16).collect(),
        }
    }
}

impl DictLookup for SortedDict {
    #[inline]
    fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        let idx = self.boundaries.partition_point(|b| b.as_ref() <= src);
        debug_assert!(idx > 0, "source below the first boundary");
        let i = idx - 1;
        (Code { bits: self.code_bits[i], len: self.code_len[i] }, self.sym_len[i] as usize)
    }

    fn memory_bytes(&self) -> usize {
        let boundary_bytes: usize =
            self.boundaries.iter().map(|b| b.len() + std::mem::size_of::<Box<[u8]>>()).sum();
        boundary_bytes + self.code_bits.len() * 8 + self.code_len.len() + self.sym_len.len() * 2
    }

    fn num_entries(&self) -> usize {
        self.boundaries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hu_tucker::fixed_len_codes;

    #[test]
    fn floor_semantics() {
        let set = IntervalSet::from_patterns(&[b"ing".to_vec(), b"ion".to_vec()]);
        let codes = fixed_len_codes(set.len());
        let d = SortedDict::build(&set, &codes);
        // "ingest" falls in [ing, inh) and consumes 3 bytes.
        let (_, consumed) = d.lookup(b"ingest");
        assert_eq!(consumed, 3);
        // "inz" falls in the gap [inh, ion): symbol "i".
        let (_, consumed) = d.lookup(b"inz");
        assert_eq!(consumed, 1);
    }

    #[test]
    fn memory_counts_boundary_bytes() {
        let set = IntervalSet::from_patterns(&[]);
        let codes = fixed_len_codes(set.len());
        let d = SortedDict::build(&set, &codes);
        assert!(d.memory_bytes() > 256 * 9);
        assert_eq!(d.num_entries(), 256);
    }
}
