//! Array dictionaries for the fixed-interval schemes (§4.2).
//!
//! The dictionary symbols and interval boundaries are implied by array
//! offsets, so an entry stores only the code. Matching the paper, an entry
//! is an 8-bit code length plus a 32-bit code; if Hu-Tucker ever emits a
//! code longer than 32 bits (possible only under extreme skew) the array
//! transparently widens to 64-bit storage.

use super::DictLookup;
use crate::bitpack::Code;
use crate::selector::double_char::{double_char_slot, DOUBLE_CHAR_ENTRIES};

/// Code storage shared by both array dictionaries: parallel `bits`/`len`
/// arrays, 32-bit entries in the common case.
#[derive(Debug)]
enum CodeArray {
    Narrow { bits: Vec<u32>, len: Vec<u8> },
    Wide { bits: Vec<u64>, len: Vec<u8> },
}

impl CodeArray {
    fn new(codes: &[Code]) -> Self {
        let len: Vec<u8> = codes.iter().map(|c| c.len).collect();
        if codes.iter().all(|c| c.len <= 32) {
            CodeArray::Narrow { bits: codes.iter().map(|c| c.bits as u32).collect(), len }
        } else {
            CodeArray::Wide { bits: codes.iter().map(|c| c.bits).collect(), len }
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Code {
        match self {
            CodeArray::Narrow { bits, len } => Code { bits: bits[i] as u64, len: len[i] },
            CodeArray::Wide { bits, len } => Code { bits: bits[i], len: len[i] },
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            CodeArray::Narrow { bits, len } => bits.len() * 4 + len.len(),
            CodeArray::Wide { bits, len } => bits.len() * 8 + len.len(),
        }
    }
}

/// 256-entry array dictionary for Single-Char: the lookup is a single
/// (L1-resident) array access.
#[derive(Debug)]
pub struct SingleCharDict {
    codes: CodeArray,
}

impl SingleCharDict {
    /// Wrap the 256 per-byte codes.
    pub fn new(codes: &[Code]) -> Self {
        assert_eq!(codes.len(), 256, "Single-Char dictionary must have 256 entries");
        SingleCharDict { codes: CodeArray::new(codes) }
    }

    /// Code stored at `slot` (the leading byte value). Used to materialize
    /// the [`FastEncoder`](crate::fast_encoder::FastEncoder) fused table.
    #[inline]
    pub fn code(&self, slot: usize) -> Code {
        self.codes.get(slot)
    }
}

impl DictLookup for SingleCharDict {
    #[inline]
    fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        (self.codes.get(src[0] as usize), 1)
    }

    fn memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }

    fn num_entries(&self) -> usize {
        256
    }
}

/// 65 792-entry array dictionary for Double-Char, with one terminator slot
/// per leading byte (see [`crate::selector::double_char`] for the layout).
#[derive(Debug)]
pub struct DoubleCharDict {
    codes: CodeArray,
}

impl DoubleCharDict {
    /// Wrap the 256·257 per-pair codes.
    pub fn new(codes: &[Code]) -> Self {
        assert_eq!(
            codes.len(),
            DOUBLE_CHAR_ENTRIES,
            "Double-Char dictionary must have 256*257 entries"
        );
        DoubleCharDict { codes: CodeArray::new(codes) }
    }

    /// Code stored at `slot` (`b0*257` for the terminator interval,
    /// `b0*257 + b1 + 1` for the pair `b0 b1` — see
    /// [`crate::selector::double_char`]). Used to materialize the
    /// [`FastEncoder`](crate::fast_encoder::FastEncoder) fused table.
    #[inline]
    pub fn code(&self, slot: usize) -> Code {
        self.codes.get(slot)
    }
}

impl DictLookup for DoubleCharDict {
    #[inline]
    fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        let slot = double_char_slot(src);
        (self.codes.get(slot), if src.len() >= 2 { 2 } else { 1 })
    }

    fn memory_bytes(&self) -> usize {
        self.codes.memory_bytes()
    }

    fn num_entries(&self) -> usize {
        DOUBLE_CHAR_ENTRIES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_codes(n: usize) -> Vec<Code> {
        crate::hu_tucker::fixed_len_codes(n)
    }

    #[test]
    fn single_char_lookup_is_byte_indexed() {
        let d = SingleCharDict::new(&fixed_codes(256));
        let (c, consumed) = d.lookup(b"az");
        assert_eq!(consumed, 1);
        assert_eq!(c.bits, b'a' as u64);
        assert_eq!(d.num_entries(), 256);
    }

    #[test]
    fn single_char_memory_matches_paper_entry_size() {
        // 8-bit length + 32-bit code per entry.
        let d = SingleCharDict::new(&fixed_codes(256));
        assert_eq!(d.memory_bytes(), 256 * 5);
    }

    #[test]
    fn double_char_consumes_two_bytes_when_available() {
        let d = DoubleCharDict::new(&fixed_codes(DOUBLE_CHAR_ENTRIES));
        let (c, consumed) = d.lookup(b"aa rest");
        assert_eq!(consumed, 2);
        assert_eq!(c.bits, 97 * 257 + 97 + 1);
        let (c, consumed) = d.lookup(b"a");
        assert_eq!(consumed, 1);
        assert_eq!(c.bits, 97 * 257);
    }

    #[test]
    fn wide_storage_kicks_in_for_long_codes() {
        let mut codes = fixed_codes(256);
        codes[255] = Code::new(0x1_FFFF_FFFF, 40);
        let d = SingleCharDict::new(&codes);
        let (c, _) = d.lookup(b"\xff");
        assert_eq!(c.len, 40);
        assert_eq!(c.bits, 0x1_FFFF_FFFF);
        assert_eq!(d.memory_bytes(), 256 * 9);
    }
}
