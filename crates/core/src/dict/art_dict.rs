//! ART-based dictionary for the ALM / ALM-Improved schemes (§4.2).
//!
//! The paper modifies the Adaptive Radix Tree in three ways to make it a
//! HOPE dictionary, all reproduced here:
//!
//! 1. **prefix keys** — a boundary may end at an inner node (`abc` and
//!    `abcd` can both be boundaries), handled by a per-node terminator slot;
//! 2. **no optimistic common-prefix skipping** — nodes store their full
//!    compressed path, because there is no tuple to verify against;
//! 3. **leaves hold dictionary entries** — `(code, symbol length)` instead
//!    of tuple pointers.
//!
//! Like the other dictionary structures, the lookup is a floor search over
//! the interval boundaries, tracking a last-resort entry while descending.

use super::DictLookup;
use crate::axis::IntervalSet;
use crate::bitpack::Code;

/// Adaptive node children, mirroring ART's Node4/16/48/256 layouts.
#[derive(Debug)]
enum Children {
    /// Up to 4 children: parallel label/pointer arrays, linear search.
    N4 { count: u8, labels: [u8; 4], ptrs: [u32; 4] },
    /// Up to 16 children: parallel arrays, linear (SIMD in the original).
    N16 { count: u8, labels: [u8; 16], ptrs: [u32; 16] },
    /// Up to 48 children: 256-entry index into a pointer array.
    N48 { index: Box<[u8; 256]>, ptrs: Box<[u32; 48]> },
    /// Full fan-out: direct pointer array.
    N256 { ptrs: Box<[u32; 256]> },
}

const NO_CHILD: u32 = u32::MAX;
const NO_SLOT: u8 = 0xFF;

impl Children {
    fn build(pairs: &[(u8, u32)]) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        match pairs.len() {
            0..=4 => {
                let mut labels = [0u8; 4];
                let mut ptrs = [NO_CHILD; 4];
                for (i, &(l, p)) in pairs.iter().enumerate() {
                    labels[i] = l;
                    ptrs[i] = p;
                }
                Children::N4 { count: pairs.len() as u8, labels, ptrs }
            }
            5..=16 => {
                let mut labels = [0u8; 16];
                let mut ptrs = [NO_CHILD; 16];
                for (i, &(l, p)) in pairs.iter().enumerate() {
                    labels[i] = l;
                    ptrs[i] = p;
                }
                Children::N16 { count: pairs.len() as u8, labels, ptrs }
            }
            17..=48 => {
                let mut index = Box::new([NO_SLOT; 256]);
                let mut ptrs = Box::new([NO_CHILD; 48]);
                for (i, &(l, p)) in pairs.iter().enumerate() {
                    index[l as usize] = i as u8;
                    ptrs[i] = p;
                }
                Children::N48 { index, ptrs }
            }
            _ => {
                let mut ptrs = Box::new([NO_CHILD; 256]);
                for &(l, p) in pairs {
                    ptrs[l as usize] = p;
                }
                Children::N256 { ptrs }
            }
        }
    }

    /// Child pointer for `label`, if present.
    #[inline]
    fn get(&self, label: u8) -> Option<u32> {
        match self {
            Children::N4 { count, labels, ptrs } => {
                labels[..*count as usize].iter().position(|&l| l == label).map(|i| ptrs[i])
            }
            Children::N16 { count, labels, ptrs } => {
                labels[..*count as usize].iter().position(|&l| l == label).map(|i| ptrs[i])
            }
            Children::N48 { index, ptrs } => {
                let slot = index[label as usize];
                (slot != NO_SLOT).then(|| ptrs[slot as usize])
            }
            Children::N256 { ptrs } => {
                let p = ptrs[label as usize];
                (p != NO_CHILD).then_some(p)
            }
        }
    }

    /// Child with the largest label strictly below `label`, if any.
    #[inline]
    fn prev_below(&self, label: u8) -> Option<u32> {
        match self {
            Children::N4 { count, labels, ptrs } => {
                prev_in_sorted(&labels[..*count as usize], ptrs, label)
            }
            Children::N16 { count, labels, ptrs } => {
                prev_in_sorted(&labels[..*count as usize], ptrs, label)
            }
            Children::N48 { index, ptrs } => (0..label)
                .rev()
                .find(|&l| index[l as usize] != NO_SLOT)
                .map(|l| ptrs[index[l as usize] as usize]),
            Children::N256 { ptrs } => {
                (0..label).rev().map(|l| ptrs[l as usize]).find(|&p| p != NO_CHILD)
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Children::N4 { .. } | Children::N16 { .. } => 0, // inline in node
            Children::N48 { .. } => 256 + 48 * 4,
            Children::N256 { .. } => 256 * 4,
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Children::N4 { .. } => "Node4",
            Children::N16 { .. } => "Node16",
            Children::N48 { .. } => "Node48",
            Children::N256 { .. } => "Node256",
        }
    }
}

#[inline]
fn prev_in_sorted(labels: &[u8], ptrs: &[u32], label: u8) -> Option<u32> {
    let idx = labels.partition_point(|&l| l < label);
    (idx > 0).then(|| ptrs[idx - 1])
}

/// Inner node: full compressed path + optional terminator + children.
#[derive(Debug)]
struct ArtNode {
    /// Full path bytes below the parent's branch label (modification 2:
    /// never truncated).
    prefix: Box<[u8]>,
    /// Interval index of a boundary ending exactly at this node
    /// (modification 1: prefix-key support).
    term: Option<u32>,
    children: Children,
    /// Largest interval index in this subtree (floor fallback target).
    leaf_max: u32,
}

/// The ART-based dictionary.
#[derive(Debug)]
pub struct ArtDict {
    nodes: Vec<ArtNode>,
    code_bits: Vec<u64>,
    code_len: Vec<u8>,
    sym_len: Vec<u16>,
}

impl ArtDict {
    /// Build from an interval set and its assigned codes.
    pub fn build(set: &IntervalSet, codes: &[Code]) -> Self {
        assert_eq!(set.len(), codes.len());
        let mut dict = ArtDict {
            nodes: Vec::new(),
            code_bits: codes.iter().map(|c| c.bits).collect(),
            code_len: codes.iter().map(|c| c.len).collect(),
            sym_len: (0..set.len()).map(|i| set.symbol_len(i) as u16).collect(),
        };
        dict.build_node(set, 0, set.len(), 0);
        dict
    }

    /// Recursively build the subtree for boundaries[lo..hi], which share
    /// their first `depth` bytes. Returns the node index.
    fn build_node(&mut self, set: &IntervalSet, lo: usize, hi: usize, depth: usize) -> u32 {
        debug_assert!(lo < hi);
        // Common path below `depth`: the lcp of the first and last boundary,
        // clipped to the shortest boundary in range (which, sorted, is the
        // first one whenever it ends inside the common path).
        let first = set.boundary(lo);
        let last = set.boundary(hi - 1);
        let mut ext = crate::axis::lcp_len(&first[depth..], &last[depth..]);
        ext = ext.min(first.len() - depth);
        let prefix: Box<[u8]> = first[depth..depth + ext].into();
        let d2 = depth + ext;

        let term = (first.len() == d2).then_some(lo as u32);
        let start = lo + term.is_some() as usize;

        let id = self.nodes.len();
        // Reserve the slot so children get higher indices (parents first).
        self.nodes.push(ArtNode {
            prefix,
            term,
            children: Children::build(&[]),
            leaf_max: (hi - 1) as u32,
        });

        let mut pairs: Vec<(u8, u32)> = Vec::new();
        let mut i = start;
        while i < hi {
            let label = set.boundary(i)[d2];
            let mut j = i + 1;
            while j < hi && set.boundary(j)[d2] == label {
                j += 1;
            }
            let child = self.build_node(set, i, j, d2 + 1);
            pairs.push((label, child));
            i = j;
        }
        self.nodes[id].children = Children::build(&pairs);
        id as u32
    }

    #[inline]
    fn payload(&self, i: usize) -> (Code, usize) {
        (Code { bits: self.code_bits[i], len: self.code_len[i] }, self.sym_len[i] as usize)
    }

    /// Number of tree nodes (for memory analysis / tests).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Count of nodes per adaptive kind, for diagnostics.
    pub fn node_kind_histogram(&self) -> [(String, usize); 4] {
        let mut h = std::collections::HashMap::new();
        for n in &self.nodes {
            *h.entry(n.children.kind_name()).or_insert(0usize) += 1;
        }
        ["Node4", "Node16", "Node48", "Node256"]
            .map(|k| (k.to_string(), h.get(k).copied().unwrap_or(0)))
    }
}

impl DictLookup for ArtDict {
    fn lookup(&self, src: &[u8]) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        let mut last_resort = usize::MAX;
        let mut node = &self.nodes[0];
        let mut pos = 0usize;
        loop {
            // Match the compressed path.
            let pfx = &node.prefix;
            let avail = src.len() - pos;
            let m = crate::axis::lcp_len(pfx, &src[pos..]);
            if m < pfx.len() {
                let result = if m == avail {
                    // Source exhausted inside the path: src < every
                    // boundary in this subtree.
                    last_resort
                } else if src[pos + m] > pfx[m] {
                    // Source above the whole subtree.
                    node.leaf_max as usize
                } else {
                    last_resort
                };
                debug_assert_ne!(result, usize::MAX, "no floor for {src:?}");
                return self.payload(result);
            }
            pos += pfx.len();
            if pos == src.len() {
                // Ended exactly at this node.
                let i = node.term.map(|t| t as usize).unwrap_or(last_resort);
                debug_assert_ne!(i, usize::MAX, "no floor for {src:?}");
                return self.payload(i);
            }
            if let Some(t) = node.term {
                last_resort = t as usize;
            }
            let c = src[pos];
            if let Some(below) = node.children.prev_below(c) {
                last_resort = self.nodes[below as usize].leaf_max as usize;
            }
            match node.children.get(c) {
                Some(child) => {
                    node = &self.nodes[child as usize];
                    pos += 1;
                }
                None => {
                    debug_assert_ne!(last_resort, usize::MAX, "no floor for {src:?}");
                    return self.payload(last_resort);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| std::mem::size_of::<ArtNode>() + n.prefix.len() + n.children.memory_bytes())
            .sum();
        node_bytes + self.code_bits.len() * 8 + self.code_len.len() + self.sym_len.len() * 2
    }

    fn num_entries(&self) -> usize {
        self.code_bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::sorted_dict::SortedDict;
    use crate::hu_tucker::fixed_len_codes;
    use proptest::prelude::*;

    fn build_pair(patterns: &[&[u8]]) -> (ArtDict, SortedDict) {
        let pats: Vec<Vec<u8>> = patterns.iter().map(|p| p.to_vec()).collect();
        let set = IntervalSet::from_patterns(&pats);
        let codes = fixed_len_codes(set.len());
        (ArtDict::build(&set, &codes), SortedDict::build(&set, &codes))
    }

    #[test]
    fn variable_length_boundaries() {
        // Patterns as in Figure 4c (the "t" symbol there arises from gap
        // filling between "sion" and "tion", not as a selected pattern).
        let (art, base) = build_pair(&[b"sion", b"tion"]);
        for probe in [
            b"sionx".as_slice(),
            b"sio",
            b"tiona",
            b"tz",
            b"s",
            b"sz",
            b"a",
            b"zzzz",
            b"\x00\x00",
            b"\xff",
        ] {
            assert_eq!(art.lookup(probe), base.lookup(probe), "probe {probe:?}");
        }
    }

    #[test]
    fn prefix_key_boundaries_supported() {
        // After gap filling, "si" (gap) and "sing"/"sion" (patterns)
        // coexist; "si" is a prefix of both — the paper's modification 1.
        let (art, base) = build_pair(&[b"sing", b"sion"]);
        for probe in [b"si".as_slice(), b"sing", b"singer", b"sio", b"sionx", b"sh"] {
            assert_eq!(art.lookup(probe), base.lookup(probe), "probe {probe:?}");
        }
    }

    #[test]
    fn adaptive_node_kinds() {
        // 256 single-byte boundaries at the root -> Node256 root.
        let (art, _) = build_pair(&[]);
        let hist = art.node_kind_histogram();
        assert_eq!(hist[3].1, 1, "{hist:?}"); // one Node256 (the root)
    }

    #[test]
    fn children_prev_below() {
        let pairs = vec![(5u8, 50u32), (9, 90), (200, 2000)];
        for kind_size in [3usize, 10, 30, 100] {
            let mut ps = pairs.clone();
            // pad with extra labels to force different node kinds
            for l in 0..kind_size.saturating_sub(3) {
                ps.push((100 + l as u8, l as u32));
            }
            ps.sort_unstable();
            let ch = Children::build(&ps);
            assert_eq!(ch.get(5), Some(50));
            assert_eq!(ch.get(6), None);
            assert_eq!(ch.prev_below(5), None);
            assert_eq!(ch.prev_below(6), Some(50));
            assert_eq!(ch.prev_below(10), Some(90));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn art_matches_binary_search(
            raw in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 1..8), 0..60),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..12), 1..60),
        ) {
            let all: Vec<Vec<u8>> = raw.iter().cloned().collect();
            let pats: Vec<Vec<u8>> = all
                .iter()
                .filter(|p| !all.iter().any(|q| q.as_slice() != p.as_slice() && q.starts_with(p)))
                .cloned()
                .collect();
            let set = IntervalSet::from_patterns(&pats);
            let codes = fixed_len_codes(set.len());
            let art = ArtDict::build(&set, &codes);
            let base = SortedDict::build(&set, &codes);
            for p in &probes {
                prop_assert_eq!(art.lookup(p), base.lookup(p), "probe {:?}", p);
            }
        }
    }
}
