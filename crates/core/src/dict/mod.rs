//! Dictionary data structures (§4.2): map a source suffix to the interval
//! containing it, returning the interval's code and symbol length.
//!
//! Because intervals are connected and disjoint, a dictionary stores only
//! the left boundary of each interval; a lookup is a *floor* ("greater than
//! or equal to") search. Three structures are implemented, matching
//! Table 1, plus a binary-search baseline used for testing and for the
//! §4.2 ablation ("2.3× faster than binary-searching the entries"):
//!
//! * [`array_dict`] — O(1) arrays for Single-Char / Double-Char;
//! * [`bitmap_trie`] — succinct bitmap trie for 3-Grams / 4-Grams;
//! * [`art_dict`] — ART variant for ALM / ALM-Improved (prefix keys, full
//!   prefixes, leaves store codes);
//! * [`sorted_dict`] — binary search over the boundary list (baseline).
//!
//! Every dictionary additionally feeds a [`crate::fast_encoder::FastEncoder`]
//! fast path on the encode side: the array dictionaries collapse into a
//! fused code table (one dense load per symbol), and the trie structures
//! flatten into a prefix-automaton transition table built from the same
//! interval division. The generic walk below remains the reference
//! implementation and resolves the automaton's fallback edges.
//!
//! ```
//! use hope::{HopeBuilder, Scheme};
//!
//! let sample = vec![b"com.gmail@a".to_vec(), b"com.gmail@b".to_vec()];
//! let hope = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample).unwrap();
//! // A lookup returns the interval's code and the bytes it consumes.
//! let (code, consumed) = hope.encoder().dict().lookup(b"com");
//! assert_eq!(consumed, 1);          // Single-Char consumes one byte
//! assert!(code.len >= 1);           // ...emitting that byte's prefix code
//! ```

pub mod array_dict;
pub mod art_dict;
pub mod bitmap_trie;
pub mod sorted_dict;

use crate::axis::IntervalSet;
use crate::bitpack::Code;
use crate::selector::Scheme;

pub use array_dict::{DoubleCharDict, SingleCharDict};
pub use art_dict::ArtDict;
pub use bitmap_trie::BitmapTrieDict;
pub use sorted_dict::SortedDict;

/// Common interface of every dictionary structure.
pub trait DictLookup {
    /// Find the interval containing the (non-empty) source suffix; return
    /// the interval's code and its symbol length (bytes consumed).
    fn lookup(&self, src: &[u8]) -> (Code, usize);

    /// Bytes of memory used by the structure.
    fn memory_bytes(&self) -> usize;

    /// Number of dictionary entries (intervals).
    fn num_entries(&self) -> usize;
}

/// Static-dispatch wrapper over the concrete dictionary structures (keeps
/// the per-symbol lookup free of virtual calls on the encode hot path).
#[derive(Debug)]
pub enum Dict {
    /// 256-entry array (Single-Char).
    Single(SingleCharDict),
    /// 65 792-entry array (Double-Char).
    Double(DoubleCharDict),
    /// Bitmap trie (3-Grams / 4-Grams).
    Bitmap(BitmapTrieDict),
    /// ART-based (ALM / ALM-Improved).
    Art(ArtDict),
    /// Binary-search baseline.
    Sorted(SortedDict),
}

impl Dict {
    /// Build the Table-1 dictionary structure for `scheme`.
    pub fn build(scheme: Scheme, set: &IntervalSet, codes: &[Code]) -> Dict {
        assert_eq!(set.len(), codes.len());
        match scheme {
            Scheme::SingleChar => Dict::Single(SingleCharDict::new(codes)),
            Scheme::DoubleChar => Dict::Double(DoubleCharDict::new(codes)),
            Scheme::ThreeGrams | Scheme::FourGrams => {
                Dict::Bitmap(BitmapTrieDict::build(set, codes))
            }
            Scheme::Alm | Scheme::AlmImproved => Dict::Art(ArtDict::build(set, codes)),
        }
    }

    /// See [`DictLookup::lookup`].
    #[inline]
    pub fn lookup(&self, src: &[u8]) -> (Code, usize) {
        match self {
            Dict::Single(d) => d.lookup(src),
            Dict::Double(d) => d.lookup(src),
            Dict::Bitmap(d) => d.lookup(src),
            Dict::Art(d) => d.lookup(src),
            Dict::Sorted(d) => d.lookup(src),
        }
    }

    /// See [`DictLookup::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        match self {
            Dict::Single(d) => d.memory_bytes(),
            Dict::Double(d) => d.memory_bytes(),
            Dict::Bitmap(d) => d.memory_bytes(),
            Dict::Art(d) => d.memory_bytes(),
            Dict::Sorted(d) => d.memory_bytes(),
        }
    }

    /// See [`DictLookup::num_entries`].
    pub fn num_entries(&self) -> usize {
        match self {
            Dict::Single(d) => d.num_entries(),
            Dict::Double(d) => d.num_entries(),
            Dict::Bitmap(d) => d.num_entries(),
            Dict::Art(d) => d.num_entries(),
            Dict::Sorted(d) => d.num_entries(),
        }
    }

    /// Name of the underlying structure (for reports).
    pub fn kind(&self) -> &'static str {
        match self {
            Dict::Single(_) | Dict::Double(_) => "Array",
            Dict::Bitmap(_) => "Bitmap-Trie",
            Dict::Art(_) => "ART-based",
            Dict::Sorted(_) => "Sorted-Array",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::selector;
    use proptest::prelude::*;

    /// Every concrete dictionary must agree with the binary-search baseline
    /// on every lookup — the key differential test of this module.
    fn check_against_baseline(scheme: Scheme, sample: &[Vec<u8>], probes: &[Vec<u8>]) {
        let set = selector::select_intervals(scheme, sample, 128).unwrap();
        let weights = selector::access_weights(&set, sample);
        let codes = CodeAssigner::HuTucker.assign(&weights);
        let fast = Dict::build(scheme, &set, &codes);
        let base = SortedDict::build(&set, &codes);
        assert_eq!(fast.num_entries(), base.num_entries());
        for p in probes {
            if p.is_empty() {
                continue;
            }
            let got = fast.lookup(p);
            let want = base.lookup(p);
            assert_eq!(got, want, "{scheme}: lookup({p:?})");
        }
    }

    fn words() -> Vec<Vec<u8>> {
        [
            "singing",
            "ringing",
            "kingdom",
            "sting",
            "ingest",
            "winging",
            "com.gmail@a",
            "com.gmail@b",
            "com.yahoo@c",
            "org.acm@d",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect()
    }

    #[test]
    fn all_dicts_match_baseline_on_fixed_probes() {
        let sample = words();
        let probes: Vec<Vec<u8>> = [
            "a",
            "ing",
            "inging",
            "com.gmail@zzz",
            "zzz",
            "\u{0}",
            "q",
            "com",
            "con",
            "cz",
            "i",
            "in",
            "kingdoms",
            "\u{7f}\u{7f}",
        ]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
        for scheme in Scheme::ALL {
            check_against_baseline(scheme, &sample, &probes);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn dicts_match_baseline_on_random_probes(
            sample in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..20), 1..20),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..24), 1..40),
        ) {
            for scheme in [Scheme::ThreeGrams, Scheme::FourGrams, Scheme::AlmImproved] {
                check_against_baseline(scheme, &sample, &probes);
            }
        }
    }
}
