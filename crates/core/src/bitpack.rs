//! Bit-level code representation and the fast non-byte-aligned code
//! concatenation described in §4.2 of the paper ("Encoder").
//!
//! Codes are kept in 64-bit buffers; appending a code is a shift, an OR, and
//! an occasional spill into the output vector — a few cycles per code.
//!
//! [`BitWriter`] is the reusable staging buffer every encode path appends
//! into. Hot paths keep one alive and drain it with
//! [`BitWriter::finish_into`], which hands back the padded bytes without
//! giving up the allocation:
//!
//! ```
//! use hope::bitpack::{BitWriter, Code};
//!
//! let mut w = BitWriter::new();
//! let mut buf = Vec::new();
//! for key in [&b"ab"[..], b"ba"] {
//!     for &b in key {
//!         w.put(Code::new(b as u64, 8));
//!     }
//!     let bits = w.finish_into(&mut buf); // writer reset, allocation kept
//!     assert_eq!((buf.as_slice(), bits), (key, 16));
//! }
//! ```

/// A prefix code: up to 64 bits, stored right-aligned in `bits`.
///
/// Order-preserving schemes assign monotonically increasing codes to
/// intervals; comparing two codes as (left-aligned) bitstrings must agree
/// with the interval order. `Code` provides that comparison via
/// [`Code::cmp_bitstring`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Code {
    /// Code bits, right-aligned (the last bit of the code is bit 0).
    pub bits: u64,
    /// Number of meaningful bits in `bits` (1..=64). A length of 0 denotes
    /// the empty code and is only valid for the empty-string sentinel.
    pub len: u8,
}

impl Code {
    /// Create a code from right-aligned bits.
    ///
    /// # Panics
    /// Panics if `len > 64` or if `bits` has set bits above `len`.
    #[inline]
    pub fn new(bits: u64, len: u8) -> Self {
        assert!(len <= 64, "code length {len} exceeds 64 bits");
        if len < 64 {
            assert!(bits >> len == 0, "code bits exceed stated length");
        }
        Code { bits, len }
    }

    /// Compare two codes as left-aligned bitstrings (the comparison the
    /// string axis model requires: shorter-is-smaller on prefix ties).
    #[inline]
    pub fn cmp_bitstring(&self, other: &Code) -> std::cmp::Ordering {
        let a = self.left_aligned();
        let b = other.left_aligned();
        a.cmp(&b).then(self.len.cmp(&other.len))
    }

    /// The code bits shifted to the top of a u64 (left-aligned).
    #[inline]
    pub fn left_aligned(&self) -> u64 {
        if self.len == 0 {
            0
        } else {
            self.bits << (64 - self.len as u32)
        }
    }

    /// True if `self` is a strict bitstring prefix of `other`.
    #[inline]
    pub fn is_prefix_of(&self, other: &Code) -> bool {
        if self.len >= other.len {
            return false;
        }
        (other.bits >> (other.len - self.len)) == self.bits
    }

    /// Render as a 0/1 string (testing and debugging aid).
    pub fn to_bit_string(&self) -> String {
        (0..self.len).rev().map(|i| if (self.bits >> i) & 1 == 1 { '1' } else { '0' }).collect()
    }
}

/// An encoded key: zero-padded bytes plus the exact bit length.
///
/// Byte-wise comparison of the padded bytes preserves source-key order in all
/// cases except one corner: when one encoding is a bitstring prefix of
/// another and the extension is all zero bits, the padded bytes can tie.
/// `Ord` therefore tie-breaks on `bit_len`, which is provably consistent
/// with source order (see DESIGN.md, "Encoded-key comparison").
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct EncodedKey {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl EncodedKey {
    /// Construct from raw parts. `bytes` must be exactly
    /// `bit_len.div_ceil(8)` long with zero padding bits.
    pub fn from_parts(bytes: Vec<u8>, bit_len: usize) -> Self {
        debug_assert_eq!(bytes.len(), bit_len.div_ceil(8));
        EncodedKey { bytes, bit_len }
    }

    /// The zero-padded encoded bytes (what a byte-oriented tree indexes).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Exact length of the encoding in bits.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Consume and return the padded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Length of the padded encoding in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Read bit `i` (0 = most significant bit of the first byte).
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.bit_len);
        (self.bytes[i / 8] >> (7 - (i % 8))) & 1 == 1
    }
}

impl PartialOrd for EncodedKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EncodedKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bytes.cmp(&other.bytes).then(self.bit_len.cmp(&other.bit_len))
    }
}

/// Append-only bit writer backed by a byte vector, using a 64-bit staging
/// buffer exactly as §4.2 describes: shift, OR, spill.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Staging buffer; the most recent bits occupy the low `fill` bits.
    acc: u64,
    /// Number of valid bits in `acc` (0..64).
    fill: u32,
    /// Total bits written (including those still staged).
    total_bits: usize,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer with room for `cap_bytes` of output.
    pub fn with_capacity(cap_bytes: usize) -> Self {
        BitWriter { out: Vec::with_capacity(cap_bytes), ..Self::default() }
    }

    /// Discard everything written so far, retaining the allocation.
    pub fn clear(&mut self) {
        self.out.clear();
        self.acc = 0;
        self.fill = 0;
        self.total_bits = 0;
    }

    /// Total number of bits written so far.
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.total_bits
    }

    /// Append a code (most significant bit first).
    #[inline]
    pub fn put(&mut self, code: Code) {
        self.put_bits(code.bits, code.len as u32);
    }

    /// Append the low `len` bits of `bits`, most significant first.
    #[inline]
    pub fn put_bits(&mut self, bits: u64, len: u32) {
        debug_assert!(len <= 64);
        if len == 0 {
            return;
        }
        self.total_bits += len as usize;
        let room = 64 - self.fill;
        if len <= room {
            // Entire code fits into the staging buffer.
            self.acc = if len == 64 { bits } else { (self.acc << len) | bits };
            self.fill += len;
            if self.fill == 64 {
                self.spill();
            }
        } else {
            // Split the code across the staging-buffer boundary (step 3 of
            // the paper's concatenation procedure). Here `fill >= 1`, so
            // `room <= 63` and `hi` is in 1..=63.
            let hi = len - room; // bits that do not fit
            self.acc = (self.acc << room) | (bits >> hi);
            self.fill = 64;
            self.spill();
            self.acc = bits & ((1u64 << hi) - 1);
            self.fill = hi;
        }
    }

    #[inline]
    fn spill(&mut self) {
        debug_assert_eq!(self.fill, 64);
        self.out.extend_from_slice(&self.acc.to_be_bytes());
        self.acc = 0;
        self.fill = 0;
    }

    /// Finish: zero-pad to a byte boundary and return the encoded key.
    pub fn finish(&mut self) -> EncodedKey {
        let bit_len = self.total_bits;
        let mut bytes = std::mem::take(&mut self.out);
        if self.fill > 0 {
            // Left-align the residual bits and emit whole bytes.
            let res = self.acc << (64 - self.fill);
            let nbytes = (self.fill as usize).div_ceil(8);
            bytes.extend_from_slice(&res.to_be_bytes()[..nbytes]);
        }
        self.acc = 0;
        self.fill = 0;
        self.total_bits = 0;
        EncodedKey::from_parts(bytes, bit_len)
    }

    /// Allocation-free variant of [`Self::finish`]: write the padded bytes
    /// into `out` (cleared first) and return the exact bit length. The
    /// writer is reset and its internal buffer retained for reuse — the
    /// shape query hot paths want.
    pub fn finish_into(&mut self, out: &mut Vec<u8>) -> usize {
        let bit_len = self.total_bits;
        out.clear();
        out.extend_from_slice(&self.out);
        if self.fill > 0 {
            let res = self.acc << (64 - self.fill);
            let nbytes = (self.fill as usize).div_ceil(8);
            out.extend_from_slice(&res.to_be_bytes()[..nbytes]);
        }
        self.clear();
        bit_len
    }
}

/// Bit reader over an [`EncodedKey`], used by tests and diagnostics (the
/// decoders walk raw padded bytes directly — see [`crate::decoder`]).
#[derive(Debug)]
pub struct BitReader<'a> {
    key: &'a EncodedKey,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `key`.
    pub fn new(key: &'a EncodedKey) -> Self {
        BitReader { key, pos: 0 }
    }

    /// Number of unread bits.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.key.bit_len() - self.pos
    }

    /// Read the next bit, or `None` at end of stream.
    #[inline]
    pub fn next_bit(&mut self) -> Option<bool> {
        if self.pos >= self.key.bit_len() {
            return None;
        }
        let b = self.key.bit(self.pos);
        self.pos += 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_and_bitstring() {
        let c = Code::new(0b0110, 4);
        assert_eq!(c.to_bit_string(), "0110");
        assert_eq!(c.left_aligned(), 0b0110u64 << 60);
    }

    #[test]
    #[should_panic(expected = "exceed stated length")]
    fn code_rejects_overlong_bits() {
        let _ = Code::new(0b100, 2);
    }

    #[test]
    fn code_prefix_relation() {
        let a = Code::new(0b01, 2);
        let b = Code::new(0b0110, 4);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(!a.is_prefix_of(&a));
        let c = Code::new(0b10, 2);
        assert!(!c.is_prefix_of(&b));
    }

    #[test]
    fn code_bitstring_order() {
        use std::cmp::Ordering;
        let a = Code::new(0b0, 1);
        let b = Code::new(0b01, 2); // "01" > "0" (prefix is smaller)
        let c = Code::new(0b1, 1);
        assert_eq!(a.cmp_bitstring(&b), Ordering::Less);
        assert_eq!(b.cmp_bitstring(&c), Ordering::Less);
        assert_eq!(a.cmp_bitstring(&a), Ordering::Equal);
    }

    #[test]
    fn writer_single_byte() {
        let mut w = BitWriter::new();
        w.put(Code::new(0b101, 3));
        let k = w.finish();
        assert_eq!(k.as_bytes(), &[0b1010_0000]);
        assert_eq!(k.bit_len(), 3);
    }

    #[test]
    fn writer_multi_code_concat() {
        let mut w = BitWriter::new();
        w.put(Code::new(0b010, 3));
        w.put(Code::new(0b011001, 6));
        w.put(Code::new(0b101, 3));
        let k = w.finish();
        // 010 011001 101 -> 0100 1100 1101
        assert_eq!(k.as_bytes(), &[0b0100_1100, 0b1101_0000]);
        assert_eq!(k.bit_len(), 12);
    }

    #[test]
    fn writer_crosses_u64_boundary() {
        let mut w = BitWriter::new();
        // 10 codes of 13 bits = 130 bits, crosses the 64-bit buffer twice.
        for i in 0..10u64 {
            w.put(Code::new(i & 0x1FFF, 13));
        }
        let k = w.finish();
        assert_eq!(k.bit_len(), 130);
        assert_eq!(k.byte_len(), 17);
        // Verify with the reader.
        let mut r = BitReader::new(&k);
        for i in 0..10u64 {
            let mut v = 0u64;
            for _ in 0..13 {
                v = (v << 1) | r.next_bit().unwrap() as u64;
            }
            assert_eq!(v, i & 0x1FFF);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn writer_64bit_code() {
        let mut w = BitWriter::new();
        w.put(Code::new(u64::MAX, 64));
        w.put(Code::new(0, 1));
        let k = w.finish();
        assert_eq!(k.bit_len(), 65);
        assert_eq!(&k.as_bytes()[..8], &[0xFF; 8]);
        assert_eq!(k.as_bytes()[8], 0);
    }

    #[test]
    fn writer_clear_reuses_allocation() {
        let mut w = BitWriter::with_capacity(64);
        w.put(Code::new(0b1, 1));
        let _ = w.finish();
        w.put(Code::new(0b1, 1));
        w.clear();
        assert_eq!(w.bit_len(), 0);
        w.put(Code::new(0b11, 2));
        assert_eq!(w.finish().as_bytes(), &[0b1100_0000]);
    }

    #[test]
    fn encoded_key_ordering_prefix_tie() {
        // "010" vs "010000": padded bytes equal, bit_len breaks the tie.
        let a = EncodedKey::from_parts(vec![0b0100_0000], 3);
        let b = EncodedKey::from_parts(vec![0b0100_0000], 6);
        assert!(a < b);
    }

    #[test]
    fn encoded_key_bit_access() {
        let k = EncodedKey::from_parts(vec![0b1010_0000], 4);
        assert!(k.bit(0));
        assert!(!k.bit(1));
        assert!(k.bit(2));
        assert!(!k.bit(3));
    }
}
