//! Fast-path encoder (§4.2 + §6 fig. 8): precomputed dense code tables
//! fused with bit-packing.
//!
//! The generic encode loop pays, per symbol: an enum dispatch into
//! [`Dict`], the dictionary's own slot arithmetic, two
//! parallel-array loads (code bits + code length), and the construction of
//! a [`Code`] value that is immediately torn apart
//! again by the bit writer. For the array-dictionary schemes (Single-Char,
//! Double-Char) none of that is necessary: the dictionary is total over a
//! dense index space, so the whole lookup can be *fused* into one table
//! load whose entry is already in pack-ready form.
//!
//! A [`FastEncoder`] materializes that table at build time:
//!
//! * **Single-Char** — 256 entries, one per leading byte;
//! * **Double-Char** — a 65 536-entry table indexed by the leading byte
//!   *pair* `(b0 << 8) | b1`, plus a 256-entry terminator table for a
//!   trailing odd byte.
//!
//! Each entry packs `(code bits << 8) | code length` into a single `u64`,
//! so the per-symbol work in [`FastEncoder::encode_into`] is one load, one
//! shift, one mask, and the bit-writer append. Codes longer than 56 bits
//! cannot be packed; [`FastEncoder::from_dict`] then declines (returns
//! `None`) and the encoder keeps the generic walk — possible only under
//! extreme Hu-Tucker skew, and always correct.
//!
//! The variable-length-symbol schemes (3/4-Grams, ALM) keep the generic
//! trie walk: their dictionaries are not dense, so there is no table to
//! fuse. See DESIGN.md, "Performance guide".

use crate::bitpack::{BitWriter, Code};
use crate::dict::Dict;
use crate::selector::double_char::DOUBLE_CHAR_ENTRIES;

/// Maximum code length a packed `(bits << 8) | len` entry can hold.
const MAX_PACKED_LEN: u8 = 56;

/// Pack a code into the fused-table entry form.
fn pack(c: Code) -> u64 {
    debug_assert!(c.len <= MAX_PACKED_LEN);
    (c.bits << 8) | c.len as u64
}

/// The fused code table of one array-dictionary scheme.
#[derive(Debug)]
enum FastTable {
    /// 256 entries: byte → packed code.
    Single(Box<[u64]>),
    /// 65 536 pair entries (`(b0 << 8) | b1`) plus 256 terminator entries
    /// for a single trailing byte.
    Double {
        /// Packed code of the two-byte symbol starting at each byte pair.
        pair: Box<[u64]>,
        /// Packed code of the one-byte terminator symbol per leading byte.
        term: Box<[u64]>,
    },
}

/// Zero-allocation fast-path encoder over a precomputed dense code table.
///
/// Built from an array dictionary by [`FastEncoder::from_dict`]; produces
/// output bit-identical to the generic dictionary walk (the equivalence is
/// property-tested across all schemes in `tests/fast_encoder_equiv.rs`).
///
/// ```
/// use hope::{HopeBuilder, Scheme};
///
/// let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
/// let hope = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample).unwrap();
/// // Single-Char builds a fused table; encode() transparently uses it.
/// assert!(hope.encoder().fast().is_some());
///
/// // The fast path is bit-identical to the generic dictionary walk.
/// let mut w = hope::bitpack::BitWriter::new();
/// hope.encoder().fast().unwrap().encode_into(b"com.gmail@carol", &mut w);
/// assert_eq!(w.finish(), hope.encoder().encode_generic(b"com.gmail@carol"));
/// ```
#[derive(Debug)]
pub struct FastEncoder {
    table: FastTable,
}

impl FastEncoder {
    /// Materialize the fused table for `dict`, or `None` when the
    /// dictionary has no dense fast path (bitmap-trie / ART / sorted
    /// baseline) or some code exceeds the 56-bit packed-entry limit.
    pub fn from_dict(dict: &Dict) -> Option<FastEncoder> {
        match dict {
            Dict::Single(d) => {
                let mut table = Vec::with_capacity(256);
                for b in 0..256usize {
                    let c = d.code(b);
                    if c.len > MAX_PACKED_LEN {
                        return None;
                    }
                    table.push(pack(c));
                }
                Some(FastEncoder { table: FastTable::Single(table.into_boxed_slice()) })
            }
            Dict::Double(d) => {
                // Dictionary layout is `b0*257 + b1 + 1` for the pair
                // symbol and `b0*257` for the terminator; the fused table
                // re-indexes the pairs densely as `(b0 << 8) | b1`.
                let mut pair_tab = Vec::with_capacity(1 << 16);
                let mut term = Vec::with_capacity(256);
                for b0 in 0..256usize {
                    let t = d.code(b0 * 257);
                    if t.len > MAX_PACKED_LEN {
                        return None;
                    }
                    term.push(pack(t));
                    for b1 in 0..256usize {
                        let c = d.code(b0 * 257 + b1 + 1);
                        if c.len > MAX_PACKED_LEN {
                            return None;
                        }
                        pair_tab.push(pack(c));
                    }
                }
                debug_assert_eq!(pair_tab.len() + term.len(), DOUBLE_CHAR_ENTRIES);
                Some(FastEncoder {
                    table: FastTable::Double {
                        pair: pair_tab.into_boxed_slice(),
                        term: term.into_boxed_slice(),
                    },
                })
            }
            Dict::Bitmap(_) | Dict::Art(_) | Dict::Sorted(_) => None,
        }
    }

    /// Encode `key`, appending to `w`. Bit-identical to the generic walk
    /// over the dictionary this table was built from.
    #[inline]
    pub fn encode_into(&self, key: &[u8], w: &mut BitWriter) {
        match &self.table {
            FastTable::Single(t) => {
                for &b in key {
                    let e = t[b as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
            }
            FastTable::Double { pair, term } => {
                let mut chunks = key.chunks_exact(2);
                for p in &mut chunks {
                    let e = pair[(p[0] as usize) << 8 | p[1] as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
                if let [b] = chunks.remainder() {
                    let e = term[*b as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
            }
        }
    }

    /// Symbol length of this table's dictionary grams (1 or 2).
    pub fn gram(&self) -> usize {
        match &self.table {
            FastTable::Single(_) => 1,
            FastTable::Double { .. } => 2,
        }
    }

    /// Bytes of memory used by the fused table(s).
    pub fn memory_bytes(&self) -> usize {
        match &self.table {
            FastTable::Single(t) => t.len() * 8,
            FastTable::Double { pair, term } => (pair.len() + term.len()) * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::selector::{self, Scheme};

    fn build_dict(scheme: Scheme, sample: &[Vec<u8>]) -> Dict {
        let set = selector::select_intervals(scheme, sample, 1024).unwrap();
        let weights = selector::access_weights(&set, sample);
        let codes = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker.assign(&weights)
        } else {
            CodeAssigner::FixedLength.assign(&weights)
        };
        Dict::build(scheme, &set, &codes)
    }

    fn sample() -> Vec<Vec<u8>> {
        (0..100).map(|i| format!("com.gmail@user{i:03}").into_bytes()).collect()
    }

    #[test]
    fn array_schemes_build_a_table_others_do_not() {
        let s = sample();
        assert!(FastEncoder::from_dict(&build_dict(Scheme::SingleChar, &s)).is_some());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::DoubleChar, &s)).is_some());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::ThreeGrams, &s)).is_none());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::AlmImproved, &s)).is_none());
    }

    #[test]
    fn fast_matches_generic_walk_on_both_array_schemes() {
        let s = sample();
        for scheme in [Scheme::SingleChar, Scheme::DoubleChar] {
            let dict = build_dict(scheme, &s);
            let fast = FastEncoder::from_dict(&dict).unwrap();
            for key in [
                b"".as_slice(),
                b"a",
                b"com.gmail@user042",
                b"odd",
                b"\x00\xff\x7f",
                b"completely unrelated key material \xfe\xfd",
            ] {
                let mut w = BitWriter::new();
                fast.encode_into(key, &mut w);
                let got = w.finish();
                let mut w = BitWriter::new();
                let mut rest = key;
                while !rest.is_empty() {
                    let (code, n) = dict.lookup(rest);
                    w.put(code);
                    rest = &rest[n..];
                }
                assert_eq!(got, w.finish(), "{scheme}: key {key:?}");
            }
        }
    }

    #[test]
    fn overlong_codes_decline_the_fast_path() {
        let mut codes = crate::hu_tucker::fixed_len_codes(256);
        codes[0] = Code::new(u64::MAX >> 4, 60);
        let dict = Dict::Single(crate::dict::SingleCharDict::new(&codes));
        assert!(FastEncoder::from_dict(&dict).is_none());
    }

    #[test]
    fn table_memory_and_gram() {
        let s = sample();
        let single = FastEncoder::from_dict(&build_dict(Scheme::SingleChar, &s)).unwrap();
        assert_eq!(single.gram(), 1);
        assert_eq!(single.memory_bytes(), 256 * 8);
        let double = FastEncoder::from_dict(&build_dict(Scheme::DoubleChar, &s)).unwrap();
        assert_eq!(double.gram(), 2);
        assert_eq!(double.memory_bytes(), (65536 + 256) * 8);
    }
}
