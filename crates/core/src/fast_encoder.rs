//! Fast-path encoder (§4.2 + §6 fig. 8): precomputed dense code tables
//! fused with bit-packing — for **all six** schemes.
//!
//! The generic encode loop pays, per symbol: an enum dispatch into
//! [`Dict`], the dictionary's own slot arithmetic, two
//! parallel-array loads (code bits + code length), and the construction of
//! a [`Code`] value that is immediately torn apart
//! again by the bit writer. A [`FastEncoder`] removes all of that by
//! materializing, at build time, a dense table whose entries are already
//! in pack-ready form. Two table shapes cover the six schemes:
//!
//! * **Fused code tables** — for the array-dictionary schemes the
//!   dictionary is total over a dense index space, so the whole lookup
//!   collapses into one table load:
//!   - *Single-Char*: 256 entries, one per leading byte;
//!   - *Double-Char*: a 65 536-entry table indexed by the leading byte
//!     *pair* `(b0 << 8) | b1`, plus a 256-entry terminator table for a
//!     trailing odd byte.
//!
//!   Each entry packs `(code bits << 8) | code length` into a single
//!   `u64`, so the per-symbol work is one load, one shift, one mask, and
//!   the bit-writer append. Codes longer than 56 bits cannot be packed;
//!   [`FastEncoder::from_dict`] then declines (returns `None`) and the
//!   encoder keeps the generic walk — possible only under extreme
//!   Hu-Tucker skew, and always correct.
//!
//! * **Prefix automaton** — the trie-dictionary schemes (3/4-Grams on the
//!   bitmap trie, ALM / ALM-Improved on ART) have no dense index space,
//!   but their floor lookup *is* a prefix walk, so it flattens into a
//!   dense transition table `state × next byte → entry` built by
//!   [`FastEncoder::automaton_from`]. A state is a byte prefix along
//!   which the lookup outcome is still undecided; an entry either
//!   *advances* to a deeper state, *emits* a pack-ready
//!   `(code, length, symbol length)` triple (when no dictionary boundary
//!   extends the prefix, the floor interval is fully determined), or
//!   marks a *fallback* edge. States are allocated breadth-first up to
//!   [`AUTOMATON_STATE_BUDGET`] (2 KiB per state), so the hottest —
//!   shallowest — prefixes always get table rows; cold tails past the
//!   budget, over-long codes and over-long symbols resolve through a
//!   fallback edge that performs one ordinary [`Dict::lookup`]. The
//!   per-symbol cost is one dependent table load per matched byte: no
//!   bitmap ranks, no adaptive-node searches, no `Code` values.
//!
//! Both shapes produce output bit-identical to the generic dictionary
//! walk (property-tested across all six schemes in
//! `tests/fast_encoder_equiv.rs`). See DESIGN.md, "Performance guide".

use std::sync::atomic::{AtomicU64, Ordering};

use crate::axis::IntervalSet;
use crate::bitpack::{BitWriter, Code};
use crate::dict::Dict;
use crate::selector::double_char::DOUBLE_CHAR_ENTRIES;

/// Maximum code length a fused-table `(bits << 8) | len` entry can hold.
const MAX_PACKED_LEN: u8 = 56;

/// Maximum code length an automaton `(bits << 16) | (sym << 8) | len`
/// entry can hold with the advance flag (bit 63) left clear.
const MAX_AUTOMATON_CODE_LEN: u8 = 46;

/// Default cap on the number of automaton states. One state is a 256-entry
/// row of 8-byte entries (2 KiB), so 16 384 states bound the transition
/// table at 32 MiB. The n-gram dictionaries sit far below the ceiling
/// (on the email corpus a 64K-entry 4-Grams dictionary wants ~4.5K
/// states and a 3-Grams ~800, both fully tabled with zero fallback
/// edges); states are allocated breadth-first, so the shallow (hot)
/// prefixes are always resident and only cold deep tails fall back to
/// the generic walk.
pub const AUTOMATON_STATE_BUDGET: usize = 16_384;

/// Automaton entry tag: bit 63 set = advance to the state in the low bits.
const ADVANCE_FLAG: u64 = 1 << 63;

/// Automaton entry sentinel: resolve this symbol via the generic
/// [`Dict::lookup`] (state budget exceeded, or unpackable code/symbol).
const FALLBACK: u64 = u64::MAX;

/// Pack a code into the fused-table entry form.
fn pack(c: Code) -> u64 {
    debug_assert!(c.len <= MAX_PACKED_LEN);
    (c.bits << 8) | c.len as u64
}

/// Pack an automaton *emit* entry: `(bits << 16) | (sym_len << 8) | len`,
/// bit 63 clear. `None` when the code or symbol does not fit.
fn pack_emit(c: Code, sym_len: usize) -> Option<u64> {
    debug_assert!(sym_len >= 1, "symbols are non-empty (§3.2)");
    (c.len <= MAX_AUTOMATON_CODE_LEN && sym_len <= u8::MAX as usize)
        .then_some((c.bits << 16) | ((sym_len as u64) << 8) | c.len as u64)
}

/// The flattened prefix automaton of a trie-dictionary scheme.
#[derive(Debug)]
struct Automaton {
    /// `trans[(state << 8) | byte]`: emit / advance / fallback entry.
    trans: Box<[u64]>,
    /// Per-state emit entry used when the source ends exactly at the
    /// state's prefix (the dictionary's terminator case).
    exhaust: Box<[u64]>,
    /// Number of fallback edges in `trans` (diagnostics).
    fallback_edges: usize,
    /// Times a fallback edge was actually taken — i.e. a symbol resolved
    /// through [`Dict::lookup`] instead of the table (telemetry; relaxed).
    fallback_takes: AtomicU64,
}

/// The fused table of one scheme.
#[derive(Debug)]
enum FastTable {
    /// 256 entries: byte → packed code.
    Single(Box<[u64]>),
    /// 65 536 pair entries (`(b0 << 8) | b1`) plus 256 terminator entries
    /// for a single trailing byte.
    Double {
        /// Packed code of the two-byte symbol starting at each byte pair.
        pair: Box<[u64]>,
        /// Packed code of the one-byte terminator symbol per leading byte.
        term: Box<[u64]>,
    },
    /// Dense prefix-automaton transition table (trie-dictionary schemes).
    Automaton(Automaton),
}

/// Zero-allocation fast-path encoder over a precomputed dense table.
///
/// Built by [`FastEncoder::from_dict`] (array dictionaries) or
/// [`FastEncoder::automaton_from`] (trie dictionaries); produces output
/// bit-identical to the generic dictionary walk (the equivalence is
/// property-tested across all schemes in `tests/fast_encoder_equiv.rs`).
///
/// ```
/// use hope::{HopeBuilder, Scheme};
///
/// let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
/// let hope = HopeBuilder::new(Scheme::ThreeGrams)
///     .dictionary_entries(256)
///     .build_from_sample(sample)
///     .unwrap();
/// // Trie schemes flatten their dictionary into a prefix automaton;
/// // encode() and encode_to() transparently use it.
/// let enc = hope.encoder();
/// assert!(enc.fast().is_some());
///
/// // The fast path is bit-identical to the generic dictionary walk.
/// let mut w = hope::bitpack::BitWriter::new();
/// enc.fast().unwrap().encode_into(b"com.gmail@carol", enc.dict(), &mut w);
/// assert_eq!(w.finish(), enc.encode_generic(b"com.gmail@carol"));
/// ```
#[derive(Debug)]
pub struct FastEncoder {
    table: FastTable,
}

impl FastEncoder {
    /// Materialize the fused table for an array dictionary, or `None` when
    /// the dictionary is not dense (bitmap-trie / ART / sorted baseline —
    /// see [`FastEncoder::automaton_from`] for the trie structures) or
    /// some code exceeds the 56-bit packed-entry limit.
    pub fn from_dict(dict: &Dict) -> Option<FastEncoder> {
        match dict {
            Dict::Single(d) => {
                let mut table = Vec::with_capacity(256);
                for b in 0..256usize {
                    let c = d.code(b);
                    if c.len > MAX_PACKED_LEN {
                        return None;
                    }
                    table.push(pack(c));
                }
                Some(FastEncoder { table: FastTable::Single(table.into_boxed_slice()) })
            }
            Dict::Double(d) => {
                // Dictionary layout is `b0*257 + b1 + 1` for the pair
                // symbol and `b0*257` for the terminator; the fused table
                // re-indexes the pairs densely as `(b0 << 8) | b1`.
                let mut pair_tab = Vec::with_capacity(1 << 16);
                let mut term = Vec::with_capacity(256);
                for b0 in 0..256usize {
                    let t = d.code(b0 * 257);
                    if t.len > MAX_PACKED_LEN {
                        return None;
                    }
                    term.push(pack(t));
                    for b1 in 0..256usize {
                        let c = d.code(b0 * 257 + b1 + 1);
                        if c.len > MAX_PACKED_LEN {
                            return None;
                        }
                        pair_tab.push(pack(c));
                    }
                }
                debug_assert_eq!(pair_tab.len() + term.len(), DOUBLE_CHAR_ENTRIES);
                Some(FastEncoder {
                    table: FastTable::Double {
                        pair: pair_tab.into_boxed_slice(),
                        term: term.into_boxed_slice(),
                    },
                })
            }
            Dict::Bitmap(_) | Dict::Art(_) | Dict::Sorted(_) => None,
        }
    }

    /// Flatten an interval division into a dense prefix automaton with at
    /// most `max_states` transition rows (breadth-first, shallow prefixes
    /// first). Returns `None` for degenerate inputs (`max_states == 0`, an
    /// empty set, or a set that does not start at the axis origin).
    ///
    /// The automaton replays the dictionary's floor lookup: a state is a
    /// byte prefix some boundary strictly extends (the outcome is still
    /// undecided there); each `(state, byte)` entry *advances* when a
    /// boundary strictly extends the extended prefix, and *emits* the
    /// floor interval's `(code, symbol length)` otherwise — in the latter
    /// case every source sharing that prefix has the same floor, so the
    /// emitted symbol is exact regardless of later bytes. Edges past the
    /// state budget (and entries whose code or symbol cannot be packed)
    /// become fallback edges resolved by one generic [`Dict::lookup`].
    pub fn automaton_from(
        set: &IntervalSet,
        codes: &[Code],
        max_states: usize,
    ) -> Option<FastEncoder> {
        assert_eq!(set.len(), codes.len());
        if max_states == 0 || set.is_empty() || set.boundary(0) != [0x00] {
            return None;
        }
        // Work list doubles as the state table: processing order == id
        // order, so transition rows land at `state * 256` in BFS order.
        // Each state carries its prefix and the index range of boundaries
        // that strictly extend it.
        let mut states: Vec<(Vec<u8>, usize, usize)> = vec![(Vec::new(), 0, set.len())];
        let mut trans: Vec<u64> = Vec::new();
        let mut exhaust: Vec<u64> = Vec::new();
        let mut fallback_edges = 0usize;
        let mut q = Vec::new();
        let mut s = 0usize;
        while s < states.len() {
            let (prefix, lo, hi) = states[s].clone();
            let d = prefix.len();
            // Source ends exactly at this prefix: emit its floor interval.
            // (The root's entry is never consulted: the encode loop always
            // reads at least one byte before it can exhaust the source.)
            exhaust.push(if d == 0 {
                FALLBACK
            } else {
                let f = set.floor_index(&prefix);
                pack_emit(codes[f], set.symbol_len(f)).unwrap_or(FALLBACK)
            });
            let row = trans.len();
            trans.resize(row + 256, 0);
            // Boundaries in [lo, hi) strictly extend `prefix`, so they are
            // at least d+1 bytes long and sorted by their byte at `d`.
            let mut i = lo;
            for b in 0..256usize {
                let mut j = i;
                while j < hi && set.boundary(j)[d] == b as u8 {
                    j += 1;
                }
                q.clear();
                q.extend_from_slice(&prefix);
                q.push(b as u8);
                // Boundaries strictly extending `q` = the group minus an
                // exact match (which, sorted, can only be the first).
                let eq = i < j && set.boundary(i).len() == d + 1;
                let ext_lo = i + eq as usize;
                trans[row + b] = if ext_lo < j {
                    // The floor of a source with prefix `q` still depends
                    // on later bytes: advance (or fall back past budget).
                    if states.len() < max_states {
                        states.push((q.clone(), ext_lo, j));
                        ADVANCE_FLAG | (states.len() - 1) as u64
                    } else {
                        fallback_edges += 1;
                        FALLBACK
                    }
                } else {
                    // No boundary extends `q`: every source with this
                    // prefix shares floor(q), and its symbol is at most
                    // |q| bytes, so the emit is exact.
                    let f = set.floor_index(&q);
                    debug_assert!(set.symbol_len(f) <= q.len());
                    pack_emit(codes[f], set.symbol_len(f)).unwrap_or_else(|| {
                        fallback_edges += 1;
                        FALLBACK
                    })
                };
                i = j;
            }
            debug_assert_eq!(i, hi);
            s += 1;
        }
        Some(FastEncoder {
            table: FastTable::Automaton(Automaton {
                trans: trans.into_boxed_slice(),
                exhaust: exhaust.into_boxed_slice(),
                fallback_edges,
                fallback_takes: AtomicU64::new(0),
            }),
        })
    }

    /// Encode `key`, appending to `w`. Bit-identical to the generic walk
    /// over `dict` (the dictionary this table was built from); `dict` is
    /// only consulted by automaton fallback edges.
    #[inline]
    pub fn encode_into(&self, key: &[u8], dict: &Dict, w: &mut BitWriter) {
        match &self.table {
            FastTable::Single(t) => {
                for &b in key {
                    let e = t[b as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
            }
            FastTable::Double { pair, term } => {
                let mut chunks = key.chunks_exact(2);
                for p in &mut chunks {
                    let e = pair[(p[0] as usize) << 8 | p[1] as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
                if let [b] = chunks.remainder() {
                    let e = term[*b as usize];
                    w.put_bits(e >> 8, (e & 0xFF) as u32);
                }
            }
            FastTable::Automaton(a) => {
                let mut pos = 0usize;
                while pos < key.len() {
                    let mut state = 0usize;
                    let mut d = pos;
                    loop {
                        if d == key.len() {
                            pos += a.emit_exhaust(state, &key[pos..], dict, w);
                            break;
                        }
                        let e = a.trans[(state << 8) | key[d] as usize];
                        if e & ADVANCE_FLAG == 0 {
                            w.put_bits(e >> 16, (e & 0xFF) as u32);
                            pos += ((e >> 8) & 0xFF) as usize;
                            break;
                        }
                        if e == FALLBACK {
                            a.fallback_takes.fetch_add(1, Ordering::Relaxed);
                            let (code, n) = dict.lookup(&key[pos..]);
                            w.put(code);
                            pos += n;
                            break;
                        }
                        state = (e & !ADVANCE_FLAG) as usize;
                        d += 1;
                    }
                }
            }
        }
    }

    /// Resolve **one** symbol at the head of `src`, like [`Dict::lookup`]
    /// but through the fast table; returns the code and bytes consumed.
    /// Used by the checkpoint-tracking walks (batch and pair encoding).
    #[inline]
    pub fn lookup_symbol(&self, src: &[u8], dict: &Dict) -> (Code, usize) {
        debug_assert!(!src.is_empty());
        match &self.table {
            FastTable::Single(t) => {
                let e = t[src[0] as usize];
                (Code { bits: e >> 8, len: (e & 0xFF) as u8 }, 1)
            }
            FastTable::Double { pair, term } => {
                if let [b0, b1, ..] = *src {
                    let e = pair[(b0 as usize) << 8 | b1 as usize];
                    (Code { bits: e >> 8, len: (e & 0xFF) as u8 }, 2)
                } else {
                    let e = term[src[0] as usize];
                    (Code { bits: e >> 8, len: (e & 0xFF) as u8 }, 1)
                }
            }
            FastTable::Automaton(a) => {
                let mut state = 0usize;
                let mut d = 0usize;
                loop {
                    if d == src.len() {
                        let e = a.exhaust[state];
                        if e == FALLBACK {
                            a.fallback_takes.fetch_add(1, Ordering::Relaxed);
                            return dict.lookup(src);
                        }
                        return unpack_emit(e);
                    }
                    let e = a.trans[(state << 8) | src[d] as usize];
                    if e & ADVANCE_FLAG == 0 {
                        return unpack_emit(e);
                    }
                    if e == FALLBACK {
                        a.fallback_takes.fetch_add(1, Ordering::Relaxed);
                        return dict.lookup(src);
                    }
                    state = (e & !ADVANCE_FLAG) as usize;
                    d += 1;
                }
            }
        }
    }

    /// The pack-ready fused-table entries `(main, terminator)` of an
    /// array-dictionary table — `(256-entry byte table, empty)` for
    /// Single-Char, `(65 536-entry pair table, 256-entry terminator
    /// table)` for Double-Char — or `None` for the prefix automaton.
    /// Because an entry *is* the complete per-symbol encode (bits and
    /// length fused), equal entries across two tables mean the two
    /// dictionaries emit byte-identical output for that symbol; the
    /// dictionary-diff layer ([`crate::diff::EncodingDiff`]) builds its
    /// changed-symbol bitsets from exactly this comparison.
    pub(crate) fn fused_tables(&self) -> Option<(&[u64], &[u64])> {
        match &self.table {
            FastTable::Single(t) => Some((t, &[])),
            FastTable::Double { pair, term } => Some((pair, term)),
            FastTable::Automaton(_) => None,
        }
    }

    /// Fixed symbol length of a fused array table (1 or 2), or `None` for
    /// the prefix automaton, whose symbols are variable-length.
    pub fn fixed_gram(&self) -> Option<usize> {
        match &self.table {
            FastTable::Single(_) => Some(1),
            FastTable::Double { .. } => Some(2),
            FastTable::Automaton(_) => None,
        }
    }

    /// `(states, fallback edges)` of the prefix automaton, or `None` for
    /// the fused array tables (diagnostics and bench reporting).
    pub fn automaton_stats(&self) -> Option<(usize, usize)> {
        match &self.table {
            FastTable::Automaton(a) => Some((a.exhaust.len(), a.fallback_edges)),
            _ => None,
        }
    }

    /// Times an automaton fallback edge was *taken* — a symbol resolved
    /// through the generic [`Dict::lookup`] instead of the table — since
    /// construction. Always 0 for the fused array tables, whose lookup is
    /// total (telemetry counter; relaxed).
    pub fn automaton_fallback_takes(&self) -> u64 {
        match &self.table {
            FastTable::Automaton(a) => a.fallback_takes.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Short name of the table shape (reports).
    pub fn kind(&self) -> &'static str {
        match &self.table {
            FastTable::Single(_) => "fused-single",
            FastTable::Double { .. } => "fused-double",
            FastTable::Automaton(_) => "automaton",
        }
    }

    /// Bytes of memory used by the fused table(s).
    pub fn memory_bytes(&self) -> usize {
        match &self.table {
            FastTable::Single(t) => t.len() * 8,
            FastTable::Double { pair, term } => (pair.len() + term.len()) * 8,
            FastTable::Automaton(a) => (a.trans.len() + a.exhaust.len()) * 8,
        }
    }
}

impl Automaton {
    /// Emit the exhaust entry of `state` (source ended inside the walk);
    /// returns the bytes consumed.
    #[inline]
    fn emit_exhaust(&self, state: usize, rest: &[u8], dict: &Dict, w: &mut BitWriter) -> usize {
        let e = self.exhaust[state];
        if e == FALLBACK {
            self.fallback_takes.fetch_add(1, Ordering::Relaxed);
            let (code, n) = dict.lookup(rest);
            w.put(code);
            n
        } else {
            w.put_bits(e >> 16, (e & 0xFF) as u32);
            ((e >> 8) & 0xFF) as usize
        }
    }
}

/// Unpack an automaton emit entry into `(code, bytes consumed)`.
#[inline]
fn unpack_emit(e: u64) -> (Code, usize) {
    debug_assert_eq!(e & ADVANCE_FLAG, 0);
    (Code { bits: e >> 16, len: (e & 0xFF) as u8 }, ((e >> 8) & 0xFF) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_assign::CodeAssigner;
    use crate::selector::{self, Scheme};

    fn build_parts(scheme: Scheme, sample: &[Vec<u8>]) -> (Dict, IntervalSet, Vec<Code>) {
        let set = selector::select_intervals(scheme, sample, 1024).unwrap();
        let weights = selector::access_weights(&set, sample);
        let codes = if scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker.assign(&weights)
        } else {
            CodeAssigner::FixedLength.assign(&weights)
        };
        let dict = Dict::build(scheme, &set, &codes);
        (dict, set, codes)
    }

    fn build_dict(scheme: Scheme, sample: &[Vec<u8>]) -> Dict {
        build_parts(scheme, sample).0
    }

    fn sample() -> Vec<Vec<u8>> {
        (0..100).map(|i| format!("com.gmail@user{i:03}").into_bytes()).collect()
    }

    fn probes() -> Vec<&'static [u8]> {
        vec![
            b"".as_slice(),
            b"a",
            b"com.gmail@user042",
            b"odd",
            b"\x00\xff\x7f",
            b"completely unrelated key material \xfe\xfd",
        ]
    }

    /// Generic reference walk for equivalence checks.
    fn generic(dict: &Dict, key: &[u8]) -> crate::bitpack::EncodedKey {
        let mut w = BitWriter::new();
        let mut rest = key;
        while !rest.is_empty() {
            let (code, n) = dict.lookup(rest);
            w.put(code);
            rest = &rest[n..];
        }
        w.finish()
    }

    #[test]
    fn array_schemes_build_a_fused_table_others_do_not() {
        let s = sample();
        assert!(FastEncoder::from_dict(&build_dict(Scheme::SingleChar, &s)).is_some());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::DoubleChar, &s)).is_some());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::ThreeGrams, &s)).is_none());
        assert!(FastEncoder::from_dict(&build_dict(Scheme::AlmImproved, &s)).is_none());
    }

    #[test]
    fn fast_matches_generic_walk_on_both_array_schemes() {
        let s = sample();
        for scheme in [Scheme::SingleChar, Scheme::DoubleChar] {
            let dict = build_dict(scheme, &s);
            let fast = FastEncoder::from_dict(&dict).unwrap();
            for key in probes() {
                let mut w = BitWriter::new();
                fast.encode_into(key, &dict, &mut w);
                assert_eq!(w.finish(), generic(&dict, key), "{scheme}: key {key:?}");
            }
        }
    }

    #[test]
    fn automaton_matches_generic_walk_on_trie_schemes() {
        let s = sample();
        for scheme in [Scheme::ThreeGrams, Scheme::FourGrams, Scheme::Alm, Scheme::AlmImproved] {
            let (dict, set, codes) = build_parts(scheme, &s);
            let fast = FastEncoder::automaton_from(&set, &codes, AUTOMATON_STATE_BUDGET).unwrap();
            assert_eq!(fast.fixed_gram(), None);
            assert_eq!(fast.kind(), "automaton");
            let (states, _) = fast.automaton_stats().unwrap();
            assert!(states >= 1);
            for key in probes() {
                let mut w = BitWriter::new();
                fast.encode_into(key, &dict, &mut w);
                assert_eq!(w.finish(), generic(&dict, key), "{scheme}: key {key:?}");
            }
        }
    }

    #[test]
    fn tiny_state_budget_still_encodes_identically_via_fallback() {
        let s = sample();
        for budget in [1usize, 2, 7] {
            let (dict, set, codes) = build_parts(Scheme::ThreeGrams, &s);
            let fast = FastEncoder::automaton_from(&set, &codes, budget).unwrap();
            let (states, fallbacks) = fast.automaton_stats().unwrap();
            assert!(states <= budget);
            assert!(fallbacks > 0, "a tiny budget must produce fallback edges");
            assert_eq!(fast.automaton_fallback_takes(), 0, "untouched table has no takes");
            for key in probes() {
                let mut w = BitWriter::new();
                fast.encode_into(key, &dict, &mut w);
                assert_eq!(w.finish(), generic(&dict, key), "budget {budget}: key {key:?}");
            }
            assert!(
                fast.automaton_fallback_takes() > 0,
                "budget {budget}: probes must have exercised a fallback edge"
            );
        }
    }

    #[test]
    fn lookup_symbol_agrees_with_dict_lookup() {
        let s = sample();
        for scheme in Scheme::ALL {
            let (dict, set, codes) = build_parts(scheme, &s);
            let fast = FastEncoder::from_dict(&dict)
                .or_else(|| FastEncoder::automaton_from(&set, &codes, 64))
                .unwrap();
            for key in probes() {
                let mut rest = key;
                while !rest.is_empty() {
                    assert_eq!(
                        fast.lookup_symbol(rest, &dict),
                        dict.lookup(rest),
                        "{scheme}: rest {rest:?}"
                    );
                    let (_, n) = dict.lookup(rest);
                    rest = &rest[n..];
                }
            }
        }
    }

    #[test]
    fn overlong_codes_decline_the_fast_path() {
        let mut codes = crate::hu_tucker::fixed_len_codes(256);
        codes[0] = Code::new(u64::MAX >> 4, 60);
        let dict = Dict::Single(crate::dict::SingleCharDict::new(&codes));
        assert!(FastEncoder::from_dict(&dict).is_none());
    }

    #[test]
    fn automaton_rejects_degenerate_inputs() {
        let s = sample();
        let (_, set, codes) = build_parts(Scheme::ThreeGrams, &s);
        assert!(FastEncoder::automaton_from(&set, &codes, 0).is_none());
        let empty = IntervalSet::default();
        assert!(FastEncoder::automaton_from(&empty, &[], 16).is_none());
    }

    #[test]
    fn table_memory_and_gram() {
        let s = sample();
        let single = FastEncoder::from_dict(&build_dict(Scheme::SingleChar, &s)).unwrap();
        assert_eq!(single.fixed_gram(), Some(1));
        assert_eq!(single.memory_bytes(), 256 * 8);
        assert!(single.automaton_stats().is_none());
        let double = FastEncoder::from_dict(&build_dict(Scheme::DoubleChar, &s)).unwrap();
        assert_eq!(double.fixed_gram(), Some(2));
        assert_eq!(double.memory_bytes(), (65536 + 256) * 8);
        let (_, set, codes) = build_parts(Scheme::FourGrams, &s);
        let auto = FastEncoder::automaton_from(&set, &codes, 64).unwrap();
        let (states, _) = auto.automaton_stats().unwrap();
        assert_eq!(auto.memory_bytes(), states * 256 * 8 + states * 8);
    }
}
