//! The [`OrderedIndex`] abstraction: what HOPE requires of a search tree.
//!
//! HOPE compresses keys for *order-sensitive* structures; any index that
//! maps byte-string keys to `u64` values and supports ordered iteration can
//! store HOPE-encoded keys and answer the same point and range queries
//! (§5). This trait captures that contract so serving layers — notably the
//! `hope_store` sharded store — can treat the tree backend as pluggable:
//! `hope_btree::BPlusTree` and `hope_art::Art` implement it, and
//! [`std::collections::BTreeMap`] gets a reference implementation used as
//! the differential-testing oracle.
//!
//! Keys are plain byte slices: callers index either raw keys or the padded
//! bytes of an [`EncodedKey`](crate::EncodedKey). The trait requires
//! `Send + Sync` so an index can sit behind a shard's epoch handle and be
//! read from many threads.

/// An ordered map from byte-string keys to `u64` values.
///
/// The ordering contract: iteration-order equals lexicographic byte order
/// of the stored keys, `range` bounds are **inclusive** on both ends, and
/// a key may be a prefix of another key (required for HOPE-encoded keys).
pub trait OrderedIndex: Send + Sync + std::fmt::Debug {
    /// Point lookup.
    fn get(&self, key: &[u8]) -> Option<u64>;

    /// Insert or update; returns the previous value if the key existed.
    fn insert(&mut self, key: &[u8], value: u64) -> Option<u64>;

    /// Values of up to `count` keys `>= start`, in key order.
    fn scan(&self, start: &[u8], count: usize) -> Vec<u64>;

    /// Values of up to `limit` keys in `low..=high`, in key order.
    fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<u64>;

    /// Append the values of up to `limit` keys in `low..=high` to `out`,
    /// in key order — the allocation-free form of [`OrderedIndex::range`]
    /// scan loops reuse a buffer with. For a fixed index state and fixed
    /// bounds, growing `limit` must only *extend* the emitted sequence
    /// (results are a stable prefix), which every ordered structure
    /// satisfies naturally; `hope_store`'s scan retry loop relies on it.
    ///
    /// The default delegates to [`OrderedIndex::range`] (allocating);
    /// backends override it to fill `out` directly.
    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<u64>) {
        out.extend(self.range(low, high, limit));
    }

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of the index structure in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Reference implementation over the standard library's ordered map, used
/// as the oracle in differential tests and as a no-frills store backend.
impl OrderedIndex for std::collections::BTreeMap<Vec<u8>, u64> {
    fn get(&self, key: &[u8]) -> Option<u64> {
        std::collections::BTreeMap::get(self, key).copied()
    }

    fn insert(&mut self, key: &[u8], value: u64) -> Option<u64> {
        std::collections::BTreeMap::insert(self, key.to_vec(), value)
    }

    fn scan(&self, start: &[u8], count: usize) -> Vec<u64> {
        self.range(start.to_vec()..).take(count).map(|(_, v)| *v).collect()
    }

    fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<u64> {
        if low > high {
            return Vec::new();
        }
        self.range(low.to_vec()..=high.to_vec()).take(limit).map(|(_, v)| *v).collect()
    }

    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<u64>) {
        if low > high {
            return;
        }
        out.extend(self.range(low.to_vec()..=high.to_vec()).take(limit).map(|(_, v)| *v));
    }

    fn len(&self) -> usize {
        std::collections::BTreeMap::len(self)
    }

    fn memory_bytes(&self) -> usize {
        self.keys().map(|k| k.len() + std::mem::size_of::<(Vec<u8>, u64)>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn probe(ix: &mut dyn OrderedIndex) {
        assert!(ix.is_empty());
        assert_eq!(ix.insert(b"b", 2), None);
        assert_eq!(ix.insert(b"a", 1), None);
        assert_eq!(ix.insert(b"ab", 3), None);
        assert_eq!(ix.insert(b"a", 10), Some(1));
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.get(b"ab"), Some(3));
        assert_eq!(ix.get(b"zz"), None);
        assert_eq!(ix.scan(b"a", 2), vec![10, 3]);
        assert_eq!(ix.range(b"a", b"ab", 10), vec![10, 3]);
        assert_eq!(ix.range(b"b", b"a", 10), Vec::<u64>::new());
        // range_into appends to a reused buffer and matches range().
        let mut buf = vec![99u64];
        ix.range_into(b"a", b"ab", 10, &mut buf);
        assert_eq!(buf, vec![99, 10, 3]);
        buf.clear();
        ix.range_into(b"b", b"a", 10, &mut buf);
        assert!(buf.is_empty());
        assert!(ix.memory_bytes() > 0);
    }

    #[test]
    fn btreemap_reference_implementation() {
        let mut m: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        probe(&mut m);
    }

    #[test]
    fn trait_object_is_usable_behind_a_box() {
        let mut b: Box<dyn OrderedIndex> = Box::<BTreeMap<Vec<u8>, u64>>::default();
        b.insert(b"k", 7);
        assert_eq!(b.get(b"k"), Some(7));
    }
}
