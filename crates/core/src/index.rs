//! The [`OrderedIndex`] abstraction: what HOPE requires of a search tree.
//!
//! HOPE compresses keys for *order-sensitive* structures; any index that
//! maps byte-string keys to values and supports ordered iteration can
//! store HOPE-encoded keys and answer the same point and range queries
//! (§5). This trait captures that contract so serving layers — notably the
//! `hope_store` sharded store — can treat the tree backend as pluggable:
//! `hope_btree::BPlusTree`, `hope_art::Art` and `hope_hot::Hot` implement
//! it, and [`std::collections::BTreeMap`] gets a reference implementation
//! used as the differential-testing oracle.
//!
//! Since the v1 API the trait is **generic over its value payload**
//! `V: `[`Value`] (any `Clone + Send + Sync + Debug + 'static` type), with
//! `u64` as the default parameter so `dyn OrderedIndex` keeps meaning the
//! classic id-valued index. The required scan surface is the
//! allocation-free `*_into` form; the `Vec`-returning [`OrderedIndex::range`]
//! is a deprecated shim kept for migration.
//!
//! Keys are plain byte slices: callers index either raw keys or the padded
//! bytes of an [`EncodedKey`](crate::EncodedKey). The trait requires
//! `Send + Sync` so an index can sit behind a shard's epoch handle and be
//! read from many threads.

/// Marker bound for index value payloads.
///
/// Blanket-implemented for every `Clone + Send + Sync + Debug + 'static`
/// type, so `u64` record ids, `Vec<u8>` documents, `Arc<T>` handles and
/// user structs all qualify without opt-in:
///
/// ```
/// fn assert_value<V: hope::Value>() {}
/// assert_value::<u64>();
/// assert_value::<Vec<u8>>();
/// assert_value::<(String, f64)>();
/// ```
pub trait Value: Clone + Send + Sync + std::fmt::Debug + 'static {}

impl<T: Clone + Send + Sync + std::fmt::Debug + 'static> Value for T {}

/// An ordered map from byte-string keys to `V` values.
///
/// The ordering contract: iteration-order equals lexicographic byte order
/// of the stored keys, range bounds are **inclusive** on both ends, and
/// a key may be a prefix of another key (required for HOPE-encoded keys).
pub trait OrderedIndex<V: Value = u64>: Send + Sync + std::fmt::Debug {
    /// Point lookup, borrowing the stored value.
    fn get(&self, key: &[u8]) -> Option<&V>;

    /// Insert or update; returns the previous value if the key existed.
    fn insert(&mut self, key: &[u8], value: V) -> Option<V>;

    /// Append clones of the values of up to `count` keys `>= start` to
    /// `out`, in key order — the allocation-free scan primitive.
    fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>);

    /// Append clones of the values of up to `limit` keys in `low..=high`
    /// to `out`, in key order — the allocation-free form scan loops reuse
    /// a buffer with. For a fixed index state and fixed bounds, growing
    /// `limit` must only *extend* the emitted sequence (results are a
    /// stable prefix), which every ordered structure satisfies naturally;
    /// `hope_store`'s scan retry loop relies on it. Inverted bounds
    /// (`low > high`) must emit nothing.
    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>);

    /// Values of up to `count` keys `>= start`, in key order (allocating
    /// convenience over [`OrderedIndex::scan_into`]).
    fn scan(&self, start: &[u8], count: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(count.min(64));
        self.scan_into(start, count, &mut out);
        out
    }

    /// Values of up to `limit` keys in `low..=high`, in key order.
    ///
    /// ```
    /// use hope::OrderedIndex;
    /// use std::collections::BTreeMap;
    ///
    /// let mut ix: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    /// ix.insert(b"a".to_vec(), 1);
    /// ix.insert(b"b".to_vec(), 2);
    /// // The deprecated shim agrees with the `range_into` it wraps.
    /// #[allow(deprecated)]
    /// let hits = OrderedIndex::range(&ix, b"a", b"b", 10);
    /// let mut out = Vec::new();
    /// OrderedIndex::range_into(&ix, b"a", b"b", 10, &mut out);
    /// assert_eq!(hits, out);
    /// ```
    #[deprecated(
        since = "0.2.0",
        note = "allocates a fresh Vec per call; use `range_into` with a reused buffer \
                (or a `hope_store` RangeCursor at the store level)"
    )]
    fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(limit.min(64));
        self.range_into(low, high, limit, &mut out);
        out
    }

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint of the index structure in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Reference implementation over the standard library's ordered map, used
/// as the oracle in differential tests and as a no-frills store backend.
impl<V: Value> OrderedIndex<V> for std::collections::BTreeMap<Vec<u8>, V> {
    fn get(&self, key: &[u8]) -> Option<&V> {
        std::collections::BTreeMap::get(self, key)
    }

    fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        std::collections::BTreeMap::insert(self, key.to_vec(), value)
    }

    fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>) {
        out.extend(self.range(start.to_vec()..).take(count).map(|(_, v)| v.clone()));
    }

    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>) {
        if low > high {
            return;
        }
        out.extend(self.range(low.to_vec()..=high.to_vec()).take(limit).map(|(_, v)| v.clone()));
    }

    fn len(&self) -> usize {
        std::collections::BTreeMap::len(self)
    }

    fn memory_bytes(&self) -> usize {
        self.keys().map(|k| k.len() + std::mem::size_of::<(Vec<u8>, V)>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn probe(ix: &mut dyn OrderedIndex) {
        assert!(ix.is_empty());
        assert_eq!(ix.insert(b"b", 2), None);
        assert_eq!(ix.insert(b"a", 1), None);
        assert_eq!(ix.insert(b"ab", 3), None);
        assert_eq!(ix.insert(b"a", 10), Some(1));
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.get(b"ab"), Some(&3));
        assert_eq!(ix.get(b"zz"), None);
        assert_eq!(ix.scan(b"a", 2), vec![10, 3]);
        // range_into appends to a reused buffer; the deprecated shim
        // must agree with it.
        let mut buf = vec![99u64];
        ix.range_into(b"a", b"ab", 10, &mut buf);
        assert_eq!(buf, vec![99, 10, 3]);
        #[allow(deprecated)]
        {
            assert_eq!(ix.range(b"a", b"ab", 10), vec![10, 3]);
            assert_eq!(ix.range(b"b", b"a", 10), Vec::<u64>::new());
        }
        buf.clear();
        ix.range_into(b"b", b"a", 10, &mut buf);
        assert!(buf.is_empty());
        assert!(ix.memory_bytes() > 0);
    }

    #[test]
    fn btreemap_reference_implementation() {
        let mut m: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        probe(&mut m);
    }

    #[test]
    fn trait_object_is_usable_behind_a_box() {
        let mut b: Box<dyn OrderedIndex> = Box::<BTreeMap<Vec<u8>, u64>>::default();
        b.insert(b"k", 7);
        assert_eq!(b.get(b"k"), Some(&7));
    }

    #[test]
    fn non_u64_payloads_round_trip() {
        let mut m: BTreeMap<Vec<u8>, String> = BTreeMap::new();
        let ix: &mut dyn OrderedIndex<String> = &mut m;
        assert_eq!(ix.insert(b"k", "alpha".into()), None);
        assert_eq!(ix.insert(b"k", "beta".into()), Some("alpha".into()));
        assert_eq!(ix.get(b"k").map(String::as_str), Some("beta"));
        let mut out = Vec::new();
        ix.range_into(b"a", b"z", 10, &mut out);
        assert_eq!(out, vec!["beta".to_string()]);
    }
}
