//! The HOPE build pipeline (§4.1, Figure 5): Symbol Selector → Code
//! Assigner → Dictionary → Encoder, with per-module timing (Figure 9).

use std::time::{Duration, Instant};

use crate::axis::IntervalSet;
use crate::bitpack::EncodedKey;
use crate::code_assign::CodeAssigner;
use crate::decoder::Decoder;
use crate::dict::Dict;
use crate::encoder::Encoder;
use crate::selector::{self, Scheme};

/// Errors from the HOPE codec: the build pipeline *and* the v1 fallible
/// codec surface ([`KeyCodec`](crate::codec::KeyCodec)).
///
/// Every fallible stage reports through this type instead of panicking or
/// returning a bare `Option`, so embedding systems (e.g. a `hope_store`
/// shard) can surface a failed dictionary build — or a corrupt encoded
/// stream — and keep serving rather than aborting.
///
/// The enum is `#[non_exhaustive]`: future PRs may add variants without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HopeError {
    /// The sampled key list was empty and the scheme needs statistics.
    EmptySample,
    /// Target dictionary size was zero.
    ZeroDictionarySize,
    /// The symbol selector produced an interval division that fails
    /// [`IntervalSet::validate`]: not connected, not sorted, or otherwise
    /// violating the complete-division invariant of §3.2.
    InvalidIntervals {
        /// Name of the scheme whose selector failed.
        scheme: &'static str,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A source key exceeded [`MAX_KEY_BYTES`](crate::codec::MAX_KEY_BYTES)
    /// on the validated codec surface (`encode_to` and the store write
    /// path). Encoding is mathematically total, but unbounded keys would
    /// pin unbounded per-thread scratch, so the serving stack rejects them.
    KeyTooLong {
        /// Length of the offending key in bytes.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// An encoded bitstream did not end exactly on a code boundary or left
    /// the code trie — impossible for encoder output, so it indicates
    /// corruption of the stored bytes.
    CorruptEncoding {
        /// Bit length of the stream that failed to decode.
        bit_len: usize,
    },
}

impl std::fmt::Display for HopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopeError::EmptySample => write!(f, "sampled key list is empty"),
            HopeError::ZeroDictionarySize => write!(f, "dictionary size must be positive"),
            HopeError::InvalidIntervals { scheme, detail } => {
                write!(f, "{scheme}: invalid interval division: {detail}")
            }
            HopeError::KeyTooLong { len, max } => {
                write!(f, "key of {len} bytes exceeds the {max}-byte limit")
            }
            HopeError::CorruptEncoding { bit_len } => {
                write!(f, "corrupt encoding: {bit_len}-bit stream does not decode")
            }
        }
    }
}

impl std::error::Error for HopeError {}

/// Wall-clock breakdown of the build phase, one entry per module (the
/// quantities Figure 9 reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// Symbol Selector: pattern counting, interval division, test encoding.
    pub symbol_select: Duration,
    /// Code Assigner: fixed-length or Hu-Tucker construction.
    pub code_assign: Duration,
    /// Dictionary: populating the lookup structure.
    pub dictionary_build: Duration,
}

impl BuildTimings {
    /// Total build time.
    pub fn total(&self) -> Duration {
        self.symbol_select + self.code_assign + self.dictionary_build
    }
}

/// Snapshot of the codec's hot-path counters: how many keys took the
/// fast encode table vs the generic walk, how often the prefix
/// automaton's fallback edges actually fired, and which decode tier keys
/// resolved through. Read via [`Hope::codec_stats`]; counters are relaxed
/// atomics, and scratch-based point encodes flush their counts in batches
/// of 64 keys, so a snapshot taken under concurrent traffic may lag each
/// live encoding thread by up to one batch.
///
/// ```
/// use hope::{HopeBuilder, Scheme};
///
/// let sample = vec![b"com.gmail@alice".to_vec(), b"com.gmail@bob".to_vec()];
/// let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
/// hope.encode(b"com.gmail@carol");
/// let stats = hope.codec_stats();
/// assert_eq!(stats.fast_encode_keys, 1); // Double-Char always has a fused table
/// assert_eq!(stats.generic_encode_keys, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Keys encoded through the fast table (fused or automaton).
    pub fast_encode_keys: u64,
    /// Keys encoded through the generic dictionary walk (no fast table).
    pub generic_encode_keys: u64,
    /// Automaton fallback edges taken (symbols resolved by a generic
    /// [`Dict::lookup`](crate::dict::Dict::lookup) mid-fast-path). Always
    /// 0 for the fused array tables.
    pub automaton_fallback_takes: u64,
    /// Keys decoded entirely through the shared fast decoder's byte table.
    pub fast_decode_keys: u64,
    /// Keys whose decode needed at least one bit-walk fallback.
    pub walk_decode_keys: u64,
}

/// Configuration for building a [`Hope`] encoder.
#[derive(Debug, Clone)]
pub struct HopeBuilder {
    scheme: Scheme,
    target_entries: usize,
}

impl HopeBuilder {
    /// Builder for the given scheme with the paper's default dictionary
    /// size (64K entries for the variable-size schemes).
    pub fn new(scheme: Scheme) -> Self {
        HopeBuilder { scheme, target_entries: 1 << 16 }
    }

    /// Set the target number of dictionary entries (ignored by the
    /// fixed-size Single-Char / Double-Char schemes).
    pub fn dictionary_entries(mut self, n: usize) -> Self {
        self.target_entries = n;
        self
    }

    /// Build from sampled keys. The sample affects only the compression
    /// rate; any HOPE dictionary encodes arbitrary keys order-preservingly
    /// (§4.1).
    pub fn build_from_sample<I>(self, sample: I) -> Result<Hope, HopeError>
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let sample: Vec<Vec<u8>> = sample.into_iter().collect();
        if self.target_entries == 0 {
            return Err(HopeError::ZeroDictionarySize);
        }
        if sample.is_empty() && self.scheme.fixed_dict_size().is_none() {
            return Err(HopeError::EmptySample);
        }

        // Module 1: Symbol Selector (interval division + test encoding).
        let t0 = Instant::now();
        let set = selector::select_intervals(self.scheme, &sample, self.target_entries)?;
        let weights = selector::access_weights(&set, &sample);
        let symbol_select = t0.elapsed();

        // Module 2: Code Assigner.
        let t1 = Instant::now();
        let assigner = if self.scheme.uses_hu_tucker() {
            CodeAssigner::HuTucker
        } else {
            CodeAssigner::FixedLength
        };
        let codes = assigner.assign(&weights);
        let code_assign = t1.elapsed();

        // Module 3: Dictionary.
        let t2 = Instant::now();
        let dict = Dict::build(self.scheme, &set, &codes);
        let dictionary_build = t2.elapsed();

        let reuse_gram = match self.scheme {
            Scheme::SingleChar => Some(1),
            Scheme::DoubleChar => Some(2),
            Scheme::ThreeGrams => Some(3),
            Scheme::FourGrams => Some(4),
            Scheme::Alm | Scheme::AlmImproved => None,
        };

        Ok(Hope {
            scheme: self.scheme,
            encoder: Encoder::with_intervals(dict, reuse_gram, &set, &codes),
            intervals: set,
            codes,
            timings: BuildTimings { symbol_select, code_assign, dictionary_build },
            shared_decoder: std::sync::OnceLock::new(),
        })
    }
}

/// A built HOPE compressor: dictionary + encoder, ready for the encode
/// phase. Implements [`KeyCodec`](crate::codec::KeyCodec) — the unified
/// fallible encode/decode surface serving layers program against.
#[derive(Debug)]
pub struct Hope {
    scheme: Scheme,
    encoder: Encoder,
    intervals: IntervalSet,
    codes: Vec<crate::bitpack::Code>,
    timings: BuildTimings,
    /// Lazily built byte-table decoder backing [`Hope::decode_to`]; built
    /// at most once and shared across threads.
    shared_decoder: std::sync::OnceLock<crate::decoder::FastDecoder>,
}

impl Hope {
    /// The scheme this compressor was built with.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Encode one key (order-preserving, lossless).
    ///
    /// Allocates a fresh [`EncodedKey`]; query loops should prefer
    /// [`Hope::encode_to`] with a reused scratch.
    #[inline]
    pub fn encode(&self, key: &[u8]) -> EncodedKey {
        self.encoder.encode(key)
    }

    /// Allocation-free point encode into a reusable scratch; returns the
    /// padded encoded bytes (exact bit length via
    /// [`EncodeScratch::bit_len`](crate::encoder::EncodeScratch::bit_len)).
    ///
    /// This is the query-probe hot path: no per-key `Vec`, and every
    /// scheme takes its [`FastEncoder`](crate::fast_encoder::FastEncoder)
    /// table (fused code table or prefix automaton). Part of the
    /// [`KeyCodec`](crate::codec::KeyCodec) surface, so it validates the
    /// key; the unvalidated low-level walk stays available as
    /// [`Encoder::encode_to`].
    ///
    /// # Errors
    ///
    /// [`HopeError::KeyTooLong`] when `key` exceeds
    /// [`MAX_KEY_BYTES`](crate::codec::MAX_KEY_BYTES).
    #[inline]
    pub fn encode_to<'s>(
        &self,
        key: &[u8],
        scratch: &'s mut crate::encoder::EncodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        crate::codec::validate_key_len(key)?;
        Ok(self.encoder.encode_to(key, scratch))
    }

    /// Encode a sorted batch with prefix reuse (Appendix B).
    pub fn encode_batch(&self, keys: &[&[u8]], block_size: usize) -> Vec<EncodedKey> {
        self.encoder.encode_batch(keys, block_size)
    }

    /// Pair-encode closed-range query boundaries.
    pub fn encode_pair(&self, low: &[u8], high: &[u8]) -> (EncodedKey, EncodedKey) {
        self.encoder.encode_pair(low, high)
    }

    /// Encode the inclusive boundaries of a range query into the padded
    /// byte form order-sensitive structures index.
    ///
    /// Every source key `k` with `low <= k <= high` encodes to padded bytes
    /// within `[lo, hi]` byte-wise, so the pair can drive a compressed range
    /// scan directly. The converse holds except in the zero-extension
    /// corner (see DESIGN.md, "Encoded-key comparison"): a boundary byte
    /// string may also be shared by keys just *outside* the range, so exact
    /// consumers re-check boundary matches against the source-key bounds
    /// (as `hope_store` does).
    pub fn encode_range_bounds(&self, low: &[u8], high: &[u8]) -> (Vec<u8>, Vec<u8>) {
        let (lo, hi) = self.encoder.encode_pair(low, high);
        (lo.into_bytes(), hi.into_bytes())
    }

    /// Allocation-free [`Hope::encode_range_bounds`]: pair-encode into a
    /// reusable scratch and return the two padded byte strings. Same
    /// boundary-tie caveat as the allocating variant.
    ///
    /// # Errors
    ///
    /// [`HopeError::KeyTooLong`] when either bound exceeds
    /// [`MAX_KEY_BYTES`](crate::codec::MAX_KEY_BYTES).
    #[inline]
    pub fn encode_range_bounds_to<'s>(
        &self,
        low: &[u8],
        high: &[u8],
        scratch: &'s mut crate::encoder::EncodeScratch,
    ) -> Result<(&'s [u8], &'s [u8]), HopeError> {
        crate::codec::validate_key_len(low)?;
        crate::codec::validate_key_len(high)?;
        Ok(self.encoder.encode_pair_to(low, high, scratch))
    }

    /// Allocation-free decode of `bit_len` bits of padded encoded bytes
    /// back to the source key, via a lazily built, cached
    /// [`FastDecoder`](crate::decoder::FastDecoder) (the
    /// [`KeyCodec`](crate::codec::KeyCodec) decode surface). The first
    /// call pays the table build; later calls share it across threads.
    ///
    /// # Errors
    ///
    /// [`HopeError::CorruptEncoding`] on a corrupt stream.
    pub fn decode_to<'s>(
        &self,
        enc: &[u8],
        bit_len: usize,
        scratch: &'s mut crate::decoder::DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        self.shared_fast_decoder().decode_bits_to(enc, bit_len, scratch)
    }

    /// The lazily built table decoder behind [`Hope::decode_to`] — one
    /// per compressor, built on first use and shared thereafter (unlike
    /// [`Hope::fast_decoder`], which constructs a fresh table per call).
    pub fn shared_fast_decoder(&self) -> &crate::decoder::FastDecoder {
        self.shared_decoder.get_or_init(|| self.fast_decoder())
    }

    /// Access the low-level encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Symbol-level diff against a retrained compressor: which keys
    /// would `next` encode byte-identically (see
    /// [`EncodingDiff`](crate::diff::EncodingDiff))? `None` when the
    /// schemes differ or either side lacks a fast encoder — then there
    /// is nothing to merge and a caller should re-encode everything.
    pub fn encoding_diff<'a>(&'a self, next: &'a Hope) -> Option<crate::diff::EncodingDiff<'a>> {
        if self.scheme != next.scheme {
            return None;
        }
        crate::diff::EncodingDiff::new(&self.encoder, &next.encoder)
    }

    /// Build the bit-walk reference decoder for this dictionary.
    ///
    /// Scan paths that decode many hits should prefer
    /// [`Hope::fast_decoder`], whose byte-table loop is several times
    /// faster and batches into a reused scratch.
    pub fn decoder(&self) -> Decoder {
        let symbols: Vec<Box<[u8]>> =
            (0..self.intervals.len()).map(|i| self.intervals.symbol(i).into()).collect();
        Decoder::new(&self.codes, symbols)
    }

    /// Build the byte-at-a-time table decoder for this dictionary (the
    /// scan-path counterpart of the fast encoder), with the default
    /// [`DECODER_STATE_BUDGET`](crate::decoder::DECODER_STATE_BUDGET).
    /// Output is identical to [`Hope::decoder`].
    pub fn fast_decoder(&self) -> crate::decoder::FastDecoder {
        let symbols: Vec<Box<[u8]>> =
            (0..self.intervals.len()).map(|i| self.intervals.symbol(i).into()).collect();
        crate::decoder::FastDecoder::new(&self.codes, symbols, crate::decoder::DECODER_STATE_BUDGET)
    }

    /// Number of dictionary entries.
    pub fn dict_entries(&self) -> usize {
        self.encoder.dict().num_entries()
    }

    /// Memory footprint of the dictionary structure in bytes.
    pub fn dict_memory_bytes(&self) -> usize {
        self.encoder.dict().memory_bytes()
    }

    /// Build-phase timing breakdown (Figure 9).
    pub fn timings(&self) -> BuildTimings {
        self.timings
    }

    /// Snapshot the codec's hot-path counters (see [`CodecStats`]).
    ///
    /// Decode counters come from the shared fast decoder and are zero
    /// until [`Hope::decode_to`] / [`Hope::shared_fast_decoder`] first
    /// build it; per-call [`Hope::fast_decoder`] tables are independent
    /// and not reflected here.
    pub fn codec_stats(&self) -> CodecStats {
        let (fast_decode_keys, walk_decode_keys) = match self.shared_decoder.get() {
            Some(d) => (d.table_key_count(), d.walk_key_count()),
            None => (0, 0),
        };
        CodecStats {
            fast_encode_keys: self.encoder.fast_key_count(),
            generic_encode_keys: self.encoder.generic_key_count(),
            automaton_fallback_takes: self
                .encoder
                .fast()
                .map_or(0, |f| f.automaton_fallback_takes()),
            fast_decode_keys,
            walk_decode_keys,
        }
    }

    /// The interval division backing the dictionary (inspection/tests).
    pub fn intervals(&self) -> &IntervalSet {
        &self.intervals
    }
}

/// [`Hope`] is the reference implementation of the unified codec surface:
/// the trait methods delegate to the inherent fast paths above.
impl crate::codec::KeyCodec for Hope {
    fn encode_to<'s>(
        &self,
        key: &[u8],
        scratch: &'s mut crate::encoder::EncodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        Hope::encode_to(self, key, scratch)
    }

    fn encode_range_bounds_to<'s>(
        &self,
        low: &[u8],
        high: &[u8],
        scratch: &'s mut crate::encoder::EncodeScratch,
    ) -> Result<(&'s [u8], &'s [u8]), HopeError> {
        Hope::encode_range_bounds_to(self, low, high, scratch)
    }

    fn decode_to<'s>(
        &self,
        enc: &[u8],
        bit_len: usize,
        scratch: &'s mut crate::decoder::DecodeScratch,
    ) -> Result<&'s [u8], HopeError> {
        Hope::decode_to(self, enc, bit_len, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<u8>> {
        (0..200).map(|i| format!("com.gmail@user{i:04}").into_bytes()).collect()
    }

    #[test]
    fn builds_every_scheme() -> Result<(), HopeError> {
        for scheme in Scheme::ALL {
            // Build failures surface as HopeError values, not panics.
            let hope =
                HopeBuilder::new(scheme).dictionary_entries(1024).build_from_sample(sample())?;
            assert!(hope.dict_entries() > 0);
            assert!(hope.dict_memory_bytes() > 0);
            assert!(hope.timings().total() > Duration::ZERO);
            let e = hope.encode(b"com.gmail@user0007");
            assert!(e.bit_len() > 0);
        }
        Ok(())
    }

    #[test]
    fn range_bounds_bracket_contained_keys() {
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample()).unwrap();
        let (lo, hi) = hope.encode_range_bounds(b"com.gmail@user0010", b"com.gmail@user0100");
        assert_eq!(lo, hope.encode(b"com.gmail@user0010").into_bytes());
        assert_eq!(hi, hope.encode(b"com.gmail@user0100").into_bytes());
        for probe in ["com.gmail@user0010", "com.gmail@user0055", "com.gmail@user0100"] {
            let e = hope.encode(probe.as_bytes()).into_bytes();
            assert!(lo <= e && e <= hi, "{probe} escaped its range bounds");
        }
    }

    #[test]
    fn fixed_schemes_build_from_empty_sample() {
        let hope =
            HopeBuilder::new(Scheme::SingleChar).build_from_sample(Vec::<Vec<u8>>::new()).unwrap();
        assert_eq!(hope.dict_entries(), 256);
    }

    #[test]
    fn variable_schemes_reject_empty_sample() {
        let err = HopeBuilder::new(Scheme::ThreeGrams)
            .build_from_sample(Vec::<Vec<u8>>::new())
            .unwrap_err();
        assert_eq!(err, HopeError::EmptySample);
    }

    #[test]
    fn zero_dict_size_rejected() {
        let err = HopeBuilder::new(Scheme::ThreeGrams)
            .dictionary_entries(0)
            .build_from_sample(sample())
            .unwrap_err();
        assert_eq!(err, HopeError::ZeroDictionarySize);
    }

    #[test]
    fn roundtrip_through_public_api() {
        let hope = HopeBuilder::new(Scheme::FourGrams)
            .dictionary_entries(512)
            .build_from_sample(sample())
            .unwrap();
        let dec = hope.decoder();
        for key in ["com.gmail@user0000", "unrelated", "", "com"] {
            let e = hope.encode(key.as_bytes());
            assert_eq!(dec.decode(&e).unwrap(), key.as_bytes());
        }
    }

    #[test]
    fn codec_stats_track_the_paths_taken() {
        let hope = HopeBuilder::new(Scheme::ThreeGrams)
            .dictionary_entries(512)
            .build_from_sample(sample())
            .unwrap();
        assert_eq!(hope.codec_stats(), CodecStats::default(), "fresh codec counts nothing");
        let mut enc = crate::encoder::EncodeScratch::new();
        let mut dec = crate::decoder::DecodeScratch::new();
        // Scratch encodes batch their counts: one full flush batch makes
        // them visible, plus one immediately-counted allocating encode.
        let flush = crate::encoder::COUNT_FLUSH_EVERY as u64;
        let mut bytes = Vec::new();
        for _ in 0..flush {
            bytes = hope.encode_to(b"com.gmail@user0001", &mut enc).unwrap().to_vec();
        }
        hope.encode(b"com.gmail@user0002");
        let stats = hope.codec_stats();
        assert_eq!(stats.fast_encode_keys, flush + 1, "3-Grams has an automaton fast path");
        assert_eq!(stats.generic_encode_keys, 0);
        assert_eq!((stats.fast_decode_keys, stats.walk_decode_keys), (0, 0), "decoder unbuilt");
        hope.decode_to(&bytes, enc.bit_len(), &mut dec).unwrap();
        let stats = hope.codec_stats();
        assert_eq!(stats.fast_decode_keys + stats.walk_decode_keys, 1, "one key decoded");
    }

    #[test]
    fn error_display() {
        assert!(HopeError::EmptySample.to_string().contains("empty"));
        assert!(HopeError::ZeroDictionarySize.to_string().contains("positive"));
        assert!(HopeError::KeyTooLong { len: 9, max: 4 }.to_string().contains("9 bytes"));
        assert!(HopeError::CorruptEncoding { bit_len: 17 }.to_string().contains("17-bit"));
    }

    #[test]
    fn hope_implements_the_unified_codec_surface() {
        use crate::codec::{KeyCodec, MAX_KEY_BYTES};
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample()).unwrap();
        let codec: &dyn KeyCodec = &hope;
        let mut enc = crate::encoder::EncodeScratch::new();
        let mut dec = crate::decoder::DecodeScratch::new();
        let bytes = codec.encode_to(b"com.gmail@user0042", &mut enc).unwrap().to_vec();
        let bits = enc.bit_len();
        assert_eq!(bytes, hope.encode(b"com.gmail@user0042").into_bytes());
        let back = codec.decode_to(&bytes, bits, &mut dec).unwrap();
        assert_eq!(back, b"com.gmail@user0042");
        // The pair surface brackets and validates.
        let (lo, hi) = codec.encode_range_bounds_to(b"a", b"b", &mut enc).unwrap();
        assert!(lo <= hi);
        let giant = vec![b'x'; MAX_KEY_BYTES + 1];
        assert!(matches!(codec.encode_to(&giant, &mut enc), Err(HopeError::KeyTooLong { .. })));
        // Truncating the last bit cuts the final code mid-stream; a
        // prefix-free code set can only fail to notice when that final
        // code was a single bit, which a 65K-entry dictionary never
        // assigns. Corruption surfaces as an error, not a panic.
        assert!(matches!(
            codec.decode_to(&bytes, bits - 1, &mut dec),
            Err(HopeError::CorruptEncoding { .. })
        ));
    }
}
