//! `fig22_snapshot_rebuild` — the versioned-snapshot acceptance bench:
//! O(1) copy-on-write snapshots and the incremental merge rebuild,
//! proven end to end against a shadow map, a latency-flatness probe,
//! the swap reports, and a serving pass with `SnapshotScan` in the mix.
//!
//! Four gates:
//!
//! * **(a) frozen equality** — a snapshot taken before heavy churn
//!   (inserts, updates, forced hot-swaps on every shard) answers every
//!   point and range read byte-for-byte from the shadow map of the
//!   capture instant; keys born after the capture are invisible; the
//!   `store.snapshot.*` lifecycle counters balance;
//! * **(b) flat capture** — `snapshot()` cost is O(shard count), not
//!   O(keys): the median capture latency on a store 8× larger stays
//!   within [`LATENCY_FLAT_RATIO`]× of the small store's (medians over
//!   interleaved trials; raw timings go to the JSON report, never into
//!   `DIGEST` lines);
//! * **(c) incremental rebuild** — after localized drift (updates and a
//!   few new keys, all confined to the bottom decile of the keyspace,
//!   i.e. one shard's range) a forced rebuild of every shard takes the
//!   merge path on the clean shards — their retrained dictionaries come
//!   out byte-identical, so the splice reuses their encoded runs
//!   verbatim — and re-encodes under [`MAX_REENCODED_FRAC`] of the live
//!   encoded bytes overall, with contents preserved;
//! * **(d) exactly-once** — the three-phase serving drill with every
//!   other range scan submitted as a [`Request::snapshot_scan`]
//!   completes every admitted request exactly once, zero rejects, zero
//!   errors, and every captured snapshot is dropped
//!   (`taken == dropped == snapshot scans`, active gauge 0).
//!
//! **Determinism**: gates (a), (c) and (d) are pure functions of the
//! seeded workload (virtual time in `--quick`), so two quick runs print
//! byte-identical `DIGEST` lines and CI diffs them. Gate (b) is wall
//! clock by nature; only its boolean reaches the `DIGEST` stream.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig22_snapshot_rebuild
//!         [-- --keys N --queries N --seed N --quick --out PATH]`

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use hope_bench::harness::{
    build_serving_store, flag_value, json_head, json_phase, phase_bounds, phase_ops_per_sec,
    serving_config, to_request, PHASE_NAMES,
};
use hope_bench::BenchConfig;
use hope_store::serving::{Request, Server};
use hope_store::{HopeStore, StoreConfig, SwapReport};
use hope_workloads::{MixedWorkload, StoreOp, TrafficSpec};

/// Gate (b): the large store's median `snapshot()` latency must stay
/// within this factor of the small store's. The true ratio is ~1 (the
/// capture does identical O(shards) work on both); the headroom absorbs
/// scheduler noise so the boolean is stable run to run.
const LATENCY_FLAT_RATIO: f64 = 8.0;

/// Gate (b): the large store holds this many times the small store's
/// keys — an O(keys) capture would blow the ratio gate immediately.
const SIZE_FACTOR: usize = 8;

/// Gate (b): capture trials per store (interleaved small/large).
const LATENCY_TRIALS: usize = 101;

/// Gate (c): ceiling on `reencoded / (reused + reencoded)` summed over
/// all shards after localized drift.
const MAX_REENCODED_FRAC: f64 = 0.5;

/// Gate (c): the drift is confined to this bottom fraction of the
/// sorted keyspace — entirely inside the first shard's range (shard
/// split points are quantiles), so the other shards see zero drift
/// traffic and retrain byte-identical dictionaries.
const DRIFT_PREFIX_DENOM: usize = 10;

/// Gate (c): within the drifted prefix, one key in this many gets a
/// value update (key bytes unchanged).
const DRIFT_UPDATE_EVERY: usize = 2;

/// Gate (c): within the drifted prefix, one key in this many spawns a
/// sibling key (suffix drawn from bytes already in the distribution).
const DRIFT_NEW_EVERY: usize = 25;

/// Gate (a): one churn op in this many forces a shard hot-swap, floor —
/// the cadence stretches on big runs (see [`churn_swap_every`]) so the
/// full-size drill doesn't spend its whole budget rebuilding.
const CHURN_SWAP_EVERY: usize = 64;

/// Gate (a): forced-swap cadence — every 64th op in quick runs, capped
/// at ~200 swaps total on full-size runs (each swap re-encodes a whole
/// shard; the gate needs swaps *present under the open snapshot*, not
/// thousands of them).
fn churn_swap_every(ops: usize) -> usize {
    (ops / 200).max(CHURN_SWAP_EVERY)
}

/// Gate (d): every Nth submit carries a completion ticket.
const TICKET_SAMPLE: usize = 64;

/// Build a store and its shadow map from the workload's initial keys
/// (value = first-seen position, deduplicated through the map so store
/// and shadow agree by construction).
fn build_with_shadow(keys: &[Vec<u8>], cfg: StoreConfig) -> (HopeStore, BTreeMap<Vec<u8>, u64>) {
    let mut shadow = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        shadow.entry(k.clone()).or_insert(i as u64);
    }
    let store =
        HopeStore::build(cfg, shadow.iter().map(|(k, v)| (k.clone(), *v))).expect("store build");
    (store, shadow)
}

fn store_config() -> StoreConfig {
    StoreConfig { min_observed_bytes: 512, event_capacity: 4096, ..StoreConfig::default() }
}

/// Gate (a) outcome.
struct FrozenOutcome {
    shadow_keys: usize,
    churn_inserts: u64,
    churn_swaps: u64,
    range_equal: bool,
    points_equal: bool,
    invisible: bool,
    lifecycle_ok: bool,
}

/// Take a snapshot, churn the live store hard (inserts + forced swaps
/// on every shard), then audit the snapshot against the shadow map.
fn run_frozen(workload: &MixedWorkload) -> FrozenOutcome {
    let (store, shadow) = build_with_shadow(&workload.initial, store_config());
    let shards = store.config().shards;
    let snap = store.snapshot();

    let swap_every = churn_swap_every(workload.ops.len());
    let mut churn_inserts = 0u64;
    let mut churn_swaps = 0u64;
    let mut churned: Vec<Vec<u8>> = Vec::new();
    for (i, op) in workload.ops.iter().enumerate() {
        if i.is_multiple_of(swap_every) {
            store.force_rebuild(i / swap_every % shards).expect("forced rebuild");
            churn_swaps += 1;
        } else if let StoreOp::Insert(k, v) = op {
            store.insert(k.clone(), *v).expect("insert");
            churned.push(k.clone());
            churn_inserts += 1;
        }
    }

    // Full-range sweep (inclusive bounds = the shadow's own extremes):
    // byte-for-byte the capture instant.
    let want: Vec<(Vec<u8>, u64)> = shadow.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let (low, high) = (&want.first().expect("non-empty").0, &want.last().expect("non-empty").0);
    let mut got = Vec::new();
    snap.range_into(low, high, usize::MAX, &mut got).expect("snapshot range");
    let range_equal = got == want && snap.len() == shadow.len();

    // Every key the churn touched reads as the shadow says — updated
    // keys show the pre-churn value, post-capture keys are invisible.
    let mut points_equal = true;
    let mut invisible = true;
    for k in &churned {
        let snap_v = snap.get(k).expect("snapshot get");
        if snap_v != shadow.get(k).copied() {
            points_equal = false;
        }
        if !shadow.contains_key(k) && snap_v.is_some() {
            invisible = false;
        }
    }

    let t = store.telemetry();
    let taken = t.counter("store.snapshot.taken").unwrap_or(0);
    let active = t.gauge("store.snapshot.active").unwrap_or(0);
    drop(snap);
    let t2 = store.telemetry();
    let lifecycle_ok = taken == 1
        && active == 1
        && t2.counter("store.snapshot.dropped").unwrap_or(0) == 1
        && t2.gauge("store.snapshot.active").unwrap_or(0) == 0;

    FrozenOutcome {
        shadow_keys: shadow.len(),
        churn_inserts,
        churn_swaps,
        range_equal,
        points_equal,
        invisible,
        lifecycle_ok,
    }
}

/// Median of a latency sample (ns).
fn median_ns(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Gate (b): interleaved capture trials on a small and an 8×-larger
/// store; returns `(small_keys, large_keys, small_median, large_median)`.
fn run_latency(workload: &MixedWorkload, cfg: &BenchConfig) -> (usize, usize, u64, u64) {
    let cap = workload.initial.len();
    let small_n = (cfg.keys / SIZE_FACTOR).clamp(1_000.min(cap), cap);
    let (small, _) = build_with_shadow(&workload.initial[..small_n], store_config());
    let (large, _) = build_with_shadow(&workload.initial, store_config());

    let mut small_ns = Vec::with_capacity(LATENCY_TRIALS);
    let mut large_ns = Vec::with_capacity(LATENCY_TRIALS);
    for _ in 0..LATENCY_TRIALS {
        let t0 = Instant::now();
        let s = small.snapshot();
        small_ns.push(t0.elapsed().as_nanos() as u64);
        drop(s);
        let t0 = Instant::now();
        let s = large.snapshot();
        large_ns.push(t0.elapsed().as_nanos() as u64);
        drop(s);
    }
    (small.len(), large.len(), median_ns(small_ns), median_ns(large_ns))
}

/// Gate (c) outcome.
struct RebuildOutcome {
    reports: Vec<SwapReport>,
    incremental: u64,
    full: u64,
    reused_bytes: u64,
    reencoded_bytes: u64,
    reencoded_frac: f64,
    contents_ok: bool,
}

/// Apply localized drift — value updates plus a trickle of sibling
/// keys, all confined to the bottom decile of the sorted keyspace (one
/// shard's range) — then force-rebuild every shard and sum the swap
/// reports' reuse accounting. The shards outside the drifted range see
/// no traffic: their retrain sample is the same resident-key stride the
/// build used, the new dictionary comes out byte-identical, and the
/// merge path splices 100% of their encoded bytes. Only the drifted
/// shard pays a re-encode, which is what keeps the overall re-encoded
/// fraction under the gate.
fn run_rebuild(workload: &MixedWorkload) -> RebuildOutcome {
    let (store, mut shadow) = build_with_shadow(&workload.initial, store_config());
    let mut sorted: Vec<Vec<u8>> = shadow.keys().cloned().collect();
    sorted.truncate(shadow.len() / DRIFT_PREFIX_DENOM);
    for (i, k) in sorted.iter().enumerate() {
        if i.is_multiple_of(DRIFT_UPDATE_EVERY) {
            store.insert(k.clone(), u64::MAX - i as u64).expect("drift update");
            shadow.insert(k.clone(), u64::MAX - i as u64);
        }
        if i.is_multiple_of(DRIFT_NEW_EVERY) {
            let mut sib = k.clone();
            sib.extend_from_slice(&k[..k.len().min(2)]);
            store.insert(sib.clone(), i as u64).expect("drift insert");
            shadow.insert(sib, i as u64);
        }
    }

    let mut reports = Vec::new();
    for s in 0..store.config().shards {
        reports.push(store.force_rebuild(s).expect("forced rebuild"));
    }
    let incremental = reports.iter().filter(|r| r.incremental).count() as u64;
    let full = reports.len() as u64 - incremental;
    let reused_bytes: u64 = reports.iter().map(|r| r.reused_bytes).sum();
    let reencoded_bytes: u64 = reports.iter().map(|r| r.reencoded_bytes).sum();
    let total = (reused_bytes + reencoded_bytes).max(1);
    let reencoded_frac = reencoded_bytes as f64 / total as f64;

    // The rebuilt store still answers every key (sampled).
    let contents_ok =
        shadow.iter().step_by(7).all(|(k, v)| store.get(k).expect("post-rebuild get") == Some(*v));

    RebuildOutcome {
        reports,
        incremental,
        full,
        reused_bytes,
        reencoded_bytes,
        reencoded_frac,
        contents_ok,
    }
}

/// Gate (d) outcome.
struct ServeOutcome {
    report: hope_store::serving::ServingReport,
    wall_ns: [u64; 3],
    submitted: u64,
    snap_scans: u64,
    tickets_issued: u64,
    tickets_resolved: u64,
}

/// The fig18 three-phase drill with every other range scan submitted
/// as a point-in-time [`Request::snapshot_scan`].
fn run_serving(cfg: &BenchConfig, workload: &MixedWorkload) -> ServeOutcome {
    let bounds = phase_bounds(workload);
    let store = build_serving_store(workload);
    let server =
        Server::start(Arc::clone(&store), serving_config(cfg.quick)).expect("server start");

    let mut wall_ns = [0u64; 3];
    let mut submitted = 0u64;
    let mut snap_scans = 0u64;
    let mut scan_seq = 0usize;
    let mut tickets = Vec::new();
    for (phase, &(lo, hi)) in bounds.iter().enumerate() {
        let t0 = Instant::now();
        for (i, op) in workload.ops[lo..hi].iter().enumerate() {
            let req = match op {
                StoreOp::Scan(low, high, limit) => {
                    scan_seq += 1;
                    if scan_seq.is_multiple_of(2) {
                        snap_scans += 1;
                        Request::snapshot_scan(low.clone(), high.clone(), *limit)
                    } else {
                        to_request(op)
                    }
                }
                other => to_request(other),
            };
            if i.is_multiple_of(TICKET_SAMPLE) {
                tickets.push(server.submit(req, phase).expect("server open"));
            } else {
                server.submit_detached(req, phase).expect("server open");
            }
        }
        server.flush();
        wall_ns[phase] = t0.elapsed().as_nanos() as u64;
        submitted += (hi - lo) as u64;
        if phase > 0 {
            // Hot-swaps under live snapshot scans: the point of the drill.
            let (_, errors) = store.maintain();
            assert!(errors.is_empty(), "unexpected rebuild errors: {errors:?}");
        }
    }
    let tickets_issued = tickets.len() as u64;
    let tickets_resolved = tickets.iter().filter(|t| t.is_done()).count() as u64;
    let report = server.shutdown();
    ServeOutcome { report, wall_ns, submitted, snap_scans, tickets_issued, tickets_resolved }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = flag_value(&cfg, "--out", "BENCH_snapshot.json");
    let ops = if cfg.quick { cfg.queries } else { cfg.queries.saturating_mul(10) };
    println!(
        "# fig22_snapshot_rebuild: {} initial keys, {} ops, seed {}, {} mode",
        cfg.keys,
        ops,
        cfg.seed,
        if cfg.quick { "virtual-time (deterministic)" } else { "wall-clock" }
    );
    let workload = MixedWorkload::generate(cfg.keys, ops, TrafficSpec::default(), cfg.seed);

    // Gate (a): frozen equality under churn.
    let frozen = run_frozen(&workload);
    let frozen_ok =
        frozen.range_equal && frozen.points_equal && frozen.invisible && frozen.lifecycle_ok;

    // Gate (b): capture latency flat in store size.
    let (small_keys, large_keys, small_med, large_med) = run_latency(&workload, &cfg);
    let latency_ratio = large_med as f64 / small_med.max(1) as f64;
    let latency_flat = latency_ratio <= LATENCY_FLAT_RATIO;
    println!(
        "# capture latency: {small_keys} keys -> {small_med} ns median, \
         {large_keys} keys -> {large_med} ns median (ratio {latency_ratio:.2}, \
         gate <= {LATENCY_FLAT_RATIO})"
    );

    // Gate (c): incremental rebuild under localized drift.
    let rebuild = run_rebuild(&workload);
    for r in &rebuild.reports {
        println!(
            "# rebuild shard {}: {} keys, epoch {} -> {}, {} ({} reused B, {} re-encoded B)",
            r.shard,
            r.live_keys,
            r.old_epoch,
            r.new_epoch,
            if r.incremental { "incremental" } else { "full" },
            r.reused_bytes,
            r.reencoded_bytes,
        );
    }
    let rebuild_ok = rebuild.incremental >= 1
        && rebuild.reencoded_frac < MAX_REENCODED_FRAC
        && rebuild.contents_ok;

    // Gate (d): exactly-once through serving with SnapshotScan mixed in.
    let serve = run_serving(&cfg, &workload);
    let t = &serve.report.telemetry;
    let taken = t.counter("store.snapshot.taken").unwrap_or(0);
    let dropped = t.counter("store.snapshot.dropped").unwrap_or(0);
    let active = t.gauge("store.snapshot.active").unwrap_or(0);
    let errors: u64 = serve.report.phases.iter().map(|p| p.errors).sum();
    let exactly_once = serve.report.total_ops() == serve.submitted
        && serve.report.total_rejected() == 0
        && serve.tickets_resolved == serve.tickets_issued
        && errors == 0;
    let snap_balanced = taken == serve.snap_scans && dropped == taken && active == 0;
    let serve_ok = exactly_once && snap_balanced;

    println!("\n# serving run: {} workers", serve.report.workers);
    println!(
        "{:11} {:>9} {:>8} {:>8} {:>7} {:>10} {:>10} {:>10} {:>11}",
        "phase", "ops", "gets", "inserts", "scans", "p50", "p99", "p999", "ops/sec"
    );
    for (p, ph) in serve.report.phases.iter().enumerate() {
        let (p50, p99, p999) = ph.latency.slo_points();
        let ops_per_sec = phase_ops_per_sec(&serve.report, p, &serve.wall_ns);
        println!(
            "{:11} {:>9} {:>8} {:>8} {:>7} {:>8}ns {:>8}ns {:>8}ns {:>11.0}",
            PHASE_NAMES[p], ph.ops, ph.gets, ph.inserts, ph.scans, p50, p99, p999, ops_per_sec
        );
    }

    let pass = frozen_ok && latency_flat && rebuild_ok && serve_ok;

    for (name, ph) in PHASE_NAMES.iter().zip(&serve.report.phases) {
        let (p50, p99, p999) = ph.latency.slo_points();
        println!(
            "DIGEST phase={name} ops={} gets={} inserts={} scans={} errors={} \
             p50={p50}ns p99={p99}ns p999={p999}ns",
            ph.ops, ph.gets, ph.inserts, ph.scans, ph.errors,
        );
    }
    println!(
        "DIGEST frozen keys={} churn_inserts={} churn_swaps={} range_equal={} \
         points_equal={} invisible={} lifecycle={}",
        frozen.shadow_keys,
        frozen.churn_inserts,
        frozen.churn_swaps,
        frozen.range_equal,
        frozen.points_equal,
        frozen.invisible,
        frozen.lifecycle_ok,
    );
    println!(
        "DIGEST rebuild shards={} incremental={} full={} reused={} reencoded={} \
         frac={:.4} contents={}",
        rebuild.reports.len(),
        rebuild.incremental,
        rebuild.full,
        rebuild.reused_bytes,
        rebuild.reencoded_bytes,
        rebuild.reencoded_frac,
        rebuild.contents_ok,
    );
    // Gate (b) is wall clock: only the boolean and the sizes reach the
    // deterministic DIGEST stream.
    println!("DIGEST capture small_keys={small_keys} large_keys={large_keys} flat={latency_flat}");
    println!(
        "DIGEST serving completed={}/{} rejected={} tickets={}/{} snap_scans={} \
         taken={taken} dropped={dropped} active={active} errors={errors}",
        serve.report.total_ops(),
        serve.submitted,
        serve.report.total_rejected(),
        serve.tickets_resolved,
        serve.tickets_issued,
        serve.snap_scans,
    );
    println!(
        "DIGEST gates frozen={frozen_ok} latency_flat={latency_flat} rebuild={rebuild_ok} \
         exactly_once={exactly_once} snap_balanced={snap_balanced} pass={pass}"
    );

    write_json(&WriteArgs {
        path: &out_path,
        cfg: &cfg,
        ops,
        frozen: &frozen,
        small_keys,
        large_keys,
        small_med,
        large_med,
        latency_ratio,
        rebuild: &rebuild,
        serve: &serve,
        taken,
        dropped,
        pass,
    });
    println!("# wrote {out_path}");
    println!("# fig22_snapshot_rebuild — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        if !frozen_ok {
            println!("- snapshot equals the shadow map of the capture instant  (required)");
            println!(
                "+ range_equal={} points_equal={} invisible={} lifecycle={}",
                frozen.range_equal, frozen.points_equal, frozen.invisible, frozen.lifecycle_ok
            );
        }
        if !latency_flat {
            println!("- capture latency flat in store size (<= {LATENCY_FLAT_RATIO}x)  (required)");
            println!("+ {small_med} ns vs {large_med} ns (ratio {latency_ratio:.2})");
        }
        if !rebuild_ok {
            println!(
                "- >=1 incremental swap, re-encoded fraction < {MAX_REENCODED_FRAC}, \
                 contents preserved  (required)"
            );
            println!(
                "+ incremental={} frac={:.4} contents={}",
                rebuild.incremental, rebuild.reencoded_frac, rebuild.contents_ok
            );
        }
        if !serve_ok {
            println!("- serving exactly-once with balanced snapshot lifecycle  (required)");
            println!(
                "+ completed {}/{}, rejected {}, tickets {}/{}, snap_scans {} vs \
                 taken {taken}/dropped {dropped}/active {active}, errors {errors}",
                serve.report.total_ops(),
                serve.submitted,
                serve.report.total_rejected(),
                serve.tickets_resolved,
                serve.tickets_issued,
                serve.snap_scans,
            );
        }
        std::process::exit(1);
    }
}

/// Everything `write_json` needs (bundled for clippy's argument-count
/// lint, same shape as the other serving benches).
struct WriteArgs<'a> {
    path: &'a str,
    cfg: &'a BenchConfig,
    ops: usize,
    frozen: &'a FrozenOutcome,
    small_keys: usize,
    large_keys: usize,
    small_med: u64,
    large_med: u64,
    latency_ratio: f64,
    rebuild: &'a RebuildOutcome,
    serve: &'a ServeOutcome,
    taken: u64,
    dropped: u64,
    pass: bool,
}

/// Hand-rolled JSON (the workspace builds offline; no serde) — schema
/// documented in DESIGN.md, "Snapshots & incremental rebuild".
fn write_json(a: &WriteArgs<'_>) {
    let mut s = String::new();
    json_head(&mut s, "fig22_snapshot_rebuild", a.cfg, a.ops);
    s.push_str(&format!(
        "  \"frozen\": {{\"keys\": {}, \"churn_inserts\": {}, \"churn_swaps\": {}, \
         \"range_equal\": {}, \"points_equal\": {}, \"invisible\": {}, \"lifecycle\": {}}},\n",
        a.frozen.shadow_keys,
        a.frozen.churn_inserts,
        a.frozen.churn_swaps,
        a.frozen.range_equal,
        a.frozen.points_equal,
        a.frozen.invisible,
        a.frozen.lifecycle_ok,
    ));
    s.push_str(&format!(
        "  \"capture\": {{\"small_keys\": {}, \"large_keys\": {}, \"small_median_ns\": {}, \
         \"large_median_ns\": {}, \"ratio\": {:.4}, \"gate_ratio\": {LATENCY_FLAT_RATIO}}},\n",
        a.small_keys, a.large_keys, a.small_med, a.large_med, a.latency_ratio,
    ));
    s.push_str(&format!(
        "  \"rebuild\": {{\"incremental\": {}, \"full\": {}, \"reused_bytes\": {}, \
         \"reencoded_bytes\": {}, \"reencoded_frac\": {:.4}, \
         \"gate_frac\": {MAX_REENCODED_FRAC}, \"contents_ok\": {}, \"shards\": [\n",
        a.rebuild.incremental,
        a.rebuild.full,
        a.rebuild.reused_bytes,
        a.rebuild.reencoded_bytes,
        a.rebuild.reencoded_frac,
        a.rebuild.contents_ok,
    ));
    for (i, r) in a.rebuild.reports.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"shard\": {}, \"keys\": {}, \"incremental\": {}, \"reused_bytes\": {}, \
             \"reencoded_bytes\": {}}}{}\n",
            r.shard,
            r.live_keys,
            r.incremental,
            r.reused_bytes,
            r.reencoded_bytes,
            if i + 1 < a.rebuild.reports.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]},\n");
    s.push_str(&format!(
        "  \"serving\": {{\"submitted\": {}, \"completed\": {}, \"rejected\": {}, \
         \"snap_scans\": {}, \"snapshots_taken\": {}, \"snapshots_dropped\": {}, \
         \"tickets_issued\": {}, \"tickets_resolved\": {}}},\n",
        a.serve.submitted,
        a.serve.report.total_ops(),
        a.serve.report.total_rejected(),
        a.serve.snap_scans,
        a.taken,
        a.dropped,
        a.serve.tickets_issued,
        a.serve.tickets_resolved,
    ));
    s.push_str(&format!("  \"pass\": {},\n", a.pass));
    s.push_str("  \"units\": \"ns\",\n  \"phases\": [\n");
    for p in 0..a.serve.report.phases.len() {
        let ops_per_sec = phase_ops_per_sec(&a.serve.report, p, &a.serve.wall_ns);
        json_phase(&mut s, &a.serve.report, p, ops_per_sec, p + 1 == a.serve.report.phases.len());
    }
    s.push_str("  ]\n}\n");
    std::fs::write(a.path, s).expect("write BENCH_snapshot.json");
}
