//! Figure 12 — YCSB-C point-query latency vs memory for ART, HOT, B+tree
//! and Prefix B+tree, uncompressed vs the six HOPE configurations, on all
//! three datasets.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig12_tree_point
//!         [-- --keys N --queries N --quick]`

use hope_bench::{
    build_hope, load_dataset, mb, paper_tree_configs, time, us_per_op, BenchConfig, PreparedKeys,
    QueryScratch, TreeKind,
};
use hope_workloads::{Dataset, ScrambledZipf};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Figure 12: point query latency vs memory (YCSB C)");
    println!(
        "{:6} {:14} {:20} {:>9} {:>10} {:>9}",
        "data", "tree", "config", "point_us", "mem_MB", "load_s"
    );

    for dataset in Dataset::ALL {
        let keys = load_dataset(dataset, &cfg);
        let sample = cfg.sample(&keys);
        let queries: Vec<usize> = {
            let mut zipf = ScrambledZipf::ycsb(keys.len(), cfg.seed ^ 0xF12);
            (0..cfg.queries).map(|_| zipf.next()).collect()
        };

        let mut prepared: Vec<(String, PreparedKeys)> =
            vec![("Uncompressed".into(), PreparedKeys::raw(&keys))];
        for (scheme, limit, label) in paper_tree_configs() {
            let hope = build_hope(scheme, limit, &sample);
            prepared.push((label, PreparedKeys::encoded(hope, &keys)));
        }

        for kind in TreeKind::ALL {
            for (label, prep) in &prepared {
                let (tree, load) = time(|| {
                    let mut t = kind.new_tree();
                    for (i, k) in prep.keys.iter().enumerate() {
                        t.insert(k, i as u64);
                    }
                    t
                });
                let mut scratch = QueryScratch::default();
                let (hits, d) = time(|| {
                    let mut hits = 0usize;
                    for &i in &queries {
                        let q = prep.encode_query_scratch(&keys[i], &mut scratch);
                        hits += (tree.get(q) == Some(i as u64)) as usize;
                    }
                    hits
                });
                // Padded-byte collisions between distinct encoded keys are a
                // measure-zero corner (DESIGN.md); all queries must hit.
                assert!(
                    hits as f64 >= queries.len() as f64 * 0.999,
                    "{label}: only {hits}/{} hits",
                    queries.len()
                );
                let mem = tree.memory_bytes() + prep.dict_memory();
                println!(
                    "{:6} {:14} {:20} {:>9.3} {:>10.2} {:>9.2}",
                    dataset.name(),
                    kind.name(),
                    label,
                    us_per_op(d, queries.len()),
                    mb(mem),
                    load.as_secs_f64(),
                );
            }
        }
    }
}
