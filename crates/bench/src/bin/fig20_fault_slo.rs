//! `fig20_fault_slo` — the fault-injection acceptance bench: bounded
//! degradation of the serving pipeline while one worker is sick and the
//! maintenance path is forced to fail rebuilds.
//!
//! The run drives the fig18 mixed-shift traffic (70/20/10 get/insert/scan
//! with a mid-run Email-A → Email-B distribution shift) twice over
//! identical op streams:
//!
//! 1. **baseline** — no faults, the fig18 shape with driver-paced
//!    maintenance;
//! 2. **faulted** — a deterministic [`FaultPlan`] degrades worker 1 by
//!    10× (probe slowdown), stalls 1-in-97 of its requests, sprinkles
//!    latency spikes and queue-pressure bursts across all workers, sheds
//!    75% of the sick worker's would-be traffic to healthy peers at
//!    admission, and forces every other rebuild attempt per shard to
//!    fail with `FaultInjected`.
//!
//! Gates:
//!
//! * **(a) bounded degradation** — p999 of the requests executed by
//!   *healthy* workers in the faulted run stays within
//!   [`TARGET_HEALTHY_P999_RATIO`]× of the no-fault baseline p999: the
//!   shed hook must isolate the sick worker, not spread its sickness;
//! * **(b) exactly-once** — in both runs every admitted request
//!   completes exactly once (`completed == submitted`, zero rejects) and
//!   every sampled completion ticket is resolved, injected stalls or
//!   not;
//! * **(c) attribution** — every injected rebuild failure is visible in
//!   telemetry: driver-collected `FaultInjected` errors ==
//!   `RebuildFailed` events in the ring == the
//!   `store.faults.injected_rebuild_failures` counter, at least one was
//!   injected, and the store *heals*: the final maintenance pass
//!   succeeds with no errors.
//!
//! **Determinism**: `--quick` switches to virtual-time accounting; every
//! fault decision is a pure function of `(worker, request index, phase)`
//! and the single producer makes request indices equal stream positions,
//! so two quick runs print byte-identical `DIGEST` lines (per-phase
//! quantiles, fault tallies, shed counts, healthy/degraded tails,
//! verdicts). CI runs the binary twice and diffs the digests. Counts
//! that depend on reservoir interleaving (rebuild attempt totals across
//! healing passes) stay out of the digest.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig20_fault_slo
//!         [-- --keys N --queries N --seed N --quick --out PATH]`

use std::time::Instant;

use hope_bench::harness::{
    build_serving_store, flag_value, phase_bounds, serving_config, to_request, PHASE_NAMES,
};
use hope_bench::BenchConfig;
use hope_store::serving::{FaultPlan, LatencyHistogram, Server, ServingConfig, ServingReport};
use hope_store::telemetry::EventKind;
use hope_store::StoreError;
use hope_workloads::{MixedWorkload, TrafficSpec};

/// Gate (a): healthy-worker p999 in the faulted run must stay within
/// this factor of the no-fault baseline p999.
const TARGET_HEALTHY_P999_RATIO: f64 = 3.0;

/// One producer thread: admission order equals stream order, which makes
/// every per-index fault decision reproducible run to run.
const WORKERS: usize = 4;

/// The sick worker the plan degrades.
const DEGRADED: usize = 1;

/// Every Nth submit carries a completion ticket; gate (b) asserts all of
/// them resolve.
const TICKET_SAMPLE: usize = 64;

/// Healing passes allowed after the traffic ends before gate (c) calls
/// the store unhealed (every failed attempt heals on the next pass at
/// `rebuild_fail_every = 2`, so two is already generous).
const MAX_HEAL_PASSES: usize = 4;

/// Everything one pass (baseline or faulted) produced.
struct PassOutcome {
    report: ServingReport,
    wall_ns: [u64; 3],
    submitted: u64,
    tickets_issued: u64,
    tickets_resolved: u64,
    /// `FaultInjected` errors collected from every maintenance pass.
    injected: Vec<(usize, StoreError)>,
    /// The final maintenance pass reported no errors.
    healed: bool,
}

/// Drive the three-phase traffic through a fresh store, maintenance
/// paced by the driver (after the shift phase and again after the run,
/// looping until clean) so rebuild attempts happen in a deterministic
/// order.
fn run_pass(cfg: &BenchConfig, workload: &MixedWorkload, plan: Option<FaultPlan>) -> PassOutcome {
    let bounds = phase_bounds(workload);
    let store = build_serving_store(workload);
    if let Some(p) = plan {
        store.inject_faults(p);
    }
    let serving = ServingConfig { faults: plan, ..serving_config(cfg.quick) };
    let server = Server::start(std::sync::Arc::clone(&store), serving).expect("server start");

    let mut wall_ns = [0u64; 3];
    let mut submitted = 0u64;
    let mut tickets = Vec::new();
    let mut injected = Vec::new();
    let mut healed = false;
    for (phase, &(lo, hi)) in bounds.iter().enumerate() {
        let t0 = Instant::now();
        for (i, op) in workload.ops[lo..hi].iter().enumerate() {
            // One producer, in stream order: the admission index every
            // fault decision keys on equals the stream position.
            if i % TICKET_SAMPLE == 0 {
                tickets.push(server.submit(to_request(op), phase).expect("server open"));
            } else {
                server.submit_detached(to_request(op), phase).expect("server open");
            }
        }
        server.flush();
        wall_ns[phase] = t0.elapsed().as_nanos() as u64;
        submitted += (hi - lo) as u64;
        // Driver-paced maintenance: one pass right after the shift (where
        // fig18's maintainer would have swapped), then after the run a
        // healing loop — every injected failure is followed by a clean
        // retry at `rebuild_fail_every = 2`.
        let passes = if phase == 0 {
            0
        } else if phase == 1 {
            1
        } else {
            MAX_HEAL_PASSES
        };
        for _ in 0..passes {
            let (_, errors) = store.maintain();
            let clean = errors.is_empty();
            for (shard, e) in errors {
                assert!(
                    matches!(e, StoreError::FaultInjected { .. }),
                    "real rebuild error on shard {shard}: {e}"
                );
                injected.push((shard, e));
            }
            if phase == 2 {
                healed = clean;
                if clean {
                    break;
                }
            }
        }
    }
    let tickets_issued = tickets.len() as u64;
    let tickets_resolved = tickets.iter().filter(|t| t.is_done()).count() as u64;
    let report = server.shutdown();
    PassOutcome { report, wall_ns, submitted, tickets_issued, tickets_resolved, injected, healed }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = flag_value(&cfg, "--out", "BENCH_faults.json");
    let ops = if cfg.quick { cfg.queries } else { cfg.queries.saturating_mul(20) };

    let plan = FaultPlan {
        seed: cfg.seed,
        degraded_worker: Some(DEGRADED),
        slow_factor: 10,
        stall_every: 97,
        stall_ns: 50_000,
        spike_every: 2_000,
        spike_ns: 10_000,
        burst_every: 8_192,
        burst_len: 16,
        burst_ns: 4_000,
        shed_pct: 75,
        rebuild_fail_every: 2,
        phase_mask: u16::MAX,
    };
    println!(
        "# fig20_fault_slo: {} initial keys, {} ops, seed {}, {} mode",
        cfg.keys,
        ops,
        cfg.seed,
        if cfg.quick { "virtual-time (deterministic)" } else { "wall-clock" }
    );
    println!("# plan {plan}");
    let workload = MixedWorkload::generate(cfg.keys, ops, TrafficSpec::default(), cfg.seed);

    let base = run_pass(&cfg, &workload, None);
    let faulted = run_pass(&cfg, &workload, Some(plan));

    // Gate (a): healthy-worker tail in the faulted run vs the no-fault
    // baseline (all workers are healthy there).
    let mut base_all = LatencyHistogram::new();
    for w in &base.report.worker_stats {
        base_all.merge(&w.latency);
    }
    let mut healthy = LatencyHistogram::new();
    let mut sick = LatencyHistogram::new();
    let (mut healthy_ops, mut degraded_ops) = (0u64, 0u64);
    for w in &faulted.report.worker_stats {
        if w.degraded {
            sick.merge(&w.latency);
            degraded_ops += w.ops;
        } else {
            healthy.merge(&w.latency);
            healthy_ops += w.ops;
        }
    }
    let base_p999 = base_all.quantile_ns(0.999).max(1);
    let healthy_p999 = healthy.quantile_ns(0.999);
    let degraded_p999 = sick.quantile_ns(0.999);
    let p999_ratio = healthy_p999 as f64 / base_p999 as f64;
    let p999_ok = p999_ratio <= TARGET_HEALTHY_P999_RATIO;

    // Gate (b): exactly-once in both runs, every sampled ticket resolved.
    let exactly_once = [&base, &faulted].iter().all(|p| {
        p.report.total_ops() == p.submitted
            && p.report.total_rejected() == 0
            && p.tickets_resolved == p.tickets_issued
    });
    let errors: u64 = faulted.report.phases.iter().map(|p| p.errors).sum::<u64>()
        + base.report.phases.iter().map(|p| p.errors).sum::<u64>();

    // Gate (c): every injected rebuild failure is attributable from the
    // event ring and the counter alone, and the store healed after.
    let injected_seen = faulted.injected.len() as u64;
    let events_seen = faulted.report.telemetry.events_of(EventKind::RebuildFailed).count() as u64;
    let counter_seen =
        faulted.report.telemetry.counter("store.faults.injected_rebuild_failures").unwrap_or(0);
    let attributed =
        injected_seen >= 1 && injected_seen == events_seen && injected_seen == counter_seen;
    let base_clean = base.injected.is_empty() && base.healed;

    let pass = p999_ok && exactly_once && errors == 0 && attributed && faulted.healed && base_clean;

    print_report(&cfg, &faulted.report, &faulted.wall_ns);
    println!(
        "# rebuild failures injected: {injected_seen} (events {events_seen}, counter \
         {counter_seen}), healed = {}",
        faulted.healed
    );

    let tally = faulted.report.worker_stats.iter().fold(
        hope_store::serving::FaultTally::default(),
        |mut acc, w| {
            acc.merge(&w.faults);
            acc
        },
    );
    for (name, ph) in PHASE_NAMES.iter().zip(&faulted.report.phases) {
        let (p50, p99, p999) = ph.latency.slo_points();
        println!(
            "DIGEST phase={name} ops={} gets={} inserts={} scans={} errors={} \
             p50={p50}ns p99={p99}ns p999={p999}ns",
            ph.ops, ph.gets, ph.inserts, ph.scans, ph.errors,
        );
    }
    println!(
        "DIGEST faults slowed={} stalled={} burst={} spiked={} rerouted={} \
         degraded_ops={degraded_ops} healthy_ops={healthy_ops}",
        tally.slowed, tally.stalled, tally.burst, tally.spiked, faulted.report.rerouted,
    );
    println!(
        "DIGEST slo base_p999={base_p999}ns healthy_p999={healthy_p999}ns \
         degraded_p999={degraded_p999}ns ratio={p999_ratio:.2}"
    );
    println!(
        "DIGEST gates completed={}/{} rejected={} tickets={}/{} errors={errors} \
         p999_ok={p999_ok} attributed={attributed} healed={} pass={pass}",
        faulted.report.total_ops(),
        faulted.submitted,
        faulted.report.total_rejected(),
        faulted.tickets_resolved,
        faulted.tickets_issued,
        faulted.healed,
    );

    write_json(&out_path, &cfg, ops, &plan, &base, &faulted, p999_ratio, pass);
    println!("# wrote {out_path}");
    println!("# fig20_fault_slo — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        if !p999_ok {
            println!("- healthy p999 <= {TARGET_HEALTHY_P999_RATIO}x baseline p999  (required)");
            println!("+ ratio == {p999_ratio:.2} ({healthy_p999} ns vs {base_p999} ns)");
        }
        if !exactly_once {
            println!("- every admitted request completed exactly once  (required)");
            for (name, p) in [("base", &base), ("faulted", &faulted)] {
                println!(
                    "+ {name}: completed {}/{}, rejected {}, tickets {}/{}",
                    p.report.total_ops(),
                    p.submitted,
                    p.report.total_rejected(),
                    p.tickets_resolved,
                    p.tickets_issued
                );
            }
        }
        if errors > 0 {
            println!("- errors == 0  (required)\n+ errors == {errors}");
        }
        if !attributed {
            println!("- injected >= 1 and errors == events == counter  (required)");
            println!("+ injected {injected_seen}, events {events_seen}, counter {counter_seen}");
        }
        if !faulted.healed {
            println!("- final maintenance pass heals every shard  (required)");
            println!("+ rebuild errors persisted after {MAX_HEAL_PASSES} passes");
        }
        if !base_clean {
            println!("- baseline run maintains cleanly with no injections  (required)");
            println!("+ baseline injected {} / healed {}", base.injected.len(), base.healed);
        }
        std::process::exit(1);
    }
}

fn print_report(cfg: &BenchConfig, report: &ServingReport, wall_ns: &[u64; 3]) {
    println!("\n# faulted run: {} workers, worker {DEGRADED} degraded", report.workers);
    println!(
        "{:11} {:>9} {:>8} {:>8} {:>7} {:>10} {:>10} {:>10}",
        "phase", "ops", "gets", "inserts", "scans", "p50", "p99", "p999"
    );
    for (p, ph) in report.phases.iter().enumerate() {
        let (p50, p99, p999) = ph.latency.slo_points();
        let _ = wall_ns[p];
        println!(
            "{:11} {:>9} {:>8} {:>8} {:>7} {:>8}ns {:>8}ns {:>8}ns",
            PHASE_NAMES[p], ph.ops, ph.gets, ph.inserts, ph.scans, p50, p99, p999
        );
    }
    for w in &report.worker_stats {
        let (p50, p99, p999) = w.latency.slo_points();
        println!(
            "# worker {}{}: {} ops, p50 {p50}ns p99 {p99}ns p999 {p999}ns, faults \
             slowed={} stalled={} burst={} spiked={}",
            w.worker,
            if w.degraded { " (degraded)" } else { "" },
            w.ops,
            w.faults.slowed,
            w.faults.stalled,
            w.faults.burst,
            w.faults.spiked,
        );
    }
    if !cfg.quick {
        println!(
            "# wall: pre {:.1}ms shift {:.1}ms post {:.1}ms",
            wall_ns[0] as f64 / 1e6,
            wall_ns[1] as f64 / 1e6,
            wall_ns[2] as f64 / 1e6
        );
    }
}

/// Hand-rolled JSON (the workspace builds offline; no serde) — schema
/// documented in DESIGN.md, "Fault injection".
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    cfg: &BenchConfig,
    ops: usize,
    plan: &FaultPlan,
    base: &PassOutcome,
    faulted: &PassOutcome,
    p999_ratio: f64,
    pass: bool,
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig20_fault_slo\",\n  \"dataset\": \"email-mixed-traffic\",\n");
    s.push_str(&format!(
        "  \"keys\": {},\n  \"ops\": {},\n  \"seed\": {},\n  \"quick\": {},\n",
        cfg.keys, ops, cfg.seed, cfg.quick
    ));
    s.push_str(&format!("  \"plan\": \"{plan}\",\n"));
    s.push_str(&format!("  \"workers\": {WORKERS},\n  \"degraded_worker\": {DEGRADED},\n"));
    s.push_str(&format!("  \"target_healthy_p999_ratio\": {TARGET_HEALTHY_P999_RATIO},\n"));
    s.push_str(&format!("  \"healthy_p999_over_base\": {p999_ratio:.4},\n"));
    s.push_str(&format!(
        "  \"injected_rebuild_failures\": {},\n  \"healed\": {},\n",
        faulted.injected.len(),
        faulted.healed
    ));
    s.push_str(&format!("  \"rerouted\": {},\n", faulted.report.rerouted));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"units\": \"ns\",\n  \"runs\": [\n");
    for (i, (name, p)) in [("baseline", base), ("faulted", faulted)].iter().enumerate() {
        let mut all = LatencyHistogram::new();
        for w in &p.report.worker_stats {
            all.merge(&w.latency);
        }
        let (p50, p99, p999) = all.slo_points();
        s.push_str(&format!(
            "    {{\"run\": \"{name}\", \"ops\": {}, \"rejected\": {}, \"tickets\": {}, \
             \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"p999_ns\": {p999}, \"mean_ns\": {:.1}, \
             \"max_ns\": {}, \"rerouted\": {}, \"workers\": [\n",
            p.report.total_ops(),
            p.report.total_rejected(),
            p.tickets_issued,
            all.mean_ns(),
            all.max_ns(),
            p.report.rerouted,
        ));
        for (j, w) in p.report.worker_stats.iter().enumerate() {
            let (wp50, wp99, wp999) = w.latency.slo_points();
            s.push_str(&format!(
                "      {{\"worker\": {}, \"degraded\": {}, \"ops\": {}, \"p50_ns\": {wp50}, \
                 \"p99_ns\": {wp99}, \"p999_ns\": {wp999}, \"slowed\": {}, \"stalled\": {}, \
                 \"burst\": {}, \"spiked\": {}}}{}\n",
                w.worker,
                w.degraded,
                w.ops,
                w.faults.slowed,
                w.faults.stalled,
                w.faults.burst,
                w.faults.spiked,
                if j + 1 < p.report.worker_stats.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!("    ]}}{}\n", if i == 0 { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_faults.json");
}
