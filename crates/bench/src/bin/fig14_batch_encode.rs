//! Figure 14 (Appendix B) — batch encoding: encode latency (ns per char)
//! for batch sizes 1, 2 (pair encoding) and 32, over a pre-sorted 1%
//! sample of email keys; 64K dictionaries for the gram schemes.
//!
//! The ALM schemes cannot batch (arbitrary-length symbols prevent a-priori
//! prefix alignment, §4.2); they are reported at batch size 1 only.
//! `--sweep` adds the intermediate batch sizes.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig14_batch_encode`

use hope::Scheme;
use hope_bench::{build_hope, load_dataset, ns_per_op, time, BenchConfig};
use hope_workloads::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    let keys = load_dataset(Dataset::Email, &cfg);
    let sample = cfg.sample(&keys);
    // The measured corpus is itself the sorted sample, as in the paper.
    let mut corpus = sample.clone();
    corpus.sort_unstable();
    let refs: Vec<&[u8]> = corpus.iter().map(|k| k.as_slice()).collect();
    let chars: usize = corpus.iter().map(|k| k.len()).sum();

    let batch_sizes: Vec<usize> =
        if cfg.has_flag("--sweep") { vec![1, 2, 4, 8, 16, 32, 64] } else { vec![1, 2, 32] };

    println!("# Figure 14: batch encoding latency on sorted email sample ({} keys)", corpus.len());
    println!("{:14} {:>6} {:>12}", "scheme", "batch", "ns_per_char");

    for scheme in [
        Scheme::SingleChar,
        Scheme::DoubleChar,
        Scheme::ThreeGrams,
        Scheme::FourGrams,
        Scheme::AlmImproved,
    ] {
        let hope = build_hope(scheme, 1 << 16, &sample);
        let sizes: &[usize] = if scheme == Scheme::AlmImproved { &[1] } else { &batch_sizes };
        for &bs in sizes {
            // Warm + measure (median of 3).
            let mut runs: Vec<f64> = (0..3)
                .map(|_| {
                    let (out, d) = time(|| hope.encode_batch(&refs, bs));
                    assert_eq!(out.len(), refs.len());
                    ns_per_op(d, chars)
                })
                .collect();
            runs.sort_by(f64::total_cmp);
            println!("{:14} {:>6} {:>12.2}", scheme.name(), bs, runs[1]);
        }
    }
}
