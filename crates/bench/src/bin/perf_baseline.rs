//! `perf_baseline` — the repo's recorded encode-performance trajectory.
//!
//! Runs the fig8-style encode microbench across all six schemes on the
//! Email corpus and times three implementations of the per-key encode hot
//! path:
//!
//! * **generic-alloc** — the hot path as it existed before the fused
//!   fast path: generic dictionary walk plus a fresh `EncodedKey`
//!   allocation per call ([`hope::Encoder::encode_generic`]);
//! * **generic-reuse** — the generic walk into a reused writer
//!   (isolates the dictionary-lookup cost from the allocation cost);
//! * **fast** — the shipped hot path: [`hope::Hope::encode_to`] with a
//!   reused scratch, taking the fused code table where the scheme has one.
//!
//! Results are written to `BENCH_encode.json` (override with `--out
//! PATH`), giving future PRs a perf point to hold themselves to; see
//! DESIGN.md "Performance guide" for how to read the file. The binary
//! exits non-zero when the Single-Char fast path fails the headline
//! target (≥ 2× the generic-alloc path).
//!
//! Usage: `cargo run --release -p hope_bench --bin perf_baseline
//!         [-- --keys N --quick --out BENCH_encode.json]`

use std::hint::black_box;

use hope::{EncodeScratch, Hope, Scheme};
use hope_bench::{build_hope, load_dataset, ns_per_op, time, BenchConfig};
use hope_workloads::Dataset;

/// Headline target: fast-path Single-Char encode throughput vs the
/// generic allocating walk.
const TARGET_SPEEDUP: f64 = 2.0;

/// Median-of-3 nanoseconds per source char for one encode loop.
fn measure(chars: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut runs: Vec<f64> = (0..3)
        .map(|_| {
            let (bits, d) = time(&mut run);
            assert!(black_box(bits) > 0 || chars == 0);
            ns_per_op(d, chars)
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[1]
}

struct SchemeRow {
    scheme: &'static str,
    dict_entries: usize,
    fast_path: bool,
    cpr: f64,
    generic_alloc: f64,
    generic_reuse: f64,
    fast: f64,
    dict_kb: f64,
}

fn bench_scheme(hope: &Hope, keys: &[Vec<u8>]) -> (f64, f64, f64) {
    let chars: usize = keys.iter().map(|k| k.len()).sum();
    let enc = hope.encoder();

    let generic_alloc =
        measure(chars, || keys.iter().map(|k| enc.encode_generic(k).bit_len()).sum());

    let mut w = hope::bitpack::BitWriter::new();
    let mut buf = Vec::new();
    let generic_reuse = measure(chars, || {
        let mut bits = 0usize;
        for k in keys {
            enc.encode_generic_into(k, &mut w);
            bits += w.finish_into(&mut buf);
        }
        bits
    });

    let mut scratch = EncodeScratch::new();
    let fast = measure(chars, || {
        let mut bits = 0usize;
        for k in keys {
            hope.encode_to(k, &mut scratch);
            bits += scratch.bit_len();
        }
        bits
    });

    (generic_alloc, generic_reuse, fast)
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = cfg
        .flags
        .iter()
        .position(|f| f == "--out")
        .and_then(|i| cfg.flags.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_encode.json".to_string());

    let keys = load_dataset(Dataset::Email, &cfg);
    let sample = cfg.sample(&keys);

    println!("# perf_baseline: encode hot-path trajectory (email, {} keys)", keys.len());
    println!(
        "{:14} {:>9} {:>6} {:>14} {:>14} {:>10} {:>9}",
        "scheme", "dict", "fast?", "generic-alloc", "generic-reuse", "fast", "speedup"
    );

    let mut rows: Vec<SchemeRow> = Vec::new();
    for scheme in Scheme::ALL {
        let target = scheme.fixed_dict_size().unwrap_or(1 << 16);
        let hope = build_hope(scheme, target, &sample);
        let st = hope::stats::measure(&hope, &keys);
        let (generic_alloc, generic_reuse, fast) = bench_scheme(&hope, &keys);
        let row = SchemeRow {
            scheme: scheme.name(),
            dict_entries: hope.dict_entries(),
            fast_path: hope.encoder().fast().is_some(),
            cpr: st.cpr(),
            generic_alloc,
            generic_reuse,
            fast,
            dict_kb: hope.dict_memory_bytes() as f64 / 1024.0,
        };
        println!(
            "{:14} {:>9} {:>6} {:>11.2}ns {:>11.2}ns {:>7.2}ns {:>8.2}x",
            row.scheme,
            row.dict_entries,
            if row.fast_path { "yes" } else { "no" },
            row.generic_alloc,
            row.generic_reuse,
            row.fast,
            row.generic_alloc / row.fast,
        );
        rows.push(row);
    }

    let single = rows.iter().find(|r| r.scheme == "Single-Char").expect("single-char row");
    let speedup = single.generic_alloc / single.fast;
    let pass = speedup >= TARGET_SPEEDUP;

    write_json(&out_path, &cfg, &rows, speedup, pass);
    println!("# wrote {out_path}");
    println!(
        "# single-char fast-path speedup: {speedup:.2}x (target >= {TARGET_SPEEDUP:.1}x) — {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON writer (the workspace builds offline; no serde).
fn write_json(path: &str, cfg: &BenchConfig, rows: &[SchemeRow], speedup: f64, pass: bool) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"perf_baseline\",\n  \"dataset\": \"email\",\n");
    s.push_str(&format!("  \"keys\": {},\n  \"seed\": {},\n", cfg.keys, cfg.seed));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!("  \"target_single_char_speedup\": {TARGET_SPEEDUP},\n"));
    s.push_str(&format!("  \"single_char_speedup\": {speedup:.4},\n"));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"units\": \"ns_per_source_char\",\n  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"dict_entries\": {}, \"fast_path\": {}, \
             \"cpr\": {:.4}, \"generic_alloc\": {:.4}, \"generic_reuse\": {:.4}, \
             \"fast\": {:.4}, \"speedup_vs_generic_alloc\": {:.4}, \"dict_kb\": {:.1}}}{}\n",
            r.scheme,
            r.dict_entries,
            r.fast_path,
            r.cpr,
            r.generic_alloc,
            r.generic_reuse,
            r.fast,
            r.generic_alloc / r.fast,
            r.dict_kb,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_encode.json");
}
