//! `perf_baseline` — the repo's recorded encode/decode-performance
//! trajectory.
//!
//! Runs the fig8-style microbench across all six schemes on the Email
//! corpus and times the hot paths of three subsystems:
//!
//! * **encode** (`BENCH_encode.json`) — three implementations of the
//!   per-key encode loop:
//!   - *generic-alloc* — the hot path as it existed before the fast
//!     paths: generic dictionary walk plus a fresh `EncodedKey`
//!     allocation per call ([`hope::Encoder::encode_generic`]);
//!   - *generic-reuse* — the generic walk into a reused writer (isolates
//!     the dictionary-lookup cost from the allocation cost);
//!   - *fast* — the shipped hot path: [`hope::Hope::encode_to`] with a
//!     reused scratch, taking the fused code table (array schemes) or
//!     the prefix automaton (trie schemes).
//! * **decode** (`BENCH_decode.json`, `"schemes"`) — the bit-walk
//!   reference decoder, allocating and scratch-reusing
//!   ([`hope::Decoder::decode`] / `decode_to`), against the byte-table
//!   [`hope::FastDecoder`] (`decode_to` and `decode_batch`).
//! * **scan** (`BENCH_decode.json`, `"scan"`) — `hope_store` bounded
//!   range queries, in ns per hit: the allocating collect
//!   (`range_into`), the PR 4 per-shard visitor path
//!   (`Generation::range_with`, reconstructed exactly), and the v1
//!   [`hope_store::RangeCursor`] in both its push (`for_each`) and pull
//!   (`next_hit`) forms. The cursor is gated at ≥ 1.0× the visitor
//!   path — the v1 range redesign must not cost scan throughput — and
//!   pull mode at ≥ 0.85× push mode (the chunk path must stay lean).
//!
//! Output paths default to `BENCH_encode.json` / `BENCH_decode.json`
//! (override with `--out PATH` / `--out-decode PATH`); see DESIGN.md
//! "Reading BENCH_*.json". The binary exits non-zero when a headline
//! target fails:
//!
//! * Single-Char fast encode ≥ 2× generic-alloc;
//! * 3-Grams and 4-Grams fast encode ≥ 1.5× generic-alloc (the trie
//!   prefix automaton against the bitmap-trie walk);
//! * Single-Char batch decode (the scan shape) ≥ 1.5× the allocating
//!   bit walk;
//! * sampled tracing (1 request in [`TRACE_SAMPLE_EVERY`] through
//!   [`hope_store::HopeStore::get_traced`]) keeps ≥
//!   [`TARGET_TELEMETRY_RATIO`] of the untraced point-lookup
//!   throughput — the telemetry layer's overhead budget.
//!
//! Gate failures print diff-style (`- required` / `+ measured`) so CI
//! logs show exactly which metric regressed and by how much.
//!
//! Usage: `cargo run --release -p hope_bench --bin perf_baseline
//!         [-- --keys N --quick --out BENCH_encode.json --out-decode
//!         BENCH_decode.json]`

use std::hint::black_box;
use std::time::Duration;

use hope::{DecodeScratch, EncodeScratch, EncodedKey, Hope, Scheme};
use hope_bench::{build_hope, load_dataset, ns_per_op, time, BenchConfig};
use hope_store::telemetry::TraceSampler;
use hope_store::{HopeStore, StoreConfig};
use hope_workloads::Dataset;

/// Headline target: fast-path Single-Char encode throughput vs the
/// generic allocating walk.
const TARGET_SPEEDUP: f64 = 2.0;

/// Headline target for the trie schemes (3/4-Grams): prefix-automaton
/// encode throughput vs the generic allocating walk.
const TARGET_TRIE_SPEEDUP: f64 = 1.5;

/// Headline target: Single-Char byte-table **batch** decode (the scan
/// shape) vs the allocating bit walk.
const TARGET_DECODE_SPEEDUP: f64 = 1.5;

/// Headline target: the v1 `RangeCursor` scan (better of push/pull) vs
/// the PR 4 per-shard visitor path it replaced, measured in the same run.
const TARGET_CURSOR_RATIO: f64 = 1.0;

/// Headline target: the cursor's pull mode (`next_hit`) vs its push mode
/// (`for_each`) in the same run. Pull buffers chunks and serves borrows,
/// so some overhead is structural — but it must stay within 15% of push
/// (the PR 6 chunk-path rework brought it from 0.74× to above this gate,
/// and the gate keeps it from regressing silently).
const TARGET_PULL_RATIO: f64 = 0.85;

/// Headline target: the sampled-tracing get loop vs the plain get loop.
/// DESIGN.md budgets the telemetry layer at ≤ 2% hot-path overhead, so
/// the traced loop must keep at least this fraction of the untraced
/// throughput.
const TARGET_TELEMETRY_RATIO: f64 = 0.98;

/// Sampling period for the overhead measurement — the same 1-in-64 the
/// serving benches (`fig19_telemetry`) run with.
const TRACE_SAMPLE_EVERY: u32 = 64;

/// Median-of-5 nanoseconds per source char for one loop (medians damp
/// the allocator and frequency noise of shared machines).
fn measure(chars: usize, mut run: impl FnMut() -> usize) -> f64 {
    let mut runs: Vec<f64> = (0..5)
        .map(|_| {
            let (bits, d) = time(&mut run);
            assert!(black_box(bits) > 0 || chars == 0);
            ns_per_op(d, chars)
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    runs[2]
}

struct SchemeRow {
    scheme: &'static str,
    dict_entries: usize,
    fast_path: bool,
    fast_kind: &'static str,
    cpr: f64,
    generic_alloc: f64,
    generic_reuse: f64,
    fast: f64,
    dict_kb: f64,
}

struct DecodeRow {
    scheme: &'static str,
    walk_alloc: f64,
    walk_reuse: f64,
    fast: f64,
    batch: f64,
    table_states: usize,
    table_kb: f64,
}

struct ScanStats {
    hits: usize,
    range_alloc: f64,
    visitor_pr4: f64,
    cursor_push: f64,
    cursor_pull: f64,
}

impl ScanStats {
    /// Cursor speedup vs the PR 4 visitor path (≥ 1.0 = no regression),
    /// taking the cursor's better scan mode for this workload shape.
    fn cursor_ratio(&self) -> f64 {
        self.visitor_pr4 / self.cursor_push.min(self.cursor_pull)
    }

    /// Pull-mode throughput relative to push mode (1.0 = parity; the
    /// gate requires ≥ [`TARGET_PULL_RATIO`]).
    fn pull_ratio(&self) -> f64 {
        self.cursor_push / self.cursor_pull
    }
}

/// One gating threshold: a measured value that must stay at or above its
/// target for the binary to exit 0.
struct Gate {
    name: &'static str,
    actual: f64,
    target: f64,
    /// What the number is, for the failure message.
    detail: String,
}

impl Gate {
    fn pass(&self) -> bool {
        self.actual >= self.target
    }
}

/// Print every gate verdict; failures come out diff-style (required vs
/// measured) so a CI log shows exactly which metric regressed and by how
/// much. Returns the overall verdict.
fn report_gates(gates: &[Gate]) -> bool {
    let mut pass = true;
    for g in gates {
        if g.pass() {
            println!("# gate {:28} {:>8.4} >= {:.4}  ok", g.name, g.actual, g.target);
        } else {
            pass = false;
            println!("# gate {:28} REGRESSED ({})", g.name, g.detail);
            println!("- {:28} >= {:.4}  (required)", g.name, g.target);
            println!(
                "+ {:28} == {:.4}  (measured, {:+.1}%)",
                g.name,
                g.actual,
                (g.actual / g.target - 1.0) * 100.0
            );
        }
    }
    pass
}

fn bench_scheme(hope: &Hope, keys: &[Vec<u8>]) -> (f64, f64, f64) {
    let chars: usize = keys.iter().map(|k| k.len()).sum();
    let enc = hope.encoder();

    let generic_alloc =
        measure(chars, || keys.iter().map(|k| enc.encode_generic(k).bit_len()).sum());

    let mut w = hope::bitpack::BitWriter::new();
    let mut buf = Vec::new();
    let generic_reuse = measure(chars, || {
        let mut bits = 0usize;
        for k in keys {
            enc.encode_generic_into(k, &mut w);
            bits += w.finish_into(&mut buf);
        }
        bits
    });

    let mut scratch = EncodeScratch::new();
    let fast = measure(chars, || {
        let mut bits = 0usize;
        for k in keys {
            hope.encode_to(k, &mut scratch).expect("bench keys within MAX_KEY_BYTES");
            bits += scratch.bit_len();
        }
        bits
    });

    (generic_alloc, generic_reuse, fast)
}

fn bench_decode(hope: &Hope, keys: &[Vec<u8>]) -> DecodeRow {
    let chars: usize = keys.iter().map(|k| k.len()).sum();
    let encoded: Vec<EncodedKey> = keys.iter().map(|k| hope.encode(k)).collect();
    let walk = hope.decoder();
    let fast = hope.fast_decoder();

    let walk_alloc =
        measure(chars, || encoded.iter().map(|e| walk.decode(e).expect("valid").len()).sum());

    let mut scratch = DecodeScratch::new();
    let walk_reuse = measure(chars, || {
        encoded.iter().map(|e| walk.decode_to(e, &mut scratch).expect("valid").len()).sum()
    });

    let fast_ns = measure(chars, || {
        encoded.iter().map(|e| fast.decode_to(e, &mut scratch).expect("valid").len()).sum()
    });

    // Scan-shaped batches: decode hits in blocks of 64 into one flat
    // buffer, as a range scan would hand them over.
    let batch = measure(chars, || {
        let mut total = 0usize;
        for block in encoded.chunks(64) {
            let b = fast.decode_batch_keys(block, &mut scratch).expect("valid");
            total += b.iter().map(|k| k.len()).sum::<usize>();
        }
        total
    });

    DecodeRow {
        scheme: hope.scheme().name(),
        walk_alloc,
        walk_reuse,
        fast: fast_ns,
        batch,
        table_states: fast.states(),
        table_kb: fast.memory_bytes() as f64 / 1024.0,
    }
}

/// Store scan trajectory over bounded scans of ~64 hits each: the
/// allocating collect, the PR 4 per-shard visitor path (reconstructed
/// from the public `Generation::range_with` exactly as the pre-v1
/// `HopeStore::range_with` dispatched it), and the v1 cursor in both
/// scan modes.
fn bench_scan(keys: &[Vec<u8>]) -> ScanStats {
    let mut sorted = keys.to_vec();
    sorted.sort();
    sorted.dedup();
    let pairs = sorted.iter().enumerate().map(|(i, k)| (k.clone(), i as u64));
    let store = HopeStore::build(StoreConfig::default(), pairs).expect("store build");
    let span = 64usize;
    let starts: Vec<usize> =
        (0..sorted.len().saturating_sub(span)).step_by(97).take(2_000).collect();
    let hits: usize = starts.len() * span;

    // `measure` divides by its op count and asserts the loop's return is
    // the hit total, so every scan shape shares the encode-side protocol
    // (median-of-5, total_cmp sort) with a per-hit divisor.
    let range_alloc = measure(hits, || {
        let mut n = 0usize;
        let mut out = Vec::new();
        for &s in &starts {
            out.clear();
            n += store
                .range_into(&sorted[s], &sorted[s + span - 1], span, &mut out)
                .expect("valid bounds");
        }
        assert_eq!(n, hits);
        n
    });

    // The PR 4 visitor path, reconstructed: route the bound shards and
    // run each shard generation's zero-alloc visitor directly — plus the
    // two per-hit source-bound memcmps the PR 4 engine performed on
    // every hit (v1 proved those are only needed on boundary slots and
    // dropped them from interior hits, so the old cost structure is
    // re-added in the callback to keep the baseline honest).
    let visitor_pr4 = measure(hits, || {
        let mut n = 0usize;
        let mut bytes = 0usize;
        for &s in &starts {
            let (low, high) = (&sorted[s], &sorted[s + span - 1]);
            let (s0, s1) = (store.shard_of(low), store.shard_of(high));
            let mut m = 0usize;
            for shard in s0..=s1 {
                if m == span {
                    break;
                }
                let generation = store.generation(shard).expect("shard in range");
                m += generation
                    .range_with(low, high, span - m, |k, _v| {
                        black_box(k >= low.as_slice() && k <= high.as_slice());
                        bytes += k.len();
                    })
                    .expect("valid bounds");
            }
            n += m;
        }
        black_box(bytes);
        assert_eq!(n, hits);
        n
    });

    // v1 push: the cursor's for_each adapter (what range_with now wraps).
    let cursor_push = measure(hits, || {
        let mut n = 0usize;
        let mut bytes = 0usize;
        for &s in &starts {
            n += store
                .range_with(&sorted[s], &sorted[s + span - 1], span, |k, _v| {
                    bytes += k.len();
                })
                .expect("valid bounds");
        }
        black_box(bytes);
        assert_eq!(n, hits);
        n
    });

    // v1 pull: the lending next_hit loop.
    let cursor_pull = measure(hits, || {
        let mut n = 0usize;
        let mut bytes = 0usize;
        for &s in &starts {
            let mut cur =
                store.cursor(&sorted[s], &sorted[s + span - 1], span).expect("valid bounds");
            while let Some((k, _v)) = cur.next_hit() {
                bytes += k.len();
                n += 1;
            }
        }
        black_box(bytes);
        assert_eq!(n, hits);
        n
    });

    ScanStats { hits, range_alloc, visitor_pr4, cursor_push, cursor_pull }
}

struct TelemetryOverhead {
    probes: usize,
    /// ns per get, untraced `HopeStore::get` loop (fastest rep).
    plain_ns: f64,
    /// ns per get with a 1-in-[`TRACE_SAMPLE_EVERY`] sampler diverting
    /// requests to `get_traced` and recording the spans, worker-style
    /// (fastest rep).
    sampled_ns: f64,
    /// Median across reps of the per-rep `plain/sampled` total ratio —
    /// the gate statistic (chunk-paired timing cancels machine-state
    /// drift a back-to-back min-vs-min cannot).
    ratio: f64,
}

impl TelemetryOverhead {
    /// Sampled-loop throughput as a fraction of the plain loop's (1.0 =
    /// tracing is free; the gate requires ≥ [`TARGET_TELEMETRY_RATIO`]).
    fn ratio(&self) -> f64 {
        self.ratio
    }
}

/// Cost of sampled tracing on the store's point-lookup path: the same
/// probe loop untraced, then with a worker-style [`TraceSampler`]
/// sending every 64th get through `get_traced` and recording its spans
/// into registry histograms.
fn bench_telemetry_overhead(keys: &[Vec<u8>]) -> TelemetryOverhead {
    let mut sorted = keys.to_vec();
    sorted.sort();
    sorted.dedup();
    let pairs = sorted.iter().enumerate().map(|(i, k)| (k.clone(), i as u64));
    let store = HopeStore::build(StoreConfig::default(), pairs).expect("store build");
    let probes: Vec<&[u8]> = sorted.iter().step_by(3).map(|k| k.as_slice()).collect();

    let tel = store.telemetry_handle();
    let encode_h = tel.registry().histo("serving.trace.encode");
    let probe_h = tel.registry().histo("serving.trace.probe");
    let decode_h = tel.registry().histo("serving.trace.decode");
    let mut sampler = TraceSampler::new(TRACE_SAMPLE_EVERY);

    let run_plain = |chunk: &[&[u8]]| {
        let mut n = 0usize;
        for &k in chunk {
            n += store.get(k).expect("valid key").is_some() as usize;
        }
        n
    };
    let mut run_sampled = |chunk: &[&[u8]]| {
        let mut n = 0usize;
        for &k in chunk {
            n += if sampler.tick() {
                let (v, spans) = store.get_traced(k).expect("valid key");
                encode_h.record(spans.encode_ns);
                probe_h.record(spans.probe_ns);
                decode_h.record(spans.decode_ns);
                v.is_some()
            } else {
                store.get(k).expect("valid key").is_some()
            } as usize;
        }
        n
    };

    // The two loops differ by single-digit nanoseconds per get while the
    // machine drifts by far more than that between back-to-back passes
    // (turbo decay, interrupts, cache/NUMA state), so whole-pass timing
    // cannot resolve the ratio. Instead each rep walks the probe set in
    // ~32 chunks, timing the plain and sampled loop back to back *per
    // chunk* (alternating which goes first), so both loops accumulate
    // their totals under near-identical machine state; the gate statistic
    // is the median across reps of the per-rep total ratio, after one
    // untimed warmup rep.
    let chunk_len = probes.len().div_ceil(32).max(1);
    let chunks: Vec<&[&[u8]]> = probes.chunks(chunk_len).collect();
    black_box(run_plain(&probes));
    black_box(run_sampled(&probes));
    let (mut plain_ns, mut sampled_ns) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::with_capacity(5);
    for rep in 0..5 {
        let (mut plain_d, mut sampled_d) = (Duration::ZERO, Duration::ZERO);
        let (mut plain_found, mut sampled_found) = (0usize, 0usize);
        for (ci, chunk) in chunks.iter().enumerate() {
            if (rep + ci) % 2 == 0 {
                let (n, d) = time(|| run_plain(chunk));
                plain_found += n;
                plain_d += d;
                let (n, d) = time(|| run_sampled(chunk));
                sampled_found += n;
                sampled_d += d;
            } else {
                let (n, d) = time(|| run_sampled(chunk));
                sampled_found += n;
                sampled_d += d;
                let (n, d) = time(|| run_plain(chunk));
                plain_found += n;
                plain_d += d;
            }
        }
        assert_eq!(black_box(plain_found), probes.len(), "every probe key must be present");
        assert_eq!(black_box(sampled_found), probes.len(), "every probe key must be present");
        let p = ns_per_op(plain_d, probes.len());
        let s = ns_per_op(sampled_d, probes.len());
        plain_ns = plain_ns.min(p);
        sampled_ns = sampled_ns.min(s);
        if std::env::var_os("OVERHEAD_DEBUG").is_some() {
            eprintln!("rep {rep}: plain {p:.1} sampled {s:.1} ratio {:.4}", p / s);
        }
        ratios.push(p / s);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];

    TelemetryOverhead { probes: probes.len(), plain_ns, sampled_ns, ratio }
}

fn out_flag(cfg: &BenchConfig, flag: &str, default: &str) -> String {
    cfg.flags
        .iter()
        .position(|f| f == flag)
        .and_then(|i| cfg.flags.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = out_flag(&cfg, "--out", "BENCH_encode.json");
    let out_decode = out_flag(&cfg, "--out-decode", "BENCH_decode.json");

    let keys = load_dataset(Dataset::Email, &cfg);
    let sample = cfg.sample(&keys);

    println!("# perf_baseline: encode hot-path trajectory (email, {} keys)", keys.len());
    println!(
        "{:14} {:>9} {:>12} {:>14} {:>14} {:>10} {:>9}",
        "scheme", "dict", "fast-kind", "generic-alloc", "generic-reuse", "fast", "speedup"
    );

    let mut rows: Vec<SchemeRow> = Vec::new();
    let mut decode_rows: Vec<DecodeRow> = Vec::new();
    for scheme in Scheme::ALL {
        let target = scheme.fixed_dict_size().unwrap_or(1 << 16);
        let hope = build_hope(scheme, target, &sample);
        let st = hope::stats::measure(&hope, &keys);
        let (generic_alloc, generic_reuse, fast) = bench_scheme(&hope, &keys);
        if let Some((states, fallbacks)) = hope.encoder().fast().and_then(|f| f.automaton_stats()) {
            eprintln!(
                "# {}: automaton {} states ({:.1} KiB), {} fallback edges",
                scheme.name(),
                states,
                hope.encoder().fast().map_or(0, |f| f.memory_bytes()) as f64 / 1024.0,
                fallbacks
            );
        }
        let row = SchemeRow {
            scheme: scheme.name(),
            dict_entries: hope.dict_entries(),
            fast_path: hope.encoder().fast().is_some(),
            fast_kind: hope.encoder().fast().map_or("none", |f| f.kind()),
            cpr: st.cpr(),
            generic_alloc,
            generic_reuse,
            fast,
            dict_kb: hope.dict_memory_bytes() as f64 / 1024.0,
        };
        println!(
            "{:14} {:>9} {:>12} {:>11.2}ns {:>11.2}ns {:>7.2}ns {:>8.2}x",
            row.scheme,
            row.dict_entries,
            row.fast_kind,
            row.generic_alloc,
            row.generic_reuse,
            row.fast,
            row.generic_alloc / row.fast,
        );
        rows.push(row);
        decode_rows.push(bench_decode(&hope, &keys));
    }

    println!("\n# decode trajectory (ns per source char)");
    println!(
        "{:14} {:>12} {:>12} {:>10} {:>10} {:>8} {:>9}",
        "scheme", "walk-alloc", "walk-reuse", "fast", "batch", "states", "speedup"
    );
    for r in &decode_rows {
        println!(
            "{:14} {:>10.2}ns {:>10.2}ns {:>8.2}ns {:>8.2}ns {:>8} {:>8.2}x",
            r.scheme,
            r.walk_alloc,
            r.walk_reuse,
            r.fast,
            r.batch,
            r.table_states,
            r.walk_alloc / r.fast,
        );
    }

    println!("\n# store scan trajectory (ns per hit)");
    let scan = bench_scan(&keys);
    println!(
        "{:>8} hits: collect {:.1} ns/hit, pr4-visitor {:.1} ns/hit, cursor push {:.1} ns/hit, \
         cursor pull {:.1} ns/hit (cursor vs visitor {:.2}x)",
        scan.hits,
        scan.range_alloc,
        scan.visitor_pr4,
        scan.cursor_push,
        scan.cursor_pull,
        scan.cursor_ratio()
    );

    println!("\n# telemetry overhead (1/{TRACE_SAMPLE_EVERY} sampled tracing, get path)");
    let overhead = bench_telemetry_overhead(&keys);
    println!(
        "{:>8} probes: plain {:.1} ns/get, sampled {:.1} ns/get ({:.4}x throughput)",
        overhead.probes,
        overhead.plain_ns,
        overhead.sampled_ns,
        overhead.ratio()
    );

    // Headline gates.
    let speed = |name: &str| {
        let r = rows.iter().find(|r| r.scheme == name).expect("scheme row");
        r.generic_alloc / r.fast
    };
    let single = speed("Single-Char");
    let three = speed("3-Grams");
    let four = speed("4-Grams");
    let dec_single = decode_rows
        .iter()
        .find(|r| r.scheme == "Single-Char")
        .map(|r| r.walk_alloc / r.batch)
        .expect("decode row");
    let gates = [
        Gate {
            name: "single_char_encode_speedup",
            actual: single,
            target: TARGET_SPEEDUP,
            detail: "fast vs generic-alloc encode".into(),
        },
        Gate {
            name: "three_grams_encode_speedup",
            actual: three,
            target: TARGET_TRIE_SPEEDUP,
            detail: "prefix automaton vs generic-alloc encode".into(),
        },
        Gate {
            name: "four_grams_encode_speedup",
            actual: four,
            target: TARGET_TRIE_SPEEDUP,
            detail: "prefix automaton vs generic-alloc encode".into(),
        },
        Gate {
            name: "single_char_batch_decode",
            actual: dec_single,
            target: TARGET_DECODE_SPEEDUP,
            detail: "byte-table batch vs allocating bit walk".into(),
        },
        Gate {
            name: "cursor_vs_visitor_ratio",
            actual: scan.cursor_ratio(),
            target: TARGET_CURSOR_RATIO,
            detail: format!(
                "cursor best {:.1} ns/hit vs pr4 visitor {:.1} ns/hit",
                scan.cursor_push.min(scan.cursor_pull),
                scan.visitor_pr4
            ),
        },
        Gate {
            name: "cursor_pull_ratio",
            actual: scan.pull_ratio(),
            target: TARGET_PULL_RATIO,
            detail: format!(
                "cursor_pull {:.1} ns/hit vs cursor_push {:.1} ns/hit",
                scan.cursor_pull, scan.cursor_push
            ),
        },
        Gate {
            name: "telemetry_overhead_ratio",
            actual: overhead.ratio(),
            target: TARGET_TELEMETRY_RATIO,
            detail: format!(
                "sampled {:.1} ns/get vs plain {:.1} ns/get",
                overhead.sampled_ns, overhead.plain_ns
            ),
        },
    ];
    println!();
    let pass = report_gates(&gates);

    write_encode_json(&out_path, &cfg, &rows, single, three, four, pass);
    write_decode_json(&out_decode, &cfg, &decode_rows, &scan, &overhead, dec_single, pass);
    println!("# wrote {out_path} and {out_decode}");
    println!("# perf_baseline — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        std::process::exit(1);
    }
}

/// Hand-rolled JSON writers (the workspace builds offline; no serde).
fn write_encode_json(
    path: &str,
    cfg: &BenchConfig,
    rows: &[SchemeRow],
    single: f64,
    three: f64,
    four: f64,
    pass: bool,
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"perf_baseline\",\n  \"dataset\": \"email\",\n");
    s.push_str(&format!("  \"keys\": {},\n  \"seed\": {},\n", cfg.keys, cfg.seed));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!("  \"target_single_char_speedup\": {TARGET_SPEEDUP},\n"));
    s.push_str(&format!("  \"target_trie_speedup\": {TARGET_TRIE_SPEEDUP},\n"));
    s.push_str(&format!("  \"single_char_speedup\": {single:.4},\n"));
    s.push_str(&format!("  \"three_grams_speedup\": {three:.4},\n"));
    s.push_str(&format!("  \"four_grams_speedup\": {four:.4},\n"));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"units\": \"ns_per_source_char\",\n  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"dict_entries\": {}, \"fast_path\": {}, \
             \"fast_kind\": \"{}\", \"cpr\": {:.4}, \"generic_alloc\": {:.4}, \
             \"generic_reuse\": {:.4}, \"fast\": {:.4}, \
             \"speedup_vs_generic_alloc\": {:.4}, \"dict_kb\": {:.1}}}{}\n",
            r.scheme,
            r.dict_entries,
            r.fast_path,
            r.fast_kind,
            r.cpr,
            r.generic_alloc,
            r.generic_reuse,
            r.fast,
            r.generic_alloc / r.fast,
            r.dict_kb,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_encode.json");
}

#[allow(clippy::too_many_arguments)]
fn write_decode_json(
    path: &str,
    cfg: &BenchConfig,
    rows: &[DecodeRow],
    scan: &ScanStats,
    overhead: &TelemetryOverhead,
    dec_single: f64,
    pass: bool,
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"perf_baseline\",\n  \"dataset\": \"email\",\n");
    s.push_str(&format!("  \"keys\": {},\n  \"seed\": {},\n", cfg.keys, cfg.seed));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!(
        "  \"target_single_char_batch_decode_speedup\": {TARGET_DECODE_SPEEDUP},\n"
    ));
    s.push_str(&format!("  \"single_char_batch_decode_speedup\": {dec_single:.4},\n"));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"units\": \"ns_per_source_char\",\n  \"schemes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"walk_alloc\": {:.4}, \"walk_reuse\": {:.4}, \
             \"fast\": {:.4}, \"batch\": {:.4}, \"speedup_vs_walk_alloc\": {:.4}, \
             \"table_states\": {}, \"table_kb\": {:.1}}}{}\n",
            r.scheme,
            r.walk_alloc,
            r.walk_reuse,
            r.fast,
            r.batch,
            r.walk_alloc / r.fast,
            r.table_states,
            r.table_kb,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"scan\": {{\"units\": \"ns_per_hit\", \"hits\": {}, \"range_alloc\": {:.4}, \
         \"range_with\": {:.4}, \"speedup\": {:.4}}},\n",
        scan.hits,
        scan.range_alloc,
        scan.visitor_pr4,
        scan.range_alloc / scan.visitor_pr4
    ));
    s.push_str(&format!(
        "  \"cursor\": {{\"units\": \"ns_per_hit\", \"hits\": {}, \
         \"visitor_pr4\": {:.4}, \"cursor_push\": {:.4}, \"cursor_pull\": {:.4}, \
         \"target_ratio_vs_visitor\": {TARGET_CURSOR_RATIO}, \
         \"ratio_vs_visitor\": {:.4}, \
         \"target_pull_ratio\": {TARGET_PULL_RATIO}, \
         \"pull_ratio\": {:.4}}},\n",
        scan.hits,
        scan.visitor_pr4,
        scan.cursor_push,
        scan.cursor_pull,
        scan.cursor_ratio(),
        scan.pull_ratio()
    ));
    s.push_str(&format!(
        "  \"telemetry_overhead\": {{\"units\": \"ns_per_get\", \"probes\": {}, \
         \"sample_every\": {TRACE_SAMPLE_EVERY}, \"plain\": {:.4}, \"sampled\": {:.4}, \
         \"target_ratio\": {TARGET_TELEMETRY_RATIO}, \"ratio\": {:.4}}}\n",
        overhead.probes,
        overhead.plain_ns,
        overhead.sampled_ns,
        overhead.ratio()
    ));
    s.push_str("}\n");
    std::fs::write(path, s).expect("write BENCH_decode.json");
}
