//! Figure 15 (Appendix C) — compression rate under a key-distribution
//! change. The email dataset is split into Email-A (gmail + yahoo) and
//! Email-B (everything else); each scheme builds Dict-A and Dict-B from 1%
//! samples and is then measured on both subsets: matched cases simulate a
//! stable distribution, crossed cases a dramatic shift.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig15_distribution_shift`

use hope::stats;
use hope::Scheme;
use hope_bench::{build_hope, BenchConfig};
use hope_workloads::{generate_email_split, sample_keys};

fn main() {
    let cfg = BenchConfig::from_args();
    let (email_a, email_b) = generate_email_split(cfg.keys, cfg.seed);
    eprintln!(
        "# Email-A (gmail/yahoo): {} keys, Email-B (rest): {} keys",
        email_a.len(),
        email_b.len()
    );
    let pct = |n: usize| ((5_000.0 / n as f64) * 100.0).clamp(1.0, 100.0);
    let sample_a = sample_keys(&email_a, pct(email_a.len()), cfg.seed ^ 0xA);
    let sample_b = sample_keys(&email_b, pct(email_b.len()), cfg.seed ^ 0xB);

    println!("# Figure 15: CPR under stable vs shifted key distributions (64K dicts)");
    println!(
        "{:14} {:>14} {:>14} {:>14} {:>14}",
        "scheme", "DictA/EmailA", "DictB/EmailB", "DictA/EmailB", "DictB/EmailA"
    );

    for scheme in Scheme::ALL {
        let dict_a = build_hope(scheme, 1 << 16, &sample_a);
        let dict_b = build_hope(scheme, 1 << 16, &sample_b);
        let aa = stats::measure(&dict_a, &email_a).cpr();
        let bb = stats::measure(&dict_b, &email_b).cpr();
        let ab = stats::measure(&dict_a, &email_b).cpr();
        let ba = stats::measure(&dict_b, &email_a).cpr();
        println!("{:14} {:>14.2} {:>14.2} {:>14.2} {:>14.2}", scheme.name(), aa, bb, ab, ba);
    }
    println!("# expectation: crossed columns lower than matched; Single-Char least affected");
}
