//! Figure 9 — dictionary build time, broken down by module (Symbol
//! Selector / Code Assigner / Dictionary), on a 1% sample of email keys.
//! Fixed-size schemes once; variable-size schemes at 4K and 64K entries.
//!
//! Note on shape vs the paper: our Hu-Tucker (Garsia–Wachs) implementation
//! is far faster than the paper's O(N²) code assigner, so Code Assign grows
//! with dictionary size but no longer dominates at 64K; the Symbol Selector
//! cost of the ALM schemes (substring statistics) still dwarfs the others,
//! as in the paper.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig09_build_time`

use hope::Scheme;
use hope_bench::{build_hope, load_dataset, BenchConfig};
use hope_workloads::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    let keys = load_dataset(Dataset::Email, &cfg);
    let sample = cfg.sample(&keys);
    println!("# Figure 9: dictionary build time breakdown (email, {} sampled keys)", sample.len());
    println!(
        "{:14} {:>9} {:>14} {:>14} {:>14} {:>12}",
        "scheme", "dict", "symbol_sel_ms", "code_asgn_ms", "dict_build_ms", "total_ms"
    );

    let mut runs: Vec<(Scheme, usize)> =
        vec![(Scheme::SingleChar, 256), (Scheme::DoubleChar, 65792)];
    for scheme in [Scheme::ThreeGrams, Scheme::FourGrams, Scheme::Alm, Scheme::AlmImproved] {
        runs.push((scheme, 1 << 12));
        runs.push((scheme, 1 << 16));
    }

    for (scheme, target) in runs {
        let hope = build_hope(scheme, target, &sample);
        let t = hope.timings();
        println!(
            "{:14} {:>9} {:>14.1} {:>14.1} {:>14.1} {:>12.1}",
            scheme.name(),
            hope.dict_entries(),
            t.symbol_select.as_secs_f64() * 1e3,
            t.code_assign.as_secs_f64() * 1e3,
            t.dictionary_build.as_secs_f64() * 1e3,
            t.total().as_secs_f64() * 1e3,
        );
    }
}
