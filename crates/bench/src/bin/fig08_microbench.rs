//! Figure 8 — compression microbenchmarks: for each dataset (Email, Wiki,
//! URL) and each scheme, sweep the number of dictionary entries and report
//! (row 1) compression rate, (row 2) encode latency in ns per source char,
//! (row 3) dictionary memory in KB.
//!
//! Also prints Table 1 (module configuration) with `--table1`.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig08_microbench
//!         [-- --keys N --quick --table1 --full]`

use hope::stats;
use hope::Scheme;
use hope_bench::{build_hope, load_dataset, mb, BenchConfig};
use hope_workloads::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    if cfg.has_flag("--table1") {
        print_table1();
        return;
    }
    // Dictionary-size sweep: 2^8 .. 2^16 (paper: up to 2^18; pass --full).
    let max_exp = if cfg.has_flag("--full") { 18 } else { 16 };
    let exps: Vec<u32> = (8..=max_exp).step_by(2).collect();

    println!("# Figure 8: compression rate / encode latency / dictionary memory");
    println!("# keys per dataset: {}, sample: ~1% (>=5k)", cfg.keys);
    println!(
        "{:6} {:14} {:>9} {:>8} {:>12} {:>12}",
        "data", "scheme", "dict", "CPR", "ns/char", "dict KB"
    );

    for dataset in Dataset::ALL {
        let keys = load_dataset(dataset, &cfg);
        let sample = cfg.sample(&keys);
        for scheme in Scheme::ALL {
            let sizes: Vec<usize> = match scheme.fixed_dict_size() {
                Some(fixed) => vec![fixed],
                None => exps.iter().map(|e| 1usize << e).collect(),
            };
            for target in sizes {
                let hope = build_hope(scheme, target, &sample);
                let st = stats::measure(&hope, &keys);
                println!(
                    "{:6} {:14} {:>9} {:>8.3} {:>12.2} {:>12.1}",
                    dataset.name(),
                    scheme.name(),
                    hope.dict_entries(),
                    st.cpr(),
                    st.latency_ns_per_char(),
                    mb(hope.dict_memory_bytes()) * 1024.0,
                );
            }
        }
    }
}

fn print_table1() {
    println!("# Table 1: module implementations of the six schemes");
    println!(
        "{:14} {:8} {:14} {:12} {:10}",
        "scheme", "category", "code assigner", "dictionary", "dict size"
    );
    for s in Scheme::ALL {
        println!(
            "{:14} {:8} {:14} {:12} {:10}",
            s.name(),
            s.category(),
            if s.uses_hu_tucker() { "Hu-Tucker" } else { "Fixed-Length" },
            s.dictionary_kind(),
            s.fixed_dict_size().map_or("tunable".to_string(), |n| n.to_string()),
        );
    }
}
