//! `fig21_adaptive_slo` — the closed-loop admission-control acceptance
//! bench: the fig20 degraded-worker drill with **zero plan-driven
//! shedding**. The injected [`FaultPlan`] only makes worker 1 sick
//! during the shift phase (10× slowdown, 1-in-97 stalls, background
//! spikes); deciding *that* it is sick and *how much* of its traffic to
//! shed is entirely the [`AdmissionConfig`] controller's job.
//!
//! Three passes over identical op streams:
//!
//! 1. **baseline** — no faults, no controller (the reference tail);
//! 2. **control** — no faults, controller on: the false-positive drill.
//!    A healthy run must shed zero requests and make zero decisions;
//! 3. **adaptive** — shift-phase faults + controller: the closed loop.
//!
//! Gates:
//!
//! * **(a) bounded engagement** — the controller's first engage decision
//!   seals within a bounded request count of the fault onset (streak
//!   windows + queue-lag slack, see [`engage_bound`]);
//! * **(b) bounded degradation** — p999 of the requests executed by
//!   healthy workers stays within [`TARGET_HEALTHY_P999_RATIO`]× of the
//!   no-fault baseline — autonomous shedding isolates the sick worker
//!   as well as fig20's hand-fed 75% did;
//! * **(c) exactly-once** — every admitted request completes once, zero
//!   rejects, zero plan reroutes (`shed=0` in the plan), and the
//!   controller's shed count agrees across the report, the
//!   `serving.admission.shed` counter and the per-queue `shed_away`
//!   counters: each shed request was rerouted by exactly one mechanism,
//!   exactly once;
//! * **(d) disengagement** — after the fault phase ends every shed level
//!   walks back to zero within a bounded request count;
//! * **(e) no false positives** — the control pass sheds nothing.
//!
//! **Determinism**: in `--quick` virtual mode the controller observes
//! each request's would-be cost on its home worker at admission, so
//! windows, decisions and shed draws are pure functions of the op
//! stream — two quick runs print byte-identical `DIGEST` lines and CI
//! diffs them. The committed `BENCH_admission.json` is a full-size
//! wall-clock run: there the loop is a genuine feedback controller fed
//! by the workers' real per-request service times.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig21_adaptive_slo
//!         [-- --keys N --queries N --seed N --quick --out PATH]`

use std::time::Instant;

use hope_bench::harness::{
    build_serving_store, flag_value, json_head, phase_bounds, phase_ops_per_sec, serving_config,
    to_request, PHASE_NAMES, SERVING_BATCH, SERVING_QUEUE_CAPACITY, SERVING_WORKERS,
};
use hope_bench::BenchConfig;
use hope_store::serving::{
    AdmissionConfig, AdmissionReport, FaultPlan, LatencyHistogram, Server, ServingConfig,
    ServingReport,
};
use hope_store::telemetry::EventKind;

use hope_workloads::{MixedWorkload, TrafficSpec};

/// Gate (b): healthy-worker p999 in the adaptive run must stay within
/// this factor of the no-fault baseline p999 (same bar as fig20).
const TARGET_HEALTHY_P999_RATIO: f64 = 3.0;

/// The sick worker the plan degrades.
const DEGRADED: usize = 1;

/// Every Nth submit carries a completion ticket; gate (c) asserts all
/// of them resolve.
const TICKET_SAMPLE: usize = 64;

/// Requests after fault onset within which the first engage must seal:
/// the engage streak itself plus one partial + one judged window, plus
/// the wall-mode observation lag of everything in flight (full queues).
fn engage_bound(ac: &AdmissionConfig) -> u64 {
    (u64::from(ac.engage_after) + 2) * ac.window + queue_lag()
}

/// Windows granted per healthy verdict the release ladder needs. In
/// wall mode the sick worker's post-fault windows stretch two ways:
/// at high shed levels its sample count runs thin and whole windows
/// abstain, and right after fault end it still drains a queue of
/// penalized requests whose slow completions contaminate post-fault
/// windows with sick evidence while the admission clock races ahead.
const RELEASE_WINDOW_SLACK: u64 = 8;

/// Requests after fault end within which every level must walk back to
/// zero: a full release ladder from the cap (`steps * disengage_after`
/// healthy verdicts, each granted [`RELEASE_WINDOW_SLACK`] windows for
/// abstention and backlog drain), plus partial-window and in-flight
/// slack.
fn disengage_bound(ac: &AdmissionConfig) -> u64 {
    let steps = u64::from(ac.max_shed_pct.div_ceil(ac.shed_step_pct));
    (steps * u64::from(ac.disengage_after) * RELEASE_WINDOW_SLACK + 4) * ac.window + queue_lag()
}

/// Upper bound on requests in flight (admitted, not yet executed): in
/// wall mode their observations lag the admission clock by this much.
fn queue_lag() -> u64 {
    (SERVING_WORKERS * (SERVING_QUEUE_CAPACITY + SERVING_BATCH)) as u64
}

/// Everything one pass produced.
struct PassOutcome {
    report: ServingReport,
    wall_ns: [u64; 3],
    submitted: u64,
    tickets_issued: u64,
    tickets_resolved: u64,
}

/// Drive the three-phase traffic through a fresh store with one
/// producer (admission index == stream position), maintenance paced by
/// the driver after the shift and after the run — the fig20 drill
/// shape, minus plan-driven shedding and rebuild faults.
fn run_pass(
    cfg: &BenchConfig,
    workload: &MixedWorkload,
    plan: Option<FaultPlan>,
    admission: Option<AdmissionConfig>,
) -> PassOutcome {
    let bounds = phase_bounds(workload);
    let store = build_serving_store(workload);
    let serving = ServingConfig { faults: plan, admission, ..serving_config(cfg.quick) };
    let server = Server::start(std::sync::Arc::clone(&store), serving).expect("server start");

    let mut wall_ns = [0u64; 3];
    let mut submitted = 0u64;
    let mut tickets = Vec::new();
    for (phase, &(lo, hi)) in bounds.iter().enumerate() {
        let t0 = Instant::now();
        for (i, op) in workload.ops[lo..hi].iter().enumerate() {
            if i % TICKET_SAMPLE == 0 {
                tickets.push(server.submit(to_request(op), phase).expect("server open"));
            } else {
                server.submit_detached(to_request(op), phase).expect("server open");
            }
        }
        server.flush();
        wall_ns[phase] = t0.elapsed().as_nanos() as u64;
        submitted += (hi - lo) as u64;
        if phase > 0 {
            // One maintenance pass after the shift (dictionaries re-train
            // under the live drill) and one after the run.
            let (_, errors) = store.maintain();
            assert!(errors.is_empty(), "unexpected rebuild errors: {errors:?}");
        }
    }
    let tickets_issued = tickets.len() as u64;
    let tickets_resolved = tickets.iter().filter(|t| t.is_done()).count() as u64;
    let report = server.shutdown();
    PassOutcome { report, wall_ns, submitted, tickets_issued, tickets_resolved }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = flag_value(&cfg, "--out", "BENCH_admission.json");
    let ops = if cfg.quick { cfg.queries } else { cfg.queries.saturating_mul(20) };

    let ac = if cfg.quick {
        AdmissionConfig::quick(cfg.seed)
    } else {
        AdmissionConfig { seed: cfg.seed, ..AdmissionConfig::default() }
    };
    // The fig20 sickness, confined to the shift phase (mask bit 1), with
    // plan-driven shedding and rebuild faults OFF: detection and
    // mitigation belong to the controller alone.
    let plan = FaultPlan {
        seed: cfg.seed,
        degraded_worker: Some(DEGRADED),
        slow_factor: 10,
        stall_every: 97,
        stall_ns: 50_000,
        spike_every: 2_000,
        spike_ns: 10_000,
        shed_pct: 0,
        rebuild_fail_every: 0,
        phase_mask: 0b010,
        ..FaultPlan::default()
    };
    println!(
        "# fig21_adaptive_slo: {} initial keys, {} ops, seed {}, {} mode",
        cfg.keys,
        ops,
        cfg.seed,
        if cfg.quick { "virtual-time (deterministic)" } else { "wall-clock" }
    );
    println!("# plan {plan} (shed=0: the controller is on its own)");
    println!(
        "# admission window={} engage>={}x after {} disengage<={}x after {} step={}% cap={}%",
        ac.window,
        ac.engage_ratio,
        ac.engage_after,
        ac.disengage_ratio,
        ac.disengage_after,
        ac.shed_step_pct,
        ac.max_shed_pct,
    );
    let workload = MixedWorkload::generate(cfg.keys, ops, TrafficSpec::default(), cfg.seed);
    let bounds = phase_bounds(&workload);
    let onset = bounds[1].0 as u64;
    let fault_end = bounds[1].1 as u64;

    let base = run_pass(&cfg, &workload, None, None);
    let control = run_pass(&cfg, &workload, None, Some(ac));
    let adaptive = run_pass(&cfg, &workload, Some(plan), Some(ac));
    let adm = adaptive.report.admission.clone().expect("controller configured");
    let control_adm = control.report.admission.clone().expect("controller configured");

    // Gate (a): bounded engagement, and the engage decisions target the
    // sick worker (healthy engages are tolerated in wall mode — machine
    // noise — but gated to zero in the deterministic virtual run).
    let first_engage_at = adm.first_engage_window().map(|w| (w + 1) * ac.window);
    let engaged =
        adm.decisions.iter().any(|d| d.is_engage() && d.worker == DEGRADED) && adm.shed > 0;
    let healthy_engages =
        adm.decisions.iter().filter(|d| d.is_engage() && d.worker != DEGRADED).count() as u64;
    let bounded_engage = first_engage_at
        .is_some_and(|at| at > onset && at <= onset + engage_bound(&ac))
        && (!cfg.quick || healthy_engages == 0);

    // Gate (b): healthy-worker tail vs the no-fault baseline.
    let mut base_all = LatencyHistogram::new();
    for w in &base.report.worker_stats {
        base_all.merge(&w.latency);
    }
    let mut healthy = LatencyHistogram::new();
    let mut sick = LatencyHistogram::new();
    for w in &adaptive.report.worker_stats {
        if w.worker == DEGRADED {
            sick.merge(&w.latency);
        } else {
            healthy.merge(&w.latency);
        }
    }
    let base_p999 = base_all.quantile_ns(0.999).max(1);
    let healthy_p999 = healthy.quantile_ns(0.999);
    let degraded_p999 = sick.quantile_ns(0.999);
    let p999_ratio = healthy_p999 as f64 / base_p999 as f64;
    let p999_ok = p999_ratio <= TARGET_HEALTHY_P999_RATIO;

    // Gate (c): exactly-once, and the shed accounting agrees everywhere.
    let exactly_once = [&base, &control, &adaptive].iter().all(|p| {
        p.report.total_ops() == p.submitted
            && p.report.total_rejected() == 0
            && p.tickets_resolved == p.tickets_issued
    });
    let errors: u64 = [&base, &control, &adaptive]
        .iter()
        .flat_map(|p| p.report.phases.iter().map(|ph| ph.errors))
        .sum();
    let shed_counter = adaptive.report.telemetry.counter("serving.admission.shed").unwrap_or(0);
    let shed_away: u64 = adaptive.report.queues.iter().map(|q| q.shed_away).sum();
    let engage_events =
        adaptive.report.telemetry.events_of(EventKind::AdmissionEngage).count() as u64;
    let release_events =
        adaptive.report.telemetry.events_of(EventKind::AdmissionRelease).count() as u64;
    let shed_agrees = adm.shed == shed_counter
        && adm.shed == shed_away
        && adaptive.report.rerouted == 0
        && engage_events == adm.engages()
        && release_events == adm.releases();

    // Gate (d): the controller let go after the fault phase.
    let last_release_at = adm.last_release_window().map(|w| (w + 1) * ac.window);
    let disengaged = adm.levels.iter().all(|&l| l == 0)
        && last_release_at.is_some_and(|at| at <= fault_end + disengage_bound(&ac));

    // Gate (e): the healthy control run shed nothing.
    let no_false_positive = control_adm.shed == 0
        && control_adm.decisions.is_empty()
        && control_adm.levels.iter().all(|&l| l == 0);

    let pass = engaged
        && bounded_engage
        && p999_ok
        && exactly_once
        && errors == 0
        && shed_agrees
        && disengaged
        && no_false_positive;

    print_report(&adaptive.report, &adm, &adaptive.wall_ns);

    for (name, ph) in PHASE_NAMES.iter().zip(&adaptive.report.phases) {
        let (p50, p99, p999) = ph.latency.slo_points();
        println!(
            "DIGEST phase={name} ops={} gets={} inserts={} scans={} errors={} \
             p50={p50}ns p99={p99}ns p999={p999}ns",
            ph.ops, ph.gets, ph.inserts, ph.scans, ph.errors,
        );
    }
    let levels: Vec<String> = adm.levels.iter().map(|l| l.to_string()).collect();
    println!(
        "DIGEST admission windows={} engages={} releases={} shed={} first_engage={} \
         last_release={} levels={}",
        adm.windows,
        adm.engages(),
        adm.releases(),
        adm.shed,
        first_engage_at.map_or("none".into(), |v| v.to_string()),
        last_release_at.map_or("none".into(), |v| v.to_string()),
        levels.join("/"),
    );
    println!(
        "DIGEST control shed={} decisions={} windows={}",
        control_adm.shed,
        control_adm.decisions.len(),
        control_adm.windows,
    );
    println!(
        "DIGEST slo base_p999={base_p999}ns healthy_p999={healthy_p999}ns \
         degraded_p999={degraded_p999}ns ratio={p999_ratio:.2}"
    );
    println!(
        "DIGEST gates completed={}/{} rejected={} tickets={}/{} errors={errors} \
         engaged={engaged} bounded_engage={bounded_engage} p999_ok={p999_ok} \
         shed_agrees={shed_agrees} disengaged={disengaged} \
         no_false_positive={no_false_positive} pass={pass}",
        adaptive.report.total_ops(),
        adaptive.submitted,
        adaptive.report.total_rejected(),
        adaptive.tickets_resolved,
        adaptive.tickets_issued,
    );

    write_json(&WriteArgs {
        path: &out_path,
        cfg: &cfg,
        ops,
        plan: &plan,
        ac: &ac,
        base: &base,
        control: &control,
        adaptive: &adaptive,
        adm: &adm,
        onset,
        fault_end,
        first_engage_at,
        last_release_at,
        p999_ratio,
        healthy_engages,
        pass,
    });
    println!("# wrote {out_path}");
    println!("# fig21_adaptive_slo — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        if !engaged {
            println!("- controller engages on the sick worker and sheds  (required)");
            println!("+ engages(sick) missing or shed == 0 (shed {})", adm.shed);
        }
        if !bounded_engage {
            println!(
                "- first engage within {} requests of onset {onset}  (required)",
                engage_bound(&ac)
            );
            println!("+ first_engage_at {first_engage_at:?}, healthy engages {healthy_engages}");
        }
        if !p999_ok {
            println!("- healthy p999 <= {TARGET_HEALTHY_P999_RATIO}x baseline p999  (required)");
            println!("+ ratio == {p999_ratio:.2} ({healthy_p999} ns vs {base_p999} ns)");
        }
        if !exactly_once {
            println!("- every admitted request completed exactly once  (required)");
            for (name, p) in [("base", &base), ("control", &control), ("adaptive", &adaptive)] {
                println!(
                    "+ {name}: completed {}/{}, rejected {}, tickets {}/{}",
                    p.report.total_ops(),
                    p.submitted,
                    p.report.total_rejected(),
                    p.tickets_resolved,
                    p.tickets_issued
                );
            }
        }
        if errors > 0 {
            println!("- errors == 0  (required)\n+ errors == {errors}");
        }
        if !shed_agrees {
            println!("- shed accounting agrees (report/counter/queues/events)  (required)");
            println!(
                "+ report {}, counter {shed_counter}, shed_away {shed_away}, plan_rerouted {}, \
                 events {engage_events}/{release_events} vs {}/{}",
                adm.shed,
                adaptive.report.rerouted,
                adm.engages(),
                adm.releases(),
            );
        }
        if !disengaged {
            println!(
                "- levels back to zero within {} requests of fault end {fault_end}  (required)",
                disengage_bound(&ac)
            );
            println!("+ levels {:?}, last_release_at {last_release_at:?}", adm.levels);
        }
        if !no_false_positive {
            println!("- healthy control run sheds nothing  (required)");
            println!(
                "+ control shed {}, decisions {}, levels {:?}",
                control_adm.shed,
                control_adm.decisions.len(),
                control_adm.levels
            );
        }
        std::process::exit(1);
    }
}

fn print_report(report: &ServingReport, adm: &AdmissionReport, wall_ns: &[u64; 3]) {
    println!("\n# adaptive run: {} workers, worker {DEGRADED} degraded", report.workers);
    println!(
        "{:11} {:>9} {:>8} {:>8} {:>7} {:>10} {:>10} {:>10} {:>11}",
        "phase", "ops", "gets", "inserts", "scans", "p50", "p99", "p999", "ops/sec"
    );
    for (p, ph) in report.phases.iter().enumerate() {
        let (p50, p99, p999) = ph.latency.slo_points();
        let ops_per_sec = phase_ops_per_sec(report, p, wall_ns);
        println!(
            "{:11} {:>9} {:>8} {:>8} {:>7} {:>8}ns {:>8}ns {:>8}ns {:>11.0}",
            PHASE_NAMES[p], ph.ops, ph.gets, ph.inserts, ph.scans, p50, p99, p999, ops_per_sec
        );
    }
    for w in &report.worker_stats {
        let (p50, p99, p999) = w.latency.slo_points();
        println!(
            "# worker {}{}: {} ops, p50 {p50}ns p99 {p99}ns p999 {p999}ns, shed_away {}",
            w.worker,
            if w.worker == DEGRADED { " (degraded)" } else { "" },
            w.ops,
            report.queues[w.worker].shed_away,
        );
    }
    for d in &adm.decisions {
        println!(
            "# decision window {} worker {}: {}% -> {}% (ratio {:.2})",
            d.window,
            d.worker,
            d.from_pct,
            d.to_pct,
            d.ratio_x1000 as f64 / 1000.0
        );
    }
}

/// Everything `write_json` needs (bundled: the flat list trips clippy's
/// argument-count lint, and rightly so).
struct WriteArgs<'a> {
    path: &'a str,
    cfg: &'a BenchConfig,
    ops: usize,
    plan: &'a FaultPlan,
    ac: &'a AdmissionConfig,
    base: &'a PassOutcome,
    control: &'a PassOutcome,
    adaptive: &'a PassOutcome,
    adm: &'a AdmissionReport,
    onset: u64,
    fault_end: u64,
    first_engage_at: Option<u64>,
    last_release_at: Option<u64>,
    p999_ratio: f64,
    healthy_engages: u64,
    pass: bool,
}

/// Hand-rolled JSON (the workspace builds offline; no serde) — schema
/// documented in DESIGN.md, "Adaptive admission".
fn write_json(a: &WriteArgs<'_>) {
    let mut s = String::new();
    json_head(&mut s, "fig21_adaptive_slo", a.cfg, a.ops);
    s.push_str(&format!("  \"plan\": \"{}\",\n", a.plan));
    s.push_str(&format!(
        "  \"admission\": {{\"window\": {}, \"engage_ratio\": {}, \"disengage_ratio\": {}, \
         \"engage_after\": {}, \"disengage_after\": {}, \"shed_step_pct\": {}, \
         \"max_shed_pct\": {}, \"min_window_ops\": {}}},\n",
        a.ac.window,
        a.ac.engage_ratio,
        a.ac.disengage_ratio,
        a.ac.engage_after,
        a.ac.disengage_after,
        a.ac.shed_step_pct,
        a.ac.max_shed_pct,
        a.ac.min_window_ops,
    ));
    s.push_str(&format!("  \"workers\": {SERVING_WORKERS},\n  \"degraded_worker\": {DEGRADED},\n"));
    s.push_str(&format!("  \"target_healthy_p999_ratio\": {TARGET_HEALTHY_P999_RATIO},\n"));
    s.push_str(&format!("  \"healthy_p999_over_base\": {:.4},\n", a.p999_ratio));
    s.push_str(&format!(
        "  \"onset_index\": {},\n  \"fault_end_index\": {},\n",
        a.onset, a.fault_end
    ));
    s.push_str(&format!(
        "  \"first_engage_at\": {},\n  \"last_release_at\": {},\n",
        a.first_engage_at.map_or("null".into(), |v| v.to_string()),
        a.last_release_at.map_or("null".into(), |v| v.to_string()),
    ));
    s.push_str(&format!(
        "  \"engage_bound\": {},\n  \"disengage_bound\": {},\n",
        engage_bound(a.ac),
        disengage_bound(a.ac)
    ));
    s.push_str(&format!(
        "  \"controller_shed\": {},\n  \"plan_rerouted\": {},\n  \"healthy_engages\": {},\n",
        a.adm.shed, a.adaptive.report.rerouted, a.healthy_engages
    ));
    let control_adm = a.control.report.admission.as_ref().expect("controller configured");
    s.push_str(&format!(
        "  \"control_shed\": {},\n  \"control_decisions\": {},\n",
        control_adm.shed,
        control_adm.decisions.len()
    ));
    s.push_str(&format!("  \"pass\": {},\n", a.pass));
    s.push_str("  \"units\": \"ns\",\n  \"decisions\": [\n");
    for (i, d) in a.adm.decisions.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"window\": {}, \"worker\": {}, \"from_pct\": {}, \"to_pct\": {}, \
             \"ratio_x1000\": {}}}{}\n",
            d.window,
            d.worker,
            d.from_pct,
            d.to_pct,
            d.ratio_x1000,
            if i + 1 < a.adm.decisions.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"runs\": [\n");
    let runs = [("baseline", a.base), ("control", a.control), ("adaptive", a.adaptive)];
    for (i, (name, p)) in runs.iter().enumerate() {
        let mut all = LatencyHistogram::new();
        for w in &p.report.worker_stats {
            all.merge(&w.latency);
        }
        let (p50, p99, p999) = all.slo_points();
        s.push_str(&format!(
            "    {{\"run\": \"{name}\", \"ops\": {}, \"rejected\": {}, \"tickets\": {}, \
             \"p50_ns\": {p50}, \"p99_ns\": {p99}, \"p999_ns\": {p999}, \"mean_ns\": {:.1}, \
             \"max_ns\": {}, \"shed\": {}, \"workers\": [\n",
            p.report.total_ops(),
            p.report.total_rejected(),
            p.tickets_issued,
            all.mean_ns(),
            all.max_ns(),
            p.report.admission.as_ref().map_or(0, |r| r.shed),
        ));
        for (j, w) in p.report.worker_stats.iter().enumerate() {
            let (wp50, wp99, wp999) = w.latency.slo_points();
            s.push_str(&format!(
                "      {{\"worker\": {}, \"degraded\": {}, \"ops\": {}, \"p50_ns\": {wp50}, \
                 \"p99_ns\": {wp99}, \"p999_ns\": {wp999}, \"shed_away\": {}}}{}\n",
                w.worker,
                w.worker == DEGRADED && *name == "adaptive",
                w.ops,
                p.report.queues[w.worker].shed_away,
                if j + 1 < p.report.worker_stats.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!("    ]}}{}\n", if i + 1 < runs.len() { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(a.path, s).expect("write BENCH_admission.json");
}
