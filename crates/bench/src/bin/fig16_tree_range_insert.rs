//! Figure 16 (Appendix D) — YCSB-E range-scan and insert latency for ART,
//! HOT, B+tree and Prefix B+tree, uncompressed vs the six HOPE
//! configurations, on all three datasets.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig16_tree_range_insert
//!         [-- --keys N --queries N --quick]`

use hope_bench::{
    build_hope, load_dataset, mb, paper_tree_configs, time, us_per_op, BenchConfig, PreparedKeys,
    QueryScratch, TreeKind,
};
use hope_workloads::{Dataset, Op, WorkloadSpec, YcsbWorkload};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Figure 16: range scan + insert latency (YCSB E)");
    println!(
        "{:6} {:14} {:20} {:>9} {:>10} {:>10}",
        "data", "tree", "config", "range_us", "insert_us", "mem_MB"
    );

    for dataset in Dataset::ALL {
        let keys = load_dataset(dataset, &cfg);
        let sample = cfg.sample(&keys);
        let workload =
            YcsbWorkload::generate(WorkloadSpec::E, keys.len(), cfg.queries, cfg.seed ^ 0xF16E);

        let mut prepared: Vec<(String, PreparedKeys)> =
            vec![("Uncompressed".into(), PreparedKeys::raw(&keys))];
        for (scheme, limit, label) in paper_tree_configs() {
            let hope = build_hope(scheme, limit, &sample);
            prepared.push((label, PreparedKeys::encoded(hope, &keys)));
        }

        for kind in TreeKind::ALL {
            for (label, prep) in &prepared {
                let mut tree = kind.new_tree();
                for i in 0..workload.load_count {
                    tree.insert(&prep.keys[i], i as u64);
                }
                let mut scratch = QueryScratch::default();
                let mut hits = Vec::new();
                let mut scan_time = std::time::Duration::ZERO;
                let mut scans = 0usize;
                let mut insert_time = std::time::Duration::ZERO;
                let mut inserts = 0usize;
                let mut scanned_total = 0usize;
                for op in &workload.ops {
                    match op {
                        Op::Scan(idx, len) => {
                            let ((), d) = time(|| {
                                let start = prep.encode_query_scratch(&keys[*idx], &mut scratch);
                                hits.clear();
                                tree.scan_into(start, *len, &mut hits);
                                scanned_total += hits.len();
                            });
                            scan_time += d;
                            scans += 1;
                        }
                        Op::Insert(idx) => {
                            let ((), d) = time(|| {
                                let k = prep.encode_query_scratch(&keys[*idx], &mut scratch);
                                tree.insert(k, *idx as u64);
                            });
                            insert_time += d;
                            inserts += 1;
                        }
                        Op::Read(_) => unreachable!("workload E has no reads"),
                    }
                }
                assert!(scanned_total > 0, "scans returned nothing");
                let mem = tree.memory_bytes() + prep.dict_memory();
                println!(
                    "{:6} {:14} {:20} {:>9.3} {:>10.3} {:>10.2}",
                    dataset.name(),
                    kind.name(),
                    label,
                    us_per_op(scan_time, scans.max(1)),
                    us_per_op(insert_time, inserts.max(1)),
                    mb(mem),
                );
            }
        }
    }
}
