//! `fig18_serving_slo` — the serving-harness acceptance bench: tail
//! latency and throughput of `hope_store::serving` under mixed traffic
//! with a mid-run distribution shift.
//!
//! The ROADMAP's north star is *serving* — not codec microbenches — so
//! this binary drives the full request pipeline: a thread-per-core
//! [`Server`] over a sharded [`HopeStore`](hope_store::HopeStore), fed the
//! `hope_workloads::traffic` mixed stream (70/20/10 get/insert/scan)
//! whose insert population switches from Email-A to Email-B mid-run, with
//! a [`Maintainer`] hot-swapping drifted dictionaries under the live
//! traffic. Three phases are measured separately:
//!
//! 1. **pre_shift** — steady state on the trained distribution;
//! 2. **shift** — the Email-B inserts arrive and the dictionaries
//!    hot-swap while requests keep flowing;
//! 3. **post_shift** — steady state on the retrained dictionaries.
//!
//! Per phase it records p50/p99/p999 latency, mean/max, and ops/sec into
//! `BENCH_serving.json` (`--out PATH` overrides), then applies the gates:
//!
//! * every admitted request completed, exactly once (`completed ==
//!   admitted`, no rejects under the backpressure driver);
//! * zero store errors across all phases;
//! * at least one dictionary hot-swap observed during the shift phase;
//! * shift-phase p99 within [`TARGET_P99_RATIO`]× of pre-shift p99;
//! * in virtual mode, merged throughput ≥ [`TARGET_VIRTUAL_MOPS`] M
//!   ops/s.
//!
//! **Determinism**: `--quick` switches the server to virtual-time
//! accounting ([`hope_store::serving::virtual_cost`]) — each request's
//! latency is a pure function of the request, the op stream is a pure
//! function of the seed, and routing is a pure function of the keys, so
//! two quick runs print byte-identical `DIGEST` lines (op counts per
//! phase, latency quantiles, virtual throughput, verdicts) no matter how
//! threads interleave. CI runs the binary twice and diffs the digests.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig18_serving_slo
//!         [-- --keys N --queries N --seed N --quick --out PATH]`
//!
//! The full (non-quick) run drives `20 × queries` operations — two
//! million at the defaults — in wall-clock mode; quick drives `queries`
//! operations in virtual mode.

use std::sync::Arc;
use std::time::Instant;

use hope_bench::harness::{
    build_serving_store, flag_value, json_head, json_phase, phase_bounds, phase_ops_per_sec,
    serving_config, to_request, PHASE_NAMES,
};
use hope_bench::BenchConfig;
use hope_store::serving::{Server, ServingReport};
use hope_store::Maintainer;
use hope_workloads::{MixedWorkload, TrafficSpec};

/// Gate: shift-phase p99 must stay within this factor of pre-shift p99
/// (a hot-swap must not melt the tail; virtual mode sits near 1×).
const TARGET_P99_RATIO: f64 = 10.0;

/// Gate (virtual mode): merged virtual throughput across phases, in
/// millions of ops per second per busiest worker.
const TARGET_VIRTUAL_MOPS: f64 = 0.5;

/// Producer threads feeding the server (each takes one
/// `split_across` stream).
const PRODUCERS: usize = 2;

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = flag_value(&cfg, "--out", "BENCH_serving.json");
    let ops = if cfg.quick { cfg.queries } else { cfg.queries.saturating_mul(20) };

    println!(
        "# fig18_serving_slo: {} initial keys, {} ops, seed {}, {} mode",
        cfg.keys,
        ops,
        cfg.seed,
        if cfg.quick { "virtual-time (deterministic)" } else { "wall-clock" }
    );
    let workload = MixedWorkload::generate(cfg.keys, ops, TrafficSpec::default(), cfg.seed);
    let bounds = phase_bounds(&workload);

    let store = build_serving_store(&workload);
    let serving = serving_config(cfg.quick);
    let server = Server::start(Arc::clone(&store), serving).expect("server start");
    let streams = workload.split_across(PRODUCERS);

    // Hot-swap runs *concurrently with the traffic*: the maintainer polls
    // for drift while the producers submit.
    let maintainer = Maintainer::spawn(Arc::clone(&store), std::time::Duration::from_millis(2));

    let mut wall_ns = [0u64; 3];
    let mut submitted = 0u64;
    let mut swap_in_shift = false;
    for (phase, &(lo, hi)) in bounds.iter().enumerate() {
        let epochs_before = store.epochs();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for stream in &streams {
                let server = &server;
                s.spawn(move || {
                    let a = stream.partition_point(|(i, _)| *i < lo);
                    let b = stream.partition_point(|(i, _)| *i < hi);
                    for (_, op) in &stream[a..b] {
                        // Backpressure submit: the acceptance run admits
                        // the entire fixed op sequence (load shedding is
                        // exercised by tests/serving_overload.rs).
                        server.submit_detached(to_request(op), phase).expect("server open");
                    }
                });
            }
        });
        server.flush();
        wall_ns[phase] = t0.elapsed().as_nanos() as u64;
        submitted += (hi - lo) as u64;
        if phase == 1 {
            // The maintainer usually swapped already; one direct pass
            // makes the verdict timing-independent — by end of shift the
            // drift has either been detected or the gate should fail.
            let _ = store.maintain();
            swap_in_shift = store.epochs() != epochs_before;
        }
    }
    let log = maintainer.stop();
    let report = server.shutdown();
    assert!(log.errors.is_empty(), "maintenance rebuild errors: {:?}", log.errors);

    print_report(&report, &wall_ns);

    // Gates.
    let completed = report.total_ops();
    let rejected = report.total_rejected();
    let errors: u64 = report.phases.iter().map(|p| p.errors).sum();
    let p99_pre = report.phases[0].latency.quantile_ns(0.99).max(1);
    let p99_shift = report.phases[1].latency.quantile_ns(0.99);
    let p99_ratio = p99_shift as f64 / p99_pre as f64;
    let vmops =
        report.phases.iter().map(|p| p.virtual_ops_per_sec()).fold(f64::INFINITY, f64::min) / 1e6;
    let exactly_once = completed == submitted && rejected == 0;
    let p99_ok = p99_ratio <= TARGET_P99_RATIO;
    let vmops_ok = !cfg.quick || vmops >= TARGET_VIRTUAL_MOPS;
    let pass = exactly_once && errors == 0 && swap_in_shift && p99_ok && vmops_ok;

    for (p, name) in PHASE_NAMES.iter().enumerate() {
        let ph = &report.phases[p];
        let (p50, p99, p999) = ph.latency.slo_points();
        let ops_per_sec = phase_ops_per_sec(&report, p, &wall_ns);
        println!(
            "DIGEST phase={} ops={} gets={} inserts={} scans={} errors={} \
             p50={p50}ns p99={p99}ns p999={p999}ns kops={:.1}",
            name,
            ph.ops,
            ph.gets,
            ph.inserts,
            ph.scans,
            ph.errors,
            // Wall-clock throughput is machine noise; keep it out of the
            // determinism digest in quick mode by rounding virtual kops.
            ops_per_sec / 1e3,
        );
    }
    println!(
        "DIGEST gates completed={completed}/{submitted} rejected={rejected} errors={errors} \
         swap_in_shift={swap_in_shift} p99_ratio={p99_ratio:.2} pass={pass}"
    );

    write_json(&out_path, &cfg, ops, &report, &wall_ns, swap_in_shift, p99_ratio, pass);
    println!("# wrote {out_path} ({} maintainer swaps)", log.swaps.len());
    println!("# fig18_serving_slo — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        if !exactly_once {
            println!("- completed == submitted, rejected == 0  (required)");
            println!("+ completed {completed} / submitted {submitted}, rejected {rejected}");
        }
        if errors > 0 {
            println!("- errors == 0  (required)\n+ errors == {errors}");
        }
        if !swap_in_shift {
            println!("- a dictionary hot-swap during the shift phase  (required)");
            println!("+ no shard epoch changed");
        }
        if !p99_ok {
            println!("- shift p99 <= {TARGET_P99_RATIO}x pre-shift p99  (required)");
            println!("+ ratio == {p99_ratio:.2} ({p99_shift} ns vs {p99_pre} ns)");
        }
        if !vmops_ok {
            println!("- virtual throughput >= {TARGET_VIRTUAL_MOPS} M ops/s  (required)");
            println!("+ measured {vmops:.3} M ops/s");
        }
        std::process::exit(1);
    }
}

fn print_report(report: &ServingReport, wall_ns: &[u64; 3]) {
    println!("\n# {} workers, queue {} × {}, batch {}", report.workers, report.workers, 1024, 64);
    println!(
        "{:11} {:>9} {:>8} {:>8} {:>7} {:>10} {:>10} {:>10} {:>11}",
        "phase", "ops", "gets", "inserts", "scans", "p50", "p99", "p999", "ops/sec"
    );
    for (p, ph) in report.phases.iter().enumerate() {
        let (p50, p99, p999) = ph.latency.slo_points();
        let ops_per_sec = phase_ops_per_sec(report, p, wall_ns);
        println!(
            "{:11} {:>9} {:>8} {:>8} {:>7} {:>8}ns {:>8}ns {:>8}ns {:>11.0}",
            PHASE_NAMES[p], ph.ops, ph.gets, ph.inserts, ph.scans, p50, p99, p999, ops_per_sec
        );
    }
    for (i, q) in report.queues.iter().enumerate() {
        println!(
            "# queue {i}: {} enqueued, {} rejected, {} batches, peak depth {}",
            q.enqueued, q.rejected, q.batches, q.peak_depth
        );
    }
}

/// Hand-rolled JSON (the workspace builds offline; no serde) — schema
/// documented in DESIGN.md, "Serving harness".
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    cfg: &BenchConfig,
    ops: usize,
    report: &ServingReport,
    wall_ns: &[u64; 3],
    swap_in_shift: bool,
    p99_ratio: f64,
    pass: bool,
) {
    let mut s = String::new();
    json_head(&mut s, "fig18_serving_slo", cfg, ops);
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.virtual_time { "virtual" } else { "wall" }
    ));
    s.push_str(&format!(
        "  \"workers\": {},\n  \"queue_capacity\": 1024,\n  \"batch\": 64,\n",
        report.workers
    ));
    s.push_str(&format!("  \"target_p99_ratio\": {TARGET_P99_RATIO},\n"));
    s.push_str(&format!("  \"p99_shift_over_pre\": {p99_ratio:.4},\n"));
    s.push_str(&format!("  \"swap_in_shift\": {swap_in_shift},\n"));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"units\": \"ns\",\n  \"phases\": [\n");
    for p in 0..report.phases.len() {
        let ops_per_sec = phase_ops_per_sec(report, p, wall_ns);
        json_phase(&mut s, report, p, ops_per_sec, p + 1 == report.phases.len());
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write BENCH_serving.json");
}
