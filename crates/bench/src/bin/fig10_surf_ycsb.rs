//! Figure 10 — SuRF under YCSB: point latency vs memory, range latency,
//! build time, and average trie height, for the uncompressed baseline and
//! the six HOPE configurations, on all three datasets.
//!
//! Range queries follow §7.1: the end key is a copy of the start key with
//! its last byte incremented; both endpoints are pair-encoded (§4.2).
//! `--model` additionally prints the §5 analytic latency-reduction model.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig10_surf_ycsb
//!         [-- --keys N --queries N --quick --model]`

use hope_bench::{
    build_hope, load_dataset, mb, ns_per_op, paper_tree_configs, time, us_per_op, BenchConfig,
};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::{Dataset, ScrambledZipf};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Figure 10: SuRF with HOPE (point/range latency, memory, build, height)");
    println!(
        "{:6} {:20} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "data", "config", "point_us", "range_us", "mem_MB", "build_s", "height", "CPR"
    );

    for dataset in Dataset::ALL {
        let keys = load_dataset(dataset, &cfg);
        let sample = cfg.sample(&keys);
        let mut zipf = ScrambledZipf::ycsb(keys.len(), cfg.seed ^ 0xF16);

        // Uncompressed baseline.
        run_config(dataset, "Uncompressed", None, &keys, &cfg, &mut zipf);

        for (scheme, limit, label) in paper_tree_configs() {
            let hope = build_hope(scheme, limit, &sample);
            run_config(dataset, &label, Some(hope), &keys, &cfg, &mut zipf);
        }

        if cfg.has_flag("--model") && dataset == Dataset::Email {
            print_model(&keys, &sample);
        }
    }
}

fn run_config(
    dataset: Dataset,
    label: &str,
    hope: Option<hope::Hope>,
    keys: &[Vec<u8>],
    cfg: &BenchConfig,
    zipf: &mut ScrambledZipf,
) {
    // Build phase: encode + sort + construct the filter.
    let (prepared, build) = time(|| {
        let mut enc: Vec<Vec<u8>> = match &hope {
            Some(h) => keys.iter().map(|k| h.encode(k).into_bytes()).collect(),
            None => keys.to_vec(),
        };
        let mut sorted = enc.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let surf = Surf::build(&sorted, SuffixKind::Real);
        enc.shrink_to_fit();
        (enc, surf)
    });
    let (enc_keys, surf) = prepared;

    let src_bytes: usize = keys.iter().map(|k| k.len()).sum();
    let enc_bytes: usize = enc_keys.iter().map(|k| k.len()).sum();
    let cpr = src_bytes as f64 / enc_bytes as f64;

    // Point queries (workload C, Zipf over the key set).
    let point_q: Vec<usize> = (0..cfg.queries).map(|_| zipf.next()).collect();
    let mut writer = hope::bitpack::BitWriter::new();
    let mut buf = Vec::new();
    let (hits, d_point) = time(|| {
        let mut hits = 0usize;
        for &i in &point_q {
            let q: &[u8] = match &hope {
                Some(h) => {
                    h.encoder().encode_into(&keys[i], &mut writer);
                    writer.finish_into(&mut buf);
                    &buf
                }
                None => &keys[i],
            };
            hits += surf.contains(q) as usize;
        }
        hits
    });
    assert_eq!(hits, point_q.len(), "a filter must not produce false negatives");

    // Range queries: [key, key-with-last-byte+1), pair-encoded.
    let range_q: Vec<usize> = (0..cfg.queries / 2).map(|_| zipf.next()).collect();
    let (_, d_range) = time(|| {
        let mut found = 0usize;
        for &i in &range_q {
            let mut end = keys[i].clone();
            if let Some(last) = end.last_mut() {
                *last = last.saturating_add(1);
            }
            let (lo, hi) = match &hope {
                Some(h) => {
                    let (a, b) = h.encode_pair(&keys[i], &end);
                    (a.into_bytes(), b.into_bytes())
                }
                None => (keys[i].clone(), end),
            };
            found += surf.range_may_contain(&lo, &hi) as usize;
        }
        found
    });

    let mem = surf.memory_bytes() + hope.as_ref().map_or(0, |h| h.dict_memory_bytes());
    println!(
        "{:6} {:20} {:>9.3} {:>9.3} {:>9.2} {:>9.2} {:>8.2} {:>7.2}",
        dataset.name(),
        label,
        us_per_op(d_point, point_q.len()),
        us_per_op(d_range, range_q.len().max(1)),
        mb(mem),
        build.as_secs_f64(),
        surf.avg_height(),
        cpr,
    );
}

/// §5's latency-reduction model, instantiated like the paper's example:
/// reduction = 1 - 1/cpr - (l * t_encode) / (h * t_trie).
fn print_model(keys: &[Vec<u8>], sample: &[Vec<u8>]) {
    let hope = build_hope(hope::Scheme::DoubleChar, 65792, sample);
    let st = hope::stats::measure(&hope, keys);
    let cpr = st.cpr();
    let t_encode = st.latency_ns_per_char();
    let l: f64 = keys.iter().map(|k| k.len()).sum::<usize>() as f64 / keys.len() as f64;

    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let surf = Surf::build(&sorted, SuffixKind::Real);
    let h = surf.avg_height();
    // t_trie from the uncompressed point-query latency.
    let probe: Vec<&Vec<u8>> = sorted.iter().step_by(7).collect();
    let (_, d) = time(|| probe.iter().map(|k| surf.contains(k) as usize).sum::<usize>());
    let t_trie = ns_per_op(d, probe.len()) / h;
    let reduction = 1.0 - 1.0 / cpr - (l * t_encode) / (h * t_trie);
    println!(
        "# §5 model (email, Double-Char): cpr={cpr:.2} t_enc={t_encode:.1}ns/char l={l:.1} h={h:.1} t_trie={t_trie:.1}ns -> predicted latency reduction {:.0}%",
        reduction * 100.0
    );
}
