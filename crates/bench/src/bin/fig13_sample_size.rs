//! Figure 13 (Appendix A) — sample-size sensitivity: compression rate for
//! each scheme under sample fractions 0.001% … 100% of the dataset, with
//! the dictionary size limit at 64K entries.
//!
//! Like the paper (whose 100% ALM runs "did not finish in a reasonable
//! amount of time"), the ALM schemes skip the 100% fraction unless
//! `--full` is passed.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig13_sample_size
//!         [-- --keys N --quick --full]`

use hope::stats;
use hope::Scheme;
use hope_bench::{build_hope, load_dataset, BenchConfig};
use hope_workloads::{sample_keys, Dataset};

fn main() {
    let cfg = BenchConfig::from_args();
    let fractions: &[f64] = &[0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

    println!("# Figure 13: CPR vs sample size (dict limit 64K)");
    println!("{:6} {:14} {:>10} {:>9} {:>8}", "data", "scheme", "sample_%", "samples", "CPR");

    for dataset in Dataset::ALL {
        let keys = load_dataset(dataset, &cfg);
        for scheme in Scheme::ALL {
            for &pct in fractions {
                let alm = matches!(scheme, Scheme::Alm | Scheme::AlmImproved);
                if alm && pct >= 100.0 && !cfg.has_flag("--full") {
                    println!(
                        "{:6} {:14} {:>10} {:>9} {:>8}",
                        dataset.name(),
                        scheme.name(),
                        pct,
                        "-",
                        "DNF"
                    );
                    continue;
                }
                let sample = sample_keys(&keys, pct.max(100.0 / cfg.keys as f64), cfg.seed ^ 0x13);
                let hope = build_hope(scheme, 1 << 16, &sample);
                let st = stats::measure(&hope, &keys);
                println!(
                    "{:6} {:14} {:>10} {:>9} {:>8.3}",
                    dataset.name(),
                    scheme.name(),
                    pct,
                    sample.len(),
                    st.cpr()
                );
            }
        }
    }
}
