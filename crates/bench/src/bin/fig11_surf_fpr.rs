//! Figure 11 — SuRF false-positive rate on email point queries, for
//! SuRF-Base and SuRF-Real8, uncompressed vs the six HOPE configurations.
//!
//! The paper's claim: HOPE-compressed keys lower the FPR at the same
//! suffix configuration, because every stored bit carries more information.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig11_surf_fpr`

use hope_bench::{build_hope, load_dataset, paper_tree_configs, BenchConfig};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::Dataset;

fn main() {
    let cfg = BenchConfig::from_args();
    // Generate 2x keys: half loaded, half used as negative queries.
    let mut big = cfg.clone();
    big.keys *= 2;
    let all = load_dataset(Dataset::Email, &big);
    let (loaded, negatives) = all.split_at(all.len() / 2);
    let sample = cfg.sample(loaded);

    println!("# Figure 11: SuRF false positive rate, email point queries");
    println!("# loaded {} keys, {} negative queries", loaded.len(), negatives.len());
    println!("{:20} {:>12} {:>14}", "config", "SuRF_FPR_%", "SuRF-Real8_FPR_%");

    report("Uncompressed", None, loaded, negatives);
    for (scheme, limit, label) in paper_tree_configs() {
        let hope = build_hope(scheme, limit, &sample);
        report(&label, Some(hope), loaded, negatives);
    }
}

fn report(label: &str, hope: Option<hope::Hope>, loaded: &[Vec<u8>], negatives: &[Vec<u8>]) {
    let enc = |k: &[u8]| -> Vec<u8> {
        match &hope {
            Some(h) => h.encode(k).into_bytes(),
            None => k.to_vec(),
        }
    };
    let mut sorted: Vec<Vec<u8>> = loaded.iter().map(|k| enc(k)).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let base = Surf::build(&sorted, SuffixKind::None);
    let real = Surf::build(&sorted, SuffixKind::Real);

    let mut fp_base = 0usize;
    let mut fp_real = 0usize;
    let mut total = 0usize;
    let present: std::collections::HashSet<&[u8]> = loaded.iter().map(|k| k.as_slice()).collect();
    for q in negatives {
        if present.contains(q.as_slice()) {
            continue;
        }
        total += 1;
        let e = enc(q);
        fp_base += base.contains(&e) as usize;
        fp_real += real.contains(&e) as usize;
    }
    println!(
        "{:20} {:>12.2} {:>14.2}",
        label,
        fp_base as f64 / total as f64 * 100.0,
        fp_real as f64 / total as f64 * 100.0,
    );
}
