//! `fig19_telemetry` — the telemetry-layer acceptance bench: drive the
//! fig18 mixed-traffic distribution shift through the serving stack with
//! sampled tracing on, then audit the store's own telemetry against
//! ground truth the driver observed directly.
//!
//! Where `fig18_serving_slo` gates *performance* (tail latency under a
//! hot-swap), this binary gates *observability*: after the run, the
//! `TelemetrySnapshot` embedded in the `ServingReport` must tell the
//! same story as the `SwapReport`s the driver collected by calling
//! `HopeStore::maintain` itself. The gates:
//!
//! * **every swap is logged** — each `SwapReport` `(shard, old_epoch,
//!   new_epoch)` has a matching `swap_end` event, and the `swap_begin` /
//!   `swap_end` counts agree with `store.shard.{i}.rebuilds`;
//! * **epochs are monotone** — per shard, successive `swap_end` events
//!   step the epoch strictly upward from the built generation, and event
//!   sequence numbers are strictly increasing in the snapshot;
//! * **nothing was dropped** — `dropped_events == 0` and no
//!   `rebuild_failed` events at the default capacity;
//! * **sampled tracing fired** — with `trace_sample_every = 64` the
//!   `serving.trace.{probe,decode}` histograms are non-empty, and the
//!   codec counters (`store.codec.*`) account the encode traffic;
//! * **exporters round-trip** — the Prometheus text rendering carries the
//!   per-shard epoch gauges and trace series the JSON snapshot has.
//!
//! **Determinism**: unlike fig18, no `Maintainer` thread runs — the
//! driver calls `maintain()` itself after each phase's flush barrier, so
//! swaps happen at deterministic stream positions. The `DIGEST` lines
//! carry only per-phase op counts (a pure function of the seed) and the
//! boolean verdicts, so two `--quick` runs print byte-identical digests;
//! CI diffs them. (Event and swap *counts* stay out of the digest: the
//! reservoir re-sample that seeds a rebuilt dictionary depends on insert
//! arrival order, which can flip a borderline second swap.)
//!
//! The snapshot itself is written to `BENCH_telemetry.json` (`--out PATH`
//! overrides) wrapped in the usual bench envelope.
//!
//! Usage: `cargo run --release -p hope_bench --bin fig19_telemetry
//!         [-- --keys N --queries N --seed N --quick --out PATH]`

use std::collections::BTreeMap;
use std::sync::Arc;

use hope_bench::BenchConfig;
use hope_store::serving::{Request, Server, ServingConfig};
use hope_store::telemetry::{EventKind, TelemetrySnapshot};
use hope_store::{HopeStore, StoreConfig, SwapReport};
use hope_workloads::{MixedWorkload, StoreOp, TrafficSpec};

/// Every Nth request per worker runs the span-timed paths.
const TRACE_EVERY: u32 = 64;

/// Producer threads feeding the server (as in fig18).
const PRODUCERS: usize = 2;

const PHASE_NAMES: [&str; 3] = ["pre_shift", "shift", "post_shift"];

fn flag_value(cfg: &BenchConfig, flag: &str, default: &str) -> String {
    cfg.flags
        .iter()
        .position(|f| f == flag)
        .and_then(|i| cfg.flags.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

fn to_request(op: &StoreOp) -> Request {
    match op {
        StoreOp::Get(k) => Request::get(k.clone()),
        StoreOp::Insert(k, v) => Request::insert(k.clone(), *v),
        StoreOp::Scan(low, high, limit) => Request::scan(low.clone(), high.clone(), *limit),
    }
}

/// One named boolean verdict, printed diff-style on failure.
struct Check {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn check(name: &'static str, ok: bool, detail: String) -> Check {
    Check { name, ok, detail }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let out_path = flag_value(&cfg, "--out", "BENCH_telemetry.json");
    let ops = if cfg.quick { cfg.queries } else { cfg.queries.saturating_mul(20) };

    println!(
        "# fig19_telemetry: {} initial keys, {} ops, seed {}, trace 1/{}, {} mode",
        cfg.keys,
        ops,
        cfg.seed,
        TRACE_EVERY,
        if cfg.quick { "virtual-time (deterministic)" } else { "wall-clock" }
    );
    let workload = MixedWorkload::generate(cfg.keys, ops, TrafficSpec::default(), cfg.seed);
    let shift_end = (workload.shift_at + ops / 5).min(ops);
    let bounds = [(0, workload.shift_at), (workload.shift_at, shift_end), (shift_end, ops)];

    let store_cfg = StoreConfig { min_observed_bytes: 1024, ..StoreConfig::default() };
    let shards = store_cfg.shards;
    let pairs = workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64));
    let store = Arc::new(HopeStore::build(store_cfg, pairs).expect("store build"));
    let serving = ServingConfig {
        workers: 4,
        queue_capacity: 1024,
        batch: 64,
        phases: 3,
        virtual_time: cfg.quick,
        trace_sample_every: TRACE_EVERY,
        faults: None,
        admission: None,
    };
    let server = Server::start(Arc::clone(&store), serving).expect("server start");
    let streams = workload.split_across(PRODUCERS);

    // No Maintainer thread: swaps happen only at the deterministic
    // maintain() calls below, so the event audit has exact ground truth.
    let mut swaps: Vec<SwapReport> = Vec::new();
    let mut submitted = 0u64;
    for (phase, &(lo, hi)) in bounds.iter().enumerate() {
        std::thread::scope(|s| {
            for stream in &streams {
                let server = &server;
                s.spawn(move || {
                    let a = stream.partition_point(|(i, _)| *i < lo);
                    let b = stream.partition_point(|(i, _)| *i < hi);
                    for (_, op) in &stream[a..b] {
                        server.submit_detached(to_request(op), phase).expect("server open");
                    }
                });
            }
        });
        server.flush();
        submitted += (hi - lo) as u64;
        let (reports, errors) = store.maintain();
        assert!(errors.is_empty(), "maintenance rebuild errors: {errors:?}");
        println!("# phase {}: {} swap(s)", PHASE_NAMES[phase], reports.len());
        swaps.extend(reports);
    }
    let report = server.shutdown();
    let snap = &report.telemetry;

    // --- Audit the snapshot against driver-side ground truth. ----------
    let swap_ends: Vec<_> = snap.events_of(EventKind::SwapEnd).collect();
    let swap_begins = snap.events_of(EventKind::SwapBegin).count();
    let built = snap.events_of(EventKind::GenerationBuilt).count();
    let failed = snap.events_of(EventKind::RebuildFailed).count();

    let all_logged = swaps.iter().all(|r| {
        swap_ends.iter().any(|e| {
            e.shard as usize == r.shard && e.prev_epoch == r.old_epoch && e.epoch == r.new_epoch
        })
    });

    let rebuilds: u64 =
        (0..shards).map(|i| snap.counter(&format!("store.shard.{i}.rebuilds")).unwrap_or(0)).sum();
    let counts_agree = rebuilds == swaps.len() as u64
        && swap_begins == swaps.len()
        && swap_ends.len() == swaps.len();

    let seq_monotone = snap.events.windows(2).all(|w| w[0].seq < w[1].seq);
    // Per shard, successive swap_end events (in snapshot = seq order) must
    // chain: each steps the epoch strictly up from the previous swap's.
    let mut last_epoch: BTreeMap<u32, u64> = BTreeMap::new();
    let epochs_monotone = swap_ends.iter().all(|e| {
        let chained = match last_epoch.insert(e.shard, e.epoch) {
            Some(prev) => e.prev_epoch == prev,
            None => true,
        };
        chained && e.epoch > e.prev_epoch
    });

    let traced = snap.histogram("serving.trace.probe").map_or(0, |h| h.count)
        + snap.histogram("serving.trace.decode").map_or(0, |h| h.count);
    let encoded = snap.gauge("store.codec.fast_encode_keys").unwrap_or(0)
        + snap.gauge("store.codec.generic_encode_keys").unwrap_or(0);

    let prom = snap.to_prometheus();
    let prom_ok = prom.contains("# TYPE store_shard_0_epoch gauge")
        && prom.contains("serving_trace_probe_count")
        && prom.contains("# TYPE store_codec_fast_encode_keys gauge");

    let completed = report.total_ops();
    let errors: u64 = report.phases.iter().map(|p| p.errors).sum();
    let checks = [
        check(
            "exactly_once",
            completed == submitted && report.total_rejected() == 0 && errors == 0,
            format!(
                "completed {completed}/{submitted}, rejected {}, errors {errors}",
                report.total_rejected()
            ),
        ),
        check("swap_observed", !swaps.is_empty(), format!("{} swaps reported", swaps.len())),
        check(
            "all_swaps_logged",
            all_logged && counts_agree && failed == 0,
            format!(
                "{} reports vs {} swap_end / {} swap_begin events, rebuilds counter {}, {} failed",
                swaps.len(),
                swap_ends.len(),
                swap_begins,
                rebuilds,
                failed
            ),
        ),
        check(
            "epochs_monotone",
            epochs_monotone && seq_monotone,
            format!("{} swap_end events, seq_monotone={seq_monotone}", swap_ends.len()),
        ),
        check(
            "generation_built",
            built == shards,
            format!("{built} generation_built events for {shards} shards"),
        ),
        check(
            "no_drops",
            snap.dropped_events == 0,
            format!("{} events dropped", snap.dropped_events),
        ),
        check("trace_sampled", traced > 0, format!("{traced} spans recorded")),
        check("codec_counted", encoded > 0, format!("{encoded} keys encoded")),
        check("prometheus", prom_ok, format!("{} bytes rendered", prom.len())),
    ];
    let pass = checks.iter().all(|c| c.ok);

    println!(
        "\n# events: {} built, {} swap_begin, {} swap_end, {} failed, {} dropped",
        built,
        swap_begins,
        swap_ends.len(),
        failed,
        snap.dropped_events
    );
    println!(
        "# trace: {} probe spans, {} decode spans; codec: {} encoded keys",
        snap.histogram("serving.trace.probe").map_or(0, |h| h.count),
        snap.histogram("serving.trace.decode").map_or(0, |h| h.count),
        encoded
    );

    for (p, ph) in report.phases.iter().enumerate() {
        println!(
            "DIGEST phase={} ops={} gets={} inserts={} scans={} errors={}",
            PHASE_NAMES[p], ph.ops, ph.gets, ph.inserts, ph.scans, ph.errors
        );
    }
    let verdicts: Vec<String> = checks.iter().map(|c| format!("{}={}", c.name, c.ok)).collect();
    println!("DIGEST gates {} pass={pass}", verdicts.join(" "));

    write_json(&out_path, &cfg, ops, swaps.len(), pass, snap);
    println!("# wrote {out_path}");
    println!("# fig19_telemetry — {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        for c in checks.iter().filter(|c| !c.ok) {
            println!("- {}  (required)", c.name);
            println!("+ {}", c.detail);
        }
        std::process::exit(1);
    }
}

/// Hand-rolled JSON envelope embedding [`TelemetrySnapshot::to_json`]
/// (the workspace builds offline; no serde).
fn write_json(
    path: &str,
    cfg: &BenchConfig,
    ops: usize,
    swaps: usize,
    pass: bool,
    snap: &TelemetrySnapshot,
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fig19_telemetry\",\n  \"dataset\": \"email-mixed-traffic\",\n");
    s.push_str(&format!(
        "  \"keys\": {},\n  \"ops\": {},\n  \"seed\": {},\n",
        cfg.keys, ops, cfg.seed
    ));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!("  \"trace_sample_every\": {TRACE_EVERY},\n"));
    s.push_str(&format!("  \"swaps\": {swaps},\n"));
    s.push_str(&format!("  \"pass\": {pass},\n"));
    s.push_str("  \"telemetry\": ");
    // Indent the embedded snapshot to keep the envelope readable.
    let body = snap.to_json();
    s.push_str(body.trim_end());
    s.push_str("\n}\n");
    std::fs::write(path, s).expect("write BENCH_telemetry.json");
}
