//! Figure 17 (extension) — `hope_store` dictionary hot-swap under a
//! mid-run key-distribution shift.
//!
//! Picks up where Figure 15 (Appendix C) leaves off: instead of measuring
//! how much a *static* dictionary loses when the distribution drifts, this
//! harness drives the sharded store with live mixed traffic whose insert
//! population switches from Email-A (gmail/yahoo) to Email-B mid-run, lets
//! the store's maintenance pass detect the CPR degradation and hot-swap
//! per-shard dictionaries, and then checks two things:
//!
//! 1. **Correctness** — every point/range query agrees with an
//!    uncompressed shadow map replayed alongside, and concurrent reader
//!    threads hammering the loaded keys across the swap window observe no
//!    wrong answer.
//! 2. **Recovery** — after the swaps, the compression rate on the shifted
//!    key population is within 10% of a dictionary built *fresh* from that
//!    population (the acceptance bar for the swap machinery).
//!
//! Usage: `cargo run --release -p hope_bench --bin fig17_store_shift
//!         [-- --keys N --queries N --quick]`

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hope::stats;
use hope_bench::{build_hope, time, BenchConfig};
use hope_store::{HopeStore, StoreConfig};
use hope_workloads::{sample_keys, MixedWorkload, StoreOp, TrafficSpec};

fn main() {
    let cfg = BenchConfig::from_args();
    let spec = TrafficSpec::default();
    let workload = MixedWorkload::generate(cfg.keys, cfg.queries, spec, cfg.seed);
    println!("# Figure 17: hope_store dictionary hot-swap under distribution shift");
    println!(
        "# {} loaded Email-A keys, {} ops ({}% read / {}% insert / {}% scan), shift at op {}",
        workload.initial.len(),
        workload.ops.len(),
        spec.read_pct,
        spec.insert_pct,
        100 - spec.read_pct as usize - spec.insert_pct as usize,
        workload.shift_at
    );

    // Store + uncompressed shadow, loaded identically.
    let store_cfg = StoreConfig {
        // Judge drift on a window scaled to the insert volume so small
        // --quick runs still exercise the swap.
        min_observed_bytes: ((cfg.queries as u64) * 22 / 160).max(1024),
        ..StoreConfig::default()
    };
    let initial: Vec<(Vec<u8>, u64)> =
        workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();
    let (store, build_t) =
        time(|| HopeStore::build(store_cfg, initial.clone()).expect("store build"));
    let store = Arc::new(store);
    let mut shadow: BTreeMap<Vec<u8>, u64> = initial.into_iter().collect();
    println!("# store built in {build_t:?}; shard epochs {:?}", store.epochs());

    // Concurrent readers verify the loaded keys (whose values the
    // workload never touches) across every swap window.
    let stop = Arc::new(AtomicBool::new(false));
    let reader_checks = Arc::new(AtomicU64::new(0));
    let frozen: Arc<Vec<(Vec<u8>, u64)>> =
        Arc::new(workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)).collect());
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let (store, stop, frozen, checks) = (
                Arc::clone(&store),
                Arc::clone(&stop),
                Arc::clone(&frozen),
                Arc::clone(&reader_checks),
            );
            std::thread::spawn(move || {
                let mut i = t * 37;
                while !stop.load(Ordering::Relaxed) {
                    let (k, v) = &frozen[i % frozen.len()];
                    assert_eq!(
                        store.get(k).expect("valid key"),
                        Some(*v),
                        "reader saw a wrong point result"
                    );
                    if i % 16 == 0 {
                        // Zero-allocation visitor scan: hits are borrowed.
                        let mut ok = false;
                        let hits = store
                            .range_with(k, k, 2, |rk, rv| {
                                ok = rk == k.as_slice() && *rv == *v;
                            })
                            .expect("valid bounds");
                        assert!(hits == 1 && ok, "reader saw a wrong range for {k:?}");
                    }
                    checks.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    // Replay the traffic, verifying every result and running maintenance
    // periodically (as the background thread would).
    let maintain_every = (workload.ops.len() / 25).max(1);
    let mut swaps = Vec::new();
    let mut degraded_cpr: Option<f64> = None;
    let mut shifted_keys: Vec<Vec<u8>> = Vec::new();
    for (i, op) in workload.ops.iter().enumerate() {
        match op {
            StoreOp::Get(k) => {
                assert_eq!(
                    store.get(k).expect("valid key"),
                    shadow.get(k).copied(),
                    "point query diverged"
                );
            }
            StoreOp::Insert(k, v) => {
                if i >= workload.shift_at {
                    shifted_keys.push(k.clone());
                }
                let old = store.insert(k.clone(), *v).expect("valid key");
                assert_eq!(old, shadow.insert(k.clone(), *v), "insert result diverged");
            }
            StoreOp::Scan(low, high, limit) => {
                let mut got = Vec::new();
                store.range_into(low, high, *limit, &mut got).expect("valid bounds");
                let want: Vec<(Vec<u8>, u64)> = shadow
                    .range(low.clone()..=high.clone())
                    .take(*limit)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                assert_eq!(got, want, "range query diverged");
            }
        }
        if (i + 1) % maintain_every == 0 {
            // Remember the worst observed CPR before any swap fires.
            let worst =
                store.stats().iter().filter_map(|s| s.observed_cpr).fold(f64::INFINITY, f64::min);
            if worst.is_finite() {
                degraded_cpr = Some(degraded_cpr.map_or(worst, |d: f64| d.min(worst)));
            }
            let (reports, errors) = store.maintain();
            assert!(errors.is_empty(), "rebuild errors: {errors:?}");
            for r in &reports {
                // Losslessness across the swap: keys served by the fresh
                // generation round-trip through its batch decoder.
                let generation = store.generation(r.shard).expect("shard in range");
                let mut decode_scratch = hope::DecodeScratch::new();
                let fast_dec = generation.hope().fast_decoder();
                let sample: Vec<&Vec<u8>> = shadow
                    .keys()
                    .filter(|k| store.shard_of(k) == r.shard)
                    .step_by(97)
                    .take(32)
                    .collect();
                let encoded: Vec<hope::EncodedKey> =
                    sample.iter().map(|k| generation.hope().encode(k)).collect();
                let batch = fast_dec
                    .decode_batch_keys(&encoded, &mut decode_scratch)
                    .expect("swap produced an undecodable encoding");
                for (k, back) in sample.iter().zip(batch.iter()) {
                    assert_eq!(back, k.as_slice(), "swap broke encode→decode round-trip");
                }
                println!(
                    "# op {:>8}: shard {} swapped epoch {} -> {} (observed CPR {:.3} vs baseline {:.3}; {} keys re-encoded, {} writes replayed)",
                    i + 1,
                    r.shard,
                    r.old_epoch,
                    r.new_epoch,
                    r.observed_cpr.unwrap_or(0.0),
                    r.old_baseline_cpr,
                    r.live_keys,
                    r.replayed
                );
            }
            swaps.extend(reports);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread saw an incorrect result");
    }

    // Final verification sweep against the shadow.
    for (k, v) in shadow.iter().step_by(7) {
        assert_eq!(store.get(k).expect("valid key"), Some(*v), "post-run divergence");
    }
    println!(
        "# {} concurrent reader checks, {} swaps, final epochs {:?}",
        reader_checks.load(Ordering::Relaxed),
        swaps.len(),
        store.epochs()
    );
    assert!(!swaps.is_empty(), "the shift never triggered a dictionary swap");

    // Recovery: encode the shifted population under each shard's *live*
    // dictionary vs a dictionary built fresh from that population.
    let store_cfg = *store.config();
    let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); store_cfg.shards];
    for k in &shifted_keys {
        per_shard[store.shard_of(k)].push(k.clone());
    }
    let (mut src, mut enc) = (0u64, 0u64);
    for (s, keys) in per_shard.iter().enumerate() {
        if keys.is_empty() {
            continue;
        }
        let m = stats::measure(store.generation(s).expect("shard in range").hope(), keys);
        src += m.src_bytes;
        enc += m.enc_bytes;
    }
    let post_swap_cpr = src as f64 / enc as f64;
    let pct = ((5_000.0 / shifted_keys.len() as f64) * 100.0).clamp(1.0, 100.0);
    let fresh_sample = sample_keys(&shifted_keys, pct, cfg.seed ^ 0xF);
    let fresh = build_hope(store_cfg.scheme, store_cfg.dict_entries, &fresh_sample);
    let fresh_cpr = stats::measure(&fresh, &shifted_keys).cpr();

    println!("\n{:28} {:>10}", "dictionary", "CPR");
    if let Some(d) = degraded_cpr {
        println!("{:28} {:>10.3}", "pre-swap (degraded)", d);
    }
    println!("{:28} {:>10.3}", "post-swap (hot-swapped)", post_swap_cpr);
    println!("{:28} {:>10.3}", "fresh-built on shifted keys", fresh_cpr);
    let ratio = post_swap_cpr / fresh_cpr;
    println!("# post-swap / fresh-built = {ratio:.3} (acceptance: >= 0.9)");
    assert!(
        ratio >= 0.9,
        "post-swap CPR {post_swap_cpr:.3} not within 10% of fresh-built {fresh_cpr:.3}"
    );
    println!("# PASS: swap recovered compression within 10% of a fresh dictionary");
}
