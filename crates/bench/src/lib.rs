//! # hope_bench — the benchmark harness for every table and figure
//!
//! One binary per paper table/figure (see DESIGN.md for the full index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig08_microbench` | Fig 8 (CPR / latency / dictionary memory vs size) + Table 1 |
//! | `fig09_build_time` | Fig 9 (build-time breakdown) |
//! | `fig10_surf_ycsb` | Fig 10 (SuRF point/range/build/height) + §5 model |
//! | `fig11_surf_fpr` | Fig 11 (SuRF false-positive rate) |
//! | `fig12_tree_point` | Fig 12 (point query latency vs memory, 4 trees) |
//! | `fig13_sample_size` | Fig 13 / Appendix A (sample-size sensitivity) |
//! | `fig14_batch_encode` | Fig 14 / Appendix B (batch encoding) |
//! | `fig15_distribution_shift` | Fig 15 / Appendix C (key distribution change) |
//! | `fig16_tree_range_insert` | Fig 16 / Appendix D (range + insert, 4 trees) |
//! | `fig17_store_shift` | Extension: `hope_store` dictionary hot-swap under shift |
//! | `fig18_serving_slo` | Extension: thread-per-core serving harness SLOs → `BENCH_serving.json` |
//! | `fig19_telemetry` | Extension: telemetry registry / event-ring audit → `BENCH_telemetry.json` |
//! | `fig20_fault_slo` | Extension: fault-injection drill, bounded degradation → `BENCH_faults.json` |
//! | `fig21_adaptive_slo` | Extension: closed-loop adaptive admission drill → `BENCH_admission.json` |
//! | `fig22_snapshot_rebuild` | Extension: O(1) snapshots + incremental merge rebuild → `BENCH_snapshot.json` |
//!
//! Every binary accepts `--keys N`, `--queries N`, `--seed N` and
//! `--quick`; run with `cargo run --release -p hope_bench --bin <name>`.
//! The serving benches (fig18/20/21) share their traffic/server/report
//! setup through [`harness`].

#![warn(missing_docs)]

pub mod harness;

use std::time::{Duration, Instant};

use hope::{Hope, HopeBuilder, Scheme};
use hope_workloads::{generate, sample_keys, Dataset};

/// Command-line configuration shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of dataset keys to generate (paper: 14–25M; default scaled
    /// for laptop runs).
    pub keys: usize,
    /// Number of measured queries (paper: 10M).
    pub queries: usize,
    /// RNG seed for datasets and workloads.
    pub seed: u64,
    /// Quick mode: shrink everything for smoke runs.
    pub quick: bool,
    /// Extra mode flags (binary-specific, e.g. `--model`, `--table1`).
    pub flags: Vec<String>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { keys: 200_000, queries: 100_000, seed: 42, quick: false, flags: Vec::new() }
    }
}

impl BenchConfig {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let mut cfg = BenchConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--keys" => {
                    cfg.keys = args[i + 1].parse().expect("--keys N");
                    i += 1;
                }
                "--queries" => {
                    cfg.queries = args[i + 1].parse().expect("--queries N");
                    i += 1;
                }
                "--seed" => {
                    cfg.seed = args[i + 1].parse().expect("--seed N");
                    i += 1;
                }
                "--quick" => cfg.quick = true,
                other => cfg.flags.push(other.to_string()),
            }
            i += 1;
        }
        if cfg.quick {
            cfg.keys = cfg.keys.min(20_000);
            cfg.queries = cfg.queries.min(10_000);
        }
        cfg
    }

    /// True if a binary-specific flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The build-phase sample: 1% of the keys (paper default), floored at
    /// 5 000 so tiny runs still exercise the larger dictionaries.
    pub fn sample(&self, keys: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let pct = ((5_000.0 / keys.len() as f64) * 100.0).clamp(1.0, 100.0);
        sample_keys(keys, pct, self.seed ^ 0x5A3917)
    }
}

/// The six HOPE configurations §7 evaluates on every tree, with their
/// dictionary-size limits: Single-Char, Double-Char, 3-Grams (64K),
/// 4-Grams (64K), ALM-Improved (4K), ALM-Improved (64K).
pub fn paper_tree_configs() -> Vec<(Scheme, usize, String)> {
    vec![
        (Scheme::SingleChar, 256, "Single-Char".into()),
        (Scheme::DoubleChar, 65792, "Double-Char".into()),
        (Scheme::ThreeGrams, 1 << 16, "3-Grams (64K)".into()),
        (Scheme::FourGrams, 1 << 16, "4-Grams (64K)".into()),
        (Scheme::AlmImproved, 1 << 12, "ALM-Improved (4K)".into()),
        (Scheme::AlmImproved, 1 << 16, "ALM-Improved (64K)".into()),
    ]
}

/// Build a HOPE compressor for one configuration.
pub fn build_hope(scheme: Scheme, dict_limit: usize, sample: &[Vec<u8>]) -> Hope {
    HopeBuilder::new(scheme)
        .dictionary_entries(dict_limit)
        .build_from_sample(sample.iter().cloned())
        .expect("HOPE build")
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Nanoseconds per operation.
pub fn ns_per_op(d: Duration, ops: usize) -> f64 {
    if ops == 0 {
        return 0.0;
    }
    d.as_nanos() as f64 / ops as f64
}

/// Microseconds per operation.
pub fn us_per_op(d: Duration, ops: usize) -> f64 {
    ns_per_op(d, ops) / 1000.0
}

/// Bytes → MB.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Generate and return a dataset, reporting its statistics.
pub fn load_dataset(dataset: Dataset, cfg: &BenchConfig) -> Vec<Vec<u8>> {
    let (keys, d) = time(|| generate(dataset, cfg.keys, cfg.seed));
    let avg: f64 = keys.iter().map(|k| k.len()).sum::<usize>() as f64 / keys.len() as f64;
    eprintln!("# dataset {dataset}: {} keys, avg len {avg:.1} B, generated in {d:?}", keys.len());
    keys
}

/// Uniform façade over the four updatable trees of Figures 12/16.
pub enum AnyTree {
    /// Adaptive Radix Tree.
    Art(hope_art::Art),
    /// Height-optimized trie.
    Hot(hope_hot::Hot),
    /// Plain TLX-style B+tree.
    BTree(hope_btree::BPlusTree),
    /// Prefix B+tree.
    PrefixBTree(hope_btree::BPlusTree),
}

/// The four tree kinds of Figures 12/16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Adaptive Radix Tree.
    Art,
    /// Height-optimized trie.
    Hot,
    /// Plain B+tree.
    BTree,
    /// Prefix B+tree.
    PrefixBTree,
}

impl TreeKind {
    /// All four, in the paper's presentation order.
    pub const ALL: [TreeKind; 4] =
        [TreeKind::Art, TreeKind::Hot, TreeKind::BTree, TreeKind::PrefixBTree];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TreeKind::Art => "ART",
            TreeKind::Hot => "HOT",
            TreeKind::BTree => "B+tree",
            TreeKind::PrefixBTree => "Prefix B+tree",
        }
    }

    /// Fresh empty tree.
    pub fn new_tree(&self) -> AnyTree {
        match self {
            TreeKind::Art => AnyTree::Art(hope_art::Art::new()),
            TreeKind::Hot => AnyTree::Hot(hope_hot::Hot::new()),
            TreeKind::BTree => AnyTree::BTree(hope_btree::BPlusTree::plain()),
            TreeKind::PrefixBTree => AnyTree::PrefixBTree(hope_btree::BPlusTree::prefix()),
        }
    }
}

impl AnyTree {
    /// Insert a key/value pair.
    pub fn insert(&mut self, key: &[u8], value: u64) {
        match self {
            AnyTree::Art(t) => {
                t.insert(key, value);
            }
            AnyTree::Hot(t) => {
                t.insert(key, value);
            }
            AnyTree::BTree(t) | AnyTree::PrefixBTree(t) => {
                t.insert(key, value);
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        match self {
            AnyTree::Art(t) => t.get(key),
            AnyTree::Hot(t) => t.get(key),
            AnyTree::BTree(t) | AnyTree::PrefixBTree(t) => t.get(key),
        }
    }

    /// Range scan from `start` for up to `count` values.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<u64> {
        match self {
            AnyTree::Art(t) => t.scan(start, count),
            AnyTree::Hot(t) => t.scan(start, count),
            AnyTree::BTree(t) | AnyTree::PrefixBTree(t) => t.scan(start, count),
        }
    }

    /// Allocation-free scan: append up to `count` values to a reused
    /// buffer (the YCSB-E hot loop of `fig16` runs on this).
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<u64>) {
        match self {
            AnyTree::Art(t) => t.scan_into(start, count, out),
            AnyTree::Hot(t) => t.scan_into(start, count, out),
            AnyTree::BTree(t) | AnyTree::PrefixBTree(t) => t.scan_into(start, count, out),
        }
    }

    /// Index memory. For ART the leaf records stand in for the value
    /// pointers (8 B each) plus key bytes; HOT counts its partial-key
    /// compound nodes plus 8 B of value pointer per key (the record heap's
    /// full keys belong to the table, not the index) — matching how §7
    /// discusses the two.
    pub fn memory_bytes(&self) -> usize {
        match self {
            AnyTree::Art(t) => t.memory_bytes(),
            AnyTree::Hot(t) => t.index_memory_bytes() + t.len() * 8,
            AnyTree::BTree(t) | AnyTree::PrefixBTree(t) => t.memory_bytes(),
        }
    }
}

/// Encoded (or raw) key set for one tree configuration.
pub struct PreparedKeys {
    /// The (possibly compressed) key bytes, index-aligned with the input.
    pub keys: Vec<Vec<u8>>,
    /// HOPE compressor, when compression is enabled.
    pub hope: Option<Hope>,
}

impl PreparedKeys {
    /// Prepare raw keys (the "Uncompressed" baseline).
    pub fn raw(keys: &[Vec<u8>]) -> Self {
        PreparedKeys { keys: keys.to_vec(), hope: None }
    }

    /// Prepare HOPE-encoded keys.
    pub fn encoded(hope: Hope, keys: &[Vec<u8>]) -> Self {
        let enc = keys.iter().map(|k| hope.encode(k).into_bytes()).collect();
        PreparedKeys { keys: enc, hope: Some(hope) }
    }

    /// Encode one query key (identity when uncompressed).
    #[inline]
    pub fn encode_query(&self, key: &[u8]) -> Vec<u8> {
        match &self.hope {
            Some(h) => h.encode(key).into_bytes(),
            None => key.to_vec(),
        }
    }

    /// Allocation-free query encoding: returns the encoded bytes from the
    /// scratch buffer, or the key itself when uncompressed. Compressed
    /// keys take the scheme's fast path (fused table or automaton).
    #[inline]
    pub fn encode_query_scratch<'a>(
        &self,
        key: &'a [u8],
        scratch: &'a mut QueryScratch,
    ) -> &'a [u8] {
        match &self.hope {
            Some(h) => h.encode_to(key, &mut scratch.0).expect("bench keys within MAX_KEY_BYTES"),
            None => key,
        }
    }

    /// Dictionary memory attributable to HOPE (0 when uncompressed).
    pub fn dict_memory(&self) -> usize {
        self.hope.as_ref().map_or(0, |h| h.dict_memory_bytes())
    }
}

/// Reusable buffers for [`PreparedKeys::encode_query_scratch`] — a thin
/// wrapper over the core [`hope::EncodeScratch`].
#[derive(Debug, Default)]
pub struct QueryScratch(hope::EncodeScratch);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let cfg = BenchConfig::default();
        assert_eq!(cfg.keys, 200_000);
        assert!(!cfg.quick);
    }

    #[test]
    fn tree_facade_round_trips() {
        for kind in TreeKind::ALL {
            let mut t = kind.new_tree();
            t.insert(b"alpha", 1);
            t.insert(b"beta", 2);
            assert_eq!(t.get(b"alpha"), Some(1), "{}", kind.name());
            assert_eq!(t.get(b"gamma"), None);
            assert_eq!(t.scan(b"alpha", 2), vec![1, 2]);
            assert!(t.memory_bytes() > 0);
        }
    }

    #[test]
    fn prepared_keys_encode_consistently() {
        let keys: Vec<Vec<u8>> = (0..500).map(|i| format!("user{i:05}").into_bytes()).collect();
        let hope = build_hope(Scheme::DoubleChar, 65792, &keys);
        let prepared = PreparedKeys::encoded(hope, &keys);
        assert_eq!(prepared.encode_query(&keys[7]), prepared.keys[7]);
        assert!(prepared.dict_memory() > 0);
    }

    #[test]
    fn paper_configs_are_six() {
        assert_eq!(paper_tree_configs().len(), 6);
    }
}
