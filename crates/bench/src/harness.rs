//! Shared setup for the serving-pipeline acceptance benches
//! (`fig18_serving_slo`, `fig20_fault_slo`, `fig21_adaptive_slo`).
//!
//! All three drive the same shape — the mixed-shift traffic stream
//! through a thread-per-core [`Server`](hope_store::serving::Server)
//! over a sharded [`HopeStore`],
//! measured in three phases around the Email-A → Email-B shift — and
//! before this module each binary carried its own copy of the setup.
//! One code path now builds the store, the serving config, the phase
//! windows and the common report/JSON fragments; the binaries keep only
//! what actually differs (fault plans, controllers, gates).

use std::sync::Arc;

use hope_store::serving::{Request, ServingConfig, ServingReport};
use hope_store::{HopeStore, StoreConfig};
use hope_workloads::{MixedWorkload, StoreOp};

use crate::BenchConfig;

/// The three measured traffic phases, in driver order.
pub const PHASE_NAMES: [&str; 3] = ["pre_shift", "shift", "post_shift"];

/// Worker threads every serving bench runs with.
pub const SERVING_WORKERS: usize = 4;

/// Per-worker queue budget of the serving benches.
pub const SERVING_QUEUE_CAPACITY: usize = 1024;

/// Batch size of the serving benches.
pub const SERVING_BATCH: usize = 64;

/// A binary-specific `--flag VALUE` lookup over the leftover flags
/// [`BenchConfig::from_args`] collected (e.g. `--out PATH`).
pub fn flag_value(cfg: &BenchConfig, flag: &str, default: &str) -> String {
    cfg.flags
        .iter()
        .position(|f| f == flag)
        .and_then(|i| cfg.flags.get(i + 1).cloned())
        .unwrap_or_else(|| default.to_string())
}

/// Convert one workload op into a serving request.
pub fn to_request(op: &StoreOp) -> Request {
    match op {
        StoreOp::Get(k) => Request::get(k.clone()),
        StoreOp::Insert(k, v) => Request::insert(k.clone(), *v),
        StoreOp::Scan(low, high, limit) => Request::scan(low.clone(), high.clone(), *limit),
    }
}

/// Phase windows over the global op index: pre-shift, then the 20% of
/// the run right after the generator's shift point, then the rest.
pub fn phase_bounds(workload: &MixedWorkload) -> [(usize, usize); 3] {
    let ops = workload.ops.len();
    let shift_end = (workload.shift_at + ops / 5).min(ops);
    [(0, workload.shift_at), (workload.shift_at, shift_end), (shift_end, ops)]
}

/// Build the store every serving bench starts from: the workload's
/// initial keys, a drift threshold low enough that quick runs still
/// trigger detection, and an event ring deep enough that attribution
/// gates can count events without overflow.
pub fn build_serving_store(workload: &MixedWorkload) -> Arc<HopeStore> {
    let store_cfg =
        StoreConfig { min_observed_bytes: 1024, event_capacity: 4096, ..StoreConfig::default() };
    let pairs = workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64));
    Arc::new(HopeStore::build(store_cfg, pairs).expect("store build"))
}

/// The serving config every serving bench runs: 4 workers, bounded
/// queues, three measured phases, virtual time in quick mode.
pub fn serving_config(quick: bool) -> ServingConfig {
    ServingConfig {
        workers: SERVING_WORKERS,
        queue_capacity: SERVING_QUEUE_CAPACITY,
        batch: SERVING_BATCH,
        phases: 3,
        virtual_time: quick,
        ..ServingConfig::default()
    }
}

/// The common head of every serving-bench JSON report (hand-rolled; the
/// workspace builds offline, no serde).
pub fn json_head(s: &mut String, bench: &str, cfg: &BenchConfig, ops: usize) {
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"{bench}\",\n  \"dataset\": \"email-mixed-traffic\",\n"));
    s.push_str(&format!(
        "  \"keys\": {},\n  \"ops\": {},\n  \"seed\": {},\n  \"quick\": {},\n",
        cfg.keys, ops, cfg.seed, cfg.quick
    ));
}

/// One phase's JSON object for a report's `"phases"` array.
pub fn json_phase(s: &mut String, report: &ServingReport, p: usize, ops_per_sec: f64, last: bool) {
    let ph = &report.phases[p];
    let (p50, p99, p999) = ph.latency.slo_points();
    s.push_str(&format!(
        "    {{\"phase\": \"{}\", \"ops\": {}, \"gets\": {}, \"inserts\": {}, \
         \"scans\": {}, \"scan_hits\": {}, \"errors\": {}, \"p50_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}, \
         \"ops_per_sec\": {:.0}}}{}\n",
        PHASE_NAMES[p],
        ph.ops,
        ph.gets,
        ph.inserts,
        ph.scans,
        ph.scan_hits,
        ph.errors,
        p50,
        p99,
        p999,
        ph.latency.mean_ns(),
        ph.latency.max_ns(),
        ops_per_sec,
        if last { "" } else { "," },
    ));
}

/// Per-phase throughput: virtual (busiest-worker service time) in quick
/// mode, wall-clock otherwise.
pub fn phase_ops_per_sec(report: &ServingReport, p: usize, wall_ns: &[u64; 3]) -> f64 {
    if report.virtual_time {
        report.phases[p].virtual_ops_per_sec()
    } else {
        report.phases[p].ops as f64 * 1e9 / wall_ns[p].max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_workloads::TrafficSpec;

    #[test]
    fn phase_bounds_cover_the_stream_exactly_once() {
        let w = MixedWorkload::generate(500, 2_000, TrafficSpec::default(), 7);
        let b = phase_bounds(&w);
        assert_eq!(b[0].0, 0);
        assert_eq!(b[0].1, b[1].0);
        assert_eq!(b[1].1, b[2].0);
        assert_eq!(b[2].1, w.ops.len());
        assert_eq!(b[1].0, w.shift_at);
    }

    #[test]
    fn flag_value_falls_back_to_the_default() {
        let mut cfg = BenchConfig::default();
        assert_eq!(flag_value(&cfg, "--out", "X.json"), "X.json");
        cfg.flags = vec!["--out".into(), "Y.json".into()];
        assert_eq!(flag_value(&cfg, "--out", "X.json"), "Y.json");
    }

    #[test]
    fn serving_config_matches_the_published_shape() {
        let c = serving_config(true);
        assert_eq!((c.workers, c.queue_capacity, c.batch, c.phases), (4, 1024, 64, 3));
        assert!(c.virtual_time);
        assert!(c.faults.is_none() && c.admission.is_none());
        assert!(!serving_config(false).virtual_time);
    }
}
