//! Criterion bench: dictionary lookup structures — the §4.2 ablation.
//! The paper reports the bitmap-trie is ~2.3× faster than binary search;
//! this bench compares bitmap-trie and ART-based dictionaries against the
//! sorted-array baseline on identical 3-gram intervals.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hope::axis::IntervalSet;
use hope::code_assign::CodeAssigner;
use hope::dict::{ArtDict, BitmapTrieDict, DictLookup, SortedDict};
use hope::selector::{self, Scheme};
use hope_workloads::{generate, sample_keys, Dataset};

fn bench_dicts(c: &mut Criterion) {
    let keys = generate(Dataset::Email, 20_000, 7);
    let sample = sample_keys(&keys, 25.0, 2);
    let set: IntervalSet =
        selector::select_intervals(Scheme::ThreeGrams, &sample, 1 << 14).expect("valid intervals");
    let weights = selector::access_weights(&set, &sample);
    let codes = CodeAssigner::HuTucker.assign(&weights);

    let sorted = SortedDict::build(&set, &codes);
    let bitmap = BitmapTrieDict::build(&set, &codes);
    let art = ArtDict::build(&set, &codes);

    // Probe stream: walk the encode loop over real keys.
    let probes: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

    let mut group = c.benchmark_group("dict_lookup_3grams");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("sorted_binary_search", |b| b.iter(|| run_encode_loop(&sorted, &probes)));
    group.bench_function("bitmap_trie", |b| b.iter(|| run_encode_loop(&bitmap, &probes)));
    group.bench_function("art_based", |b| b.iter(|| run_encode_loop(&art, &probes)));
    group.finish();
}

fn run_encode_loop<D: DictLookup>(dict: &D, probes: &[&[u8]]) -> u64 {
    let mut acc = 0u64;
    for &p in probes {
        let mut rest = p;
        while !rest.is_empty() {
            let (code, consumed) = dict.lookup(std::hint::black_box(rest));
            acc = acc.wrapping_add(code.bits);
            rest = &rest[consumed..];
        }
    }
    acc
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dicts
}
criterion_main!(benches);
