//! Criterion bench: per-key encode latency for each scheme (the hot path
//! behind Figure 8 row 2 and every tree query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hope::Scheme;
use hope_bench::build_hope;
use hope_workloads::{generate, sample_keys, Dataset};

fn bench_encode(c: &mut Criterion) {
    let keys = generate(Dataset::Email, 20_000, 42);
    let sample = sample_keys(&keys, 25.0, 1);
    let chars: usize = keys.iter().map(|k| k.len()).sum();

    let mut group = c.benchmark_group("encode_email");
    group.throughput(Throughput::Bytes(chars as u64));
    for scheme in Scheme::ALL {
        let hope = build_hope(scheme, 1 << 14, &sample);
        group.bench_function(BenchmarkId::from_parameter(scheme.name()), |b| {
            b.iter(|| {
                let mut bits = 0usize;
                for k in &keys {
                    bits += hope.encode(std::hint::black_box(k)).bit_len();
                }
                bits
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encode
}
criterion_main!(benches);
