//! Criterion bench: `hope_store` serving paths — point gets, inserts,
//! bounded range scans (1 vs 4 shards, B+tree vs ART backends) and the
//! full dictionary rebuild + hot-swap of one shard.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hope_store::{Backend, HopeStore, StoreConfig};
use hope_workloads::{generate, Dataset};

const KEYS: usize = 20_000;

fn cfg(shards: usize, backend: Backend) -> StoreConfig {
    StoreConfig { shards, backend, ..StoreConfig::default() }
}

fn build_store(shards: usize, backend: Backend, keys: &[Vec<u8>]) -> HopeStore {
    let pairs = keys.iter().enumerate().map(|(i, k)| (k.clone(), i as u64));
    HopeStore::build(cfg(shards, backend), pairs).expect("store build")
}

fn bench_store(c: &mut Criterion) {
    let keys = generate(Dataset::Email, KEYS, 42);
    let probe: Vec<&Vec<u8>> = keys.iter().step_by(7).collect();

    let mut group = c.benchmark_group("store_get");
    group.throughput(Throughput::Elements(probe.len() as u64));
    for (label, shards, backend) in [
        ("btree_1shard", 1, Backend::BTree),
        ("btree_4shard", 4, Backend::BTree),
        ("art_4shard", 4, Backend::Art),
    ] {
        let store = build_store(shards, backend, &keys);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for k in &probe {
                    hits += store.get(k).expect("valid key").is_some() as u64;
                }
                black_box(hits)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("store_range_limit20");
    group.throughput(Throughput::Elements(probe.len() as u64));
    for (label, shards) in [("btree_1shard", 1), ("btree_4shard", 4)] {
        let store = build_store(shards, Backend::BTree, &keys);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for k in &probe {
                    total += store
                        .range_with(k, &[k.as_slice(), b"\xff"].concat(), 20, |_, _| {})
                        .expect("valid bounds");
                }
                black_box(total)
            })
        });
    }
    group.finish();

    // The same scans through the pull cursor (lending next_hit loop).
    let mut group = c.benchmark_group("store_cursor_limit20");
    group.throughput(Throughput::Elements(probe.len() as u64));
    let store = build_store(4, Backend::BTree, &keys);
    group.bench_function("btree_4shard_pull", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in &probe {
                let mut cur =
                    store.cursor(k, &[k.as_slice(), b"\xff"].concat(), 20).expect("valid bounds");
                while cur.next_hit().is_some() {
                    total += 1;
                }
            }
            black_box(total)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("store_insert");
    let fresh = generate(Dataset::Email, KEYS * 2, 7);
    group.throughput(Throughput::Elements(KEYS as u64));
    group.bench_function("btree_4shard", |b| {
        b.iter(|| {
            let store = build_store(4, Backend::BTree, &keys);
            for (i, k) in fresh[KEYS..].iter().enumerate() {
                store.insert(k.clone(), i as u64).expect("valid key");
            }
            black_box(store.len())
        })
    });
    group.finish();

    // The headline maintenance cost: rebuild one shard's dictionary from
    // its reservoir and hot-swap the re-encoded generation in.
    let mut group = c.benchmark_group("store_hot_swap");
    group.sample_size(10);
    let store = build_store(4, Backend::BTree, &keys);
    group.bench_function("rebuild_one_shard_5k_keys", |b| {
        b.iter(|| black_box(store.force_rebuild(0).expect("rebuild")))
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
