//! Criterion bench: Hu-Tucker (Garsia–Wachs) code construction across
//! dictionary sizes — the Code Assigner stage of Figure 9 — plus the
//! Range-Encoding alternative §4.2 mentions (faster to assign, worse
//! expected code length; the printed comparison quantifies the trade).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope::code_assign::{expected_code_length, range_encoding_codes};
use hope::hu_tucker::hu_tucker_codes;

fn weights_of(n: usize) -> Vec<u64> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 10 < 8 {
                1
            } else {
                x % 100_000 + 1
            }
        })
        .collect()
}

fn bench_hu_tucker(c: &mut Criterion) {
    let mut group = c.benchmark_group("hu_tucker");
    for exp in [8u32, 12, 16] {
        let weights = weights_of(1usize << exp);
        group.bench_function(BenchmarkId::from_parameter(format!("2^{exp}")), |b| {
            b.iter(|| hu_tucker_codes(std::hint::black_box(&weights)))
        });
        group.bench_function(BenchmarkId::new("range_encoding", format!("2^{exp}")), |b| {
            b.iter(|| range_encoding_codes(std::hint::black_box(&weights)))
        });
    }
    group.finish();

    // Ablation summary (§4.2): expected code length of the two assigners.
    let weights = weights_of(1 << 12);
    let ht = expected_code_length(&weights, &hu_tucker_codes(&weights));
    let re = expected_code_length(&weights, &range_encoding_codes(&weights));
    eprintln!("# code-length ablation (2^12 weights): Hu-Tucker {ht:.3} bits/symbol, Range Encoding {re:.3} bits/symbol");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hu_tucker
}
criterion_main!(benches);
