//! Criterion bench: point-query hot paths of the four updatable trees plus
//! SuRF, on raw vs Double-Char-compressed email keys (the core comparison
//! behind Figures 10 and 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hope::Scheme;
use hope_bench::{build_hope, PreparedKeys, TreeKind};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::{generate, sample_keys, Dataset};

fn bench_trees(c: &mut Criterion) {
    let keys = generate(Dataset::Email, 20_000, 11);
    let sample = sample_keys(&keys, 25.0, 3);
    let hope = build_hope(Scheme::DoubleChar, 65792, &sample);

    let raw = PreparedKeys::raw(&keys);
    let enc = PreparedKeys::encoded(hope, &keys);

    for (label, prep) in [("raw", &raw), ("double-char", &enc)] {
        let mut group = c.benchmark_group(format!("point_query_{label}"));
        group.throughput(Throughput::Elements(keys.len() as u64));
        for kind in TreeKind::ALL {
            let mut tree = kind.new_tree();
            for (i, k) in prep.keys.iter().enumerate() {
                tree.insert(k, i as u64);
            }
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for (i, k) in keys.iter().enumerate() {
                        let q = prep.encode_query(std::hint::black_box(k));
                        hits += (tree.get(&q) == Some(i as u64)) as usize;
                    }
                    hits
                })
            });
        }
        // SuRF point queries on the same keys.
        let mut sorted = prep.keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let surf = Surf::build(&sorted, SuffixKind::Real);
        group.bench_function(BenchmarkId::from_parameter("SuRF"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in &keys {
                    let q = prep.encode_query(std::hint::black_box(k));
                    hits += surf.contains(&q) as usize;
                }
                hits
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trees
}
criterion_main!(benches);
