//! Succinct bit vector with rank/select support — the substrate under
//! SuRF's LOUDS encodings.
//!
//! Layout: raw bits in 64-bit words plus a cumulative rank count per
//! 512-bit block (one u32 per 8 words). `rank1` is O(1) block lookup +
//! popcounts; `select1` binary-searches the block counts then scans one
//! block, O(log n) with a tiny constant — plenty for the tree heights
//! involved here.

/// Append-only bit vector builder.
#[derive(Debug, Default, Clone)]
pub struct BitVecBuilder {
    words: Vec<u64>,
    len: usize,
}

impl BitVecBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of bits pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freeze into a rank/select-capable vector.
    pub fn build(self) -> BitVec {
        let blocks = self.words.len().div_ceil(WORDS_PER_BLOCK) + 1;
        let mut block_rank = Vec::with_capacity(blocks);
        let mut acc = 0u32;
        for chunk in self.words.chunks(WORDS_PER_BLOCK) {
            block_rank.push(acc);
            acc += chunk.iter().map(|w| w.count_ones()).sum::<u32>();
        }
        block_rank.push(acc);
        BitVec { words: self.words, len: self.len, block_rank, ones: acc as usize }
    }
}

const WORDS_PER_BLOCK: usize = 8; // 512 bits

/// Immutable bit vector with O(1) rank and O(log n) select.
#[derive(Debug, Clone)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
    /// Cumulative number of ones before each 512-bit block (one sentinel at
    /// the end holding the total).
    block_rank: Vec<u32>,
    ones: usize,
}

impl BitVec {
    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Bit at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits strictly before position `i` (i may equal len).
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let block = i / 512;
        let mut r = self.block_rank[block] as usize;
        let word_end = i / 64;
        for w in (block * WORDS_PER_BLOCK)..word_end {
            r += self.words[w].count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 {
            r += (self.words[word_end] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of zero bits strictly before position `i`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th set bit (0-based): `select1(0)` is the first
    /// set bit. Returns `None` if fewer than `k+1` bits are set.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.ones {
            return None;
        }
        // Binary search the block whose cumulative rank covers k.
        let mut lo = 0usize;
        let mut hi = self.block_rank.len() - 1;
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if (self.block_rank[mid] as usize) <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = k - self.block_rank[lo] as usize;
        let word_start = lo * WORDS_PER_BLOCK;
        for w in word_start..self.words.len() {
            let ones = self.words[w].count_ones() as usize;
            if remaining < ones {
                return Some(w * 64 + select_in_word(self.words[w], remaining));
            }
            remaining -= ones;
        }
        None
    }

    /// Heap bytes used (words + rank directory).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + self.block_rank.len() * 4
    }
}

/// Position of the `k`-th (0-based) set bit within a word.
#[inline]
fn select_in_word(mut w: u64, mut k: usize) -> usize {
    let mut pos = 0;
    loop {
        let tz = w.trailing_zeros() as usize;
        pos += tz;
        w >>= tz;
        if k == 0 {
            return pos;
        }
        k -= 1;
        w &= !1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn from_bits(bits: &[bool]) -> BitVec {
        let mut b = BitVecBuilder::new();
        for &bit in bits {
            b.push(bit);
        }
        b.build()
    }

    #[test]
    fn empty_vector() {
        let v = BitVecBuilder::new().build();
        assert_eq!(v.len(), 0);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.rank1(0), 0);
        assert_eq!(v.select1(0), None);
    }

    #[test]
    fn small_known_values() {
        let v = from_bits(&[true, false, true, true, false]);
        assert_eq!(v.count_ones(), 3);
        assert!(v.get(0) && !v.get(1) && v.get(2));
        assert_eq!(v.rank1(0), 0);
        assert_eq!(v.rank1(3), 2);
        assert_eq!(v.rank1(5), 3);
        assert_eq!(v.rank0(5), 2);
        assert_eq!(v.select1(0), Some(0));
        assert_eq!(v.select1(1), Some(2));
        assert_eq!(v.select1(2), Some(3));
        assert_eq!(v.select1(3), None);
    }

    #[test]
    fn crosses_block_boundaries() {
        // 1300 bits: every 7th set.
        let bits: Vec<bool> = (0..1300).map(|i| i % 7 == 0).collect();
        let v = from_bits(&bits);
        let expect_ones = (0..1300).filter(|i| i % 7 == 0).count();
        assert_eq!(v.count_ones(), expect_ones);
        for i in (0..=1300).step_by(13) {
            let want = bits[..i].iter().filter(|&&b| b).count();
            assert_eq!(v.rank1(i), want, "rank at {i}");
        }
        for k in 0..expect_ones {
            assert_eq!(v.select1(k), Some(k * 7), "select {k}");
        }
    }

    proptest! {
        #[test]
        fn rank_select_agree_with_naive(bits in proptest::collection::vec(any::<bool>(), 0..2000)) {
            let v = from_bits(&bits);
            let mut ones = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(v.rank1(i), ones);
                if b {
                    prop_assert_eq!(v.select1(ones), Some(i));
                    ones += 1;
                }
            }
            prop_assert_eq!(v.rank1(bits.len()), ones);
            prop_assert_eq!(v.select1(ones), None);
        }

        #[test]
        fn select_is_inverse_of_rank(bits in proptest::collection::vec(any::<bool>(), 1..1500)) {
            let v = from_bits(&bits);
            for k in 0..v.count_ones() {
                let p = v.select1(k).unwrap();
                prop_assert!(v.get(p));
                prop_assert_eq!(v.rank1(p), k);
            }
        }
    }
}
