//! # hope-surf — Succinct Range Filter substrate
//!
//! A from-scratch implementation of SuRF (Zhang et al., SIGMOD 2018), one
//! of the five search trees the HOPE paper evaluates on. SuRF answers
//! approximate membership queries — point and range — from a succinct
//! (≈10 bits/node) LOUDS-encoded trie over keys truncated at their
//! distinguishing byte.
//!
//! ```
//! use hope_surf::{Surf, SuffixKind};
//!
//! let mut keys: Vec<&[u8]> = vec![b"com.gmail@alice", b"com.gmail@bob", b"org.acm@carol"];
//! keys.sort();
//! let filter = Surf::build(&keys, SuffixKind::Real);
//! assert!(filter.contains(b"com.gmail@alice"));
//! assert!(!filter.contains(b"com.hotmail@mallory"));
//! assert!(filter.range_may_contain(b"com.gmail@a", b"com.gmail@z"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bitvec;
mod surf;

pub use surf::{SuffixKind, Surf, SurfIter};
