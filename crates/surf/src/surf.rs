//! SuRF: the Succinct Range Filter (Zhang et al., SIGMOD 2018) — the
//! trie-based approximate-membership substrate HOPE is evaluated on.
//!
//! Keys are truncated at their distinguishing byte and stored in a
//! LOUDS-Sparse succinct trie: per label position a byte, a terminator
//! flag (for keys that are prefixes of other keys), a has-child flag, and a
//! LOUDS node-boundary flag — about 10 bits per trie node plus optional
//! per-leaf suffix bits that trade memory for false-positive rate:
//!
//! * [`SuffixKind::None`] — SuRF-Base;
//! * [`SuffixKind::Hash`] — SuRF-Hash: 8 key-hash bits, point-query FPR ↓;
//! * [`SuffixKind::Real`] — SuRF-Real: the next 8 real key bits, helping
//!   both point and range queries (the paper's Figure 11 configuration).
//!
//! The original splits top levels into LOUDS-Dense for speed; this
//! reproduction uses LOUDS-Sparse throughout (same trie shape, same height,
//! slightly different constant factors — see DESIGN.md).
//!
//! The filter contract is one-sided: a `false` answer is definite, a
//! `true` answer may be a false positive whose rate the suffix bits
//! bound. Combined with HOPE, the keys fed to [`Surf::build`] are the
//! *encoded* padded bytes — order preservation keeps range queries valid.
//!
//! ```
//! use hope_surf::{SuffixKind, Surf};
//!
//! // Keys must be sorted and distinct.
//! let keys: Vec<&[u8]> = vec![b"bat", b"cat", b"catalog", b"dog"];
//! let filter = Surf::build(&keys, SuffixKind::Real);
//!
//! // Point membership: no false negatives, definite rejections.
//! assert!(filter.contains(b"catalog"));
//! assert!(!filter.contains(b"zebra"));
//!
//! // Range emptiness: may the filter contain a key in [low, high]?
//! assert!(filter.range_may_contain(b"car", b"caz"));
//! assert!(!filter.range_may_contain(b"dz", b"zz"));
//!
//! // The truncated-key cursor behind range queries.
//! let cursor = filter.seek(b"cab").expect("keys above cab exist");
//! assert_eq!(cursor.key(), b"cat");
//! ```

use crate::bitvec::{BitVec, BitVecBuilder};

/// Per-leaf suffix variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuffixKind {
    /// No suffix bits (SuRF-Base).
    None,
    /// 8 hash bits of the full key (SuRF-Hash8).
    Hash,
    /// The 8 real key bits following the truncation point (SuRF-Real8).
    Real,
}

/// The succinct range filter.
#[derive(Debug)]
pub struct Surf {
    labels: Vec<u8>,
    terms: BitVec,
    has_child: BitVec,
    louds: BitVec,
    suffix_kind: SuffixKind,
    suffixes: Vec<u8>,
    num_keys: usize,
    /// Sum of leaf depths (for the average-height metric of Figure 10).
    depth_sum: u64,
}

#[inline]
fn hash8(key: &[u8]) -> u8 {
    // FNV-1a, folded to 8 bits.
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u8
}

impl Surf {
    /// Build from **sorted, distinct** keys.
    ///
    /// Each key is stored truncated at its distinguishing byte (one past
    /// the longer of its neighbour LCPs), plus the per-leaf suffix
    /// `suffix_kind` asks for; memory is ~10 bits per trie node.
    ///
    /// ```
    /// use hope_surf::{SuffixKind, Surf};
    ///
    /// let keys: Vec<&[u8]> = vec![b"far", b"fast", b"top"];
    /// let f = Surf::build(&keys, SuffixKind::None);
    /// assert_eq!(f.num_keys(), 3);
    /// assert!(f.avg_height() <= 4.0);     // truncation keeps the trie shallow
    /// assert!(f.memory_bytes() > 0);
    /// ```
    ///
    /// # Panics
    /// Panics (debug) if keys are unsorted or duplicated.
    pub fn build<K: AsRef<[u8]>>(keys: &[K], suffix_kind: SuffixKind) -> Self {
        let n = keys.len();
        debug_assert!(
            keys.windows(2).all(|w| w[0].as_ref() < w[1].as_ref()),
            "keys must be sorted and distinct"
        );
        // Distinguishing depth of each key: one byte past the longer lcp
        // with its neighbours, capped at the key length (term = the key is a
        // prefix of a neighbour and ends at an inner node).
        let lcp = |a: &[u8], b: &[u8]| a.iter().zip(b).take_while(|(x, y)| x == y).count();
        let mut depth = vec![0usize; n];
        let mut term = vec![false; n];
        for i in 0..n {
            let key = keys[i].as_ref();
            let mut m = 0;
            if i > 0 {
                m = m.max(lcp(key, keys[i - 1].as_ref()));
            }
            if i + 1 < n {
                m = m.max(lcp(key, keys[i + 1].as_ref()));
            }
            if m >= key.len() {
                depth[i] = key.len();
                term[i] = true;
            } else {
                depth[i] = m + 1;
            }
        }
        // Label-sequence length of key i (terminator counts as one label).
        let llen = |i: usize| depth[i] + term[i] as usize;

        let mut labels = Vec::new();
        let mut terms = BitVecBuilder::new();
        let mut has_child = BitVecBuilder::new();
        let mut louds = BitVecBuilder::new();
        let mut suffixes = Vec::new();
        let mut depth_sum = 0u64;

        // BFS over (key range, label depth): every key in the range shares
        // its first `d` labels and has more than `d` labels.
        use std::collections::VecDeque;
        let mut queue: VecDeque<(usize, usize, usize)> = VecDeque::new();
        if n > 0 {
            queue.push_back((0, n, 0));
        }
        while let Some((lo, hi, d)) = queue.pop_front() {
            let mut first_in_node = true;
            let mut i = lo;
            while i < hi {
                let ki = keys[i].as_ref();
                let is_term = term[i] && depth[i] == d;
                let (label, is_leaf, j) = if is_term {
                    // Terminator label: always a singleton, always a leaf.
                    (0u8, true, i + 1)
                } else {
                    let c = ki[d];
                    let mut j = i + 1;
                    while j < hi {
                        let kj = keys[j].as_ref();
                        let ends_here = term[j] && depth[j] == d;
                        if ends_here || kj[d] != c {
                            break;
                        }
                        j += 1;
                    }
                    (c, j - i == 1 && llen(i) == d + 1, j)
                };
                labels.push(label);
                terms.push(is_term);
                louds.push(first_in_node);
                first_in_node = false;
                if is_leaf {
                    has_child.push(false);
                    depth_sum += (d + 1) as u64;
                    match suffix_kind {
                        SuffixKind::None => {}
                        SuffixKind::Hash => suffixes.push(hash8(ki)),
                        SuffixKind::Real => {
                            // Bytes consumed: d for a terminator (the label
                            // is virtual), d+1 otherwise.
                            let consumed = if is_term { d } else { d + 1 };
                            suffixes.push(ki.get(consumed).copied().unwrap_or(0));
                        }
                    }
                } else {
                    has_child.push(true);
                    queue.push_back((i, j, d + 1));
                }
                i = j;
            }
        }

        Surf {
            labels,
            terms: terms.build(),
            has_child: has_child.build(),
            louds: louds.build(),
            suffix_kind,
            suffixes,
            num_keys: n,
            depth_sum,
        }
    }

    /// Number of keys the filter was built over.
    pub fn num_keys(&self) -> usize {
        self.num_keys
    }

    /// Average trie height (mean leaf depth) — Figure 10's height metric.
    pub fn avg_height(&self) -> f64 {
        if self.num_keys == 0 {
            return 0.0;
        }
        self.depth_sum as f64 / self.num_keys as f64
    }

    /// Memory footprint in bytes (all succinct structures + suffixes).
    pub fn memory_bytes(&self) -> usize {
        self.labels.len()
            + self.terms.memory_bytes()
            + self.has_child.memory_bytes()
            + self.louds.memory_bytes()
            + self.suffixes.len()
    }

    /// Label-position range `[start, end)` of node `n`.
    #[inline]
    fn node_range(&self, node: usize) -> (usize, usize) {
        let start = self.louds.select1(node).expect("node exists");
        let end = self.louds.select1(node + 1).unwrap_or(self.labels.len());
        (start, end)
    }

    /// Child node number for a label position with `has_child = 1`.
    #[inline]
    fn child_node(&self, pos: usize) -> usize {
        self.has_child.rank1(pos + 1)
    }

    /// Leaf index (suffix slot) for a label position with `has_child = 0`.
    #[inline]
    fn leaf_index(&self, pos: usize) -> usize {
        self.has_child.rank0(pos)
    }

    /// First position of a byte label `>= c` within `[s, e)`, skipping the
    /// terminator slot (terminators sort before every byte label).
    #[inline]
    fn lower_bound_label(&self, s: usize, e: usize, c: u8) -> usize {
        let s = s + self.terms.get(s) as usize; // skip the terminator slot
        let mut lo = s;
        let mut hi = e;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.labels[mid] < c {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Exact position of byte label `c` in `[s, e)`, if present.
    #[inline]
    fn find_label(&self, s: usize, e: usize, c: u8) -> Option<usize> {
        let p = self.lower_bound_label(s, e, c);
        (p < e && self.labels[p] == c && !self.terms.get(p)).then_some(p)
    }

    #[inline]
    fn suffix_matches(&self, leaf: usize, key: &[u8], consumed: usize) -> bool {
        match self.suffix_kind {
            SuffixKind::None => true,
            SuffixKind::Hash => self.suffixes[leaf] == hash8(key),
            SuffixKind::Real => self.suffixes[leaf] == key.get(consumed).copied().unwrap_or(0),
        }
    }

    /// Approximate point membership: `false` is definite, `true` may be a
    /// false positive (bounded by the suffix bits).
    ///
    /// ```
    /// use hope_surf::{SuffixKind, Surf};
    ///
    /// let keys: Vec<&[u8]> = vec![b"a", b"ab", b"abc"];
    /// let f = Surf::build(&keys, SuffixKind::Real);
    /// assert!(f.contains(b"ab"));   // prefix keys carry terminators
    /// assert!(!f.contains(b"b"));   // rejection is definite
    /// ```
    pub fn contains(&self, key: &[u8]) -> bool {
        if self.num_keys == 0 {
            return false;
        }
        let mut node = 0usize;
        let mut d = 0usize;
        loop {
            let (s, e) = self.node_range(node);
            if d == key.len() {
                // Key exhausted: present iff this node has a terminator.
                return self.terms.get(s) && self.suffix_matches(self.leaf_index(s), key, d);
            }
            match self.find_label(s, e, key[d]) {
                None => return false,
                Some(pos) => {
                    if self.has_child.get(pos) {
                        node = self.child_node(pos);
                        d += 1;
                    } else {
                        return self.suffix_matches(self.leaf_index(pos), key, d + 1);
                    }
                }
            }
        }
    }

    /// Iterator positioned at the smallest stored (truncated) key `>=
    /// key`, or `None` if every stored key is smaller.
    ///
    /// Keys are stored *truncated* at their distinguishing byte, so the
    /// cursor yields truncated keys — enough for order comparisons:
    ///
    /// ```
    /// use hope_surf::{SuffixKind, Surf};
    ///
    /// let keys: Vec<&[u8]> = vec![b"bat", b"cat", b"catalog"];
    /// let f = Surf::build(&keys, SuffixKind::None);
    /// let it = f.seek(b"cab").unwrap();
    /// assert_eq!(it.key(), b"cat");        // "cat" kept whole (a prefix key)
    /// let it = it.next().unwrap();         // in-order successor
    /// assert_eq!(it.key(), b"cata");       // "catalog" truncated at byte 4
    /// assert!(f.seek(b"cb").is_none());    // nothing at or above "cb"
    /// ```
    pub fn seek(&self, key: &[u8]) -> Option<SurfIter<'_>> {
        if self.num_keys == 0 {
            return None;
        }
        let mut it = SurfIter { surf: self, stack: Vec::new(), bytes: Vec::new() };
        let mut node = 0usize;
        let mut d = 0usize;
        loop {
            let (s, e) = self.node_range(node);
            if d == key.len() {
                // Everything in this node is >= the exhausted key.
                it.stack.push(Frame { e, pos: s });
                it.descend_to_leftmost();
                return Some(it);
            }
            let c = key[d];
            let p = self.lower_bound_label(s, e, c);
            if p == e {
                // Every label here is below c: backtrack to the next leaf.
                return it.advance_from_exhausted();
            }
            it.stack.push(Frame { e, pos: p });
            if self.labels[p] == c {
                it.bytes.push(c);
                if self.has_child.get(p) {
                    node = self.child_node(p);
                    d += 1;
                    continue;
                }
                // Leaf matching the key prefix. With real suffixes we can
                // compare one more byte; otherwise position here (errs
                // toward inclusion: filters must not produce false
                // negatives).
                if self.suffix_kind == SuffixKind::Real {
                    let leaf = self.leaf_index(p);
                    if self.suffixes[leaf] < key.get(d + 1).copied().unwrap_or(0) {
                        return it.next_leaf();
                    }
                }
                return Some(it);
            }
            // labels[p] > c: the subtree at p is entirely > key.
            it.descend_to_leftmost();
            return Some(it);
        }
    }

    /// Approximate closed-range emptiness test: may the filter contain a
    /// key in `[low, high]`? `false` is definite.
    ///
    /// ```
    /// use hope_surf::{SuffixKind, Surf};
    ///
    /// let keys: Vec<&[u8]> = vec![b"bat", b"cat", b"dog"];
    /// let f = Surf::build(&keys, SuffixKind::Real);
    /// assert!(f.range_may_contain(b"ca", b"cb"));   // "cat" is inside
    /// assert!(!f.range_may_contain(b"dz", b"zz"));  // provably empty
    /// ```
    pub fn range_may_contain(&self, low: &[u8], high: &[u8]) -> bool {
        match self.seek(low) {
            None => false,
            Some(it) => {
                let k = it.key();
                // Truncated comparison, erring toward inclusion on ties.
                let m = k.len().min(high.len());
                k[..m] <= high[..m]
            }
        }
    }

    /// Number of label slots (diagnostics).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    e: usize,
    pos: usize,
}

/// In-order cursor over the stored (truncated) keys.
#[derive(Debug)]
pub struct SurfIter<'a> {
    surf: &'a Surf,
    stack: Vec<Frame>,
    /// Byte labels along the current path (terminators excluded).
    bytes: Vec<u8>,
}

impl<'a> SurfIter<'a> {
    /// The truncated key at the current leaf.
    pub fn key(&self) -> &[u8] {
        &self.bytes
    }

    /// From the top frame's `pos` (a valid label), descend to the leftmost
    /// leaf beneath it.
    fn descend_to_leftmost(&mut self) {
        loop {
            let top = *self.stack.last().expect("non-empty stack");
            let pos = top.pos;
            if !self.surf.terms.get(pos) {
                self.bytes.push(self.surf.labels[pos]);
            }
            if !self.surf.has_child.get(pos) {
                return;
            }
            let node = self.surf.child_node(pos);
            let (s, e) = self.surf.node_range(node);
            self.stack.push(Frame { e, pos: s });
        }
    }

    /// Advance to the next leaf in order; `None` at the end of the trie.
    fn next_leaf(mut self) -> Option<SurfIter<'a>> {
        // Pop the current leaf's byte, then advance positions.
        loop {
            let top = self.stack.last_mut()?;
            if !self.surf.terms.get(top.pos) {
                self.bytes.pop();
            }
            top.pos += 1;
            if top.pos < top.e {
                self.descend_to_leftmost();
                return Some(self);
            }
            self.stack.pop();
        }
    }

    /// Used by a seek that fell off the end of a node before pushing a
    /// frame at the current level: the backtracking is identical to
    /// advancing past the rightmost descendant.
    fn advance_from_exhausted(self) -> Option<SurfIter<'a>> {
        self.next_leaf()
    }

    /// Advance to the next stored key.
    pub fn next(self) -> Option<SurfIter<'a>> {
        self.next_leaf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(v: &[&str]) -> Vec<Vec<u8>> {
        let mut k: Vec<Vec<u8>> = v.iter().map(|s| s.as_bytes().to_vec()).collect();
        k.sort();
        k.dedup();
        k
    }

    #[test]
    fn no_false_negatives_point() {
        for kind in [SuffixKind::None, SuffixKind::Hash, SuffixKind::Real] {
            let ks = keys(&["far", "fast", "s", "top", "toy", "trie", "trip", "try"]);
            let s = Surf::build(&ks, kind);
            for k in &ks {
                assert!(s.contains(k), "{kind:?}: missing {k:?}");
            }
        }
    }

    #[test]
    fn definite_rejections() {
        let ks = keys(&["far", "fast", "top", "toy"]);
        let s = Surf::build(&ks, SuffixKind::Real);
        assert!(!s.contains(b"zzz"));
        assert!(!s.contains(b"a"));
        // "f" is a strict prefix of stored keys, no terminator for it.
        assert!(!s.contains(b"f"));
    }

    #[test]
    fn prefix_keys_have_terminators() {
        let ks = keys(&["a", "ab", "abc"]);
        let s = Surf::build(&ks, SuffixKind::Real);
        assert!(s.contains(b"a"));
        assert!(s.contains(b"ab"));
        assert!(s.contains(b"abc"));
        assert!(!s.contains(b"b"));
    }

    #[test]
    fn empty_key_and_empty_filter() {
        let s = Surf::build(&Vec::<Vec<u8>>::new(), SuffixKind::None);
        assert!(!s.contains(b"x"));
        assert!(!s.range_may_contain(b"a", b"z"));
        let ks = vec![b"".to_vec(), b"a".to_vec()];
        let s = Surf::build(&ks, SuffixKind::None);
        assert!(s.contains(b""));
        assert!(s.contains(b"a"));
    }

    #[test]
    fn range_queries_no_false_negatives() {
        let ks = keys(&["bat", "cat", "dog", "eel", "fox"]);
        let s = Surf::build(&ks, SuffixKind::Real);
        assert!(s.range_may_contain(b"cat", b"cat"));
        assert!(s.range_may_contain(b"ca", b"cb"));
        assert!(s.range_may_contain(b"a", b"z"));
        assert!(s.range_may_contain(b"dz", b"ef"));
        assert!(!s.range_may_contain(b"fz", b"zz"));
    }

    #[test]
    fn seek_iterates_in_order() {
        let ks = keys(&["bat", "cat", "catalog", "dog", "eel"]);
        let s = Surf::build(&ks, SuffixKind::None);
        let mut it = s.seek(b"").unwrap();
        let mut seen = vec![it.key().to_vec()];
        while let Some(next) = it.next() {
            it = next;
            seen.push(it.key().to_vec());
        }
        assert_eq!(seen.len(), ks.len());
        for w in seen.windows(2) {
            assert!(w[0] < w[1], "iterator out of order: {seen:?}");
        }
    }

    #[test]
    fn avg_height_reflects_truncation() {
        // Highly distinct keys truncate early: height well below key length.
        let ks: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("{:08}suffix-padding-material", i * 7919).into_bytes())
            .collect();
        let mut sorted = ks.clone();
        sorted.sort();
        let s = Surf::build(&sorted, SuffixKind::None);
        assert!(s.avg_height() < 10.0, "height {}", s.avg_height());
        assert!(s.memory_bytes() > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn point_membership_never_false_negative(
            mut ks in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 0..12), 1..100),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..14), 0..50),
        ) {
            let ks: Vec<Vec<u8>> = std::mem::take(&mut ks).into_iter().collect();
            for kind in [SuffixKind::None, SuffixKind::Hash, SuffixKind::Real] {
                let s = Surf::build(&ks, kind);
                for k in &ks {
                    prop_assert!(s.contains(k), "{:?} missing {:?}", kind, k);
                }
                // Probes must never crash; rejection implies truly absent.
                for p in &probes {
                    if s.contains(p) {
                        continue;
                    }
                    prop_assert!(!ks.contains(p), "false negative on {:?}", p);
                }
            }
        }

        #[test]
        fn range_never_false_negative(
            mut ks in proptest::collection::btree_set(
                proptest::collection::vec(any::<u8>(), 1..10), 1..60),
            ranges in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..10),
                 proptest::collection::vec(any::<u8>(), 1..10)), 0..30),
        ) {
            let ks: Vec<Vec<u8>> = std::mem::take(&mut ks).into_iter().collect();
            let s = Surf::build(&ks, SuffixKind::Real);
            for (a, b) in &ranges {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let truly = ks.iter().any(|k| k >= lo && k <= hi);
                if truly {
                    prop_assert!(s.range_may_contain(lo, hi),
                        "false negative on [{:?}, {:?}]", lo, hi);
                }
            }
        }
    }
}
