//! # hope-hot — Height-Optimized-Trie-like substrate
//!
//! A structure in the spirit of HOT (Binna et al., SIGMOD 2018), one of the
//! five search trees the HOPE paper evaluates on. The defining properties
//! the paper's evaluation relies on are reproduced:
//!
//! * **compound nodes with fan-out up to k = 32** ([`K`]), giving a much
//!   lower height than byte-wise tries;
//! * **partial-key storage**: a node skips the bytes all its keys share
//!   (they are *not* stored) and keeps only suffix-truncated separators —
//!   the minimal discriminative bytes. Full keys live in the record heap
//!   and are verified there after navigation, exactly the
//!   "partial keys + tuple verification" behaviour §5 of the HOPE paper
//!   describes (and the reason HOT benefits less from key compression);
//! * **height-optimized inserts**: leaves overflow into splits, and a
//!   node's skipped-prefix length adapts downward when a new key breaks
//!   the shared prefix.
//!
//! Differences from the original (see DESIGN.md): in-node search is
//! binary instead of SIMD, and compound nodes hold separator arrays rather
//! than bit-level Patricia slices. Neither changes the asymptotics the
//! paper's figures measure. The trie is generic over its value payload
//! (`Hot<V>`, any [`hope::Value`]; defaults to `u64` record ids) and
//! implements the [`hope::OrderedIndex<V>`] contract serving layers
//! program against.
//!
//! ```
//! use hope_hot::Hot;
//!
//! let mut hot = Hot::new();
//! hot.insert(b"com.gmail@alice", 1);
//! hot.insert(b"com.gmail@bob", 2);
//! assert_eq!(hot.get(b"com.gmail@alice"), Some(1));
//! assert_eq!(hot.scan(b"com.gmail@", 10), vec![1, 2]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Maximum compound-node fan-out (HOT's k).
pub const K: usize = 32;

#[derive(Debug)]
enum Node {
    /// Sorted record ids (≤ K of them).
    Leaf { recs: Vec<u32> },
    /// `skip` bytes are shared by every key in the subtree and not stored;
    /// separators are relative to `skip`. Child `i` holds keys `< seps[i]`,
    /// child `i+1` keys `>= seps[i]` (comparing `key[skip..]`).
    Inner { skip: u32, seps: Vec<Box<[u8]>>, children: Vec<u32> },
}

/// The height-optimized trie over byte-string keys and `V` values
/// (default: `u64` ids).
#[derive(Debug)]
pub struct Hot<V = u64> {
    nodes: Vec<Node>,
    root: u32,
    /// The simulated tuple store: full keys + values. Navigation uses only
    /// partial keys; exact results are verified here.
    records: Vec<(Box<[u8]>, V)>,
}

impl<V> Default for Hot<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Hot<V> {
    /// New empty trie.
    pub fn new() -> Self {
        Hot { nodes: vec![Node::Leaf { recs: Vec::new() }], root: 0, records: Vec::new() }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Index memory: compound nodes (partial separators + child/record
    /// slots). Excludes the record heap — HOT stores only partial keys.
    pub fn index_memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + match n {
                        Node::Leaf { recs } => recs.len() * 4,
                        Node::Inner { seps, children, .. } => {
                            seps.iter()
                                .map(|s| std::mem::size_of::<Box<[u8]>>() + s.len())
                                .sum::<usize>()
                                + children.len() * 4
                        }
                    }
            })
            .sum()
    }

    /// Memory of the simulated record heap (full keys + values).
    pub fn record_memory_bytes(&self) -> usize {
        self.records.iter().map(|(k, _)| std::mem::size_of::<(Box<[u8]>, V)>() + k.len()).sum()
    }

    /// Tree height in levels (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut at = self.root;
        while let Node::Inner { children, .. } = &self.nodes[at as usize] {
            at = children[0];
            h += 1;
        }
        h
    }

    #[inline]
    fn rec_key(&self, rec: u32) -> &[u8] {
        &self.records[rec as usize].0
    }

    /// Smallest record in the subtree (used to recover skipped prefix
    /// bytes: every subtree key shares the node's skipped prefix).
    fn min_record(&self, mut at: u32) -> u32 {
        loop {
            match &self.nodes[at as usize] {
                Node::Leaf { recs } => return recs[0],
                Node::Inner { children, .. } => at = children[0],
            }
        }
    }

    /// Largest record in the subtree.
    fn max_record(&self, mut at: u32) -> u32 {
        loop {
            match &self.nodes[at as usize] {
                Node::Leaf { recs } => return *recs.last().expect("non-empty leaf"),
                Node::Inner { children, .. } => at = *children.last().expect("has children"),
            }
        }
    }

    /// Point lookup: navigate by partial keys, verify against the record.
    /// Borrows the stored value; see [`Hot::get`] for the cloning form.
    pub fn get_ref(&self, key: &[u8]) -> Option<&V> {
        let mut at = self.root;
        loop {
            match &self.nodes[at as usize] {
                Node::Inner { skip, seps, children } => {
                    let q = &key[(*skip as usize).min(key.len())..];
                    let i = seps.partition_point(|s| s.as_ref() <= q);
                    at = children[i];
                }
                Node::Leaf { recs } => {
                    let i = recs.partition_point(|&r| self.rec_key(r) < key);
                    return (i < recs.len() && self.rec_key(recs[i]) == key)
                        .then(|| &self.records[recs[i] as usize].1);
                }
            }
        }
    }

    /// Point lookup, cloning the stored value (a copy for `u64` ids). Use
    /// [`Hot::get_ref`] to borrow instead.
    pub fn get(&self, key: &[u8]) -> Option<V>
    where
        V: Clone,
    {
        self.get_ref(key).cloned()
    }

    /// Insert or update; returns the previous value if the key existed.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        // Update in place if present (records are authoritative).
        if let Some(rec) = self.find_record(key) {
            let old = std::mem::replace(&mut self.records[rec as usize].1, value);
            return Some(old);
        }
        self.records.push((key.into(), value));
        let rec = (self.records.len() - 1) as u32;
        let root = self.root;
        if let Some((sep, right)) = self.insert_rec(root, key, rec) {
            // The new root may skip the prefix shared by *all* keys, i.e.
            // lcp(global min, global max); every separator between them
            // shares it too.
            let min = self.min_record(root);
            let max = self.max_record(right);
            let skip = lcp(self.rec_key(min), self.rec_key(max));
            debug_assert!(sep.len() > skip, "separator inside shared prefix");
            let sep_rel: Box<[u8]> = sep[skip..].into();
            self.nodes.push(Node::Inner {
                skip: skip as u32,
                seps: vec![sep_rel],
                children: vec![root, right],
            });
            self.root = (self.nodes.len() - 1) as u32;
        }
        None
    }

    fn find_record(&self, key: &[u8]) -> Option<u32> {
        let mut at = self.root;
        loop {
            match &self.nodes[at as usize] {
                Node::Inner { skip, seps, children } => {
                    let q = &key[(*skip as usize).min(key.len())..];
                    let i = seps.partition_point(|s| s.as_ref() <= q);
                    at = children[i];
                }
                Node::Leaf { recs } => {
                    let i = recs.partition_point(|&r| self.rec_key(r) < key);
                    return (i < recs.len() && self.rec_key(recs[i]) == key).then(|| recs[i]);
                }
            }
        }
    }

    /// Returns a split (absolute separator, right node) if `at` overflowed.
    fn insert_rec(&mut self, at: u32, key: &[u8], rec: u32) -> Option<(Vec<u8>, u32)> {
        // Adapt the skipped prefix first if the new key breaks it.
        self.maybe_reduce_skip(at, key);
        match &self.nodes[at as usize] {
            Node::Leaf { .. } => {
                let Node::Leaf { recs } = &mut self.nodes[at as usize] else { unreachable!() };
                let recs_snapshot: Vec<u32> = recs.clone();
                let i =
                    recs_snapshot.partition_point(|&r| self.records[r as usize].0.as_ref() < key);
                let Node::Leaf { recs } = &mut self.nodes[at as usize] else { unreachable!() };
                recs.insert(i, rec);
                if recs.len() <= K {
                    return None;
                }
                let mid = recs.len() / 2;
                let right_recs = recs.split_off(mid);
                let left_max = *recs.last().expect("non-empty left");
                let right_min = right_recs[0];
                let sep = shortest_separator(self.rec_key(left_max), self.rec_key(right_min));
                self.nodes.push(Node::Leaf { recs: right_recs });
                Some((sep, (self.nodes.len() - 1) as u32))
            }
            Node::Inner { skip, seps, children } => {
                let q = &key[(*skip as usize).min(key.len())..];
                let i = seps.partition_point(|s| s.as_ref() <= q);
                let child = children[i];
                let split = self.insert_rec(child, key, rec)?;
                let (sep_abs, right) = split;
                let Node::Inner { skip, seps, children } = &mut self.nodes[at as usize] else {
                    unreachable!()
                };
                let s = *skip as usize;
                debug_assert!(sep_abs.len() > s, "separator shorter than skip");
                let sep_rel: Box<[u8]> = sep_abs[s..].into();
                let pos = seps.partition_point(|x| x.as_ref() < sep_rel.as_ref());
                seps.insert(pos, sep_rel);
                children.insert(pos + 1, right);
                if seps.len() < K {
                    return None;
                }
                // Split this compound node, promoting the middle separator.
                let mid = seps.len() / 2;
                let up_rel = seps[mid].clone();
                let mut up = Vec::with_capacity(s + up_rel.len());
                // Recover the skipped prefix from any record on the left.
                let left_child = children[0];
                let right_seps: Vec<Box<[u8]>> = seps.split_off(mid + 1);
                let promoted = seps.pop().expect("mid separator");
                debug_assert_eq!(&promoted, &up_rel);
                let right_children = children.split_off(mid + 1);
                let skip_val = *skip;
                self.nodes.push(Node::Inner {
                    skip: skip_val,
                    seps: right_seps,
                    children: right_children,
                });
                let right = (self.nodes.len() - 1) as u32;
                let prefix_rec = self.min_record(left_child);
                up.extend_from_slice(&self.rec_key(prefix_rec)[..s]);
                up.extend_from_slice(&up_rel);
                Some((up, right))
            }
        }
    }

    /// If `key` does not share a node's skipped prefix, re-expand the
    /// separators so the node's `skip` drops to the actual shared length.
    fn maybe_reduce_skip(&mut self, at: u32, key: &[u8]) {
        let (old_skip, needs) = match &self.nodes[at as usize] {
            Node::Inner { skip, .. } if *skip > 0 => {
                let reference = self.min_record(at);
                let shared = lcp(self.rec_key(reference), key).min(*skip as usize);
                (*skip as usize, (shared < *skip as usize).then_some(shared))
            }
            _ => (0, None),
        };
        let Some(new_skip) = needs else { return };
        let reference = self.min_record(at);
        let dropped: Vec<u8> = self.rec_key(reference)[new_skip..old_skip].to_vec();
        let Node::Inner { skip, seps, .. } = &mut self.nodes[at as usize] else {
            return;
        };
        *skip = new_skip as u32;
        for s in seps.iter_mut() {
            let mut v = dropped.clone();
            v.extend_from_slice(s);
            *s = v.into_boxed_slice();
        }
    }

    /// Range scan: values of up to `count` keys `>= start`, in key order.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(count.min(64));
        self.scan_into(start, count, &mut out);
        out
    }

    /// Allocation-free [`Hot::scan`]: append up to `count` values to a
    /// caller-owned buffer (scan loops reuse one across probes).
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>)
    where
        V: Clone,
    {
        self.scan_rec(self.root, start, None, true, out.len().saturating_add(count), out);
    }

    /// Bounded range scan: values of up to `limit` keys in `low..=high`
    /// (inclusive on both ends), in key order.
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(limit.min(64));
        self.range_into(low, high, limit, &mut out);
        out
    }

    /// Allocation-free [`Hot::range`]: append up to `limit` values to a
    /// caller-owned buffer (scan loops reuse one across probes).
    pub fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>)
    where
        V: Clone,
    {
        if low > high {
            return;
        }
        self.scan_rec(self.root, low, Some(high), true, out.len().saturating_add(limit), out);
    }

    /// `stop` is the absolute output length to halt at (append
    /// semantics); `high` is the optional inclusive upper bound — the
    /// first record above it stops the walk.
    fn scan_rec(
        &self,
        at: u32,
        start: &[u8],
        high: Option<&[u8]>,
        bounded: bool,
        stop: usize,
        out: &mut Vec<V>,
    ) -> bool
    where
        V: Clone,
    {
        if out.len() >= stop {
            return false;
        }
        match &self.nodes[at as usize] {
            Node::Leaf { recs } => {
                let from =
                    if bounded { recs.partition_point(|&r| self.rec_key(r) < start) } else { 0 };
                for &r in &recs[from..] {
                    if out.len() >= stop {
                        return false;
                    }
                    if let Some(h) = high {
                        if self.rec_key(r) > h {
                            return false; // every later key is larger still
                        }
                    }
                    out.push(self.records[r as usize].1.clone());
                }
                out.len() < stop
            }
            Node::Inner { skip, seps, children } => {
                let mut from_child = 0usize;
                let mut boundary = false;
                if bounded {
                    // Compare start against the skipped prefix (recovered
                    // from a record) to decide whether navigation by
                    // partial keys is valid.
                    let s = *skip as usize;
                    let reference = self.min_record(at);
                    let pfx = &self.rec_key(reference)[..s];
                    let m = lcp(pfx, start);
                    if m < s.min(start.len()) {
                        if start[m] > pfx[m] {
                            return true; // whole subtree below start
                        }
                        // subtree entirely above start: unbounded scan
                    } else if start.len() > s {
                        let q = &start[s..];
                        from_child = seps.partition_point(|x| x.as_ref() <= q);
                        boundary = true;
                    }
                    // start exhausted within the prefix: unbounded scan
                }
                for (i, &c) in children.iter().enumerate().skip(from_child) {
                    let b = boundary && i == from_child;
                    if !self.scan_rec(c, start, high, b, stop, out) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Average leaf depth (compound-node steps) — height diagnostic.
    pub fn avg_depth(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mut sum = 0u64;
        let mut n = 0u64;
        let mut stack = vec![(self.root, 1u32)];
        while let Some((at, d)) = stack.pop() {
            match &self.nodes[at as usize] {
                Node::Leaf { recs } => {
                    sum += d as u64 * recs.len() as u64;
                    n += recs.len() as u64;
                }
                Node::Inner { children, .. } => {
                    for &c in children {
                        stack.push((c, d + 1));
                    }
                }
            }
        }
        sum as f64 / n.max(1) as f64
    }
}

/// HOT satisfies the generic ordered-index contract HOPE serving layers
/// program against, for any value payload. `memory_bytes` counts both the
/// partial-key compound nodes and the record heap — behind this trait the
/// trie is the full store, not an index over an external table.
impl<V: hope::Value> hope::OrderedIndex<V> for Hot<V> {
    fn get(&self, key: &[u8]) -> Option<&V> {
        Hot::get_ref(self, key)
    }

    fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        Hot::insert(self, key, value)
    }

    fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>) {
        Hot::scan_into(self, start, count, out)
    }

    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>) {
        Hot::range_into(self, low, high, limit, out)
    }

    fn len(&self) -> usize {
        Hot::len(self)
    }

    fn memory_bytes(&self) -> usize {
        self.index_memory_bytes() + self.record_memory_bytes()
    }
}

/// Shortest separator `s` with `left < s <= right`.
fn shortest_separator(left: &[u8], right: &[u8]) -> Vec<u8> {
    debug_assert!(left < right);
    let m = lcp(left, right);
    right[..(m + 1).min(right.len())].to_vec()
}

#[inline]
fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut h = Hot::new();
        assert_eq!(h.insert(b"banana", 2), None);
        assert_eq!(h.insert(b"apple", 1), None);
        assert_eq!(h.insert(b"cherry", 3), None);
        assert_eq!(h.get(b"apple"), Some(1));
        assert_eq!(h.get(b"banana"), Some(2));
        assert_eq!(h.get(b"cherry"), Some(3));
        assert_eq!(h.get(b"durian"), None);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn update_in_place() {
        let mut h = Hot::new();
        h.insert(b"k", 1);
        assert_eq!(h.insert(b"k", 9), Some(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(b"k"), Some(9));
    }

    #[test]
    fn many_keys_with_shared_prefixes() {
        let mut h = Hot::new();
        let n = 3000u64;
        for i in 0..n {
            h.insert(format!("com.gmail@user{:06}", i * 13 % n).as_bytes(), i);
        }
        assert_eq!(h.len() as u64, n);
        for i in 0..n {
            let k = format!("com.gmail@user{:06}", i * 13 % n);
            assert_eq!(h.get(k.as_bytes()), Some(i), "{k}");
        }
        // Fanout 32 keeps the tree very flat.
        assert!(h.height() <= 4, "height {}", h.height());
    }

    #[test]
    fn skip_reduction_on_prefix_break() {
        let mut h = Hot::new();
        for i in 0..200u64 {
            h.insert(format!("shared-prefix/{i:05}").as_bytes(), i);
        }
        // Now insert keys that do not share the prefix at all.
        h.insert(b"alpha", 900);
        h.insert(b"zz", 901);
        assert_eq!(h.get(b"alpha"), Some(900));
        assert_eq!(h.get(b"zz"), Some(901));
        for i in (0..200u64).step_by(37) {
            let k = format!("shared-prefix/{i:05}");
            assert_eq!(h.get(k.as_bytes()), Some(i), "{k}");
        }
    }

    #[test]
    fn scan_in_order() {
        let mut h = Hot::new();
        for i in 0..500u64 {
            h.insert(format!("user{i:04}").as_bytes(), i);
        }
        assert_eq!(h.scan(b"user0100", 5), vec![100, 101, 102, 103, 104]);
        assert_eq!(h.scan(b"", 3), vec![0, 1, 2]);
        assert!(h.scan(b"zzz", 3).is_empty());
    }

    #[test]
    fn bounded_range_is_inclusive_and_ordered() {
        let mut h = Hot::new();
        for i in 0..500u64 {
            h.insert(format!("user{i:04}").as_bytes(), i);
        }
        assert_eq!(h.range(b"user0100", b"user0104", 10), vec![100, 101, 102, 103, 104]);
        assert_eq!(h.range(b"user0100", b"user0104", 3).len(), 3);
        assert!(h.range(b"zz", b"aa", 10).is_empty());
        let mut buf = vec![7u64];
        h.range_into(b"user0000", b"user0001", 10, &mut buf);
        assert_eq!(buf, vec![7, 0, 1]);
    }

    #[test]
    fn non_u64_payloads_round_trip_through_the_trait() {
        use hope::OrderedIndex;
        let mut h: Hot<Vec<u8>> = Hot::new();
        let ix: &mut dyn OrderedIndex<Vec<u8>> = &mut h;
        assert_eq!(ix.insert(b"a", b"one".to_vec()), None);
        assert_eq!(ix.insert(b"a", b"two".to_vec()), Some(b"one".to_vec()));
        assert_eq!(ix.get(b"a"), Some(&b"two".to_vec()));
        let mut out = Vec::new();
        ix.range_into(b"a", b"z", 10, &mut out);
        assert_eq!(out, vec![b"two".to_vec()]);
    }

    #[test]
    fn index_memory_is_partial() {
        let mut h = Hot::new();
        for i in 0..2000u64 {
            h.insert(format!("http://site.example/long/path/{i:06}").as_bytes(), i);
        }
        // Partial-key index should be far smaller than the record heap.
        assert!(
            h.index_memory_bytes() < h.record_memory_bytes() / 2,
            "index {} heap {}",
            h.index_memory_bytes(),
            h.record_memory_bytes()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn behaves_like_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()), 1..300),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..20), 0..40),
            start in proptest::collection::vec(any::<u8>(), 0..20),
        ) {
            let mut h = Hot::new();
            let mut model = BTreeMap::new();
            for (k, v) in &ops {
                prop_assert_eq!(h.insert(k, *v), model.insert(k.clone(), *v));
            }
            prop_assert_eq!(h.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(h.get(k), Some(*v), "missing {:?}", k);
            }
            for p in &probes {
                prop_assert_eq!(h.get(p), model.get(p).copied());
            }
            let want: Vec<u64> = model.range(start.clone()..).take(25).map(|(_, v)| *v).collect();
            prop_assert_eq!(h.scan(&start, 25), want);
            for pair in probes.chunks(2) {
                if let [a, b] = pair {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let want: Vec<u64> =
                        model.range(lo.clone()..=hi.clone()).take(10).map(|(_, v)| *v).collect();
                    prop_assert_eq!(h.range(lo, hi, 10), want, "range {:?}..={:?}", lo, hi);
                }
            }
        }
    }
}
