//! Seed determinism of `hope_workloads::traffic` — the property the
//! serving benches stand on: the same seed must produce a byte-identical
//! op sequence on every run, and splitting the stream across serving
//! cores must never change which ops run or their global order.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

use hope_workloads::{MixedWorkload, StoreOp, TrafficSpec};

/// Serialize one op into bytes, so "byte-identical" is literal: two
/// streams agree iff their serializations agree.
fn op_bytes(op: &StoreOp, out: &mut Vec<u8>) {
    match op {
        StoreOp::Get(k) => {
            out.push(b'G');
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
        }
        StoreOp::Insert(k, v) => {
            out.push(b'I');
            out.extend_from_slice(&(k.len() as u32).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(&v.to_le_bytes());
        }
        StoreOp::Scan(low, high, limit) => {
            out.push(b'S');
            out.extend_from_slice(&(low.len() as u32).to_le_bytes());
            out.extend_from_slice(low);
            out.extend_from_slice(&(high.len() as u32).to_le_bytes());
            out.extend_from_slice(high);
            out.extend_from_slice(&(*limit as u64).to_le_bytes());
        }
    }
}

fn stream_bytes(ops: &[StoreOp]) -> Vec<u8> {
    let mut out = Vec::new();
    for op in ops {
        op_bytes(op, &mut out);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ byte-identical initial load and op sequence; a
    /// different seed diverges.
    #[test]
    fn same_seed_is_byte_identical(
        seed in any::<u64>(),
        num_initial in 1usize..400,
        num_ops in 1usize..2_000,
        read_pct in 0u8..81,
        insert_pct in 10u8..21,
    ) {
        let spec = TrafficSpec { read_pct, insert_pct, ..TrafficSpec::default() };
        let a = MixedWorkload::generate(num_initial, num_ops, spec, seed);
        let b = MixedWorkload::generate(num_initial, num_ops, spec, seed);
        prop_assert_eq!(&a.initial, &b.initial);
        prop_assert_eq!(a.shift_at, b.shift_at);
        prop_assert_eq!(stream_bytes(&a.ops), stream_bytes(&b.ops));
        let c = MixedWorkload::generate(num_initial, num_ops, spec, seed ^ 0x5555);
        prop_assert_ne!(stream_bytes(&a.ops), stream_bytes(&c.ops));
    }

    /// Chunking across cores is a pure partition: for any core count,
    /// every op appears exactly once, cores see disjoint global indices
    /// in increasing order, and re-interleaving by global index
    /// reconstructs the undivided stream byte-for-byte.
    #[test]
    fn split_across_cores_preserves_the_stream(
        seed in any::<u64>(),
        num_ops in 1usize..1_500,
        cores in 1usize..9,
    ) {
        let w = MixedWorkload::generate(100, num_ops, TrafficSpec::default(), seed);
        let streams = w.split_across(cores);
        prop_assert_eq!(streams.len(), cores);
        let mut rebuilt: Vec<Option<StoreOp>> = vec![None; w.ops.len()];
        for (core, stream) in streams.iter().enumerate() {
            let mut prev = None;
            for (i, op) in stream {
                prop_assert_eq!(*i % cores, core, "op {} on the wrong core", i);
                prop_assert!(prev < Some(*i), "global order broken within core {}", core);
                prev = Some(*i);
                prop_assert!(rebuilt[*i].replace(op.clone()).is_none(), "op {} duplicated", i);
            }
        }
        let rebuilt: Vec<StoreOp> = rebuilt.into_iter().map(|o| o.unwrap()).collect();
        prop_assert_eq!(stream_bytes(&rebuilt), stream_bytes(&w.ops));
        // And chunking differently (any other core count) still yields
        // the same underlying stream.
        let other = w.split_across(cores % 8 + 1);
        let mut flat: Vec<(usize, StoreOp)> = other.into_iter().flatten().collect();
        flat.sort_by_key(|(i, _)| *i);
        let flat: Vec<StoreOp> = flat.into_iter().map(|(_, op)| op).collect();
        prop_assert_eq!(stream_bytes(&flat), stream_bytes(&w.ops));
    }
}
