//! Synthetic dataset generators mirroring the paper's three corpora:
//!
//! * **Email** — 25M host-reversed addresses, avg 22 B (`com.gmail@foo`);
//! * **Wiki**  — 14M article titles, avg 21 B;
//! * **URL**   — 25M crawled URLs, avg 104 B.
//!
//! Counts are parameters here; the generators aim to reproduce the
//! *statistics that matter to HOPE*: average length, heavy-hitting
//! substring patterns (domains, words, path segments), and the skew of the
//! n-gram distribution. Keys are returned deduplicated but unsorted
//! (callers shuffle/sort per experiment).

use crate::splitmix64;

/// The three evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Host-reversed email addresses.
    Email,
    /// Wikipedia-style article titles.
    Wiki,
    /// Crawled URLs.
    Url,
}

impl Dataset {
    /// All datasets in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Email, Dataset::Wiki, Dataset::Url];

    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Email => "Email",
            Dataset::Wiki => "Wiki",
            Dataset::Url => "URL",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate `n` distinct keys for `dataset`, deterministically from `seed`.
pub fn generate(dataset: Dataset, n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut state = seed ^ 0xC0FF_EE15_600D;
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n * 2);
    let mut tries = 0usize;
    while out.len() < n {
        let key = match dataset {
            Dataset::Email => email_key(&mut state),
            Dataset::Wiki => wiki_key(&mut state),
            Dataset::Url => url_key(&mut state),
        };
        tries += 1;
        if seen.insert(key.clone()) {
            out.push(key);
        }
        assert!(tries < n * 20 + 1000, "generator failed to produce {n} distinct keys");
    }
    out
}

/// Split an email dataset as in Appendix C: Email-A holds the gmail/yahoo
/// accounts, Email-B everything else.
pub fn generate_email_split(n: usize, seed: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let keys = generate(Dataset::Email, n, seed);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for k in keys {
        if k.starts_with(b"com.gmail@") || k.starts_with(b"com.yahoo@") {
            a.push(k);
        } else {
            b.push(k);
        }
    }
    (a, b)
}

// ---------------------------------------------------------------------------
// Email
// ---------------------------------------------------------------------------

/// Domains with a realistic heavy head (already host-reversed).
const EMAIL_HOSTS: &[&str] = &[
    "com.gmail",
    "com.yahoo",
    "com.hotmail",
    "com.aol",
    "com.outlook",
    "com.icloud",
    "com.mail",
    "com.gmx",
    "de.web",
    "de.gmx",
    "fr.orange",
    "fr.wanadoo",
    "com.comcast",
    "net.verizon",
    "com.att",
    "org.mail",
    "edu.mit",
    "edu.cmu",
    "edu.stanford",
    "com.protonmail",
    "com.zoho",
    "co.uk.btinternet",
    "com.rediffmail",
    "net.earthlink",
    "com.qq",
    "com.163",
    "com.126",
    "com.sina",
    "jp.co.yahoo",
    "ru.mail",
    "ru.yandex",
    "com.live",
];

const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "wei",
    "ana",
    "juan",
    "maria",
    "mohammed",
    "fatima",
    "yuki",
    "chen",
    "raj",
    "priya",
    "olga",
    "ivan",
    "hans",
    "sofia",
    "luca",
    "emma",
];

const SURNAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "wilson",
    "anderson",
    "taylor",
    "thomas",
    "moore",
    "lee",
    "perez",
    "white",
    "harris",
    "clark",
    "wang",
    "li",
    "zhang",
    "kumar",
    "singh",
    "sato",
    "tanaka",
    "ivanov",
    "muller",
    "rossi",
    "silva",
    "kim",
    "park",
    "nguyen",
    "tran",
    "cohen",
];

fn email_key(state: &mut u64) -> Vec<u8> {
    // Zipf-flavoured host pick: square the uniform variate to skew low
    // ranks (gmail/yahoo dominate, like real mail corpora).
    let r = splitmix64(state);
    let u = (r >> 11) as f64 / (1u64 << 53) as f64;
    let host = EMAIL_HOSTS[((u * u) * EMAIL_HOSTS.len() as f64) as usize % EMAIL_HOSTS.len()];
    let first = FIRST_NAMES[(splitmix64(state) as usize) % FIRST_NAMES.len()];
    let style = splitmix64(state) % 5;
    let num = splitmix64(state) % 10_000;
    let user = match style {
        0 => format!("{first}{num}"),
        1 => {
            let last = SURNAMES[(splitmix64(state) as usize) % SURNAMES.len()];
            format!("{first}.{last}")
        }
        2 => {
            let last = SURNAMES[(splitmix64(state) as usize) % SURNAMES.len()];
            format!("{}{last}{}", first.chars().next().unwrap(), num % 100)
        }
        3 => format!("{first}_{num}"),
        _ => {
            let last = SURNAMES[(splitmix64(state) as usize) % SURNAMES.len()];
            format!("{last}.{first}{}", num % 100)
        }
    };
    format!("{host}@{user}").into_bytes()
}

// ---------------------------------------------------------------------------
// Wiki
// ---------------------------------------------------------------------------

const WIKI_WORDS: &[&str] = &[
    "History",
    "List",
    "of",
    "the",
    "United",
    "States",
    "County",
    "Championship",
    "Station",
    "Railway",
    "River",
    "University",
    "School",
    "District",
    "National",
    "Park",
    "Church",
    "House",
    "Album",
    "Song",
    "Film",
    "Season",
    "Football",
    "Club",
    "Battle",
    "World",
    "War",
    "Museum",
    "Island",
    "Lake",
    "Mountain",
    "North",
    "South",
    "East",
    "West",
    "New",
    "Grand",
    "Saint",
    "Fort",
    "Old",
    "Royal",
    "City",
    "Village",
    "Township",
    "Airport",
    "Bridge",
    "Castle",
    "Cathedral",
    "Elections",
    "Census",
    "Division",
    "Department",
    "Province",
    "Region",
];

fn wiki_key(state: &mut u64) -> Vec<u8> {
    let words = 2 + (splitmix64(state) % 3) as usize;
    let mut title = String::new();
    for w in 0..words {
        if w > 0 {
            title.push('_');
        }
        // Zipf-ish word choice.
        let r = splitmix64(state);
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        let idx = ((u * u) * WIKI_WORDS.len() as f64) as usize % WIKI_WORDS.len();
        title.push_str(WIKI_WORDS[idx]);
    }
    // Disambiguators like real titles ("... (1987 film)" or a number).
    match splitmix64(state) % 4 {
        0 => title.push_str(&format!("_({})", 1850 + splitmix64(state) % 180)),
        1 => title.push_str(&format!("_{}", splitmix64(state) % 100_000)),
        _ => {}
    }
    title.into_bytes()
}

// ---------------------------------------------------------------------------
// URL
// ---------------------------------------------------------------------------

const URL_SITES: &[&str] = &[
    "www.bbc.co.uk",
    "news.bbc.co.uk",
    "www.parliament.uk",
    "www.guardian.co.uk",
    "www.dailymail.co.uk",
    "www.cambridge.ac.uk",
    "www.ox.ac.uk",
    "www.amazon.co.uk",
    "www.nationaltrust.org.uk",
    "www.gov.uk",
    "www.visitbritain.com",
    "www.timesonline.co.uk",
    "www.channel4.com",
    "www.manutd.com",
    "www.rightmove.co.uk",
];

const URL_SEGMENTS: &[&str] = &[
    "news",
    "sport",
    "articles",
    "archive",
    "category",
    "products",
    "research",
    "politics",
    "business",
    "entertainment",
    "technology",
    "education",
    "health",
    "science",
    "travel",
    "images",
    "media",
    "documents",
    "reports",
    "2006",
    "2007",
    "uk",
    "world",
    "england",
    "football",
    "cricket",
    "story",
    "comment",
    "profile",
    "static",
];

fn url_key(state: &mut u64) -> Vec<u8> {
    let r = splitmix64(state);
    let u = (r >> 11) as f64 / (1u64 << 53) as f64;
    let site = URL_SITES[((u * u) * URL_SITES.len() as f64) as usize % URL_SITES.len()];
    let mut url = format!("http://{site}/");
    let segs = 3 + (splitmix64(state) % 4) as usize;
    for _ in 0..segs {
        let s = URL_SEGMENTS[(splitmix64(state) as usize) % URL_SEGMENTS.len()];
        url.push_str(s);
        url.push('/');
    }
    match splitmix64(state) % 3 {
        0 => url.push_str(&format!("article{:08}.html", splitmix64(state) % 100_000_000)),
        1 => url.push_str(&format!("item-{:010}", splitmix64(state) % 10_000_000_000)),
        _ => url.push_str(&format!(
            "{:07}/index.html?page={}",
            splitmix64(state) % 10_000_000,
            splitmix64(state) % 50
        )),
    }
    url.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_len(keys: &[Vec<u8>]) -> f64 {
        keys.iter().map(|k| k.len()).sum::<usize>() as f64 / keys.len() as f64
    }

    #[test]
    fn deterministic_per_seed() {
        for d in Dataset::ALL {
            let a = generate(d, 500, 1);
            let b = generate(d, 500, 1);
            assert_eq!(a, b, "{d}");
            let c = generate(d, 500, 2);
            assert_ne!(a, c, "{d}");
        }
    }

    #[test]
    fn keys_are_distinct() {
        for d in Dataset::ALL {
            let keys = generate(d, 5000, 3);
            let set: std::collections::HashSet<_> = keys.iter().collect();
            assert_eq!(set.len(), keys.len(), "{d}");
        }
    }

    #[test]
    fn average_lengths_match_paper() {
        // Email ≈ 22, Wiki ≈ 21, URL ≈ 104 (generous tolerances).
        let e = avg_len(&generate(Dataset::Email, 4000, 4));
        assert!((15.0..30.0).contains(&e), "email avg {e}");
        let w = avg_len(&generate(Dataset::Wiki, 4000, 4));
        assert!((12.0..30.0).contains(&w), "wiki avg {w}");
        let u = avg_len(&generate(Dataset::Url, 4000, 4));
        assert!((60.0..130.0).contains(&u), "url avg {u}");
    }

    #[test]
    fn email_keys_are_host_reversed() {
        let keys = generate(Dataset::Email, 200, 5);
        for k in &keys {
            let s = std::str::from_utf8(k).unwrap();
            assert!(s.contains('@'), "{s}");
            assert!(
                s.starts_with("com.")
                    || s.starts_with("de.")
                    || s.starts_with("fr.")
                    || s.starts_with("net.")
                    || s.starts_with("org.")
                    || s.starts_with("edu.")
                    || s.starts_with("co.")
                    || s.starts_with("jp.")
                    || s.starts_with("ru."),
                "not host-reversed: {s}"
            );
        }
    }

    #[test]
    fn email_split_partitions() {
        let (a, b) = generate_email_split(2000, 6);
        assert_eq!(a.len() + b.len(), 2000);
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.iter().all(|k| k.starts_with(b"com.gmail@") || k.starts_with(b"com.yahoo@")));
        assert!(b.iter().all(|k| !k.starts_with(b"com.gmail@") && !k.starts_with(b"com.yahoo@")));
    }

    #[test]
    fn urls_share_long_prefixes() {
        let keys = generate(Dataset::Url, 1000, 7);
        // All start with http:// — the prefix HOPE exploits.
        assert!(keys.iter().all(|k| k.starts_with(b"http://")));
    }
}
