//! Scrambled-Zipfian request distribution, as used by YCSB (and therefore
//! by the paper's §7 workloads). Ranks follow a Zipf law with the YCSB
//! default exponent θ = 0.99; the rank→item mapping is scrambled by a hash
//! so that popular items are spread across the key space.

use crate::splitmix64;

/// YCSB's default Zipfian constant.
pub const YCSB_THETA: f64 = 0.99;

/// Zipf sampler over `0..n` with hash scrambling (Gray et al. algorithm,
/// the same one YCSB uses).
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    n: usize,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow: f64,
    state: u64,
}

impl ScrambledZipf {
    /// Sampler over `0..n` with exponent `theta`, seeded deterministically.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "empty item space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ScrambledZipf {
            n,
            alpha,
            zetan,
            eta,
            half_pow: 1.0 + 0.5f64.powf(theta),
            state: seed ^ 0x5EED_0F21_4F2A_77AA,
        }
    }

    /// Sampler with the YCSB default θ.
    pub fn ycsb(n: usize, seed: u64) -> Self {
        Self::new(n, YCSB_THETA, seed)
    }

    /// Next item index in `0..n` (scrambled).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        let rank = self.next_rank();
        // Scramble: spread hot ranks over the item space.
        let mut h = rank as u64 ^ 0x9E3779B97F4A7C15;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        (h % self.n as u64) as usize
    }

    /// Next Zipf rank in `0..n` (rank 0 most popular, unscrambled).
    pub fn next_rank(&mut self) -> usize {
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow {
            return 1;
        }
        let r = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n - 1)
    }
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_skewed() {
        let mut z = ScrambledZipf::new(1000, YCSB_THETA, 42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.next_rank()] += 1;
        }
        // Rank 0 must dominate; the head must hold most mass.
        assert!(counts[0] > counts[10] && counts[10] > 0);
        let head: usize = counts[..10].iter().sum();
        assert!(head > 30_000, "head mass {head}");
    }

    #[test]
    fn scrambled_items_cover_space() {
        let mut z = ScrambledZipf::ycsb(100, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let i = z.next();
            assert!(i < 100);
            seen.insert(i);
        }
        assert!(seen.len() > 50, "covered {} items", seen.len());
    }

    #[test]
    fn deterministic() {
        let a: Vec<usize> = {
            let mut z = ScrambledZipf::ycsb(500, 9);
            (0..100).map(|_| z.next()).collect()
        };
        let b: Vec<usize> = {
            let mut z = ScrambledZipf::ycsb(500, 9);
            (0..100).map(|_| z.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty item space")]
    fn rejects_empty_space() {
        let _ = ScrambledZipf::ycsb(0, 1);
    }
}
