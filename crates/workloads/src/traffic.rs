//! Mixed read/write/scan traffic with a mid-run key-distribution shift.
//!
//! The YCSB drivers (`ycsb`) model the paper's measured phases: a fixed
//! operation mix over a *stationary* key population. A serving store faces
//! the situation of Appendix C instead: the distribution its dictionary was
//! trained on drifts away under live writes. This generator produces that
//! scenario directly — a stream of point reads, inserts and bounded range
//! scans whose *insert* keys switch from one key population to another at
//! a configurable point of the run (the Email-A → Email-B split of
//! `fig15_distribution_shift`), while reads and scans keep targeting keys
//! known to be present.
//!
//! Keys are materialized (not dataset indices like [`crate::Op`]) so the
//! stream can be replayed against any store and an uncompressed shadow map
//! side by side.

use crate::gen::generate_email_split;
use crate::splitmix64;

/// One operation of a mixed store workload, with concrete keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Point lookup; the key was loaded or previously inserted.
    Get(Vec<u8>),
    /// Insert (or update) of this key/value pair.
    Insert(Vec<u8>, u64),
    /// Bounded range scan over `low..=high`, returning at most `limit`.
    Scan(Vec<u8>, Vec<u8>, usize),
}

/// Operation-mix and shift parameters for [`MixedWorkload::generate`].
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Percentage of operations that are point reads (0..=100).
    pub read_pct: u8,
    /// Percentage of operations that are inserts; the remainder after
    /// reads and inserts are range scans.
    pub insert_pct: u8,
    /// Maximum scan limit; each scan draws a limit in `1..=scan_limit`.
    pub scan_limit: usize,
    /// Fraction of the run (0.0..=1.0) after which insert keys switch
    /// from the pre-shift to the post-shift population.
    pub shift_after: f64,
}

impl Default for TrafficSpec {
    /// A read-heavy serving mix: 70% reads, 20% inserts, 10% scans, with
    /// the distribution shift at half of the run.
    fn default() -> Self {
        TrafficSpec { read_pct: 70, insert_pct: 20, scan_limit: 50, shift_after: 0.5 }
    }
}

/// A generated mixed workload: keys to bulk-load plus an operation stream.
#[derive(Debug)]
pub struct MixedWorkload {
    /// Keys loaded before the measured run (pre-shift population).
    pub initial: Vec<Vec<u8>>,
    /// The operation stream; inserts switch population mid-run.
    pub ops: Vec<StoreOp>,
    /// Index of the first operation drawn after the shift point.
    pub shift_at: usize,
}

impl MixedWorkload {
    /// Generate `num_ops` operations over `num_initial` loaded keys,
    /// deterministically from `seed`.
    ///
    /// The loaded keys and pre-shift inserts come from the Email-A
    /// population (gmail/yahoo accounts); post-shift inserts come from
    /// Email-B (every other host). Reads pick uniformly among keys already
    /// present (loaded or inserted earlier in the stream), so a replay can
    /// check every result. Scans start at a present key and span a short
    /// suffix interval above it.
    pub fn generate(num_initial: usize, num_ops: usize, spec: TrafficSpec, seed: u64) -> Self {
        assert!(num_initial > 0, "need at least one loaded key");
        assert!(spec.read_pct as usize + spec.insert_pct as usize <= 100, "mix exceeds 100%");
        assert!((0.0..=1.0).contains(&spec.shift_after), "shift_after out of range");
        // Generate both populations up front, sized by what the stream
        // can actually consume: pools only shrink on inserts, and at most
        // `insert_pct`% of the ops are inserts (each phase draws from one
        // pool, so each pool needs at most the full insert bound). Email-A
        // is the ~25% head of the host distribution *and* its distinct-key
        // space is finite, so sizing by `num_ops` outright would both
        // over-generate and cap the stream length a seed can request —
        // millions of ops are fine as long as the insert budget fits.
        let max_inserts = num_ops * spec.insert_pct as usize / 100 + 1;
        let budget = (num_initial + 2 * max_inserts) * 5 + 200;
        let (mut pool_a, mut pool_b) = generate_email_split(budget, seed);
        assert!(pool_a.len() > num_initial + max_inserts, "Email-A pool too small");
        assert!(pool_b.len() > max_inserts, "Email-B pool too small");
        let initial: Vec<Vec<u8>> = pool_a.drain(..num_initial).collect();

        let mut present: Vec<Vec<u8>> = initial.clone();
        let mut state = seed ^ 0x7AFF_1C0D_E5E5_D00D;
        let shift_at = ((num_ops as f64) * spec.shift_after) as usize;
        let mut ops = Vec::with_capacity(num_ops);
        for i in 0..num_ops {
            let r = (splitmix64(&mut state) % 100) as u8;
            if r < spec.read_pct {
                let k = &present[(splitmix64(&mut state) as usize) % present.len()];
                ops.push(StoreOp::Get(k.clone()));
            } else if r < spec.read_pct + spec.insert_pct {
                let pool = if i < shift_at { &mut pool_a } else { &mut pool_b };
                let key = pool.pop().expect("insert pool exhausted");
                let value = splitmix64(&mut state);
                present.push(key.clone());
                ops.push(StoreOp::Insert(key, value));
            } else {
                let low = present[(splitmix64(&mut state) as usize) % present.len()].clone();
                // Span a small interval above `low`: bump the final byte and
                // pad, so the range holds `low` plus nearby keys.
                let mut high = low.clone();
                match high.last_mut() {
                    Some(b) if *b < u8::MAX => *b += 1,
                    _ => high.push(0xFF),
                }
                let limit = 1 + (splitmix64(&mut state) as usize) % spec.scan_limit.max(1);
                ops.push(StoreOp::Scan(low, high, limit));
            }
        }
        MixedWorkload { initial, ops, shift_at }
    }

    /// Partition the op stream across `cores` serving threads,
    /// round-robin, keeping each op's **global index** so per-core
    /// consumers can still tell pre-shift from post-shift
    /// (`index < shift_at`) and any chunking can be checked against the
    /// undivided stream.
    ///
    /// The partition is a pure function of the stream: op `i` goes to
    /// core `i % cores`, and within a core ops stay in global order. So
    /// for any `cores ≥ 1`, interleaving the returned streams by global
    /// index reproduces `self.ops` byte-for-byte — the property the
    /// `traffic_determinism` suite asserts, and what makes multi-core
    /// serving benches replayable.
    pub fn split_across(&self, cores: usize) -> Vec<Vec<(usize, StoreOp)>> {
        assert!(cores > 0, "need at least one core");
        let mut streams: Vec<Vec<(usize, StoreOp)>> =
            (0..cores).map(|_| Vec::with_capacity(self.ops.len() / cores + 1)).collect();
        for (i, op) in self.ops.iter().enumerate() {
            streams[i % cores].push((i, op.clone()));
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn spec() -> TrafficSpec {
        TrafficSpec::default()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MixedWorkload::generate(500, 2000, spec(), 9);
        let b = MixedWorkload::generate(500, 2000, spec(), 9);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.ops, b.ops);
        let c = MixedWorkload::generate(500, 2000, spec(), 10);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn mix_roughly_matches_spec() {
        let w = MixedWorkload::generate(500, 10_000, spec(), 3);
        let gets = w.ops.iter().filter(|o| matches!(o, StoreOp::Get(_))).count();
        let ins = w.ops.iter().filter(|o| matches!(o, StoreOp::Insert(..))).count();
        let scans = w.ops.iter().filter(|o| matches!(o, StoreOp::Scan(..))).count();
        assert_eq!(gets + ins + scans, 10_000);
        assert!((6_000..8_000).contains(&gets), "gets = {gets}");
        assert!((1_400..2_600).contains(&ins), "inserts = {ins}");
        assert!((500..1_500).contains(&scans), "scans = {scans}");
    }

    #[test]
    fn inserts_shift_population_mid_run() {
        let w = MixedWorkload::generate(300, 6_000, spec(), 4);
        let is_a = |k: &[u8]| k.starts_with(b"com.gmail@") || k.starts_with(b"com.yahoo@");
        for (i, op) in w.ops.iter().enumerate() {
            if let StoreOp::Insert(k, _) = op {
                if i < w.shift_at {
                    assert!(is_a(k), "pre-shift insert from Email-B at op {i}");
                } else {
                    assert!(!is_a(k), "post-shift insert from Email-A at op {i}");
                }
            }
        }
        // Loaded keys are all pre-shift population.
        assert!(w.initial.iter().all(|k| is_a(k)));
    }

    #[test]
    fn replay_against_a_shadow_map_is_closed() {
        // Every Get hits a key that exists at that point; scans bracket
        // their low key.
        let w = MixedWorkload::generate(200, 3_000, spec(), 5);
        let mut shadow: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, k) in w.initial.iter().enumerate() {
            shadow.insert(k.clone(), i as u64);
        }
        for op in &w.ops {
            match op {
                StoreOp::Get(k) => assert!(shadow.contains_key(k), "dangling read"),
                StoreOp::Insert(k, v) => {
                    shadow.insert(k.clone(), *v);
                }
                StoreOp::Scan(low, high, limit) => {
                    assert!(low < high);
                    assert!(*limit >= 1);
                    let hits = shadow.range(low.clone()..=high.clone()).count();
                    assert!(hits >= 1, "scan misses its own anchor key");
                }
            }
        }
    }
}
