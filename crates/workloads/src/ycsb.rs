//! YCSB-style workload drivers (§7.1): the paper uses workloads C and E
//! with a Zipf request distribution, replacing YCSB's generated keys with
//! the dataset keys one-to-one (preserving the skew).
//!
//! * **Workload C** — 100% point lookups;
//! * **Workload E** — 95% short range scans (start key + uniform scan
//!   length in 1..=100), 5% inserts.

use crate::zipf::ScrambledZipf;

/// One benchmark operation over the dataset keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of the key at this dataset index.
    Read(usize),
    /// Range scan starting at this dataset index, for `len` keys.
    Scan(usize, usize),
    /// Insert of the key at this dataset index (keys are pre-split into a
    /// loaded part and an insert stream by the driver).
    Insert(usize),
}

/// Which YCSB workload mix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Workload C: 100% reads.
    C,
    /// Workload E: 95% scans, 5% inserts, scan length uniform in 1..=100.
    E,
}

/// A generated operation stream plus the load/insert split.
#[derive(Debug)]
pub struct YcsbWorkload {
    /// Keys 0..load_count are bulk-loaded before the measured phase.
    pub load_count: usize,
    /// Operation stream over dataset indices.
    pub ops: Vec<Op>,
}

impl YcsbWorkload {
    /// Generate `num_ops` operations over a dataset of `num_keys` keys.
    ///
    /// For workload E, 5% of the keys (at the tail of the index space) are
    /// reserved as the insert stream; the rest are bulk-loaded. For
    /// workload C everything is loaded.
    pub fn generate(spec: WorkloadSpec, num_keys: usize, num_ops: usize, seed: u64) -> Self {
        assert!(num_keys > 1, "need at least two keys");
        let mut inserts_reserved = match spec {
            WorkloadSpec::C => 0,
            WorkloadSpec::E => (num_ops / 20 + 1).min(num_keys / 2),
        };
        let load_count = num_keys - inserts_reserved;
        let mut zipf = ScrambledZipf::ycsb(load_count, seed ^ 0x1357);
        let mut aux = seed ^ 0x2468;
        let mut next_insert = load_count;
        let mut ops = Vec::with_capacity(num_ops);
        for _ in 0..num_ops {
            match spec {
                WorkloadSpec::C => ops.push(Op::Read(zipf.next())),
                WorkloadSpec::E => {
                    let r = crate::splitmix64(&mut aux) % 100;
                    if r < 5 && inserts_reserved > 0 {
                        ops.push(Op::Insert(next_insert));
                        next_insert += 1;
                        inserts_reserved -= 1;
                    } else {
                        let len = 1 + (crate::splitmix64(&mut aux) % 100) as usize;
                        ops.push(Op::Scan(zipf.next(), len));
                    }
                }
            }
        }
        YcsbWorkload { load_count, ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_c_is_all_reads() {
        let w = YcsbWorkload::generate(WorkloadSpec::C, 1000, 500, 1);
        assert_eq!(w.load_count, 1000);
        assert!(w.ops.iter().all(|o| matches!(o, Op::Read(_))));
        assert_eq!(w.ops.len(), 500);
    }

    #[test]
    fn workload_e_mixes_scans_and_inserts() {
        let w = YcsbWorkload::generate(WorkloadSpec::E, 10_000, 2000, 2);
        let scans = w.ops.iter().filter(|o| matches!(o, Op::Scan(..))).count();
        let inserts = w.ops.iter().filter(|o| matches!(o, Op::Insert(_))).count();
        assert_eq!(scans + inserts, 2000);
        // ~5% inserts.
        assert!((40..=160).contains(&inserts), "inserts = {inserts}");
        assert!(w.load_count < 10_000);
        // Insert indices are fresh keys beyond the loaded range, in order.
        let mut expect = w.load_count;
        for op in &w.ops {
            if let Op::Insert(i) = op {
                assert_eq!(*i, expect);
                expect += 1;
            }
        }
    }

    #[test]
    fn scan_lengths_in_ycsb_range() {
        let w = YcsbWorkload::generate(WorkloadSpec::E, 5000, 1000, 3);
        for op in &w.ops {
            if let Op::Scan(start, len) = op {
                assert!(*start < w.load_count);
                assert!((1..=100).contains(len));
            }
        }
    }

    #[test]
    fn reads_stay_within_loaded_keys() {
        let w = YcsbWorkload::generate(WorkloadSpec::C, 100, 10_000, 4);
        assert!(w.ops.iter().all(|o| matches!(o, Op::Read(i) if *i < 100)));
    }
}
