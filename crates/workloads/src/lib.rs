//! # hope-workloads — datasets and YCSB drivers for the HOPE evaluation
//!
//! The paper evaluates on three string-key datasets (Email, Wiki, URL) and
//! YCSB workloads C (point lookups) and E (range scans + inserts) with a
//! Zipf request distribution. The original datasets are not redistributable;
//! this crate generates synthetic equivalents that preserve the entropy
//! structure HOPE exploits (see DESIGN.md, "Substitutions").
//!
//! ```
//! use hope_workloads::{Dataset, generate};
//!
//! let keys = generate(Dataset::Email, 1000, 42);
//! assert_eq!(keys.len(), 1000);
//! assert!(keys[0].windows(1).any(|w| w == b"@")); // host-reversed emails
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod gen;
pub mod traffic;
pub mod ycsb;
pub mod zipf;

pub use gen::{generate, generate_email_split, Dataset};
pub use traffic::{MixedWorkload, StoreOp, TrafficSpec};
pub use ycsb::{Op, WorkloadSpec, YcsbWorkload};
pub use zipf::ScrambledZipf;

/// Deterministic 64-bit mix (SplitMix64) used across the generators.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Take a `percent`% sample of `keys` deterministically (the paper samples
/// 1% of the shuffled dataset for the build phase).
pub fn sample_keys(keys: &[Vec<u8>], percent: f64, seed: u64) -> Vec<Vec<u8>> {
    assert!(percent > 0.0 && percent <= 100.0);
    let want = ((keys.len() as f64 * percent / 100.0).round() as usize)
        .clamp(1.min(keys.len()), keys.len());
    let mut state = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    // Partial Fisher-Yates: shuffle just the prefix we take.
    for i in 0..want {
        let j = i + (splitmix64(&mut state) as usize) % (keys.len() - i);
        idx.swap(i, j);
    }
    idx[..want].iter().map(|&i| keys[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let keys = generate(Dataset::Email, 5000, 7);
        let a = sample_keys(&keys, 1.0, 99);
        let b = sample_keys(&keys, 1.0, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let c = sample_keys(&keys, 1.0, 100);
        assert_ne!(a, c, "different seeds should sample differently");
    }

    #[test]
    fn sample_of_tiny_sets() {
        let keys = vec![b"one".to_vec()];
        let s = sample_keys(&keys, 1.0, 1);
        assert_eq!(s.len(), 1);
    }
}
