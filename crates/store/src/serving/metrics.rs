//! Tail-latency accounting for the serving harness.
//!
//! The log-linear [`LatencyHistogram`] started life here; it now lives in
//! [`crate::telemetry`] (promoted to the store-wide reusable type) and is
//! re-exported from this module so existing `serving::metrics` imports
//! keep working unchanged.

pub use crate::telemetry::LatencyHistogram;
