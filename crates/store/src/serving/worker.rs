//! The serving worker loop: drain one queue in batches, execute against
//! the store, account latency per phase, complete tickets.
//!
//! Workers also carry the sampled-tracing hook: when
//! [`ServingConfig::trace_sample_every`](super::ServingConfig) is `N > 0`,
//! every Nth request a worker executes runs on the store's traced probe
//! paths and its queue-wait / encode / probe / decode spans land in the
//! `serving.trace.*` histograms of the store's telemetry registry. The
//! untraced path is untouched — disabled tracing costs one predictable
//! branch per request.
//!
//! Fault injection rides the same loop: when the config carries a
//! [`FaultPlan`](super::FaultPlan) with serving-side faults, each request
//! asks the plan for its [`FaultAction`](super::FaultAction) — a pure
//! function of `(worker, request index, phase)`. In virtual mode the
//! action scales and pads the deterministic cost (byte-identical across
//! runs); in wall mode the worker actually waits the injected time out,
//! so wall-clock SLO gates see real degradation.

use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use hope::Value;

use super::faults::FaultTally;
use super::metrics::LatencyHistogram;
use super::{virtual_cost, Envelope, Request, Response, ScanSummary, Shared};
use crate::telemetry::{Histo, ProbeSpans, TraceSampler};

/// Per-phase accumulator one worker keeps (merged at shutdown).
#[derive(Debug)]
pub(crate) struct PhaseAccum {
    pub ops: u64,
    pub gets: u64,
    pub inserts: u64,
    pub scans: u64,
    pub scan_hits: u64,
    pub errors: u64,
    pub latency: LatencyHistogram,
    pub busy_ns: u64,
}

impl PhaseAccum {
    fn new() -> Self {
        PhaseAccum {
            ops: 0,
            gets: 0,
            inserts: 0,
            scans: 0,
            scan_hits: 0,
            errors: 0,
            latency: LatencyHistogram::new(),
            busy_ns: 0,
        }
    }
}

/// What one worker hands back when it exits.
#[derive(Debug)]
pub(crate) struct WorkerOutput {
    pub phases: Vec<PhaseAccum>,
    pub faults: FaultTally,
}

/// The `serving.trace.*` span histograms (resolved once per worker).
#[derive(Debug)]
struct TraceHistos {
    queue_wait: Histo,
    encode: Histo,
    probe: Histo,
    decode: Histo,
}

/// Execute one request against the store.
fn execute<V: Value>(shared: &Shared<V>, req: Request<V>) -> Response<V> {
    match req {
        Request::Get { key } => match shared.store.get(&key) {
            Ok(v) => Response::Get(v),
            Err(e) => Response::Error(e),
        },
        Request::Insert { key, value } => match shared.store.insert(key, value) {
            Ok(prev) => Response::Insert(prev),
            Err(e) => Response::Error(e),
        },
        Request::Scan { low, high, limit } => {
            let mut cur = match shared.store.cursor(&low, &high, limit) {
                Ok(c) => c,
                Err(e) => return Response::Error(e),
            };
            let mut summary = ScanSummary::default();
            while let Some((k, _v)) = cur.next_hit() {
                summary.hits += 1;
                summary.key_bytes += k.len() as u64;
                if let Some(e) = cur.hit_epoch() {
                    summary.note_epoch(e);
                }
            }
            match cur.error() {
                Some(e) => Response::Error(e.clone()),
                None => Response::Scan(summary),
            }
        }
        Request::SnapshotScan { low, high, limit } => {
            // The capture pins every shard at one instant; the cursor
            // then reads that instant no matter what swaps or writes
            // land mid-scan (its epochs are the *pinned* generations').
            let snap = shared.store.snapshot();
            let mut cur = match snap.cursor(&low, &high, limit) {
                Ok(c) => c,
                Err(e) => return Response::Error(e),
            };
            let mut summary = ScanSummary::default();
            while let Some((k, _v)) = cur.next_hit() {
                summary.hits += 1;
                summary.key_bytes += k.len() as u64;
                if let Some(e) = cur.hit_epoch() {
                    summary.note_epoch(e);
                }
            }
            match cur.error() {
                Some(e) => Response::Error(e.clone()),
                None => Response::Scan(summary),
            }
        }
    }
}

/// [`execute`] on the store's span-timed paths. For scans, the probe span
/// is the time to the first hit (bound encode + index descent) and the
/// decode span is the remainder of the pull loop.
fn execute_traced<V: Value>(
    shared: &Shared<V>,
    req: Request<V>,
) -> (Response<V>, Option<ProbeSpans>) {
    match req {
        Request::Get { key } => match shared.store.get_traced(&key) {
            Ok((v, spans)) => (Response::Get(v), Some(spans)),
            Err(e) => (Response::Error(e), None),
        },
        Request::Insert { key, value } => match shared.store.insert_traced(key, value) {
            Ok((prev, spans)) => (Response::Insert(prev), Some(spans)),
            Err(e) => (Response::Error(e), None),
        },
        Request::Scan { low, high, limit } => {
            let probe_started = Instant::now();
            let mut cur = match shared.store.cursor(&low, &high, limit) {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), None),
            };
            let mut summary = ScanSummary::default();
            let mut probe_ns = 0u64;
            let mut pull_started: Option<Instant> = None;
            while let Some((k, _v)) = cur.next_hit() {
                if summary.hits == 0 {
                    probe_ns = probe_started.elapsed().as_nanos() as u64;
                    pull_started = Some(Instant::now());
                }
                summary.hits += 1;
                summary.key_bytes += k.len() as u64;
                if let Some(e) = cur.hit_epoch() {
                    summary.note_epoch(e);
                }
            }
            if summary.hits == 0 {
                probe_ns = probe_started.elapsed().as_nanos() as u64;
            }
            let decode_ns = pull_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let spans = ProbeSpans { encode_ns: 0, probe_ns, decode_ns };
            match cur.error() {
                Some(e) => (Response::Error(e.clone()), None),
                None => (Response::Scan(summary), Some(spans)),
            }
        }
        Request::SnapshotScan { low, high, limit } => {
            // Probe span = snapshot capture + bound encode + descent to
            // the first hit; decode span = the rest of the pull loop —
            // the same split as a plain traced scan, with the capture
            // charged to the probe.
            let probe_started = Instant::now();
            let snap = shared.store.snapshot();
            let mut cur = match snap.cursor(&low, &high, limit) {
                Ok(c) => c,
                Err(e) => return (Response::Error(e), None),
            };
            let mut summary = ScanSummary::default();
            let mut probe_ns = 0u64;
            let mut pull_started: Option<Instant> = None;
            while let Some((k, _v)) = cur.next_hit() {
                if summary.hits == 0 {
                    probe_ns = probe_started.elapsed().as_nanos() as u64;
                    pull_started = Some(Instant::now());
                }
                summary.hits += 1;
                summary.key_bytes += k.len() as u64;
                if let Some(e) = cur.hit_epoch() {
                    summary.note_epoch(e);
                }
            }
            if summary.hits == 0 {
                probe_ns = probe_started.elapsed().as_nanos() as u64;
            }
            let decode_ns = pull_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let spans = ProbeSpans { encode_ns: 0, probe_ns, decode_ns };
            match cur.error() {
                Some(e) => (Response::Error(e.clone()), None),
                None => (Response::Scan(summary), Some(spans)),
            }
        }
    }
}

/// The worker thread body: worker `i` owns `shared.queues[i]`.
pub(crate) fn run<V: Value>(i: usize, shared: Arc<Shared<V>>) -> WorkerOutput {
    let cfg = shared.cfg;
    let tel = shared.store.telemetry_handle();
    let mut sampler = TraceSampler::new(cfg.trace_sample_every);
    let trace = sampler.is_enabled().then(|| TraceHistos {
        queue_wait: tel.registry().histo("serving.trace.queue_wait"),
        encode: tel.registry().histo("serving.trace.encode"),
        probe: tel.registry().histo("serving.trace.probe"),
        decode: tel.registry().histo("serving.trace.decode"),
    });
    // Fault decisions are made here, at execution, from the envelope's
    // admission index — not at admission — so a rerouted request is
    // still judged by the worker that *executes* it (the whole point of
    // shedding away from a degraded worker).
    let faults = cfg.faults.filter(|p| p.any_serving_faults());
    let mut tally = FaultTally::default();
    let mut phases: Vec<PhaseAccum> = (0..cfg.phases).map(|_| PhaseAccum::new()).collect();
    let mut batch: Vec<Envelope<V>> = Vec::with_capacity(cfg.batch);
    // Wall-mode admission feedback: the controller's sensor is the real
    // *service* time of the requests this worker executed (execution +
    // injected penalties, queue wait excluded — under a saturating
    // producer queue wait measures arrival pressure, not worker health,
    // and would trip the loop on routing imbalance alone), fed back one
    // batch at a time (one controller lock per batch, not per request).
    // Virtual mode observes at admission instead — that path is
    // deterministic, this one is a live feedback loop.
    let feedback = (!cfg.virtual_time).then_some(()).and(shared.admission.as_ref());
    let mut observed: Vec<u64> = Vec::new();
    // `pop_batch` returns false only when the queue is closed *and*
    // drained, so every admitted request is executed — never dropped.
    while shared.queues[i].pop_batch(&mut batch, cfg.batch) {
        let n = batch.len() as u64;
        for env in batch.drain(..) {
            let acc = &mut phases[env.phase as usize];
            let traced = sampler.tick();
            let action = faults.map(|p| p.action(i, env.index, env.phase)).unwrap_or_default();
            tally.note(&action);
            // Queue wait is measured at dequeue, before execution eats
            // into it (wall mode only — virtual mode has no enqueue time).
            let queue_wait_ns =
                if traced { env.enqueued_at.map(|t| t.elapsed().as_nanos() as u64) } else { None };
            // Virtual mode: a request's cost is a pure function of the
            // request (virtual_cost) and the plan's action — deterministic
            // across runs. Wall mode: enqueue→completion, the latency a
            // client would see, with injected delays actually waited out.
            let (latency_ns, service_ns) = if cfg.virtual_time {
                let cost = virtual_cost(&env.req) * action.slow_factor.max(1) + action.extra_ns();
                let spans = run_one(&shared, env.req, env.ticket, acc, traced);
                record_trace(&trace, queue_wait_ns, spans);
                (cost, cost)
            } else {
                let started = Instant::now();
                let spans = run_one(&shared, env.req, env.ticket, acc, traced);
                record_trace(&trace, queue_wait_ns, spans);
                let executed = started.elapsed().as_nanos() as u64;
                let penalty =
                    executed.saturating_mul(action.slow_factor.max(1) - 1) + action.extra_ns();
                if penalty > 0 {
                    inject_wall_delay(penalty);
                }
                let service = started.elapsed().as_nanos() as u64;
                let total = env.enqueued_at.map_or(service, |t| t.elapsed().as_nanos() as u64);
                (total, service)
            };
            acc.ops += 1;
            acc.busy_ns += service_ns;
            acc.latency.record(latency_ns);
            if feedback.is_some() {
                observed.push(service_ns);
            }
        }
        if let Some(hook) = feedback {
            let mut ctl = hook.ctl.lock().unwrap_or_else(PoisonError::into_inner);
            for &ns in &observed {
                ctl.observe(i, ns);
            }
            drop(ctl);
            observed.clear();
        }
        shared.note_completed(n);
    }
    // Publish this worker's phase aggregates into the shared registry
    // (`serving.phase.{p}.*`) — the same numbers `shutdown` merges into
    // `ServingReport.phases`, but visible to mid-run snapshots too.
    let reg = tel.registry();
    for (p, acc) in phases.iter().enumerate() {
        if acc.ops == 0 {
            continue;
        }
        reg.counter(&format!("serving.phase.{p}.ops")).add(acc.ops);
        reg.counter(&format!("serving.phase.{p}.gets")).add(acc.gets);
        reg.counter(&format!("serving.phase.{p}.inserts")).add(acc.inserts);
        reg.counter(&format!("serving.phase.{p}.scans")).add(acc.scans);
        reg.counter(&format!("serving.phase.{p}.scan_hits")).add(acc.scan_hits);
        reg.counter(&format!("serving.phase.{p}.errors")).add(acc.errors);
        reg.histo(&format!("serving.phase.{p}.latency")).merge(&acc.latency);
    }
    if tally.total() > 0 {
        reg.counter("serving.fault.slowed").add(tally.slowed);
        reg.counter("serving.fault.stalled").add(tally.stalled);
        reg.counter("serving.fault.burst").add(tally.burst);
        reg.counter("serving.fault.spiked").add(tally.spiked);
    }
    WorkerOutput { phases, faults: tally }
}

/// Actually wait out an injected delay (wall mode). Short delays spin —
/// `thread::sleep` has ~50µs floor jitter that would swamp a 10µs spike —
/// long stalls sleep so a degraded worker doesn't burn a core.
fn inject_wall_delay(ns: u64) {
    if ns >= 1_000_000 {
        std::thread::sleep(Duration::from_nanos(ns));
    } else {
        let deadline = Instant::now() + Duration::from_nanos(ns);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// Execute (traced or not), tally, complete — one request end to end.
fn run_one<V: Value>(
    shared: &Shared<V>,
    req: Request<V>,
    ticket: Option<Arc<super::TicketState<V>>>,
    acc: &mut PhaseAccum,
    traced: bool,
) -> Option<ProbeSpans> {
    let (resp, spans) =
        if traced { execute_traced(shared, req) } else { (execute(shared, req), None) };
    finish(ticket, resp, acc);
    spans
}

/// Record one traced request's spans (no-op when tracing is off).
fn record_trace(
    trace: &Option<TraceHistos>,
    queue_wait_ns: Option<u64>,
    spans: Option<ProbeSpans>,
) {
    let Some(t) = trace else { return };
    if let Some(w) = queue_wait_ns {
        t.queue_wait.record(w);
    }
    if let Some(s) = spans {
        t.encode.record(s.encode_ns);
        t.probe.record(s.probe_ns);
        t.decode.record(s.decode_ns);
    }
}

/// Tally the response kind and complete the ticket (if any).
fn finish<V: Value>(
    ticket: Option<Arc<super::TicketState<V>>>,
    resp: Response<V>,
    acc: &mut PhaseAccum,
) {
    match &resp {
        Response::Get(_) => acc.gets += 1,
        Response::Insert(_) => acc.inserts += 1,
        Response::Scan(s) => {
            acc.scans += 1;
            acc.scan_hits += s.hits as u64;
        }
        Response::Error(_) => acc.errors += 1,
        // `Response` is non_exhaustive for downstream crates; in-crate the
        // match is complete.
        #[allow(unreachable_patterns)]
        _ => {}
    }
    if let Some(t) = ticket {
        t.complete(resp);
    }
}
