//! The serving worker loop: drain one queue in batches, execute against
//! the store, account latency per phase, complete tickets.

use std::sync::Arc;
use std::time::Instant;

use hope::Value;

use super::metrics::LatencyHistogram;
use super::{virtual_cost, Envelope, Request, Response, ScanSummary, Shared};

/// Per-phase accumulator one worker keeps (merged at shutdown).
#[derive(Debug)]
pub(crate) struct PhaseAccum {
    pub ops: u64,
    pub gets: u64,
    pub inserts: u64,
    pub scans: u64,
    pub scan_hits: u64,
    pub errors: u64,
    pub latency: LatencyHistogram,
    pub busy_ns: u64,
}

impl PhaseAccum {
    fn new() -> Self {
        PhaseAccum {
            ops: 0,
            gets: 0,
            inserts: 0,
            scans: 0,
            scan_hits: 0,
            errors: 0,
            latency: LatencyHistogram::new(),
            busy_ns: 0,
        }
    }
}

/// What one worker hands back when it exits.
#[derive(Debug)]
pub(crate) struct WorkerOutput {
    pub phases: Vec<PhaseAccum>,
}

/// Execute one request against the store.
fn execute<V: Value>(shared: &Shared<V>, req: Request<V>) -> Response<V> {
    match req {
        Request::Get { key } => match shared.store.get(&key) {
            Ok(v) => Response::Get(v),
            Err(e) => Response::Error(e),
        },
        Request::Insert { key, value } => match shared.store.insert(key, value) {
            Ok(prev) => Response::Insert(prev),
            Err(e) => Response::Error(e),
        },
        Request::Scan { low, high, limit } => {
            let mut cur = match shared.store.cursor(&low, &high, limit) {
                Ok(c) => c,
                Err(e) => return Response::Error(e),
            };
            let mut summary = ScanSummary::default();
            while let Some((k, _v)) = cur.next_hit() {
                summary.hits += 1;
                summary.key_bytes += k.len() as u64;
                if let Some(e) = cur.hit_epoch() {
                    if summary.epochs.last() != Some(&e) {
                        summary.epochs.push(e);
                    }
                }
            }
            match cur.error() {
                Some(e) => Response::Error(e.clone()),
                None => Response::Scan(summary),
            }
        }
    }
}

/// The worker thread body: worker `i` owns `shared.queues[i]`.
pub(crate) fn run<V: Value>(i: usize, shared: Arc<Shared<V>>) -> WorkerOutput {
    let cfg = shared.cfg;
    let mut phases: Vec<PhaseAccum> = (0..cfg.phases).map(|_| PhaseAccum::new()).collect();
    let mut batch: Vec<Envelope<V>> = Vec::with_capacity(cfg.batch);
    // `pop_batch` returns false only when the queue is closed *and*
    // drained, so every admitted request is executed — never dropped.
    while shared.queues[i].pop_batch(&mut batch, cfg.batch) {
        let n = batch.len() as u64;
        for env in batch.drain(..) {
            let acc = &mut phases[env.phase as usize];
            // Virtual mode: a request's cost is a pure function of the
            // request (virtual_cost) — deterministic across runs. Wall
            // mode: enqueue→completion, the latency a client would see.
            let (latency_ns, service_ns) = if cfg.virtual_time {
                let cost = virtual_cost(&env.req);
                let resp = execute(&shared, env.req);
                finish(env.ticket, resp, acc);
                (cost, cost)
            } else {
                let started = Instant::now();
                let resp = execute(&shared, env.req);
                finish(env.ticket, resp, acc);
                let service = started.elapsed().as_nanos() as u64;
                let total = env.enqueued_at.map_or(service, |t| t.elapsed().as_nanos() as u64);
                (total, service)
            };
            acc.ops += 1;
            acc.busy_ns += service_ns;
            acc.latency.record(latency_ns);
        }
        shared.note_completed(n);
    }
    WorkerOutput { phases }
}

/// Tally the response kind and complete the ticket (if any).
fn finish<V: Value>(
    ticket: Option<Arc<super::TicketState<V>>>,
    resp: Response<V>,
    acc: &mut PhaseAccum,
) {
    match &resp {
        Response::Get(_) => acc.gets += 1,
        Response::Insert(_) => acc.inserts += 1,
        Response::Scan(s) => {
            acc.scans += 1;
            acc.scan_hits += s.hits as u64;
        }
        Response::Error(_) => acc.errors += 1,
        // `Response` is non_exhaustive for downstream crates; in-crate the
        // match is complete.
        #[allow(unreachable_patterns)]
        _ => {}
    }
    if let Some(t) = ticket {
        t.complete(resp);
    }
}
