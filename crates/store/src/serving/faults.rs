//! Deterministic fault injection for the serving pipeline.
//!
//! A [`FaultPlan`] is a seeded, serializable description of the faults a
//! run should suffer. Every decision it makes is a **pure function of
//! `(worker, request index, phase)`** — the request index is the
//! admission ticket the server stamps on each envelope — hashed together
//! with the plan's seed through a SplitMix64 finalizer. No clocks, no
//! global state: over a fixed op sequence submitted in a fixed order, two
//! runs suffer *exactly* the same faults, which is what lets the
//! `fig20_fault_slo` acceptance binary diff byte-identical `DIGEST` lines
//! across virtual-time runs while one worker is degraded 10×.
//!
//! Four fault families:
//!
//! * **probe slowdown** — every request executed by the degraded worker
//!   pays [`FaultPlan::slow_factor`]× its service cost;
//! * **stalls** — 1-in-[`FaultPlan::stall_every`] degraded-worker
//!   requests pay a large fixed [`FaultPlan::stall_ns`] pause (the
//!   "worker wedged on an fsync" shape);
//! * **latency spikes** — 1-in-[`FaultPlan::spike_every`] requests on
//!   *any* worker pay [`FaultPlan::spike_ns`] (background noise: page
//!   faults, TLB shootdowns);
//! * **queue-pressure bursts** — recurring windows of the request-index
//!   space ([`FaultPlan::burst_len`] out of every
//!   [`FaultPlan::burst_every`] indices) pay [`FaultPlan::burst_ns`]
//!   each; in wall mode the consecutive delays stack up inside one
//!   worker's queue, which is exactly a pressure burst.
//!
//! In virtual time the penalties are added to [`virtual_cost`]
//! (deterministic bookkeeping); in wall mode the worker really waits them
//! out, so queues back up for real.
//!
//! The plan also covers the **maintenance path**: installed on a store
//! via [`HopeStore::inject_faults`], it forces every
//! [`FaultPlan::rebuild_fail_every`]-th rebuild attempt per shard to fail
//! with [`StoreError::FaultInjected`] *before* any build work happens.
//! The shard's normal failure handling takes over from there: the old
//! generation keeps serving, `store.shard.{i}.rebuild_errors` ticks, and
//! a [`RebuildFailed`](crate::telemetry::EventKind::RebuildFailed) event
//! lands in the ring — so every injected failure is attributable from
//! telemetry alone.
//!
//! Finally, the **degraded-mode hook**: [`FaultPlan::reroute`] sheds a
//! configured fraction ([`FaultPlan::shed_pct`]) of the degraded worker's
//! would-be traffic to healthy peers at admission, chosen
//! deterministically per request. [`Server::push`] consults it so the
//! fixed op stream never queues behind the sick worker; cross-worker
//! execution is safe by construction (readers never block, writers
//! serialize on the shard's writer mutex, not the worker).
//!
//! [`virtual_cost`]: super::virtual_cost
//! [`Server::push`]: super::Server
//! [`HopeStore::inject_faults`]: crate::HopeStore::inject_faults
//! [`StoreError::FaultInjected`]: crate::StoreError::FaultInjected

use std::fmt;
use std::str::FromStr;

/// Domain-separation salts, one per decision family.
const SALT_STALL: u64 = 0x5354_414C;
const SALT_SPIKE: u64 = 0x5350_494B;
const SALT_SHED: u64 = 0x5348_4544;
const SALT_PICK: u64 = 0x5049_434B;

/// SplitMix64-style finalizer over the decision coordinates. Pure; the
/// whole determinism story rests on this taking nothing but its
/// arguments. Shared with the admission controller's shed draw (same
/// determinism contract, disjoint salts).
pub(crate) fn mix(seed: u64, worker: u64, index: u64, phase: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(worker.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(phase.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one request suffers, as decided by [`FaultPlan::action`]. The
/// components compose: a degraded-worker request can be slowed *and*
/// stalled *and* sit inside a burst window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// Service-cost multiplier (`1` = unimpaired).
    pub slow_factor: u64,
    /// Stall pause added, ns.
    pub stall_ns: u64,
    /// Queue-pressure-burst delay added, ns.
    pub burst_ns: u64,
    /// Latency-spike delay added, ns.
    pub spike_ns: u64,
}

impl Default for FaultAction {
    fn default() -> Self {
        FaultAction { slow_factor: 1, stall_ns: 0, burst_ns: 0, spike_ns: 0 }
    }
}

impl FaultAction {
    /// True when the request is entirely unimpaired.
    pub fn is_none(&self) -> bool {
        *self == FaultAction::default()
    }

    /// Total additive delay (stall + burst + spike), ns.
    pub fn extra_ns(&self) -> u64 {
        self.stall_ns + self.burst_ns + self.spike_ns
    }
}

/// Per-worker tally of the faults actually injected (reported in
/// [`WorkerStats`](super::WorkerStats) and summed into the
/// `serving.fault.*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Requests that paid the degraded-worker slow factor.
    pub slowed: u64,
    /// Requests that hit a stall.
    pub stalled: u64,
    /// Requests inside a queue-pressure burst window.
    pub burst: u64,
    /// Requests that hit a latency spike.
    pub spiked: u64,
}

impl FaultTally {
    /// Count one request's action into the tally.
    pub fn note(&mut self, a: &FaultAction) {
        self.slowed += u64::from(a.slow_factor > 1);
        self.stalled += u64::from(a.stall_ns > 0);
        self.burst += u64::from(a.burst_ns > 0);
        self.spiked += u64::from(a.spike_ns > 0);
    }

    /// Fold another worker's tally into this one.
    pub fn merge(&mut self, other: &FaultTally) {
        self.slowed += other.slowed;
        self.stalled += other.stalled;
        self.burst += other.burst;
        self.spiked += other.spiked;
    }

    /// Total injections across all families.
    pub fn total(&self) -> u64 {
        self.slowed + self.stalled + self.burst + self.spiked
    }
}

/// A deterministic, serializable fault-injection plan (see module docs).
///
/// `Copy` on purpose: it rides inside
/// [`ServingConfig`](super::ServingConfig) and is re-read per request
/// with no synchronization. The [`Default`] plan injects nothing.
///
/// Serialization round-trips through `Display`/`FromStr`:
///
/// ```
/// use hope_store::serving::FaultPlan;
/// let plan = FaultPlan { degraded_worker: Some(1), slow_factor: 10, ..FaultPlan::default() };
/// let wire = plan.to_string();
/// assert_eq!(wire.parse::<FaultPlan>().unwrap(), plan);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// The sick worker (slow factor, stalls and shedding apply to it);
    /// `None` degrades nobody.
    pub degraded_worker: Option<usize>,
    /// Service-cost multiplier on the degraded worker (≥ 1; `1` = none).
    pub slow_factor: u64,
    /// 1-in-N stall probability on the degraded worker (`0` = never).
    pub stall_every: u64,
    /// Stall pause, ns.
    pub stall_ns: u64,
    /// 1-in-N spike probability on any worker (`0` = never).
    pub spike_every: u64,
    /// Spike delay, ns.
    pub spike_ns: u64,
    /// Burst window period over the request-index space (`0` = never).
    pub burst_every: u64,
    /// Burst window length (indices `i % burst_every < burst_len` burn).
    pub burst_len: u64,
    /// Per-request delay inside a burst window, ns.
    pub burst_ns: u64,
    /// Percentage (`0..=100`) of the degraded worker's would-be traffic
    /// the admission path sheds to healthy workers.
    pub shed_pct: u8,
    /// Fail every N-th rebuild attempt per shard, counting from the
    /// first (`0` = never; `2` = attempts 0, 2, 4 … fail, so a failed
    /// rebuild heals on the next pass).
    pub rebuild_fail_every: u64,
    /// Bitmask of phases the serving-side faults are active in (bit `p`
    /// = phase `p`; the maintenance path has no phase and ignores it).
    pub phase_mask: u16,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            degraded_worker: None,
            slow_factor: 1,
            stall_every: 0,
            stall_ns: 0,
            spike_every: 0,
            spike_ns: 0,
            burst_every: 0,
            burst_len: 0,
            burst_ns: 0,
            shed_pct: 0,
            rebuild_fail_every: 0,
            phase_mask: u16::MAX,
        }
    }
}

impl FaultPlan {
    /// True when the plan can inject anything at all on the serving side.
    pub fn any_serving_faults(&self) -> bool {
        (self.degraded_worker.is_some() && (self.slow_factor > 1 || self.stall_every > 0))
            || self.spike_every > 0
            || (self.burst_every > 0 && self.burst_len > 0)
    }

    /// True when the plan's serving-side faults apply in `phase`.
    pub fn active(&self, phase: u8) -> bool {
        phase < 16 && self.phase_mask & (1 << phase) != 0
    }

    /// True when `worker` is the plan's degraded worker and the plan is
    /// active in `phase` — the degraded-mode hook admission control and
    /// report consumers query.
    pub fn is_degraded(&self, worker: usize, phase: u8) -> bool {
        self.degraded_worker == Some(worker) && self.active(phase)
    }

    /// The faults request `index` suffers when executed by `worker` in
    /// `phase`. Pure: same arguments, same answer, every run.
    pub fn action(&self, worker: usize, index: u64, phase: u8) -> FaultAction {
        let mut a = FaultAction::default();
        if !self.active(phase) {
            return a;
        }
        let w = worker as u64;
        if self.degraded_worker == Some(worker) {
            a.slow_factor = self.slow_factor.max(1);
            if self.stall_every > 0
                && mix(self.seed, w, index, phase.into(), SALT_STALL)
                    .is_multiple_of(self.stall_every)
            {
                a.stall_ns = self.stall_ns;
            }
        }
        if self.spike_every > 0
            && mix(self.seed, w, index, phase.into(), SALT_SPIKE).is_multiple_of(self.spike_every)
        {
            a.spike_ns = self.spike_ns;
        }
        if self.burst_every > 0 && index % self.burst_every < self.burst_len {
            a.burst_ns = self.burst_ns;
        }
        a
    }

    /// The degraded-mode shed decision: when request `index` would be
    /// routed to the degraded `worker` in an active `phase`, return the
    /// healthy worker to send it to instead (for `shed_pct`% of that
    /// traffic, chosen deterministically). `None` = keep the home worker.
    pub fn reroute(&self, worker: usize, index: u64, phase: u8, workers: usize) -> Option<usize> {
        if workers < 2 || self.shed_pct == 0 || !self.is_degraded(worker, phase) {
            return None;
        }
        let w = worker as u64;
        if mix(self.seed, w, index, phase.into(), SALT_SHED) % 100 >= u64::from(self.shed_pct) {
            return None;
        }
        // Any offset in 1..workers lands off the degraded worker.
        let hop = 1 + mix(self.seed, w, index, phase.into(), SALT_PICK) % (workers as u64 - 1);
        Some((worker + hop as usize) % workers)
    }

    /// Maintenance-path decision: does rebuild attempt number `attempt`
    /// (0-based, counted per shard while the plan is installed) fail?
    pub fn rebuild_fails(&self, _shard: u32, attempt: u64) -> bool {
        self.rebuild_fail_every > 0 && attempt.is_multiple_of(self.rebuild_fail_every)
    }
}

/// Compact `key=value;…` wire format (hand-rolled; the workspace is
/// serde-free). [`FromStr`] parses exactly what this prints.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let degraded = match self.degraded_worker {
            Some(w) => w.to_string(),
            None => "none".to_string(),
        };
        write!(
            f,
            "seed={};degraded={};slow={};stall={}/{};spike={}/{};burst={}/{}/{};\
             shed={};rebuild_fail={};phases={:x}",
            self.seed,
            degraded,
            self.slow_factor,
            self.stall_every,
            self.stall_ns,
            self.spike_every,
            self.spike_ns,
            self.burst_every,
            self.burst_len,
            self.burst_ns,
            self.shed_pct,
            self.rebuild_fail_every,
            self.phase_mask,
        )
    }
}

/// Error from parsing a [`FaultPlan`] wire string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultPlanError {
    /// The field (or shape) that failed to parse.
    pub field: &'static str,
}

impl fmt::Display for ParseFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: bad `{}`", self.field)
    }
}

impl std::error::Error for ParseFaultPlanError {}

impl FromStr for FaultPlan {
    type Err = ParseFaultPlanError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn num(v: &str, field: &'static str) -> Result<u64, ParseFaultPlanError> {
            v.parse().map_err(|_| ParseFaultPlanError { field })
        }
        fn pair(v: &str, field: &'static str) -> Result<(u64, u64), ParseFaultPlanError> {
            match v.split_once('/') {
                Some((a, b)) => Ok((num(a, field)?, num(b, field)?)),
                None => Err(ParseFaultPlanError { field }),
            }
        }
        let mut plan = FaultPlan::default();
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, val) =
                part.split_once('=').ok_or(ParseFaultPlanError { field: "key=value" })?;
            match key {
                "seed" => plan.seed = num(val, "seed")?,
                "degraded" => {
                    plan.degraded_worker = match val {
                        "none" => None,
                        w => Some(num(w, "degraded")? as usize),
                    }
                }
                "slow" => plan.slow_factor = num(val, "slow")?.max(1),
                "stall" => (plan.stall_every, plan.stall_ns) = pair(val, "stall")?,
                "spike" => (plan.spike_every, plan.spike_ns) = pair(val, "spike")?,
                "burst" => {
                    let mut it = val.splitn(3, '/');
                    let every = it.next().ok_or(ParseFaultPlanError { field: "burst" })?;
                    let len = it.next().ok_or(ParseFaultPlanError { field: "burst" })?;
                    let ns = it.next().ok_or(ParseFaultPlanError { field: "burst" })?;
                    plan.burst_every = num(every, "burst")?;
                    plan.burst_len = num(len, "burst")?;
                    plan.burst_ns = num(ns, "burst")?;
                }
                "shed" => {
                    let p = num(val, "shed")?;
                    if p > 100 {
                        return Err(ParseFaultPlanError { field: "shed" });
                    }
                    plan.shed_pct = p as u8;
                }
                "rebuild_fail" => plan.rebuild_fail_every = num(val, "rebuild_fail")?,
                "phases" => {
                    plan.phase_mask = u16::from_str_radix(val, 16)
                        .map_err(|_| ParseFaultPlanError { field: "phases" })?
                }
                _ => return Err(ParseFaultPlanError { field: "unknown key" }),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercised_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            degraded_worker: Some(1),
            slow_factor: 10,
            stall_every: 97,
            stall_ns: 50_000,
            spike_every: 64,
            spike_ns: 2_000,
            burst_every: 4096,
            burst_len: 32,
            burst_ns: 8_000,
            shed_pct: 75,
            rebuild_fail_every: 2,
            phase_mask: 0b110,
        }
    }

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(!plan.any_serving_faults());
        for (w, i, p) in [(0, 0, 0), (3, 999, 2), (1, 123_456, 15)] {
            assert!(plan.action(w, i, p).is_none());
            assert_eq!(plan.reroute(w, i, p, 4), None);
        }
        assert!(!plan.rebuild_fails(0, 0));
    }

    #[test]
    fn decisions_are_pure_and_phase_gated() {
        let plan = exercised_plan();
        for i in 0..10_000u64 {
            for w in 0..4usize {
                assert_eq!(plan.action(w, i, 1), plan.action(w, i, 1), "impure at {w}/{i}");
                // Phase 0 is masked out: no serving fault fires there.
                assert!(plan.action(w, i, 0).is_none());
                assert_eq!(plan.reroute(w, i, 0, 4), None);
            }
        }
    }

    #[test]
    fn degradation_targets_only_the_sick_worker() {
        let plan = exercised_plan();
        let (mut stalls, mut spikes, mut bursts) = (0u64, 0u64, 0u64);
        for i in 0..100_000u64 {
            let sick = plan.action(1, i, 1);
            assert_eq!(sick.slow_factor, 10);
            stalls += u64::from(sick.stall_ns > 0);
            spikes += u64::from(sick.spike_ns > 0);
            bursts += u64::from(sick.burst_ns > 0);
            for w in [0usize, 2, 3] {
                let healthy = plan.action(w, i, 1);
                assert_eq!(healthy.slow_factor, 1);
                assert_eq!(healthy.stall_ns, 0, "stall on a healthy worker");
            }
        }
        // 1-in-97, 1-in-64 and 32-in-4096 rates over 100k draws.
        assert!((700..=1_400).contains(&stalls), "stalls = {stalls}");
        assert!((1_100..=2_100).contains(&spikes), "spikes = {spikes}");
        assert_eq!(bursts, 100_000 / 4096 * 32 + 32, "bursts = {bursts}");
    }

    #[test]
    fn reroute_sheds_the_configured_fraction_to_healthy_workers() {
        let plan = exercised_plan();
        let mut shed = 0u64;
        for i in 0..100_000u64 {
            // Healthy home workers are never rerouted.
            assert_eq!(plan.reroute(0, i, 1, 4), None);
            if let Some(alt) = plan.reroute(1, i, 1, 4) {
                assert_ne!(alt, 1, "shed back onto the sick worker");
                assert!(alt < 4);
                shed += 1;
            }
        }
        let pct = shed as f64 / 1_000.0;
        assert!((70.0..=80.0).contains(&pct), "shed {pct:.1}% instead of ~75%");
        // Two workers: the only healthy peer is the other one.
        assert!(!matches!(plan.reroute(1, 3, 1, 2), Some(alt) if alt != 0));
    }

    #[test]
    fn rebuild_failures_follow_the_every_n_cadence() {
        let plan = exercised_plan();
        for shard in 0..4u32 {
            assert!(plan.rebuild_fails(shard, 0));
            assert!(!plan.rebuild_fails(shard, 1));
            assert!(plan.rebuild_fails(shard, 2));
        }
    }

    #[test]
    fn wire_format_round_trips() {
        for plan in [FaultPlan::default(), exercised_plan()] {
            let wire = plan.to_string();
            assert_eq!(wire.parse::<FaultPlan>().unwrap(), plan, "{wire}");
        }
        assert!("slow=ten".parse::<FaultPlan>().is_err());
        assert!("shed=101".parse::<FaultPlan>().is_err());
        assert!("nonsense".parse::<FaultPlan>().is_err());
        assert!("bogus=1".parse::<FaultPlan>().is_err());
        // Partial strings fill the rest from the default plan.
        let p: FaultPlan = "degraded=2;slow=4".parse().unwrap();
        assert_eq!(p.degraded_worker, Some(2));
        assert_eq!(p.slow_factor, 4);
        assert_eq!(p.phase_mask, u16::MAX);
    }

    #[test]
    fn fault_action_accounting() {
        let mut tally = FaultTally::default();
        tally.note(&FaultAction::default());
        assert_eq!(tally.total(), 0);
        let a = FaultAction { slow_factor: 10, stall_ns: 5, burst_ns: 0, spike_ns: 2 };
        assert!(!a.is_none());
        assert_eq!(a.extra_ns(), 7);
        tally.note(&a);
        assert_eq!((tally.slowed, tally.stalled, tally.burst, tally.spiked), (1, 1, 0, 1));
        let mut sum = FaultTally::default();
        sum.merge(&tally);
        sum.merge(&tally);
        assert_eq!(sum.total(), 6);
    }
}
