//! Bounded MPSC request queues with admission control.
//!
//! Each serving worker owns exactly one [`BoundedQueue`]; any number of
//! producer threads push into it. The queue is the harness's **admission
//! controller**: [`BoundedQueue::try_push`] never blocks and never grows
//! the queue past its budget — when the worker has fallen behind, the
//! push is refused and the request handed back to the caller, who decides
//! whether to shed the load or to apply backpressure by waiting
//! ([`BoundedQueue::push_blocking`]).
//!
//! The implementation is a `Mutex<VecDeque>` with two condvars (space /
//! items) rather than a lock-free ring: the consumer drains in batches,
//! so producers and the worker exchange one lock round per *batch*, not
//! per request, and the mutex keeps the admitted/completed accounting
//! exact — which the overload tests assert op-for-op.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use crate::telemetry::{Counter, Gauge, MetricsRegistry};

/// The telemetry handles one queue's admission accounting lands on.
///
/// [`QueueCounters::detached`] (the [`BoundedQueue::new`] default) counts
/// without exporting anywhere — unit tests and standalone queues pay one
/// relaxed atomic per op either way. [`QueueCounters::register`] puts the
/// same handles under `serving.worker.{i}.*` in a registry, which is how
/// the server wires every worker queue into the store's telemetry hub.
#[derive(Debug, Clone, Default)]
pub struct QueueCounters {
    /// Total requests ever admitted.
    pub enqueued: Counter,
    /// Requests refused by `try_push` because the queue was at budget.
    pub rejected: Counter,
    /// Consumer-side batch drains (one lock round each).
    pub batches: Counter,
    /// Deepest backlog ever observed at admission time.
    pub peak_depth: Gauge,
    /// Requests homed on this queue's worker that the adaptive admission
    /// controller rerouted to a healthy peer instead.
    pub shed_away: Counter,
}

impl QueueCounters {
    /// Handles not registered anywhere (they count, but never export).
    pub fn detached() -> QueueCounters {
        QueueCounters::default()
    }

    /// Handles registered under `serving.worker.{worker}.*`.
    pub fn register(reg: &MetricsRegistry, worker: usize) -> QueueCounters {
        QueueCounters {
            enqueued: reg.counter(&format!("serving.worker.{worker}.enqueued")),
            rejected: reg.counter(&format!("serving.worker.{worker}.rejected")),
            batches: reg.counter(&format!("serving.worker.{worker}.batches")),
            peak_depth: reg.gauge(&format!("serving.worker.{worker}.queue_depth_peak")),
            shed_away: reg.counter(&format!("serving.worker.{worker}.shed_away")),
        }
    }
}

/// A bounded multi-producer single-consumer queue.
///
/// `close()` wakes everyone; after close, pushes fail and pops drain the
/// remainder — an admitted request is never dropped.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    /// Signals consumers: items available (or the queue closed).
    items: Condvar,
    /// Signals blocked producers: space freed (or the queue closed).
    space: Condvar,
    capacity: usize,
    /// Admission accounting (shared registry handles or detached).
    counters: QueueCounters,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The target queue was at its admission budget (shed or retry).
    Overloaded,
    /// The server is shutting down; no new requests are admitted.
    Closed,
}

/// Counters snapshot of one worker queue (see [`BoundedQueue`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests admitted over the queue's lifetime.
    pub enqueued: u64,
    /// Requests refused with [`RejectReason::Overloaded`].
    pub rejected: u64,
    /// Consumer batch drains performed.
    pub batches: u64,
    /// Deepest backlog observed at admission time.
    pub peak_depth: u64,
    /// Requests homed here that adaptive admission shed to a peer.
    pub shed_away: u64,
}

impl<T> BoundedQueue<T> {
    /// New queue with an admission budget of `capacity` (min 1) and
    /// detached (unexported) counters.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue::with_counters(capacity, QueueCounters::detached())
    }

    /// New queue recording its admission accounting into `counters`
    /// (typically [`QueueCounters::register`]ed in a telemetry registry).
    pub fn with_counters(capacity: usize, counters: QueueCounters) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            items: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            counters,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn note_admitted(&self, depth: usize) {
        self.counters.enqueued.inc();
        self.counters.peak_depth.record_max(depth as u64);
    }

    /// Admission-controlled push: refuse instead of blocking or growing.
    pub fn try_push(&self, item: T) -> Result<(), (T, RejectReason)> {
        let mut q = self.lock();
        if q.closed {
            return Err((item, RejectReason::Closed));
        }
        if q.items.len() >= self.capacity {
            drop(q);
            self.counters.rejected.inc();
            return Err((item, RejectReason::Overloaded));
        }
        q.items.push_back(item);
        let depth = q.items.len();
        drop(q);
        self.note_admitted(depth);
        self.items.notify_one();
        Ok(())
    }

    /// Backpressure push: wait for space instead of shedding. Used by
    /// drivers that must admit a fixed op sequence (the deterministic
    /// `--quick` benches). Fails only when the queue is closed.
    pub fn push_blocking(&self, item: T) -> Result<(), (T, RejectReason)> {
        let mut q = self.lock();
        while q.items.len() >= self.capacity && !q.closed {
            q = self.space.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        if q.closed {
            return Err((item, RejectReason::Closed));
        }
        q.items.push_back(item);
        let depth = q.items.len();
        drop(q);
        self.note_admitted(depth);
        self.items.notify_one();
        Ok(())
    }

    /// Consumer side: move up to `max` items into `out`, blocking while
    /// the queue is empty and open. Returns `false` once the queue is
    /// closed **and** fully drained — the worker's exit condition.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> bool {
        let mut q = self.lock();
        while q.items.is_empty() {
            if q.closed {
                return false;
            }
            q = self.items.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        let take = max.max(1).min(q.items.len());
        out.extend(q.items.drain(..take));
        drop(q);
        self.counters.batches.inc();
        // A batch drain can free many slots: wake every blocked producer.
        self.space.notify_all();
        true
    }

    /// Close the queue: pushes fail from now on, consumers drain the rest.
    pub fn close(&self) {
        self.lock().closed = true;
        self.items.notify_all();
        self.space.notify_all();
    }

    /// Current backlog (diagnostics; racy by nature).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Note a request homed on this queue's worker that adaptive
    /// admission rerouted to a peer (it never entered this queue).
    pub fn note_shed_away(&self) {
        self.counters.shed_away.inc();
    }

    /// Counters snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.counters.enqueued.get(),
            rejected: self.counters.rejected.get(),
            batches: self.counters.batches.get(),
            peak_depth: self.counters.peak_depth.get(),
            shed_away: self.counters.shed_away.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_at_capacity() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (back, why) = q.try_push(3).unwrap_err();
        assert_eq!((back, why), (3, RejectReason::Overloaded));
        let st = q.stats();
        assert_eq!((st.enqueued, st.rejected, st.peak_depth), (2, 1, 2));
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 10));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_drains_admitted_items_then_stops() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8).unwrap_err().1, RejectReason::Closed);
        assert_eq!(q.push_blocking(9).unwrap_err().1, RejectReason::Closed);
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 10), "admitted item must still drain");
        assert_eq!(out, vec![7]);
        assert!(!q.pop_batch(&mut out, 10), "closed and empty ends the consumer");
    }

    #[test]
    fn push_blocking_waits_for_space() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_blocking(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        assert!(q.pop_batch(&mut out, 1));
        assert!(producer.join().unwrap(), "producer should admit after space frees");
        out.clear();
        assert!(q.pop_batch(&mut out, 1));
        assert_eq!(out, vec![2]);
    }
}
