//! # The serving harness: thread-per-core request pipelines with SLOs
//!
//! [`HopeStore`] is `Sync` — any thread may call it — but a store that
//! serves millions of users is not driven by "any thread": it is driven
//! by a fixed pool of core-pinned workers fed by bounded queues, because
//! that is the shape that makes tail latency *governable*. This module is
//! that shape, as a library:
//!
//! * **Thread-per-core workers with shard affinity** — [`Server::start`]
//!   spawns `workers` threads; every request is routed by its key's
//!   shard ([`HopeStore::shard_of`], i.e. by encoded-prefix range) to the
//!   worker owning that shard (`shard % workers`). Point writes for one
//!   shard therefore always execute on the same worker, so the shard's
//!   writer mutex is never contended and its cache lines stay put; scans
//!   route by their low bound and may read across shards (reads never
//!   block, so cross-worker reads are safe by construction).
//! * **Bounded queues with admission control** — each worker owns one
//!   [`queue::BoundedQueue`] of `queue_capacity` requests.
//!   [`Server::try_submit`] *refuses* work beyond that budget and hands
//!   the request back ([`Rejected`]) instead of queueing unboundedly:
//!   under overload the system sheds load at the front door with a
//!   bounded worst-case queue wait, rather than melting down with
//!   seconds-deep queues. [`Server::submit`] is the backpressure
//!   variant: it waits for space, admitting everything (what a
//!   deterministic benchmark driver wants).
//! * **Batched execution** — workers drain up to `batch` requests per
//!   queue lock round, amortizing synchronization; gets/inserts run on
//!   the store's zero-alloc probe paths and scans pull through a
//!   [`RangeCursor`](crate::RangeCursor), recording the epoch of every
//!   generation they touch (the hot-swap torn-read check rides on this).
//! * **Tail-latency accounting** — per phase (the driver tags each
//!   request with a phase id), workers record latency into a
//!   [`metrics::LatencyHistogram`]: wall-clock enqueue→completion by
//!   default, or **virtual time** ([`ServingConfig::virtual_time`]) where
//!   each request costs a deterministic amount derived from the request
//!   alone ([`virtual_cost`]) — two runs over the same op sequence then
//!   produce byte-identical histograms, which is what lets CI gate on
//!   p99/p999 (`fig18_serving_slo --quick`).
//!
//! ```
//! use std::sync::Arc;
//! use hope_store::prelude::*;
//! use hope_store::serving::{Request, Response, Server, ServingConfig};
//!
//! let pairs = (0..500u64).map(|i| (format!("com.gmail@u{i:04}").into_bytes(), i));
//! let store = Arc::new(HopeStore::build(StoreConfig::default(), pairs)?);
//! let server = Server::start(Arc::clone(&store), ServingConfig::default())?;
//!
//! let t = server.submit(Request::get(b"com.gmail@u0007".to_vec()), 0).unwrap();
//! assert!(matches!(t.wait(), Response::Get(Some(7))));
//! let t = server.submit(Request::scan(b"com.gmail@u0100".to_vec(),
//!                                     b"com.gmail@u0102".to_vec(), 10), 0).unwrap();
//! match t.wait() {
//!     Response::Scan(s) => assert_eq!(s.hits, 3),
//!     other => panic!("{other:?}"),
//! }
//! let report = server.shutdown();
//! assert_eq!(report.phases[0].ops, 2);
//! # Ok::<(), StoreError>(())
//! ```

pub mod admission;
pub mod faults;
pub mod metrics;
pub mod queue;
mod worker;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use hope::Value;

use crate::error::StoreError;
use crate::HopeStore;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionReport};
pub use faults::{FaultAction, FaultPlan, FaultTally, ParseFaultPlanError};
pub use metrics::LatencyHistogram;
pub use queue::{QueueCounters, QueueStats, RejectReason};

use crate::telemetry::{Counter, Event, EventKind, Gauge, Telemetry, TelemetrySnapshot};
use queue::BoundedQueue;

/// Serving-pipeline parameters ([`Server::start`]).
#[derive(Debug, Clone, Copy)]
pub struct ServingConfig {
    /// Worker threads; shards are owned `shard % workers` (≥ 1).
    pub workers: usize,
    /// Per-worker queue budget: requests admitted beyond it are refused
    /// by [`Server::try_submit`] (≥ 1).
    pub queue_capacity: usize,
    /// Max requests a worker drains per queue lock round (≥ 1).
    pub batch: usize,
    /// Latency phases tracked (the driver tags requests; `1..=16`).
    pub phases: usize,
    /// Deterministic virtual-time latency accounting (see [`virtual_cost`])
    /// instead of wall-clock enqueue→completion.
    pub virtual_time: bool,
    /// Sampled request tracing: every Nth request per worker runs on the
    /// store's traced probe paths and records queue-wait / encode / probe
    /// / decode spans into `serving.trace.*` histograms. `0` disables
    /// tracing (the default — the untraced hot path pays nothing).
    pub trace_sample_every: u32,
    /// Deterministic fault injection (see [`faults`]): per-worker
    /// slowdowns, stalls, spikes, queue-pressure bursts, and the
    /// degraded-mode shed hook at admission. `None` (the default)
    /// injects nothing and costs one branch per request.
    pub faults: Option<FaultPlan>,
    /// Closed-loop adaptive admission control (see [`admission`]): a
    /// per-worker controller watches windowed latency at admission,
    /// detects a degrading worker against its peers, and autonomously
    /// sheds a graduated fraction of its traffic to healthy workers —
    /// no plan-driven `shed_pct` needed. `None` (the default) disables
    /// the loop entirely.
    pub admission: Option<AdmissionConfig>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 4,
            queue_capacity: 1024,
            batch: 64,
            phases: 1,
            virtual_time: false,
            trace_sample_every: 0,
            faults: None,
            admission: None,
        }
    }
}

/// One serving request. Keys are owned (they cross a thread boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request<V: Value = u64> {
    /// Point lookup.
    Get {
        /// Source key to look up.
        key: Vec<u8>,
    },
    /// Insert or update.
    Insert {
        /// Source key to write.
        key: Vec<u8>,
        /// Value to store.
        value: V,
    },
    /// Bounded inclusive range scan, executed through a pull cursor.
    Scan {
        /// Inclusive low bound.
        low: Vec<u8>,
        /// Inclusive high bound.
        high: Vec<u8>,
        /// Max hits returned.
        limit: usize,
    },
    /// Bounded inclusive range scan over a point-in-time
    /// [`Snapshot`](crate::versioned::Snapshot) the worker captures at
    /// execution start — the serving-side face of the store's O(1)
    /// copy-on-write snapshots. Unlike [`Request::Scan`], concurrent
    /// writes and dictionary swaps are invisible for the whole scan, in
    /// every shard.
    SnapshotScan {
        /// Inclusive low bound.
        low: Vec<u8>,
        /// Inclusive high bound.
        high: Vec<u8>,
        /// Max hits returned.
        limit: usize,
    },
}

impl<V: Value> Request<V> {
    /// Point-lookup request.
    pub fn get(key: Vec<u8>) -> Self {
        Request::Get { key }
    }

    /// Insert/update request.
    pub fn insert(key: Vec<u8>, value: V) -> Self {
        Request::Insert { key, value }
    }

    /// Range-scan request.
    pub fn scan(low: Vec<u8>, high: Vec<u8>, limit: usize) -> Self {
        Request::Scan { low, high, limit }
    }

    /// Snapshot-pinned range-scan request.
    pub fn snapshot_scan(low: Vec<u8>, high: Vec<u8>, limit: usize) -> Self {
        Request::SnapshotScan { low, high, limit }
    }

    /// The key this request routes on (scans route by their low bound).
    pub fn routing_key(&self) -> &[u8] {
        match self {
            Request::Get { key } | Request::Insert { key, .. } => key,
            Request::Scan { low, .. } | Request::SnapshotScan { low, .. } => low,
        }
    }
}

/// What a scan executed by a worker observed (hit payloads are consumed
/// by the worker; the driver-side summary is what SLO checks need).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanSummary {
    /// Hits emitted (≤ the request's limit).
    pub hits: usize,
    /// Source-key bytes across all hits.
    pub key_bytes: u64,
    /// Epochs of the generations that served hits, in shard order,
    /// consecutive duplicates collapsed. A scan that reads S shards must
    /// observe at most S epochs — one per shard — or a hot-swap tore it
    /// (the `store_swap` harness test asserts exactly this).
    pub epochs: Vec<u64>,
}

impl ScanSummary {
    /// Record the epoch of the generation that served the next hit,
    /// collapsing consecutive duplicates — the invariant-preserving way
    /// to grow [`epochs`](ScanSummary::epochs): a cursor pins one
    /// generation per shard, so a well-formed scan notes at most one
    /// epoch per shard it touches, in shard order.
    pub fn note_epoch(&mut self, epoch: u64) {
        if self.epochs.last() != Some(&epoch) {
            self.epochs.push(epoch);
        }
    }
}

/// A completed request's result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response<V: Value = u64> {
    /// Result of a [`Request::Get`].
    Get(Option<V>),
    /// Previous value replaced by a [`Request::Insert`].
    Insert(Option<V>),
    /// Summary of a [`Request::Scan`] or [`Request::SnapshotScan`].
    Scan(ScanSummary),
    /// The store refused the operation (codec validation and the like).
    Error(StoreError),
}

/// A request refused at admission; the request comes back to the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejected<V: Value = u64> {
    /// The refused request, returned intact for retry or shedding.
    pub request: Request<V>,
    /// Why it was refused.
    pub reason: RejectReason,
}

/// Completion handle for one admitted request. Every admitted request is
/// completed exactly once — including requests still queued at
/// [`Server::shutdown`], which are drained, not dropped.
#[derive(Debug)]
pub struct Ticket<V: Value = u64>(Arc<TicketState<V>>);

#[derive(Debug)]
pub(crate) struct TicketState<V: Value> {
    slot: Mutex<Option<Response<V>>>,
    done: Condvar,
}

impl<V: Value> TicketState<V> {
    fn new() -> Arc<Self> {
        Arc::new(TicketState { slot: Mutex::new(None), done: Condvar::new() })
    }

    pub(crate) fn complete(&self, resp: Response<V>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(slot.is_none(), "a request completed twice");
        *slot = Some(resp);
        self.done.notify_all();
    }
}

impl<V: Value> Ticket<V> {
    /// Block until the request completes and take its response.
    pub fn wait(self) -> Response<V> {
        let mut slot = self.0.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(resp) = slot.take() {
                return resp;
            }
            slot = self.0.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// True once the request has completed (non-blocking).
    pub fn is_done(&self) -> bool {
        self.0.slot.lock().unwrap_or_else(PoisonError::into_inner).is_some()
    }
}

/// One queued request with its accounting envelope.
#[derive(Debug)]
pub(crate) struct Envelope<V: Value> {
    pub req: Request<V>,
    pub phase: u8,
    /// Admission ticket number (the order requests were admitted in) —
    /// the request index every [`FaultPlan`] decision keys on. With a
    /// single submitter it equals the stream position, which is what
    /// makes fault injection byte-deterministic across runs.
    pub index: u64,
    /// Wall-mode latency starts at admission.
    pub enqueued_at: Option<Instant>,
    pub ticket: Option<Arc<TicketState<V>>>,
}

/// Deterministic virtual service cost of a request, in nanoseconds.
///
/// A pure function of the request itself (key lengths and the scan
/// limit — deliberately *not* the scan's actual hit count, which could
/// differ across interleavings): over a fixed op sequence, every run
/// records byte-identical latency histograms regardless of scheduling.
/// The constants are scaled to the repo's measured microbench costs
/// (`BENCH_decode.json`: ~219 ns per pulled hit, sub-µs probes).
pub fn virtual_cost<V: Value>(req: &Request<V>) -> u64 {
    match req {
        Request::Get { key } => 150 + 2 * key.len() as u64,
        Request::Insert { key, .. } => 250 + 3 * key.len() as u64,
        Request::Scan { low, high, limit } => {
            400 + 2 * (low.len() + high.len()) as u64 + 220 * (*limit).min(256) as u64
        }
        // The snapshot capture itself is O(shards) — a small flat
        // surcharge over a plain scan of the same shape.
        Request::SnapshotScan { low, high, limit } => {
            600 + 2 * (low.len() + high.len()) as u64 + 220 * (*limit).min(256) as u64
        }
    }
}

/// The admission controller plus its telemetry handles, as wired into
/// [`Shared`]. The controller itself lives behind a mutex: admission
/// takes it once per request (the fast path is a window check), workers
/// take it once per *batch* in wall mode to feed observations.
#[derive(Debug)]
pub(crate) struct AdmissionHook {
    pub ctl: Mutex<AdmissionController>,
    /// `serving.admission.engage` — shed-level raises.
    engage: Counter,
    /// `serving.admission.release` — shed-level drops.
    release: Counter,
    /// `serving.admission.shed` — requests rerouted by the controller.
    shed: Counter,
    /// `serving.admission.windows` — windows sealed (controller clock).
    windows: Gauge,
    /// `serving.admission.level.{w}` — current shed level per worker.
    levels: Vec<Gauge>,
}

impl AdmissionHook {
    /// Mirror one controller decision into the metrics registry and the
    /// event ring — every autonomous shed-level change is attributable
    /// from telemetry alone, exactly like injected faults are.
    fn note_decision(&self, d: &AdmissionDecision, tel: &Telemetry) {
        let kind =
            if d.is_engage() { EventKind::AdmissionEngage } else { EventKind::AdmissionRelease };
        if d.is_engage() {
            self.engage.inc();
        } else {
            self.release.inc();
        }
        self.levels[d.worker].set(u64::from(d.to_pct));
        tel.events().record(Event {
            kind,
            shard: d.worker as u32,
            prev_epoch: u64::from(d.from_pct),
            epoch: u64::from(d.to_pct),
            keys: d.window,
            bytes: d.ratio_x1000,
            ..Event::default()
        });
    }
}

/// State shared between the submitters and the worker threads.
#[derive(Debug)]
pub(crate) struct Shared<V: Value> {
    pub store: Arc<HopeStore<V>>,
    pub queues: Vec<BoundedQueue<Envelope<V>>>,
    pub cfg: ServingConfig,
    /// Closed-loop admission control, when configured.
    pub admission: Option<AdmissionHook>,
    /// Requests admitted (incremented before the push so `completed`
    /// can never observably exceed it).
    admitted: AtomicU64,
    /// Requests fully executed and completed.
    completed: AtomicU64,
    /// Requests the degraded-mode hook shed to a healthy worker
    /// (mirrored into the `serving.fault.rerouted` counter).
    rerouted: Counter,
    flush_lock: Mutex<()>,
    flush_cv: Condvar,
}

impl<V: Value> Shared<V> {
    pub(crate) fn note_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Release);
        self.flush_cv.notify_all();
    }
}

/// Aggregated per-phase serving statistics (see [`Server::shutdown`]).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Requests completed in this phase.
    pub ops: u64,
    /// Point lookups.
    pub gets: u64,
    /// Inserts/updates.
    pub inserts: u64,
    /// Range scans.
    pub scans: u64,
    /// Total scan hits emitted.
    pub scan_hits: u64,
    /// Requests that completed with [`Response::Error`].
    pub errors: u64,
    /// Latency distribution (wall or virtual per the config).
    pub latency: LatencyHistogram,
    /// Busiest single worker's service time in this phase (ns) — the
    /// virtual-throughput denominator: with perfect overlap the phase
    /// takes exactly this long.
    pub busy_ns_max: u64,
    /// Total service time across workers (ns).
    pub busy_ns_total: u64,
}

impl PhaseStats {
    fn empty() -> Self {
        PhaseStats {
            ops: 0,
            gets: 0,
            inserts: 0,
            scans: 0,
            scan_hits: 0,
            errors: 0,
            latency: LatencyHistogram::new(),
            busy_ns_max: 0,
            busy_ns_total: 0,
        }
    }

    /// Ops per second implied by the busiest worker's service time
    /// (virtual mode) — 0 when nothing ran.
    pub fn virtual_ops_per_sec(&self) -> f64 {
        if self.busy_ns_max == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.busy_ns_max as f64
        }
    }
}

/// Per-worker aggregate over all phases (see
/// [`ServingReport::worker_stats`]) — the attribution the fault-SLO gate
/// needs: healthy-worker tail latency is the merge of every
/// non-[`degraded`](WorkerStats::degraded) worker's histogram.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Requests this worker executed.
    pub ops: u64,
    /// Total service time on this worker (ns; includes injected delays).
    pub busy_ns: u64,
    /// Latency distribution of the requests this worker executed.
    pub latency: LatencyHistogram,
    /// Faults injected into this worker's requests.
    pub faults: FaultTally,
    /// True when the config's [`FaultPlan`] degrades this worker in at
    /// least one phase.
    pub degraded: bool,
}

/// Everything the serving run did, returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-phase aggregates, indexed by the phase tag requests carried.
    pub phases: Vec<PhaseStats>,
    /// Per-worker aggregates, in worker order.
    pub worker_stats: Vec<WorkerStats>,
    /// Per-worker queue counters, in worker order.
    pub queues: Vec<QueueStats>,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Requests the degraded-mode hook shed to a healthy worker.
    pub rerouted: u64,
    /// What the adaptive admission controller did, when one was
    /// configured: windows sealed, requests shed, every shed-level
    /// decision, final levels.
    pub admission: Option<AdmissionReport>,
    /// Whether latencies are virtual (deterministic) or wall-clock.
    pub virtual_time: bool,
    /// Store-wide telemetry at shutdown: registered metrics (including
    /// the `serving.worker.*` queue counters, `serving.phase.*`
    /// aggregates and any `serving.trace.*` span histograms this run
    /// recorded), refreshed shard/codec gauges, and the lifecycle event
    /// ring.
    pub telemetry: TelemetrySnapshot,
}

impl ServingReport {
    /// Total requests completed across phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(|p| p.ops).sum()
    }

    /// Total requests refused at admission across queues.
    pub fn total_rejected(&self) -> u64 {
        self.queues.iter().map(|q| q.rejected).sum()
    }
}

/// The serving pipeline over an `Arc<HopeStore<V>>` (see module docs).
#[derive(Debug)]
pub struct Server<V: Value = u64> {
    shared: Arc<Shared<V>>,
    handles: Vec<std::thread::JoinHandle<worker::WorkerOutput>>,
}

impl<V: Value> Server<V> {
    /// Spawn the worker threads and open the queues.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] for zero workers/capacity/batch or a
    /// phase count outside `1..=16`.
    pub fn start(store: Arc<HopeStore<V>>, cfg: ServingConfig) -> Result<Server<V>, StoreError> {
        if cfg.workers == 0 {
            return Err(StoreError::InvalidConfig { reason: "need at least one serving worker" });
        }
        if cfg.queue_capacity == 0 {
            return Err(StoreError::InvalidConfig { reason: "queue capacity must be at least 1" });
        }
        if cfg.batch == 0 {
            return Err(StoreError::InvalidConfig { reason: "batch must be at least 1" });
        }
        if !(1..=16).contains(&cfg.phases) {
            return Err(StoreError::InvalidConfig { reason: "phases must be in 1..=16" });
        }
        if let Some(plan) = &cfg.faults {
            if plan.degraded_worker.is_some_and(|w| w >= cfg.workers) {
                return Err(StoreError::InvalidConfig {
                    reason: "fault plan degrades a worker the config does not have",
                });
            }
            if plan.slow_factor == 0 {
                return Err(StoreError::InvalidConfig {
                    reason: "fault plan slow_factor must be at least 1",
                });
            }
            if plan.shed_pct > 100 {
                return Err(StoreError::InvalidConfig {
                    reason: "fault plan shed_pct must be in 0..=100",
                });
            }
        }
        let registry_handle = store.telemetry_handle();
        let admission = match cfg.admission {
            Some(ac) => {
                let reg = registry_handle.registry();
                Some(AdmissionHook {
                    ctl: Mutex::new(AdmissionController::new(ac, cfg.workers)?),
                    engage: reg.counter("serving.admission.engage"),
                    release: reg.counter("serving.admission.release"),
                    shed: reg.counter("serving.admission.shed"),
                    windows: reg.gauge("serving.admission.windows"),
                    levels: (0..cfg.workers)
                        .map(|w| reg.gauge(&format!("serving.admission.level.{w}")))
                        .collect(),
                })
            }
            None => None,
        };
        let queues = (0..cfg.workers)
            .map(|i| {
                let counters = QueueCounters::register(registry_handle.registry(), i);
                BoundedQueue::with_counters(cfg.queue_capacity, counters)
            })
            .collect();
        let rerouted = if cfg.faults.is_some() {
            registry_handle.registry().counter("serving.fault.rerouted")
        } else {
            Counter::detached()
        };
        let shared = Arc::new(Shared {
            store,
            queues,
            cfg,
            admission,
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rerouted,
            flush_lock: Mutex::new(()),
            flush_cv: Condvar::new(),
        });
        let handles = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hope-serve-{i}"))
                    .spawn(move || worker::run(i, shared))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(Server { shared, handles })
    }

    /// The worker owning `key`'s shard — the routing hook the module docs
    /// describe (`shard % workers`).
    pub fn worker_of(&self, key: &[u8]) -> usize {
        self.shared.store.shard_of(key) % self.shared.cfg.workers
    }

    /// True when the config's fault plan degrades `worker` in at least
    /// one phase — the admission-side hook a driver uses to separate
    /// healthy-worker tail latency from the sick worker's.
    pub fn is_degraded(&self, worker: usize) -> bool {
        self.shared
            .cfg
            .faults
            .is_some_and(|p| p.degraded_worker == Some(worker) && p.phase_mask != 0)
    }

    fn envelope(&self, req: Request<V>, phase: usize, ticket: bool) -> Envelope<V> {
        Envelope {
            req,
            phase: phase.min(self.shared.cfg.phases - 1) as u8,
            index: 0,
            enqueued_at: (!self.shared.cfg.virtual_time).then(Instant::now),
            ticket: ticket.then(|| TicketState::new()),
        }
    }

    fn push(&self, mut env: Envelope<V>, blocking: bool) -> Result<Option<Ticket<V>>, Rejected<V>> {
        let home = self.shared.store.shard_of(env.req.routing_key()) % self.shared.cfg.workers;
        let mut worker = home;
        let ticket = env.ticket.as_ref().map(|t| Ticket(Arc::clone(t)));
        let index = self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        env.index = index;
        let mut plan_rerouted = false;
        if let Some(plan) = &self.shared.cfg.faults {
            if let Some(alt) = plan.reroute(home, index, env.phase, self.shared.cfg.workers) {
                worker = alt;
                plan_rerouted = true;
                self.shared.rerouted.inc();
            }
        }
        if let Some(hook) = &self.shared.admission {
            let mut ctl = hook.ctl.lock().unwrap_or_else(PoisonError::into_inner);
            // Seal windows the stream has crossed (and judge the workers)
            // *before* this request's own shed draw: the draw always uses
            // fully-sealed evidence, which keeps every decision a pure
            // function of (window snapshot, config, index).
            let decisions = ctl.advance(index);
            if self.shared.cfg.virtual_time {
                // The virtual-mode sensor: observe what this request
                // *would* cost on its home worker, sick or not. Recorded
                // at admission — the single producer makes the window
                // binning deterministic — and it keeps probing a fully
                // shed worker, so the controller can see it heal.
                let action = self
                    .shared
                    .cfg
                    .faults
                    .map(|p| p.action(home, index, env.phase))
                    .unwrap_or_default();
                let cost = virtual_cost(&env.req) * action.slow_factor.max(1) + action.extra_ns();
                ctl.observe(home, cost);
            }
            // The plan's static reroute (when configured) wins: a request
            // is rerouted at most once, by exactly one mechanism.
            let shed_to = if plan_rerouted { None } else { ctl.shed(home, index) };
            let windows = ctl.windows_sealed();
            drop(ctl);
            hook.windows.set(windows);
            if !decisions.is_empty() {
                let tel = self.shared.store.telemetry_handle();
                for d in &decisions {
                    hook.note_decision(d, &tel);
                }
            }
            if let Some(alt) = shed_to {
                worker = alt;
                hook.shed.inc();
                self.shared.queues[home].note_shed_away();
            }
        }
        let queue = &self.shared.queues[worker];
        let pushed = if blocking { queue.push_blocking(env) } else { queue.try_push(env) };
        match pushed {
            Ok(()) => Ok(ticket),
            Err((env, reason)) => {
                self.shared.admitted.fetch_sub(1, Ordering::Relaxed);
                Err(Rejected { request: env.req, reason })
            }
        }
    }

    /// Admission-controlled submit: refuse (returning the request) when
    /// the target worker's queue is at budget, otherwise hand back a
    /// completion [`Ticket`]. `phase` tags the latency sample
    /// (clamped to the configured phase count).
    pub fn try_submit(&self, req: Request<V>, phase: usize) -> Result<Ticket<V>, Rejected<V>> {
        self.push(self.envelope(req, phase, true), false).map(|t| t.expect("ticketed"))
    }

    /// [`Server::try_submit`] without a completion ticket — the
    /// fire-and-forget shape for throughput drivers that read results
    /// from the [`ServingReport`] instead.
    pub fn try_submit_detached(&self, req: Request<V>, phase: usize) -> Result<(), Rejected<V>> {
        self.push(self.envelope(req, phase, false), false).map(|_| ())
    }

    /// Backpressure submit: wait for queue space instead of shedding
    /// (fails only when the server is shutting down).
    pub fn submit(&self, req: Request<V>, phase: usize) -> Result<Ticket<V>, Rejected<V>> {
        self.push(self.envelope(req, phase, true), true).map(|t| t.expect("ticketed"))
    }

    /// [`Server::submit`] without a completion ticket.
    pub fn submit_detached(&self, req: Request<V>, phase: usize) -> Result<(), Rejected<V>> {
        self.push(self.envelope(req, phase, false), true).map(|_| ())
    }

    /// Block until every admitted request has completed. Callers must
    /// have joined their own submitter threads first: the barrier covers
    /// requests admitted *before* this call.
    pub fn flush(&self) {
        let mut guard = self.shared.flush_lock.lock().unwrap_or_else(PoisonError::into_inner);
        while self.shared.completed.load(Ordering::Acquire)
            < self.shared.admitted.load(Ordering::Relaxed)
        {
            let (g, _) = self
                .shared
                .flush_cv
                .wait_timeout(guard, std::time::Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Current backlog of every worker queue (diagnostics; racy).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shared.queues.iter().map(|q| q.depth()).collect()
    }

    /// Close admission, drain every queue (admitted requests complete —
    /// never dropped), join the workers, and return the merged report.
    pub fn shutdown(mut self) -> ServingReport {
        for q in &self.shared.queues {
            q.close();
        }
        let cfg = self.shared.cfg;
        let mut phases = vec![PhaseStats::empty(); cfg.phases];
        let mut worker_stats = Vec::with_capacity(cfg.workers);
        for (i, h) in self.handles.drain(..).enumerate() {
            let out = h.join().expect("serving worker panicked");
            let mut ops = 0;
            let mut busy_ns = 0;
            let mut latency = LatencyHistogram::new();
            for (agg, w) in phases.iter_mut().zip(&out.phases) {
                agg.ops += w.ops;
                agg.gets += w.gets;
                agg.inserts += w.inserts;
                agg.scans += w.scans;
                agg.scan_hits += w.scan_hits;
                agg.errors += w.errors;
                agg.latency.merge(&w.latency);
                agg.busy_ns_max = agg.busy_ns_max.max(w.busy_ns);
                agg.busy_ns_total += w.busy_ns;
                ops += w.ops;
                busy_ns += w.busy_ns;
                latency.merge(&w.latency);
            }
            worker_stats.push(WorkerStats {
                worker: i,
                ops,
                busy_ns,
                latency,
                faults: out.faults,
                degraded: cfg
                    .faults
                    .is_some_and(|p| p.degraded_worker == Some(i) && p.phase_mask != 0),
            });
        }
        ServingReport {
            phases,
            worker_stats,
            queues: self.shared.queues.iter().map(|q| q.stats()).collect(),
            workers: cfg.workers,
            rerouted: self.shared.rerouted.get(),
            admission: self
                .shared
                .admission
                .as_ref()
                .map(|h| h.ctl.lock().unwrap_or_else(PoisonError::into_inner).report()),
            virtual_time: cfg.virtual_time,
            telemetry: self.shared.store.telemetry(),
        }
    }
}

impl<V: Value> Drop for Server<V> {
    /// A dropped (not shut down) server still closes and joins cleanly.
    fn drop(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
