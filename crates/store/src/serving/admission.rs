//! Closed-loop adaptive admission control.
//!
//! PR 8's degraded-mode hook sheds a *configured* fraction of a sick
//! worker's traffic ([`FaultPlan::shed_pct`]) — the operator tells the
//! server who is sick and how much to shed. This module closes the loop:
//! an [`AdmissionController`] watches per-worker latency over sliding
//! windows of the admission-index space, detects a degrading worker on
//! its own (window p99 vs. the median of its peers, sustained over
//! several windows, with a hysteresis band), and engages **graduated**
//! shedding at admission — 25%, 50%, 75% of the sick worker's would-be
//! traffic rerouted to its healthiest peers — then steps back down as
//! the worker heals.
//!
//! ## The control loop
//!
//! Requests are binned into windows of [`AdmissionConfig::window`]
//! consecutive admission indices. When the stream crosses into a new
//! window the controller **seals** the previous one and judges every
//! worker:
//!
//! * `ratio(w) = p99(w) / median{ p99(v) : v ≠ w }` — the leave-one-out
//!   baseline means one sick worker cannot poison the reference its own
//!   degradation is measured against;
//! * `ratio ≥ engage_ratio` is *sick* evidence, `ratio ≤ disengage_ratio`
//!   is *healthy* evidence, anything in between (the hysteresis band) is
//!   neither and resets both streaks — a worker hovering at the boundary
//!   cannot flap the controller;
//! * [`AdmissionConfig::engage_after`] consecutive sick windows raise the
//!   worker's shed level by [`AdmissionConfig::shed_step_pct`] (capped at
//!   [`AdmissionConfig::max_shed_pct`]); [`AdmissionConfig::disengage_after`]
//!   consecutive healthy windows lower it one step. Streaks reset after
//!   every transition, so two decisions for one worker are always at
//!   least `min(engage_after, disengage_after)` windows apart — the
//!   no-oscillation guarantee `tests/admission_props.rs` proves.
//! * a window with fewer than [`AdmissionConfig::min_window_ops`] samples
//!   for the worker (or no valid peer baseline) is no evidence at all —
//!   the controller abstains and the streaks carry over, so a
//!   heavily-shed worker (few samples per window) can still accumulate
//!   the healthy evidence it needs to disengage.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(window snapshot, config,
//! request index)`. The per-request shed draw reuses the fault layer's
//! SplitMix64 finalizer keyed on `(seed, worker, index)`; the reroute
//! target prefers the peers with the lowest current shed level and picks
//! among them by the same hash. With a single producer the admission
//! index equals the stream position, so virtual-time `--quick` runs
//! (where the controller observes each request's *would-be* cost on its
//! home worker at admission) are byte-identical run to run — CI diffs
//! `fig21_adaptive_slo` DIGEST lines to prove it. In wall mode workers
//! feed real completion latencies instead and the loop is a genuine
//! feedback controller.
//!
//! The home-worker cost sensor doubles as the **probe** signal: even a
//! 100%-shed worker keeps producing window samples (what its traffic
//! *would have* cost there), so the controller can observe recovery and
//! disengage. Wall mode instead caps `max_shed_pct` below 100 so the
//! residual traffic keeps probing the sick worker.
//!
//! [`FaultPlan::shed_pct`]: super::FaultPlan::shed_pct

use super::faults::mix;
use super::metrics::LatencyHistogram;
use crate::error::StoreError;

/// Domain-separation salts for the admission-shed decision family
/// (disjoint from the fault layer's).
const SALT_ADMIT: u64 = 0x4144_4D49;
const SALT_TARGET: u64 = 0x5447_5254;

/// Closed-loop admission-controller parameters (see module docs).
///
/// `Copy` on purpose: it rides inside
/// [`ServingConfig`](super::ServingConfig) next to the fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Requests per sliding window of the admission-index space (≥ 1).
    pub window: u64,
    /// Window-p99 ratio (worker vs. peer median) at or above which the
    /// window counts as sick evidence.
    pub engage_ratio: f64,
    /// Ratio at or below which the window counts as healthy evidence.
    /// Must sit strictly below `engage_ratio`: the gap is the hysteresis
    /// band where neither streak grows.
    pub disengage_ratio: f64,
    /// Consecutive sick windows before the shed level steps up (≥ 1).
    pub engage_after: u32,
    /// Consecutive healthy windows before the shed level steps down (≥ 1).
    pub disengage_after: u32,
    /// Shed-level step per decision, percent (1..=100).
    pub shed_step_pct: u8,
    /// Shed-level cap, percent (≤ 100). Keep below 100 in wall mode so
    /// residual traffic still probes the sick worker.
    pub max_shed_pct: u8,
    /// Minimum samples a worker needs in a window for a verdict; thinner
    /// windows abstain (no verdict, streaks carry over).
    pub min_window_ops: u64,
    /// Seed for the per-request shed draw and target pick.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            window: 1024,
            engage_ratio: 3.0,
            disengage_ratio: 1.5,
            engage_after: 3,
            disengage_after: 3,
            shed_step_pct: 25,
            max_shed_pct: 75,
            min_window_ops: 64,
            seed: 0,
        }
    }
}

impl AdmissionConfig {
    /// The quick-mode shape: windows small enough that engage →
    /// escalate → disengage all fit inside a 10k-op virtual drill.
    pub fn quick(seed: u64) -> Self {
        AdmissionConfig { window: 256, min_window_ops: 24, seed, ..AdmissionConfig::default() }
    }

    /// Validate the parameters ([`Server::start`] calls this).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] on a zero window/streak/step, a cap
    /// or step above 100, or ratios that close the hysteresis band.
    ///
    /// [`Server::start`]: super::Server::start
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.window == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "admission window must be at least 1",
            });
        }
        if self.engage_after == 0 || self.disengage_after == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "admission engage_after/disengage_after must be at least 1",
            });
        }
        if self.shed_step_pct == 0 || self.shed_step_pct > 100 {
            return Err(StoreError::InvalidConfig {
                reason: "admission shed_step_pct must be in 1..=100",
            });
        }
        if self.max_shed_pct > 100 {
            return Err(StoreError::InvalidConfig {
                reason: "admission max_shed_pct must be in 0..=100",
            });
        }
        if !(self.engage_ratio.is_finite() && self.disengage_ratio.is_finite())
            || self.disengage_ratio < 1.0
            || self.engage_ratio <= self.disengage_ratio
        {
            return Err(StoreError::InvalidConfig {
                reason: "admission ratios need 1.0 <= disengage_ratio < engage_ratio",
            });
        }
        Ok(())
    }
}

/// One shed-level transition the controller made at a window seal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// The window whose seal produced the decision.
    pub window: u64,
    /// The worker whose shed level changed.
    pub worker: usize,
    /// Shed level before, percent.
    pub from_pct: u8,
    /// Shed level after, percent.
    pub to_pct: u8,
    /// The sealed window's p99 ratio vs. the peer median, ×1000 (what
    /// the evidence was; fits the packed event-log word).
    pub ratio_x1000: u64,
}

impl AdmissionDecision {
    /// True when the decision raised the shed level (an engage step).
    pub fn is_engage(&self) -> bool {
        self.to_pct > self.from_pct
    }
}

/// What the controller did over a run (see
/// [`ServingReport::admission`](super::ServingReport::admission)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionReport {
    /// Windows sealed (a judgment pass ran at each).
    pub windows: u64,
    /// Requests the controller rerouted away from their home worker.
    pub shed: u64,
    /// Every shed-level transition, in seal order.
    pub decisions: Vec<AdmissionDecision>,
    /// Final shed level per worker, percent.
    pub levels: Vec<u8>,
}

impl AdmissionReport {
    /// Engage-step decisions.
    pub fn engages(&self) -> u64 {
        self.decisions.iter().filter(|d| d.is_engage()).count() as u64
    }

    /// Release-step decisions.
    pub fn releases(&self) -> u64 {
        self.decisions.iter().filter(|d| !d.is_engage()).count() as u64
    }

    /// The window whose seal produced the first engage step, if any.
    pub fn first_engage_window(&self) -> Option<u64> {
        self.decisions.iter().find(|d| d.is_engage()).map(|d| d.window)
    }

    /// The window whose seal produced the last release step, if any.
    pub fn last_release_window(&self) -> Option<u64> {
        self.decisions.iter().rev().find(|d| !d.is_engage()).map(|d| d.window)
    }
}

/// Per-worker control state.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerCtl {
    /// Current shed level, percent.
    level_pct: u8,
    /// Consecutive sick-window streak.
    sick: u32,
    /// Consecutive healthy-window streak.
    healthy: u32,
}

/// The closed-loop controller (see module docs). Standalone-usable —
/// `tests/admission_props.rs` drives it directly with synthetic window
/// streams; the server wires it into admission behind a mutex.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    /// Window the stream is currently in (`index / cfg.window`).
    cur_window: u64,
    /// Current-window latency accumulator per worker.
    histos: Vec<LatencyHistogram>,
    ctl: Vec<WorkerCtl>,
    /// Scratch for the leave-one-out median (kept to avoid per-seal
    /// allocation).
    peer_p99s: Vec<u64>,
    windows: u64,
    shed: u64,
    decisions: Vec<AdmissionDecision>,
}

impl AdmissionController {
    /// New controller over `workers` workers, judging nobody yet.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] when the config fails
    /// [`AdmissionConfig::validate`] or `workers` is zero.
    pub fn new(cfg: AdmissionConfig, workers: usize) -> Result<AdmissionController, StoreError> {
        cfg.validate()?;
        if workers == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "admission controller needs at least one worker",
            });
        }
        Ok(AdmissionController {
            cfg,
            cur_window: 0,
            histos: (0..workers).map(|_| LatencyHistogram::new()).collect(),
            ctl: vec![WorkerCtl::default(); workers],
            peer_p99s: Vec::with_capacity(workers),
            windows: 0,
            shed: 0,
            decisions: Vec::new(),
        })
    }

    /// The config the controller runs with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Workers under control.
    pub fn workers(&self) -> usize {
        self.histos.len()
    }

    /// Current shed level of `worker`, percent.
    pub fn level_pct(&self, worker: usize) -> u8 {
        self.ctl[worker].level_pct
    }

    /// Windows sealed (and judged) so far.
    pub fn windows_sealed(&self) -> u64 {
        self.windows
    }

    /// Feed one latency observation for `worker` into the current
    /// window. In virtual mode this is the request's would-be cost on
    /// its home worker (recorded at admission); in wall mode the real
    /// *service* time on the executing worker — queue wait is excluded,
    /// because under backpressure it measures arrival pressure, not
    /// worker health.
    pub fn observe(&mut self, worker: usize, latency_ns: u64) {
        self.histos[worker].record(latency_ns);
    }

    /// Move the stream clock to `index`, sealing (and judging) every
    /// window the stream has left behind. Returns the decisions this
    /// call produced — empty on the fast path (no window crossed, no
    /// allocation).
    pub fn advance(&mut self, index: u64) -> Vec<AdmissionDecision> {
        let window = index / self.cfg.window;
        if window <= self.cur_window {
            return Vec::new();
        }
        let made = self.decisions.len();
        self.seal(self.cur_window);
        // A quiet stream can skip whole windows; the empty ones carry no
        // evidence, and judging them would just reset every streak.
        self.cur_window = window;
        self.decisions[made..].to_vec()
    }

    /// Seal window `w`: judge every worker from its accumulated
    /// histogram, update streaks and levels, clear the accumulators.
    fn seal(&mut self, w: u64) {
        self.windows += 1;
        let engage_cap = self.cfg.max_shed_pct;
        for worker in 0..self.histos.len() {
            let own = &self.histos[worker];
            let own_count = own.count();
            let own_p99 = own.quantile_ns(0.99);
            self.peer_p99s.clear();
            for (v, h) in self.histos.iter().enumerate() {
                if v != worker && h.count() >= self.cfg.min_window_ops {
                    self.peer_p99s.push(h.quantile_ns(0.99));
                }
            }
            let c = &mut self.ctl[worker];
            if own_count < self.cfg.min_window_ops || self.peer_p99s.is_empty() {
                // Thin window: abstain — no verdict either way, and the
                // streaks carry over. A heavily-shed worker sees few
                // samples per window; if thin windows *reset* streaks,
                // it could never accumulate the healthy evidence needed
                // to disengage.
                continue;
            }
            self.peer_p99s.sort_unstable();
            let base = self.peer_p99s[self.peer_p99s.len() / 2].max(1);
            let ratio = own_p99 as f64 / base as f64;
            let ratio_x1000 = (ratio * 1000.0) as u64;
            if ratio >= self.cfg.engage_ratio {
                c.sick += 1;
                c.healthy = 0;
                if c.sick >= self.cfg.engage_after {
                    c.sick = 0;
                    if c.level_pct < engage_cap {
                        let from = c.level_pct;
                        c.level_pct = from.saturating_add(self.cfg.shed_step_pct).min(engage_cap);
                        self.decisions.push(AdmissionDecision {
                            window: w,
                            worker,
                            from_pct: from,
                            to_pct: c.level_pct,
                            ratio_x1000,
                        });
                    }
                }
            } else if ratio <= self.cfg.disengage_ratio {
                c.healthy += 1;
                c.sick = 0;
                if c.healthy >= self.cfg.disengage_after {
                    c.healthy = 0;
                    if c.level_pct > 0 {
                        let from = c.level_pct;
                        c.level_pct = from.saturating_sub(self.cfg.shed_step_pct);
                        self.decisions.push(AdmissionDecision {
                            window: w,
                            worker,
                            from_pct: from,
                            to_pct: c.level_pct,
                            ratio_x1000,
                        });
                    }
                }
            } else {
                // Hysteresis band: evidence for neither side.
                c.sick = 0;
                c.healthy = 0;
            }
        }
        for h in &mut self.histos {
            *h = LatencyHistogram::new();
        }
    }

    /// The shed decision for request `index` homed on `worker`: when the
    /// worker's level sheds this request, the healthy peer to reroute it
    /// to (preferring the peers with the lowest shed level, picked by
    /// hash among ties). `None` = keep the home worker. Pure in
    /// `(levels, config, worker, index)`; counts into the report.
    pub fn shed(&mut self, worker: usize, index: u64) -> Option<usize> {
        let level = u64::from(self.ctl[worker].level_pct);
        let workers = self.ctl.len();
        if level == 0 || workers < 2 {
            return None;
        }
        if mix(self.cfg.seed, worker as u64, index, 0, SALT_ADMIT) % 100 >= level {
            return None;
        }
        let min_peer =
            self.ctl.iter().enumerate().filter(|(v, _)| *v != worker).map(|(_, c)| c.level_pct);
        let min_level = min_peer.min().unwrap_or(0);
        let candidates = self
            .ctl
            .iter()
            .enumerate()
            .filter(|(v, c)| *v != worker && c.level_pct == min_level)
            .map(|(v, _)| v);
        let n = candidates.clone().count() as u64;
        let pick = mix(self.cfg.seed, worker as u64, index, 0, SALT_TARGET) % n;
        let target = candidates.clone().nth(pick as usize).expect("candidate pick in range");
        self.shed += 1;
        Some(target)
    }

    /// Snapshot what the controller did so far.
    pub fn report(&self) -> AdmissionReport {
        AdmissionReport {
            windows: self.windows,
            shed: self.shed,
            decisions: self.decisions.clone(),
            levels: self.ctl.iter().map(|c| c.level_pct).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig { window: 100, min_window_ops: 10, seed: 7, ..AdmissionConfig::default() }
    }

    /// Drive `windows` full windows where worker 0 records `sick_ns` and
    /// the rest 1_000 ns, 20 samples each.
    fn drive(ctl: &mut AdmissionController, windows: u64, sick_ns: u64) -> Vec<AdmissionDecision> {
        let mut out = Vec::new();
        let start = ctl.cur_window;
        for w in start..start + windows {
            for _ in 0..20 {
                ctl.observe(0, sick_ns);
                for v in 1..ctl.workers() {
                    ctl.observe(v, 1_000);
                }
            }
            out.extend(ctl.advance((w + 1) * ctl.cfg.window));
        }
        out
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        assert!(AdmissionConfig::default().validate().is_ok());
        assert!(AdmissionConfig::quick(3).validate().is_ok());
        for bad in [
            AdmissionConfig { window: 0, ..cfg() },
            AdmissionConfig { engage_after: 0, ..cfg() },
            AdmissionConfig { disengage_after: 0, ..cfg() },
            AdmissionConfig { shed_step_pct: 0, ..cfg() },
            AdmissionConfig { shed_step_pct: 101, ..cfg() },
            AdmissionConfig { max_shed_pct: 101, ..cfg() },
            AdmissionConfig { disengage_ratio: 0.5, ..cfg() },
            AdmissionConfig { engage_ratio: 1.5, disengage_ratio: 1.5, ..cfg() },
            AdmissionConfig { engage_ratio: f64::NAN, ..cfg() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(AdmissionController::new(cfg(), 0).is_err());
    }

    #[test]
    fn engages_after_sustained_degradation_and_escalates() {
        let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
        // Two sick windows: streak building, no decision yet.
        assert!(drive(&mut ctl, 2, 10_000).is_empty());
        assert_eq!(ctl.level_pct(0), 0);
        // Third seals the streak: engage to 25.
        let d = drive(&mut ctl, 1, 10_000);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].worker, d[0].from_pct, d[0].to_pct), (0, 0, 25));
        assert!(d[0].is_engage());
        assert!(d[0].ratio_x1000 >= 3_000);
        // Sustained sickness escalates to the cap and stops there.
        drive(&mut ctl, 12, 10_000);
        assert_eq!(ctl.level_pct(0), 75);
        let report = ctl.report();
        assert_eq!(report.engages(), 3);
        assert_eq!(report.levels, vec![75, 0, 0, 0]);
        assert_eq!(report.first_engage_window(), Some(2));
    }

    #[test]
    fn disengages_as_the_worker_heals() {
        let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
        drive(&mut ctl, 9, 10_000);
        assert_eq!(ctl.level_pct(0), 75);
        // Healthy windows walk the level back down one step per streak.
        drive(&mut ctl, 3, 1_000);
        assert_eq!(ctl.level_pct(0), 50);
        drive(&mut ctl, 6, 1_000);
        assert_eq!(ctl.level_pct(0), 0);
        let report = ctl.report();
        assert_eq!(report.releases(), 3);
        assert_eq!(report.last_release_window(), Some(17));
        // Fully healed: further healthy windows decide nothing.
        assert!(drive(&mut ctl, 5, 1_000).is_empty());
    }

    #[test]
    fn hysteresis_band_resets_both_streaks() {
        let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
        // ratio 2.0 sits between disengage (1.5) and engage (3.0).
        for _ in 0..20 {
            assert!(drive(&mut ctl, 2, 10_000).is_empty());
            assert!(drive(&mut ctl, 1, 2_000).is_empty());
        }
        assert_eq!(ctl.level_pct(0), 0);
    }

    #[test]
    fn thin_windows_are_no_evidence() {
        let c = AdmissionConfig { min_window_ops: 50, ..cfg() };
        let mut ctl = AdmissionController::new(c, 4).unwrap();
        // 20 samples per worker per window < 50: never engages.
        drive(&mut ctl, 10, 100_000);
        assert_eq!(ctl.level_pct(0), 0);
        assert!(ctl.report().decisions.is_empty());
        assert_eq!(ctl.report().windows, 10);
    }

    #[test]
    fn thin_windows_abstain_but_do_not_reset_streaks() {
        let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
        // Two sick windows (engage_after is 3)...
        drive(&mut ctl, 2, 100_000);
        // ...then a thin window: 2 samples per worker < min_window_ops.
        let w = ctl.cur_window;
        for _ in 0..2 {
            for v in 0..4 {
                ctl.observe(v, 1_000);
            }
        }
        assert!(ctl.advance((w + 1) * ctl.cfg.window).is_empty(), "thin window decided");
        // One more sick window completes the carried-over streak: a
        // heavily-shed worker with sparse samples can still be judged.
        let d = drive(&mut ctl, 1, 100_000);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_engage() && d[0].worker == 0);
        assert_eq!(ctl.level_pct(0), cfg().shed_step_pct);
    }

    #[test]
    fn shed_draw_matches_level_and_avoids_the_sick_worker() {
        let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
        assert_eq!(ctl.shed(0, 1), None, "level 0 sheds nothing");
        drive(&mut ctl, 9, 10_000);
        assert_eq!(ctl.level_pct(0), 75);
        let mut shed = 0u64;
        for i in 0..100_000u64 {
            assert_eq!(ctl.shed(1, i), None, "healthy home worker untouched");
            if let Some(t) = ctl.shed(0, i) {
                assert_ne!(t, 0, "shed back onto the sick worker");
                assert!(t < 4);
                shed += 1;
            }
        }
        let pct = shed as f64 / 1_000.0;
        assert!((70.0..=80.0).contains(&pct), "shed {pct:.1}% instead of ~75%");
        assert_eq!(ctl.report().shed, shed);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut ctl = AdmissionController::new(cfg(), 4).unwrap();
            let mut log = drive(&mut ctl, 9, 10_000);
            log.extend(drive(&mut ctl, 9, 1_000));
            let sheds: Vec<Option<usize>> = (0..1000).map(|i| ctl.shed(0, i)).collect();
            (log, sheds)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_workers_reroute_to_the_only_peer() {
        let mut ctl = AdmissionController::new(cfg(), 2).unwrap();
        drive(&mut ctl, 3, 10_000);
        assert_eq!(ctl.level_pct(0), 25);
        for i in 0..1000 {
            if let Some(t) = ctl.shed(0, i) {
                assert_eq!(t, 1);
            }
        }
    }
}
