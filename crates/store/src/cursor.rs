//! [`RangeCursor`]: the lazy, zero-alloc range-scan surface of the store.
//!
//! The pre-v1 store had three parallel eager entry points (`range`,
//! `range_with`, `range_into`). v1 replaces them with one lazy cursor and
//! keeps the old names as thin wrappers:
//!
//! * [`RangeCursor::next_hit`] — **pull**: a lending iterator step. Hits
//!   are fetched from the shards in chunks (under short read-lock holds)
//!   into cursor-owned buffers and served out as borrows, so the caller
//!   can pause, interleave other work, and resume — even across a
//!   concurrent dictionary hot-swap (the cursor pins each shard's
//!   generation with an epoch handle while traversing it). After the
//!   buffers warm up, a scan of N hits performs **zero per-hit heap
//!   allocations** (the payload clone itself is the only copy a
//!   non-`Copy` `V` pays).
//! * [`RangeCursor::for_each`] — **push**: consumes the cursor and
//!   streams the remaining hits straight out of the shard engine with
//!   borrowed keys and values, no chunk copies, using the probe
//!   thread-locals. This is the fastest scan shape and exactly the old
//!   `range_with` visitor path.
//! * [`RangeCursor::collect_into`] — convenience over `for_each` that
//!   appends `(key, value)` pairs to a caller-owned buffer.
//!
//! ## Consistency
//!
//! The cursor pins the generation of the shard it is currently reading
//! the moment it enters that shard, so a hot-swap mid-scan never tears a
//! shard's results: the cursor finishes the shard on the superseded
//! generation (kept alive by its `Arc`) and picks up the *new* generation
//! only when it crosses into the next shard. Writes that land after the
//! cursor entered a shard may or may not be observed — the same
//! read-committed behaviour the push path always had.
//!
//! A cursor opened on a [`Snapshot`] is
//! stronger: every generation was pinned (with its log watermark) at
//! capture time, so the scan observes exactly the capture instant — no
//! swap, insert, or update after it is ever visible, in any shard.

use std::sync::Arc;

use hope::Value;

use crate::error::StoreError;
use crate::generation::Generation;
use crate::versioned::Snapshot;
use crate::HopeStore;

/// Hits fetched per pull-mode chunk: large enough to amortize the
/// per-chunk bound re-encode and index descent, small enough to keep
/// read-lock holds and resume latency short.
const CHUNK: usize = 256;

/// What a cursor (or push scan) reads from: the live store, pinning each
/// shard's *current* generation the moment the scan enters it, or a
/// [`Snapshot`], whose generations and watermarks were all pinned at
/// capture time.
#[derive(Debug, Clone, Copy)]
enum Source<'a, V: Value> {
    Live(&'a HopeStore<V>),
    Snap(&'a Snapshot<V>),
}

impl<'a, V: Value> Source<'a, V> {
    /// Shard index responsible for `key` (both variants route on the
    /// same immutable split points).
    fn route(&self, key: &[u8]) -> usize {
        match self {
            Source::Live(store) => store.route(key),
            Source::Snap(snap) => snap.route(key),
        }
    }

    /// Pin `shard` for reading: its generation plus the point-in-time
    /// watermark to read at (`None` = latest, the live store's view).
    fn pin(&self, shard: usize) -> (Arc<Generation<V>>, Option<usize>) {
        match self {
            Source::Live(store) => (store.shard_ref(shard).current(), None),
            Source::Snap(snap) => {
                let (g, w) = snap.pin(shard);
                (g, Some(w))
            }
        }
    }
}

/// A lazy cursor over a bounded range query (see the module docs).
///
/// Created by [`HopeStore::cursor`] (live, read-committed) or
/// [`Snapshot::cursor`] (point-in-time); bounds are inclusive on both
/// ends and hits arrive in global source-key order, spanning shards.
#[derive(Debug)]
pub struct RangeCursor<'a, V: Value = u64> {
    source: Source<'a, V>,
    low: Vec<u8>,
    high: Vec<u8>,
    /// Hits still allowed by the query's `limit`.
    remaining: usize,
    /// Current shard, advancing `..=shard_end`.
    shard: usize,
    shard_end: usize,
    /// Epoch handle pinning the current shard's generation.
    generation: Option<Arc<Generation<V>>>,
    /// Watermark the current shard is read at (snapshot sources only;
    /// `None` reads latest). Set alongside `generation` on shard entry.
    watermark: Option<usize>,
    /// Resume point within the current shard: the last key already
    /// emitted (hits continue strictly after it).
    after: Option<Vec<u8>>,
    /// Pull-mode chunk buffers: keys back-to-back + `(start, end)` spans
    /// into them + values. Spans (not end offsets) so serving hit `i`
    /// needs no branch on `i == 0` and no second offset load.
    keys_flat: Vec<u8>,
    key_spans: Vec<(u32, u32)>,
    vals: Vec<V>,
    /// Epoch of the generation the current chunk was fetched from. Kept
    /// separately from `generation` (which is cleared the moment a shard
    /// is exhausted, possibly with hits still buffered).
    chunk_epoch: Option<u64>,
    /// Next buffered hit to serve.
    pos: usize,
    done: bool,
    error: Option<StoreError>,
}

impl<'a, V: Value> RangeCursor<'a, V> {
    pub(crate) fn new(
        store: &'a HopeStore<V>,
        low: &[u8],
        high: &[u8],
        limit: usize,
    ) -> RangeCursor<'a, V> {
        Self::over(Source::Live(store), low, high, limit)
    }

    /// A cursor reading a snapshot's point in time ([`Snapshot::cursor`]).
    pub(crate) fn new_snap(
        snap: &'a Snapshot<V>,
        low: &[u8],
        high: &[u8],
        limit: usize,
    ) -> RangeCursor<'a, V> {
        Self::over(Source::Snap(snap), low, high, limit)
    }

    fn over(source: Source<'a, V>, low: &[u8], high: &[u8], limit: usize) -> RangeCursor<'a, V> {
        let empty = low > high || limit == 0;
        let (shard, shard_end) =
            if empty { (1, 0) } else { (source.route(low), source.route(high)) };
        RangeCursor {
            source,
            low: low.to_vec(),
            high: high.to_vec(),
            remaining: if empty { 0 } else { limit },
            shard,
            shard_end,
            generation: None,
            watermark: None,
            after: None,
            keys_flat: Vec::new(),
            key_spans: Vec::new(),
            vals: Vec::new(),
            chunk_epoch: None,
            pos: 0,
            done: empty,
            error: None,
        }
    }

    /// Upper bound on the hits this cursor can still yield: the limit's
    /// unconsumed budget plus any hits already fetched into the chunk
    /// buffers but not yet served.
    pub fn remaining(&self) -> usize {
        self.remaining + (self.vals.len() - self.pos)
    }

    /// The error that ended the scan early, if any ([`RangeCursor::next_hit`]
    /// returns `None` on error; the push adapters return `Err` directly).
    pub fn error(&self) -> Option<&StoreError> {
        self.error.as_ref()
    }

    /// Pull the next hit: `(source key, value)`, borrowed from the
    /// cursor's buffers until the next call (a lending iterator — this
    /// deliberately does not implement [`Iterator`], which cannot express
    /// that lifetime). Returns `None` when the range, the limit, or an
    /// error ends the scan; check [`RangeCursor::error`] to distinguish.
    pub fn next_hit(&mut self) -> Option<(&[u8], &V)> {
        while self.pos >= self.vals.len() {
            if !self.fetch_chunk() {
                return None;
            }
        }
        let i = self.pos;
        self.pos += 1;
        Some(self.buffered_hit(i))
    }

    /// Epoch of the generation that served the most recent
    /// [`RangeCursor::next_hit`] (`None` before the first hit). Buffered
    /// hits report the epoch pinned when their chunk was fetched, so a
    /// consumer can assert that every shard's hits decode under exactly
    /// one dictionary — the serving harness's torn-swap check.
    pub fn hit_epoch(&self) -> Option<u64> {
        self.chunk_epoch
    }

    /// The `i`-th hit in the chunk buffers — the one slicing rule both
    /// consumption paths share.
    fn buffered_hit(&self, i: usize) -> (&[u8], &V) {
        let (start, end) = self.key_spans[i];
        (&self.keys_flat[start as usize..end as usize], &self.vals[i])
    }

    /// Refill the chunk buffers from the current shard (entering the next
    /// shard as needed). Returns false when the scan is over.
    ///
    /// Runs on the probe thread-locals via
    /// [`Generation::range_with_from`], exactly like the push path — the
    /// cursor owns no encode scratch of its own, so opening a cursor per
    /// query costs no scratch allocations (the pre-optimization pull path
    /// paid several per scan; `BENCH_decode.json` has the before/after).
    fn fetch_chunk(&mut self) -> bool {
        self.keys_flat.clear();
        self.key_spans.clear();
        self.vals.clear();
        self.pos = 0;
        if self.key_spans.capacity() == 0 && !self.done {
            // First fetch of this cursor: size the buffers once, instead
            // of letting each grow through its doubling steps (a fresh
            // cursor per query is the common shape — a dozen-plus
            // reallocations per scan showed up directly in the pull-mode
            // ns/hit the perf_baseline gate tracks).
            let cap = CHUNK.min(self.remaining);
            self.key_spans.reserve(cap);
            self.vals.reserve(cap);
            self.keys_flat.reserve(cap * 32);
        }
        loop {
            if self.done || self.remaining == 0 {
                self.done = true;
                return false;
            }
            let generation = match &self.generation {
                Some(g) => Arc::clone(g),
                None => {
                    if self.shard > self.shard_end {
                        self.done = true;
                        return false;
                    }
                    // Entering a shard: pin its generation (the current
                    // one for a live source; the capture-time one, plus
                    // its watermark, for a snapshot).
                    let (g, w) = self.source.pin(self.shard);
                    self.after = None;
                    self.watermark = w;
                    self.generation = Some(Arc::clone(&g));
                    g
                }
            };
            let chunk = CHUNK.min(self.remaining);
            self.chunk_epoch = Some(generation.epoch());
            let visited = {
                let Self { low, high, after, watermark, keys_flat, key_spans, vals, .. } = self;
                generation.range_with_from(
                    after.as_deref(),
                    low,
                    high,
                    chunk,
                    *watermark,
                    |k, v| {
                        let start = keys_flat.len() as u32;
                        keys_flat.extend_from_slice(k);
                        key_spans.push((start, keys_flat.len() as u32));
                        vals.push(v.clone());
                    },
                )
            };
            let emitted = match visited {
                Ok(n) => n,
                Err(e) => {
                    self.error = Some(e);
                    self.done = true;
                    return false;
                }
            };
            self.remaining -= emitted;
            if emitted < chunk {
                // Fewer hits than asked: this shard is exhausted.
                self.generation = None;
                self.shard += 1;
            } else if self.remaining > 0 {
                // Full chunk with budget left: remember the resume point
                // (last emitted key), reusing the buffer across chunks.
                // A full chunk that *spent* the budget skips this — the
                // scan is over and the copy would be dead work.
                let (last_start, _) = self.key_spans[self.key_spans.len() - 1];
                let Self { after, keys_flat, .. } = self;
                let last = &keys_flat[last_start as usize..];
                let after = after.get_or_insert_with(Vec::new);
                after.clear();
                after.extend_from_slice(last);
            }
            if emitted > 0 {
                return true;
            }
            // Zero hits from an exhausted shard: try the next one.
        }
    }

    /// Push adapter: consume the cursor and call `f(key, value)` for
    /// every remaining hit, returning the total emitted. Already-buffered
    /// hits are served from the buffers; the rest streams zero-copy
    /// through the shard engine (the old `range_with` visitor path —
    /// zero heap allocations per scan once the probe thread-locals are
    /// warm).
    ///
    /// `f` runs under a shard generation's read lock: keep it short and
    /// never call back into the store from inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] if a bound fails validation mid-scan (the
    /// constructor validates bounds, so this is defensive).
    pub fn for_each<F>(mut self, mut f: F) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        let mut emitted = 0usize;
        // Serve what pull mode already fetched.
        while self.pos < self.vals.len() {
            let i = self.pos;
            self.pos += 1;
            let (k, v) = self.buffered_hit(i);
            f(k, v);
            emitted += 1;
        }
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Stream the rest shard by shard.
        while !self.done && self.remaining > 0 && self.shard <= self.shard_end {
            let (generation, watermark) = match self.generation.take() {
                Some(g) => (g, self.watermark),
                None => self.source.pin(self.shard),
            };
            let n = generation.range_with_from(
                self.after.take().as_deref(),
                &self.low,
                &self.high,
                self.remaining,
                watermark,
                &mut f,
            )?;
            emitted += n;
            self.remaining -= n;
            self.shard += 1;
        }
        Ok(emitted)
    }

    /// Collect adapter: append every remaining hit to `out` as an owned
    /// `(key, value)` pair and return the count appended.
    ///
    /// # Errors
    ///
    /// As [`RangeCursor::for_each`].
    pub fn collect_into(self, out: &mut Vec<(Vec<u8>, V)>) -> Result<usize, StoreError> {
        self.for_each(|k, v| out.push((k.to_vec(), v.clone())))
    }
}

/// The cursor's push engine over **borrowed** bounds: what a fresh
/// cursor's [`RangeCursor::for_each`] does, without the cursor object's
/// owned-bounds copies. [`HopeStore::range_with`] and
/// [`HopeStore::range_into`] call this directly so the visitor scan stays
/// allocation-free end to end (the probe thread-locals carry all scratch).
pub(crate) fn push_scan<V, F>(
    store: &HopeStore<V>,
    low: &[u8],
    high: &[u8],
    limit: usize,
    f: F,
) -> Result<usize, StoreError>
where
    V: Value,
    F: FnMut(&[u8], &V),
{
    scan(Source::Live(store), low, high, limit, f)
}

/// [`push_scan`]'s point-in-time twin: the engine behind
/// [`Snapshot::range_with`] and [`Snapshot::range_into`].
pub(crate) fn snap_scan<V, F>(
    snap: &Snapshot<V>,
    low: &[u8],
    high: &[u8],
    limit: usize,
    f: F,
) -> Result<usize, StoreError>
where
    V: Value,
    F: FnMut(&[u8], &V),
{
    scan(Source::Snap(snap), low, high, limit, f)
}

fn scan<V, F>(
    source: Source<'_, V>,
    low: &[u8],
    high: &[u8],
    limit: usize,
    mut f: F,
) -> Result<usize, StoreError>
where
    V: Value,
    F: FnMut(&[u8], &V),
{
    if low > high || limit == 0 {
        return Ok(0);
    }
    let (s0, s1) = (source.route(low), source.route(high));
    let mut emitted = 0usize;
    for shard in s0..=s1 {
        if emitted == limit {
            break;
        }
        let (generation, watermark) = source.pin(shard);
        emitted +=
            generation.range_with_from(None, low, high, limit - emitted, watermark, &mut f)?;
    }
    Ok(emitted)
}
