//! One dictionary **generation** of a shard: an immutable HOPE compressor
//! plus the ordered index of keys encoded under it.
//!
//! A generation is the unit of the epoch-based hot-swap: readers clone the
//! shard's `Arc<Generation>` and keep using it even while a replacement is
//! being built; when the swap lands, stale readers simply drain and the
//! old generation is dropped with its last `Arc`.
//!
//! ## Exactness under padded-byte ties
//!
//! Trees index the *padded bytes* of an encoding. Padded-byte comparison
//! preserves source order except that two distinct keys can **tie** (the
//! zero-extension corner, see DESIGN.md "Encoded-key comparison"). A
//! generation therefore never maps encoded bytes straight to a value:
//! index values are ids into a slot table, and each slot holds the entries
//! of every live key sharing that byte string, ordered by source key.
//! Point lookups re-check the source key inside the slot and range scans
//! re-check the source bounds, so the store is exact for arbitrary byte
//! keys — not just keys where ties cannot occur. The index is always
//! slot-id-valued ([`SlotId`](crate::SlotId)) regardless of the payload
//! type `V`; the payload lives in the entry log.
//!
//! ## Lock discipline
//!
//! The interior `RwLock` is held briefly by probes and scan chunks. A
//! poisoned lock (a panic in some other thread's callback) is *recovered*,
//! not propagated: the generation's invariants are maintained step-wise,
//! so the data behind a poisoned lock is still coherent, and a read-mostly
//! serving layer should keep serving.

use std::cell::RefCell;
use std::sync::{PoisonError, RwLock};
use std::time::Instant;

use hope::{EncodeScratch, Hope, OrderedIndex, Value};

use crate::error::StoreError;
use crate::telemetry::ProbeSpans;
use crate::SlotId;

thread_local! {
    /// Per-thread encode buffers for the probe hot paths (`get`, `insert`,
    /// and the zero-copy `range_with` push scan): every probe reuses the
    /// same writer and byte buffers instead of allocating an `EncodedKey`
    /// per call. Thread-local rather than per-generation so readers on
    /// many threads never contend. (Pull-mode cursors own their buffers
    /// instead — a lending cursor outlives any single borrow window.)
    static SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::new());

    /// Per-thread slot-id buffer for the push scan path: the index fills
    /// it in place (`OrderedIndex::range_into`), so a scan of N hits
    /// performs no heap allocation once the buffer is warm.
    static SCAN: RefCell<Vec<SlotId>> = const { RefCell::new(Vec::new()) };
}

/// One stored record: the original (uncompressed) key and its value.
///
/// The source key must be retained anyway to re-encode the shard under a
/// new dictionary at swap time; keeping it per entry also gives the slot
/// table something authoritative to compare against.
#[derive(Debug, Clone)]
pub(crate) struct Entry<V> {
    pub key: Box<[u8]>,
    pub value: V,
}

/// The mutable interior of a generation.
///
/// `entries` is an **append-only log**: updates append a fresh entry and
/// re-point the slot at it rather than overwriting in place. That makes
/// the swap protocol trivial — everything a writer did after the rebuild
/// snapshot is exactly `entries[watermark..]`, replayable in order — at
/// the cost of dead log entries that the next rebuild compacts away.
#[derive(Debug)]
pub(crate) struct GenData<V> {
    /// Ordered index over encoded padded bytes; values are slot ids.
    pub index: Box<dyn OrderedIndex<SlotId>>,
    /// Append-only entry log (live and superseded).
    pub entries: Vec<Entry<V>>,
    /// Slot id → live entry indices, ordered by source key.
    pub slots: Vec<Vec<u32>>,
    /// Number of live keys.
    pub live: usize,
}

/// An immutable dictionary plus the index of keys encoded under it,
/// generic over the value payload `V`.
#[derive(Debug)]
pub struct Generation<V: Value = u64> {
    epoch: u64,
    hope: Hope,
    baseline_cpr: f64,
    data: RwLock<GenData<V>>,
}

/// Encode-side footprint of one insert, accumulated into the shard's
/// drift statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncodeFootprint {
    /// Uncompressed key bytes.
    pub src_bytes: u64,
    /// Padded encoded bytes.
    pub enc_bytes: u64,
}

impl<V: Value> Generation<V> {
    /// Build a generation from **sorted, deduplicated** `(key, value)`
    /// pairs, batch-encoding the keys with the sorted-batch prefix-reuse
    /// optimization (Appendix B) in blocks of `batch_block`.
    pub(crate) fn build(
        epoch: u64,
        hope: Hope,
        baseline_cpr: f64,
        mut index: Box<dyn OrderedIndex<SlotId>>,
        pairs: Vec<Entry<V>>,
        batch_block: usize,
    ) -> Generation<V> {
        debug_assert!(pairs.windows(2).all(|w| w[0].key < w[1].key), "bulk load must be sorted");
        let keys: Vec<&[u8]> = pairs.iter().map(|e| e.key.as_ref()).collect();
        let encoded = hope.encode_batch(&keys, batch_block.max(1));
        let live = pairs.len();
        // Sorted input keeps equal encodings adjacent: open a new slot on
        // every change of byte string, append to the current one on a tie.
        let mut slots: Vec<Vec<u32>> = Vec::new();
        let mut prev: Option<Vec<u8>> = None;
        for (i, enc) in encoded.into_iter().enumerate() {
            let bytes = enc.into_bytes();
            if prev.as_deref() == Some(bytes.as_slice()) {
                slots.last_mut().expect("tie follows an opened slot").push(i as u32);
            } else {
                slots.push(vec![i as u32]);
                index.insert(&bytes, (slots.len() - 1) as SlotId);
                prev = Some(bytes);
            }
        }
        let data = GenData { index, entries: pairs, slots, live };
        Generation { epoch, hope, baseline_cpr, data: RwLock::new(data) }
    }

    /// Read the interior, recovering from poisoning (see module docs).
    fn read(&self) -> std::sync::RwLockReadGuard<'_, GenData<V>> {
        self.data.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write the interior, recovering from poisoning (see module docs).
    fn write(&self) -> std::sync::RwLockWriteGuard<'_, GenData<V>> {
        self.data.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The epoch this generation was installed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compression rate of the dictionary on its own build sample — the
    /// reference the shard's observed CPR is compared against.
    pub fn baseline_cpr(&self) -> f64 {
        self.baseline_cpr
    }

    /// The compressor of this generation.
    pub fn hope(&self) -> &Hope {
        &self.hope
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.read().live
    }

    /// True if the generation holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory footprint: index structure + entry log + slot table.
    pub fn memory_bytes(&self) -> usize {
        let d = self.read();
        d.index.memory_bytes()
            + d.entries.iter().map(|e| e.key.len() + std::mem::size_of::<Entry<V>>()).sum::<usize>()
            + d.slots.iter().map(|s| s.len() * 4 + std::mem::size_of::<Vec<u32>>()).sum::<usize>()
    }

    /// Point lookup by source key, cloning the value out (a copy for
    /// `u64` ids). The probe key is encoded into a thread-local scratch —
    /// no allocation on this path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation
    /// (over [`hope::MAX_KEY_BYTES`]).
    pub fn get(&self, key: &[u8]) -> Result<Option<V>, StoreError> {
        self.get_with(key, V::clone)
    }

    /// Zero-clone point lookup: run `f` on a borrow of the stored value
    /// (under the generation's read lock — keep `f` short) and return its
    /// result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation.
    pub fn get_with<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&V) -> R,
    ) -> Result<Option<R>, StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let enc = self.hope.encode_to(key, scratch)?;
            let d = self.read();
            let Some(&slot) = d.index.get(enc) else { return Ok(None) };
            let slot = &d.slots[slot as usize];
            Ok(slot
                .iter()
                .map(|&ei| &d.entries[ei as usize])
                .find(|e| e.key.as_ref() == key)
                .map(|e| f(&e.value)))
        })
    }

    /// [`Generation::get`] with per-stage span timing (encode vs probe),
    /// for the serving layer's sampled request tracing. Identical
    /// semantics; the extra `Instant` reads are why the untraced path
    /// stays a separate function.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation.
    pub(crate) fn get_spanned(&self, key: &[u8]) -> Result<(Option<V>, ProbeSpans), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let t0 = Instant::now();
            let enc = self.hope.encode_to(key, scratch)?;
            let encode_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            let d = self.read();
            let found = d.index.get(enc).and_then(|&slot| {
                d.slots[slot as usize]
                    .iter()
                    .map(|&ei| &d.entries[ei as usize])
                    .find(|e| e.key.as_ref() == key)
                    .map(|e| e.value.clone())
            });
            let probe_ns = t1.elapsed().as_nanos() as u64;
            Ok((found, ProbeSpans { encode_ns, probe_ns, decode_ns: 0 }))
        })
    }

    /// Insert or update; returns the previous value (if any) and the
    /// encode footprint for drift accounting. Encoding happens into a
    /// thread-local scratch before the data lock is taken; the index's own
    /// `insert` copies the bytes it keeps.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails codec validation; the
    /// generation is unchanged in that case.
    pub(crate) fn insert(
        &self,
        key: &[u8],
        value: V,
    ) -> Result<(Option<V>, EncodeFootprint), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let bytes = self.hope.encode_to(key, scratch)?;
            Ok(self.apply_insert(key, value, bytes))
        })
    }

    /// [`Generation::insert`] with per-stage span timing (encode vs the
    /// index/log mutation, reported as the probe span).
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails codec validation.
    pub(crate) fn insert_spanned(
        &self,
        key: &[u8],
        value: V,
    ) -> Result<(Option<V>, EncodeFootprint, ProbeSpans), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let t0 = Instant::now();
            let bytes = self.hope.encode_to(key, scratch)?;
            let encode_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            let (old, footprint) = self.apply_insert(key, value, bytes);
            let probe_ns = t1.elapsed().as_nanos() as u64;
            Ok((old, footprint, ProbeSpans { encode_ns, probe_ns, decode_ns: 0 }))
        })
    }

    /// The mutation half of an insert, over already-encoded padded bytes.
    fn apply_insert(&self, key: &[u8], value: V, bytes: &[u8]) -> (Option<V>, EncodeFootprint) {
        let footprint =
            EncodeFootprint { src_bytes: key.len() as u64, enc_bytes: bytes.len() as u64 };
        let mut d = self.write();
        // Slot entries are u32; the log is compacted by rebuilds long
        // before this bound in any maintained deployment.
        let new_idx = u32::try_from(d.entries.len())
            .expect("generation write log exceeded u32::MAX entries without a rebuild");
        d.entries.push(Entry { key: key.into(), value });
        let existing = d.index.get(bytes).copied();
        let GenData { index, entries, slots, live } = &mut *d;
        let old = match existing {
            Some(slot_id) => {
                let slot = &mut slots[slot_id as usize];
                match slot.iter().position(|&ei| entries[ei as usize].key.as_ref() >= key) {
                    Some(pos) if entries[slot[pos] as usize].key.as_ref() == key => {
                        // Update: re-point the slot, keep the old log entry
                        // as garbage for the swap replay to supersede.
                        let old = entries[slot[pos] as usize].value.clone();
                        slot[pos] = new_idx;
                        Some(old)
                    }
                    Some(pos) => {
                        slot.insert(pos, new_idx);
                        *live += 1;
                        None
                    }
                    None => {
                        slot.push(new_idx);
                        *live += 1;
                        None
                    }
                }
            }
            None => {
                slots.push(vec![new_idx]);
                index.insert(bytes, (slots.len() - 1) as SlotId);
                *live += 1;
                None
            }
        };
        (old, footprint)
    }

    /// Bounded range query by source keys, inclusive on both ends:
    /// `(key, value)` pairs in source order, at most `limit`. Unlike the
    /// pre-v1 method this shim replaces, bounds longer than
    /// [`hope::MAX_KEY_BYTES`] yield an empty result (the fallible
    /// [`Generation::range_with`] surfaces the error instead).
    #[deprecated(
        since = "0.2.0",
        note = "allocates every hit; scan through a store-level RangeCursor \
                (or this generation's `range_with`) instead"
    )]
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        let _ = self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v.clone())));
        out
    }

    /// Visitor-form range scan: call `f(key, value)` for up to `limit`
    /// hits in source order and return the hit count. The two bounds are
    /// pair-encoded (one dictionary traversal for their common prefix)
    /// into a thread-local scratch and the index fills a thread-local
    /// slot buffer in place, so a scan of N hits performs **zero heap
    /// allocations** after warm-up — the keys and values handed to `f`
    /// are borrowed from the generation.
    ///
    /// `f` runs under the generation's data read lock: keep it short and
    /// never call back into this store from inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails codec validation.
    pub fn range_with<F>(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        if low > high || limit == 0 {
            return Ok(0);
        }
        self.range_with_from(None, low, high, limit, f)
    }

    /// [`Generation::range_with`] with an exclusive resume point: visit
    /// hits strictly greater than `after` (a key previously emitted by
    /// the same scan). Runs on the probe thread-locals — the cursor's
    /// push adapter continues a partially pulled scan through this.
    pub(crate) fn range_with_from<F>(
        &self,
        after: Option<&[u8]>,
        low: &[u8],
        high: &[u8],
        limit: usize,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        SCRATCH.with_borrow_mut(|scratch| {
            SCAN.with_borrow_mut(|slot_ids| {
                self.range_visit(after, low, high, limit, scratch, slot_ids, f)
            })
        })
    }

    /// The scan engine behind both the push ([`Generation::range_with`])
    /// and pull (cursor chunk) paths: visit up to `limit` hits with
    /// source key strictly greater than `after` (when set; the cursor's
    /// resume point) and within `low..=high`, using *caller-provided*
    /// scratch buffers.
    ///
    /// Boundary slots may mix keys inside and outside the source range
    /// (padded-byte ties), so a slot-limited query can come up short after
    /// filtering; the engine grows the slot budget until satisfied or the
    /// encoded range is exhausted. The index state is frozen under the
    /// read lock and `range_into` results are a stable prefix under a
    /// growing limit, so the retry only needs to process the newly
    /// returned tail.
    #[allow(clippy::too_many_arguments)] // the engine takes both scratch buffers explicitly
    pub(crate) fn range_visit<F>(
        &self,
        after: Option<&[u8]>,
        low: &[u8],
        high: &[u8],
        limit: usize,
        scratch: &mut EncodeScratch,
        slot_ids: &mut Vec<SlotId>,
        mut f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        debug_assert!(after.is_none_or(|a| a >= low));
        let enc_from = after.unwrap_or(low);
        let (enc_low, enc_high) = self.hope.encode_range_bounds_to(enc_from, high, scratch)?;
        let d = self.read();
        let mut want = limit.saturating_add(2);
        let mut done = 0usize;
        let mut emitted = 0usize;
        loop {
            slot_ids.clear();
            d.index.range_into(enc_low, enc_high, want, slot_ids);
            let exhausted = slot_ids.len() < want;
            for (j, sid) in slot_ids[done..].iter().enumerate() {
                // Source-bound re-checks are needed only on *boundary*
                // slots: distinct slots hold distinct padded byte
                // strings, so at most the scan's first returned slot can
                // tie with the low bound's encoding and at most the
                // fetch's last with the high bound's. Strict padded-byte
                // inequality implies the same strict source order (order
                // preservation; see DESIGN.md "Encoded-key comparison"),
                // so every interior slot lies strictly inside the source
                // range and its keys are emitted without a compare. A
                // non-final fetch's last slot is checked conservatively.
                let abs = done + j;
                let boundary = abs == 0 || abs + 1 == slot_ids.len();
                for &ei in &d.slots[*sid as usize] {
                    let e = &d.entries[ei as usize];
                    if boundary {
                        let past_resume = match after {
                            Some(a) => e.key.as_ref() > a,
                            None => e.key.as_ref() >= low,
                        };
                        if !past_resume || e.key.as_ref() > high {
                            continue;
                        }
                    }
                    f(&e.key, &e.value);
                    emitted += 1;
                    if emitted == limit {
                        return Ok(emitted);
                    }
                }
            }
            if exhausted {
                return Ok(emitted);
            }
            done = slot_ids.len();
            want = want.saturating_mul(2);
        }
    }

    /// Snapshot the live entries in source order plus the log watermark;
    /// everything appended after `watermark` is what the swap must replay.
    pub(crate) fn snapshot_live(&self) -> (Vec<Entry<V>>, usize) {
        let d = self.read();
        let mut slot_ids: Vec<SlotId> = Vec::with_capacity(d.slots.len());
        d.index.scan_into(&[], usize::MAX, &mut slot_ids);
        let mut live = Vec::with_capacity(d.live);
        for sid in slot_ids {
            for &ei in &d.slots[sid as usize] {
                live.push(d.entries[ei as usize].clone());
            }
        }
        (live, d.entries.len())
    }

    /// Clone of the log entries appended after `watermark`, in order.
    pub(crate) fn entries_since(&self, watermark: usize) -> Vec<Entry<V>> {
        let d = self.read();
        d.entries[watermark.min(d.entries.len())..].to_vec()
    }

    /// `(live keys, total log entries)` — the gap between the two is dead
    /// log garbage a rebuild would compact away.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        let d = self.read();
        (d.live, d.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope::{HopeBuilder, Scheme};

    fn build_gen(pairs: &[(&str, u64)]) -> Generation<u64> {
        let sample: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.as_bytes().to_vec()).collect();
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
        let mut sorted: Vec<Entry<u64>> =
            pairs.iter().map(|(k, v)| Entry { key: k.as_bytes().into(), value: *v }).collect();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        let index: Box<dyn OrderedIndex<SlotId>> = Box::new(hope_btree::BPlusTree::plain());
        Generation::build(7, hope, 1.5, index, sorted, 8)
    }

    #[test]
    fn bulk_load_and_get() {
        let g = build_gen(&[("com.gmail@a", 1), ("com.gmail@b", 2), ("org.acm@c", 3)]);
        assert_eq!(g.epoch(), 7);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(b"com.gmail@a").unwrap(), Some(1));
        assert_eq!(g.get(b"org.acm@c").unwrap(), Some(3));
        assert_eq!(g.get(b"com.gmail@zz").unwrap(), None);
        assert_eq!(g.get_with(b"com.gmail@b", |v| v + 100).unwrap(), Some(102));
        assert!(g.memory_bytes() > 0);
        // Probe-side validation surfaces as an error, not a panic.
        let giant = vec![b'x'; hope::MAX_KEY_BYTES + 1];
        assert!(matches!(g.get(&giant), Err(StoreError::Codec(_))));
    }

    #[test]
    fn insert_update_and_log_replay_watermark() {
        let g = build_gen(&[("com.gmail@a", 1)]);
        let (_, w0) = g.snapshot_live();
        assert_eq!(g.insert(b"com.gmail@b", 2).unwrap().0, None);
        assert_eq!(g.insert(b"com.gmail@a", 9).unwrap().0, Some(1));
        assert_eq!(g.get(b"com.gmail@a").unwrap(), Some(9));
        assert_eq!(g.len(), 2);
        // The log after the watermark replays both mutations in order.
        let delta = g.entries_since(w0);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].key.as_ref(), b"com.gmail@b");
        assert_eq!(delta[1].value, 9);
    }

    #[test]
    fn range_with_is_inclusive_and_source_ordered() {
        let g = build_gen(&[
            ("com.gmail@a", 1),
            ("com.gmail@b", 2),
            ("com.gmail@c", 3),
            ("org.acm@d", 4),
        ]);
        let collect = |low: &[u8], high: &[u8], limit: usize| {
            let mut out: Vec<(Vec<u8>, u64)> = Vec::new();
            let n = g.range_with(low, high, limit, |k, v| out.push((k.to_vec(), *v))).unwrap();
            assert_eq!(n, out.len());
            out
        };
        let got = collect(b"com.gmail@a", b"com.gmail@c", 10);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"com.gmail@a"[..], b"com.gmail@b", b"com.gmail@c"]);
        assert_eq!(collect(b"com.gmail@a", b"com.gmail@c", 2).len(), 2);
        assert!(collect(b"x", b"a", 10).is_empty());
        assert!(collect(b"zz", b"zzz", 10).is_empty());
        assert!(collect(b"a", b"b", 0).is_empty());
        // The deprecated allocating shim agrees with the visitor.
        #[allow(deprecated)]
        {
            assert_eq!(g.range(b"com.gmail@a", b"com.gmail@c", 10), got);
        }
    }

    #[test]
    fn range_visit_resumes_strictly_after_a_key() {
        let g = build_gen(&[("a", 1), ("ab", 2), ("abc", 3), ("b", 4)]);
        let mut scratch = EncodeScratch::new();
        let mut slot_ids = Vec::new();
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let n = g
            .range_visit(Some(b"ab"), b"a", b"b", 10, &mut scratch, &mut slot_ids, |k, _| {
                seen.push(k.to_vec())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(seen, vec![b"abc".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn snapshot_live_is_sorted_and_deduplicated() {
        let g = build_gen(&[("b", 2), ("a", 1)]);
        g.insert(b"c", 3).unwrap();
        g.insert(b"a", 10).unwrap();
        let (live, _) = g.snapshot_live();
        let keys: Vec<&[u8]> = live.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"c"]);
        assert_eq!(live[0].value, 10, "snapshot must carry the updated value");
    }

    #[test]
    fn generic_payloads_round_trip() {
        let sample: Vec<Vec<u8>> = vec![b"k1".to_vec(), b"k2".to_vec()];
        let hope = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample).unwrap();
        let index: Box<dyn OrderedIndex<SlotId>> = Box::new(hope_btree::BPlusTree::plain());
        let pairs = vec![
            Entry { key: b"k1".as_slice().into(), value: b"one".to_vec() },
            Entry { key: b"k2".as_slice().into(), value: b"two".to_vec() },
        ];
        let g: Generation<Vec<u8>> = Generation::build(1, hope, 1.0, index, pairs, 4);
        assert_eq!(g.get(b"k2").unwrap(), Some(b"two".to_vec()));
        assert_eq!(g.insert(b"k1", b"uno".to_vec()).unwrap().0, Some(b"one".to_vec()));
        assert_eq!(g.get_with(b"k1", |v| v.len()).unwrap(), Some(3));
    }
}
