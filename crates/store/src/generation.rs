//! One dictionary **generation** of a shard: an immutable HOPE compressor
//! plus the ordered index of keys encoded under it.
//!
//! A generation is the unit of the epoch-based hot-swap: readers clone the
//! shard's `Arc<Generation>` and keep using it even while a replacement is
//! being built; when the swap lands, stale readers simply drain and the
//! old generation is dropped with its last `Arc`.
//!
//! ## Exactness under padded-byte ties
//!
//! Trees index the *padded bytes* of an encoding. Padded-byte comparison
//! preserves source order except that two distinct keys can **tie** (the
//! zero-extension corner, see DESIGN.md "Encoded-key comparison"). A
//! generation therefore never maps encoded bytes straight to a value:
//! index values are ids into a slot table, and each slot holds the entries
//! of every live key sharing that byte string, ordered by source key.
//! Point lookups re-check the source key inside the slot and range scans
//! re-check the source bounds, so the store is exact for arbitrary byte
//! keys — not just keys where ties cannot occur. The index is always
//! slot-id-valued ([`SlotId`](crate::SlotId)) regardless of the payload
//! type `V`; the payload lives in the entry log.
//!
//! ## Lock discipline
//!
//! The interior `RwLock` is held briefly by probes and scan chunks. A
//! poisoned lock (a panic in some other thread's callback) is *recovered*,
//! not propagated: the generation's invariants are maintained step-wise,
//! so the data behind a poisoned lock is still coherent, and a read-mostly
//! serving layer should keep serving.

use std::cell::RefCell;
use std::sync::{PoisonError, RwLock};
use std::time::Instant;

use hope::{EncodeScratch, Hope, OrderedIndex, Value};

use crate::error::StoreError;
use crate::telemetry::ProbeSpans;
use crate::SlotId;

thread_local! {
    /// Per-thread encode buffers for the probe hot paths (`get`, `insert`,
    /// and the zero-copy `range_with` push scan): every probe reuses the
    /// same writer and byte buffers instead of allocating an `EncodedKey`
    /// per call. Thread-local rather than per-generation so readers on
    /// many threads never contend. (Pull-mode cursors own their buffers
    /// instead — a lending cursor outlives any single borrow window.)
    static SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::new());

    /// Per-thread slot-id buffer for the push scan path: the index fills
    /// it in place (`OrderedIndex::range_into`), so a scan of N hits
    /// performs no heap allocation once the buffer is warm.
    static SCAN: RefCell<Vec<SlotId>> = const { RefCell::new(Vec::new()) };
}

/// `prev` sentinel: this entry superseded nothing (first version of its
/// key in this log). Safe as a sentinel because the capacity guard in
/// `apply_insert` rejects the insert that would *create* index
/// `u32::MAX` before it happens.
pub(crate) const NO_PREV: u32 = u32::MAX;

/// One stored record: the original (uncompressed) key and its value.
///
/// The source key must be retained anyway to re-encode the shard under a
/// new dictionary at swap time; keeping it per entry also gives the slot
/// table something authoritative to compare against.
///
/// `prev` threads the per-key **version chain** through the append-only
/// log: an update's entry records the log index it superseded
/// ([`NO_PREV`] for a first version). Because slots point at the newest
/// entry and every link strictly decreases the index, "the value of key
/// K at log watermark W" is: follow the chain from the slot's entry
/// until the index drops below W (that version was live at W), or the
/// chain ends (K did not exist at W). This is what gives store-wide
/// snapshots point-in-time reads over a generation that keeps mutating.
#[derive(Debug, Clone)]
pub(crate) struct Entry<V> {
    pub key: Box<[u8]>,
    pub value: V,
    /// Log index this entry superseded, or [`NO_PREV`].
    pub prev: u32,
}

impl<V> Entry<V> {
    /// A first-version entry (no predecessor in the chain).
    pub(crate) fn new(key: Box<[u8]>, value: V) -> Entry<V> {
        Entry { key, value, prev: NO_PREV }
    }
}

/// Resolve the chain member of `ei` visible at log watermark `at`
/// (`None` = the live entry itself). See [`Entry::prev`].
fn visible_at<V>(entries: &[Entry<V>], mut ei: u32, at: Option<usize>) -> Option<&Entry<V>> {
    let Some(w) = at else { return Some(&entries[ei as usize]) };
    loop {
        if (ei as usize) < w {
            return Some(&entries[ei as usize]);
        }
        let prev = entries[ei as usize].prev;
        if prev == NO_PREV {
            return None;
        }
        ei = prev;
    }
}

/// The mutable interior of a generation.
///
/// `entries` is an **append-only log**: updates append a fresh entry and
/// re-point the slot at it rather than overwriting in place. That makes
/// the swap protocol trivial — everything a writer did after the rebuild
/// snapshot is exactly `entries[watermark..]`, replayable in order — at
/// the cost of dead log entries that the next rebuild compacts away.
#[derive(Debug)]
pub(crate) struct GenData<V> {
    /// Ordered index over encoded padded bytes; values are slot ids.
    pub index: Box<dyn OrderedIndex<SlotId>>,
    /// Append-only entry log (live and superseded).
    pub entries: Vec<Entry<V>>,
    /// Slot id → live entry indices, ordered by source key.
    pub slots: Vec<Vec<u32>>,
    /// Slot id → the encoded padded byte string the slot indexes under.
    /// The `OrderedIndex` contract yields values only, never keys, so
    /// the generation keeps its own copy — this is what lets a merge
    /// rebuild reuse already-encoded runs without re-deriving them.
    pub encs: Vec<Box<[u8]>>,
    /// Number of live keys.
    pub live: usize,
}

/// An immutable dictionary plus the index of keys encoded under it,
/// generic over the value payload `V`.
#[derive(Debug)]
pub struct Generation<V: Value = u64> {
    epoch: u64,
    hope: Hope,
    baseline_cpr: f64,
    /// Shard this generation serves (error attribution only).
    shard: usize,
    /// Write-log entry cap: `apply_insert` returns
    /// [`StoreError::WriteLogFull`] instead of growing past it.
    log_capacity: u32,
    data: RwLock<GenData<V>>,
}

/// Byte accounting of one merge build ([`Generation::build_merged`]):
/// how much encoded output was spliced from the old generation verbatim
/// vs produced by running the new dictionary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MergeStats {
    /// Encoded bytes reused from the old generation (per live entry).
    pub reused_bytes: u64,
    /// Encoded bytes re-encoded under the new dictionary.
    pub reencoded_bytes: u64,
}

/// What [`Generation::snapshot_live_encoded`] captures: the sorted live
/// entries, their encoded bytes under the current dictionary, and the
/// log watermark the swap's splice replays from.
pub(crate) type LiveEncoded<V> = (Vec<Entry<V>>, Vec<Box<[u8]>>, usize);

/// The per-entry inputs of [`Generation::build_merged`], which travel
/// together (index-aligned): the sorted live entries, their encodings
/// under the *previous* dictionary, and the dictionary diff's verdict
/// on whether those bytes survive the retrain verbatim.
pub(crate) struct MergeSource<V: Value> {
    /// Sorted live entries to load.
    pub pairs: Vec<Entry<V>>,
    /// Entry `i`'s encoding under the previous dictionary.
    pub old_encs: Vec<Box<[u8]>>,
    /// True when `old_encs[i]` is provably identical under the new
    /// dictionary and can be spliced without re-encoding.
    pub reuse: Vec<bool>,
}

/// Encode-side footprint of one insert, accumulated into the shard's
/// drift statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncodeFootprint {
    /// Uncompressed key bytes.
    pub src_bytes: u64,
    /// Padded encoded bytes.
    pub enc_bytes: u64,
}

impl<V: Value> Generation<V> {
    /// Build a generation from **sorted, deduplicated** `(key, value)`
    /// pairs, batch-encoding the keys with the sorted-batch prefix-reuse
    /// optimization (Appendix B) in blocks of `batch_block`.
    pub(crate) fn build(
        epoch: u64,
        hope: Hope,
        baseline_cpr: f64,
        mut index: Box<dyn OrderedIndex<SlotId>>,
        mut pairs: Vec<Entry<V>>,
        batch_block: usize,
    ) -> Generation<V> {
        debug_assert!(pairs.windows(2).all(|w| w[0].key < w[1].key), "bulk load must be sorted");
        // Loaded entries start fresh chains: a clone out of another
        // generation's log carries `prev` indices that mean nothing here.
        for e in &mut pairs {
            e.prev = NO_PREV;
        }
        let keys: Vec<&[u8]> = pairs.iter().map(|e| e.key.as_ref()).collect();
        let encoded = hope.encode_batch(&keys, batch_block.max(1));
        let live = pairs.len();
        // Sorted input keeps equal encodings adjacent: open a new slot on
        // every change of byte string, append to the current one on a tie.
        let mut slots: Vec<Vec<u32>> = Vec::new();
        let mut encs: Vec<Box<[u8]>> = Vec::new();
        let mut prev: Option<Vec<u8>> = None;
        for (i, enc) in encoded.into_iter().enumerate() {
            let bytes = enc.into_bytes();
            if prev.as_deref() == Some(bytes.as_slice()) {
                slots.last_mut().expect("tie follows an opened slot").push(i as u32);
            } else {
                slots.push(vec![i as u32]);
                index.insert(&bytes, (slots.len() - 1) as SlotId);
                encs.push(bytes.clone().into_boxed_slice());
                prev = Some(bytes);
            }
        }
        let data = GenData { index, entries: pairs, slots, encs, live };
        Generation {
            epoch,
            hope,
            baseline_cpr,
            shard: 0,
            log_capacity: NO_PREV,
            data: RwLock::new(data),
        }
    }

    /// [`Generation::build`], but **merge-style**: entry `i` whose
    /// `reuse[i]` is set splices `old_encs[i]` — its encoding under the
    /// *previous* dictionary — verbatim instead of re-encoding, which is
    /// exact because the dictionary diff already proved the new
    /// dictionary emits those very bytes (see
    /// [`hope::diff::EncodingDiff`]). Only the changed keys run the
    /// encoder (still batch-encoded: they are a sorted subsequence, so
    /// the prefix-reuse optimization applies). Slot construction is
    /// identical to the bulk build's — reused and re-encoded runs
    /// interleave into one sorted encoded stream.
    pub(crate) fn build_merged(
        epoch: u64,
        hope: Hope,
        baseline_cpr: f64,
        mut index: Box<dyn OrderedIndex<SlotId>>,
        source: MergeSource<V>,
        batch_block: usize,
    ) -> (Generation<V>, MergeStats) {
        let MergeSource { mut pairs, old_encs, reuse } = source;
        debug_assert!(pairs.windows(2).all(|w| w[0].key < w[1].key), "merge load must be sorted");
        debug_assert_eq!(pairs.len(), old_encs.len());
        debug_assert_eq!(pairs.len(), reuse.len());
        for e in &mut pairs {
            e.prev = NO_PREV;
        }
        let changed: Vec<&[u8]> =
            pairs.iter().zip(&reuse).filter(|&(_, &r)| !r).map(|(e, _)| e.key.as_ref()).collect();
        let reencoded = hope.encode_batch(&changed, batch_block.max(1));
        let mut reencoded_iter = reencoded.into_iter();
        let mut stats = MergeStats::default();
        let live = pairs.len();
        let mut slots: Vec<Vec<u32>> = Vec::new();
        let mut encs: Vec<Box<[u8]>> = Vec::new();
        let mut prev: Option<Vec<u8>> = None;
        for (i, old_enc) in old_encs.into_iter().enumerate() {
            let bytes: Vec<u8> = if reuse[i] {
                stats.reused_bytes += old_enc.len() as u64;
                old_enc.into_vec()
            } else {
                let enc = reencoded_iter.next().expect("one batch encoding per changed key");
                let b = enc.into_bytes();
                stats.reencoded_bytes += b.len() as u64;
                b
            };
            if prev.as_deref() == Some(bytes.as_slice()) {
                slots.last_mut().expect("tie follows an opened slot").push(i as u32);
            } else {
                slots.push(vec![i as u32]);
                index.insert(&bytes, (slots.len() - 1) as SlotId);
                encs.push(bytes.clone().into_boxed_slice());
                prev = Some(bytes);
            }
        }
        let data = GenData { index, entries: pairs, slots, encs, live };
        let generation = Generation {
            epoch,
            hope,
            baseline_cpr,
            shard: 0,
            log_capacity: NO_PREV,
            data: RwLock::new(data),
        };
        (generation, stats)
    }

    /// Attach the owning shard id (error attribution) and the write-log
    /// capacity (back-pressure bound) — chained right after a build.
    pub(crate) fn with_context(mut self, shard: usize, log_capacity: u32) -> Generation<V> {
        self.shard = shard;
        self.log_capacity = log_capacity;
        self
    }

    /// Read the interior, recovering from poisoning (see module docs).
    fn read(&self) -> std::sync::RwLockReadGuard<'_, GenData<V>> {
        self.data.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write the interior, recovering from poisoning (see module docs).
    fn write(&self) -> std::sync::RwLockWriteGuard<'_, GenData<V>> {
        self.data.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The epoch this generation was installed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compression rate of the dictionary on its own build sample — the
    /// reference the shard's observed CPR is compared against.
    pub fn baseline_cpr(&self) -> f64 {
        self.baseline_cpr
    }

    /// The compressor of this generation.
    pub fn hope(&self) -> &Hope {
        &self.hope
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.read().live
    }

    /// True if the generation holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory footprint: index structure + entry log + slot table +
    /// retained per-slot encodings.
    pub fn memory_bytes(&self) -> usize {
        let d = self.read();
        d.index.memory_bytes()
            + d.entries.iter().map(|e| e.key.len() + std::mem::size_of::<Entry<V>>()).sum::<usize>()
            + d.slots.iter().map(|s| s.len() * 4 + std::mem::size_of::<Vec<u32>>()).sum::<usize>()
            + d.encs.iter().map(|e| e.len() + std::mem::size_of::<Box<[u8]>>()).sum::<usize>()
    }

    /// Point lookup by source key, cloning the value out (a copy for
    /// `u64` ids). The probe key is encoded into a thread-local scratch —
    /// no allocation on this path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation
    /// (over [`hope::MAX_KEY_BYTES`]).
    pub fn get(&self, key: &[u8]) -> Result<Option<V>, StoreError> {
        self.get_with(key, V::clone)
    }

    /// Zero-clone point lookup: run `f` on a borrow of the stored value
    /// (under the generation's read lock — keep `f` short) and return its
    /// result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation.
    pub fn get_with<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&V) -> R,
    ) -> Result<Option<R>, StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let enc = self.hope.encode_to(key, scratch)?;
            let d = self.read();
            let Some(&slot) = d.index.get(enc) else { return Ok(None) };
            let slot = &d.slots[slot as usize];
            Ok(slot
                .iter()
                .map(|&ei| &d.entries[ei as usize])
                .find(|e| e.key.as_ref() == key)
                .map(|e| f(&e.value)))
        })
    }

    /// Point-in-time point lookup: the value `key` had when the log
    /// stood at `watermark` entries — the read primitive behind
    /// [`Snapshot`](crate::versioned::Snapshot). Resolves the slot's
    /// entry through its version chain (see [`Entry::prev`]): entries
    /// appended at or after the watermark are invisible, and a key whose
    /// whole chain postdates the watermark did not exist then.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation.
    pub(crate) fn get_at(&self, key: &[u8], watermark: usize) -> Result<Option<V>, StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let enc = self.hope.encode_to(key, scratch)?;
            let d = self.read();
            let Some(&slot) = d.index.get(enc) else { return Ok(None) };
            Ok(d.slots[slot as usize]
                .iter()
                .copied()
                .find(|&ei| d.entries[ei as usize].key.as_ref() == key)
                .and_then(|ei| visible_at(&d.entries, ei, Some(watermark)))
                .map(|e| e.value.clone()))
        })
    }

    /// [`Generation::get`] with per-stage span timing (encode vs probe),
    /// for the serving layer's sampled request tracing. Identical
    /// semantics; the extra `Instant` reads are why the untraced path
    /// stays a separate function.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails codec validation.
    pub(crate) fn get_spanned(&self, key: &[u8]) -> Result<(Option<V>, ProbeSpans), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let t0 = Instant::now();
            let enc = self.hope.encode_to(key, scratch)?;
            let encode_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            let d = self.read();
            let found = d.index.get(enc).and_then(|&slot| {
                d.slots[slot as usize]
                    .iter()
                    .map(|&ei| &d.entries[ei as usize])
                    .find(|e| e.key.as_ref() == key)
                    .map(|e| e.value.clone())
            });
            let probe_ns = t1.elapsed().as_nanos() as u64;
            Ok((found, ProbeSpans { encode_ns, probe_ns, decode_ns: 0 }))
        })
    }

    /// Insert or update; returns the previous value (if any) and the
    /// encode footprint for drift accounting. Encoding happens into a
    /// thread-local scratch before the data lock is taken; the index's own
    /// `insert` copies the bytes it keeps.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails codec validation, or
    /// [`StoreError::WriteLogFull`] when the log is at capacity; the
    /// generation is unchanged in either case.
    pub(crate) fn insert(
        &self,
        key: &[u8],
        value: V,
    ) -> Result<(Option<V>, EncodeFootprint), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let bytes = self.hope.encode_to(key, scratch)?;
            self.apply_insert(key, value, bytes)
        })
    }

    /// [`Generation::insert`] with per-stage span timing (encode vs the
    /// index/log mutation, reported as the probe span).
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails codec validation, or
    /// [`StoreError::WriteLogFull`] when the log is at capacity.
    pub(crate) fn insert_spanned(
        &self,
        key: &[u8],
        value: V,
    ) -> Result<(Option<V>, EncodeFootprint, ProbeSpans), StoreError> {
        SCRATCH.with_borrow_mut(|scratch| {
            let t0 = Instant::now();
            let bytes = self.hope.encode_to(key, scratch)?;
            let encode_ns = t0.elapsed().as_nanos() as u64;
            let t1 = Instant::now();
            let (old, footprint) = self.apply_insert(key, value, bytes)?;
            let probe_ns = t1.elapsed().as_nanos() as u64;
            Ok((old, footprint, ProbeSpans { encode_ns, probe_ns, decode_ns: 0 }))
        })
    }

    /// The mutation half of an insert, over already-encoded padded bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::WriteLogFull`] when the log is at its configured
    /// capacity (and always before it could reach `u32::MAX` entries,
    /// where slot indices and the [`NO_PREV`] sentinel would break): the
    /// insert is **not** applied, the generation stays fully serviceable,
    /// and a rebuild compacts the log so the caller can retry.
    fn apply_insert(
        &self,
        key: &[u8],
        value: V,
        bytes: &[u8],
    ) -> Result<(Option<V>, EncodeFootprint), StoreError> {
        let footprint =
            EncodeFootprint { src_bytes: key.len() as u64, enc_bytes: bytes.len() as u64 };
        let mut d = self.write();
        if d.entries.len() >= self.log_capacity as usize {
            return Err(StoreError::WriteLogFull {
                shard: self.shard,
                capacity: self.log_capacity,
            });
        }
        // In range: the capacity guard bounds the log at u32::MAX.
        let new_idx = d.entries.len() as u32;
        d.entries.push(Entry::new(key.into(), value));
        let existing = d.index.get(bytes).copied();
        let GenData { index, entries, slots, encs, live } = &mut *d;
        let old = match existing {
            Some(slot_id) => {
                let slot = &mut slots[slot_id as usize];
                match slot.iter().position(|&ei| entries[ei as usize].key.as_ref() >= key) {
                    Some(pos) if entries[slot[pos] as usize].key.as_ref() == key => {
                        // Update: chain the new entry to the one it
                        // supersedes (snapshot reads walk this), then
                        // re-point the slot; the old log entry stays as
                        // garbage for the swap replay to supersede.
                        let old = entries[slot[pos] as usize].value.clone();
                        entries[new_idx as usize].prev = slot[pos];
                        slot[pos] = new_idx;
                        Some(old)
                    }
                    Some(pos) => {
                        slot.insert(pos, new_idx);
                        *live += 1;
                        None
                    }
                    None => {
                        slot.push(new_idx);
                        *live += 1;
                        None
                    }
                }
            }
            None => {
                slots.push(vec![new_idx]);
                index.insert(bytes, (slots.len() - 1) as SlotId);
                encs.push(bytes.into());
                *live += 1;
                None
            }
        };
        Ok((old, footprint))
    }

    /// Bounded range query by source keys, inclusive on both ends:
    /// `(key, value)` pairs in source order, at most `limit`. Unlike the
    /// pre-v1 method this shim replaces, bounds longer than
    /// [`hope::MAX_KEY_BYTES`] yield an empty result (the fallible
    /// [`Generation::range_with`] surfaces the error instead).
    #[deprecated(
        since = "0.2.0",
        note = "allocates every hit; scan through a store-level RangeCursor \
                (or this generation's `range_with`) instead"
    )]
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        let _ = self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v.clone())));
        out
    }

    /// Visitor-form range scan: call `f(key, value)` for up to `limit`
    /// hits in source order and return the hit count. The two bounds are
    /// pair-encoded (one dictionary traversal for their common prefix)
    /// into a thread-local scratch and the index fills a thread-local
    /// slot buffer in place, so a scan of N hits performs **zero heap
    /// allocations** after warm-up — the keys and values handed to `f`
    /// are borrowed from the generation.
    ///
    /// `f` runs under the generation's data read lock: keep it short and
    /// never call back into this store from inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails codec validation.
    pub fn range_with<F>(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        if low > high || limit == 0 {
            return Ok(0);
        }
        self.range_with_from(None, low, high, limit, None, f)
    }

    /// [`Generation::range_with`] with an exclusive resume point — visit
    /// hits strictly greater than `after` (a key previously emitted by
    /// the same scan) — and an optional point-in-time watermark (`at`;
    /// see [`Generation::get_at`]). Runs on the probe thread-locals —
    /// the cursor's push adapter continues a partially pulled scan
    /// through this.
    pub(crate) fn range_with_from<F>(
        &self,
        after: Option<&[u8]>,
        low: &[u8],
        high: &[u8],
        limit: usize,
        at: Option<usize>,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        SCRATCH.with_borrow_mut(|scratch| {
            SCAN.with_borrow_mut(|slot_ids| {
                self.range_visit(after, low, high, limit, at, scratch, slot_ids, f)
            })
        })
    }

    /// The scan engine behind both the push ([`Generation::range_with`])
    /// and pull (cursor chunk) paths: visit up to `limit` hits with
    /// source key strictly greater than `after` (when set; the cursor's
    /// resume point) and within `low..=high`, using *caller-provided*
    /// scratch buffers. With `at` set, every candidate entry resolves
    /// through its version chain first ([`Generation::get_at`]), so the
    /// scan observes exactly the state at that log watermark — slots and
    /// versions born later are invisible. (Index and slot growth happen
    /// under the data lock this scan reads under, so the watermark is
    /// never torn.)
    ///
    /// Boundary slots may mix keys inside and outside the source range
    /// (padded-byte ties), so a slot-limited query can come up short after
    /// filtering; the engine grows the slot budget until satisfied or the
    /// encoded range is exhausted. The index state is frozen under the
    /// read lock and `range_into` results are a stable prefix under a
    /// growing limit, so the retry only needs to process the newly
    /// returned tail.
    #[allow(clippy::too_many_arguments)] // the engine takes both scratch buffers explicitly
    pub(crate) fn range_visit<F>(
        &self,
        after: Option<&[u8]>,
        low: &[u8],
        high: &[u8],
        limit: usize,
        at: Option<usize>,
        scratch: &mut EncodeScratch,
        slot_ids: &mut Vec<SlotId>,
        mut f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        debug_assert!(after.is_none_or(|a| a >= low));
        let enc_from = after.unwrap_or(low);
        let (enc_low, enc_high) = self.hope.encode_range_bounds_to(enc_from, high, scratch)?;
        let d = self.read();
        let mut want = limit.saturating_add(2);
        let mut done = 0usize;
        let mut emitted = 0usize;
        loop {
            slot_ids.clear();
            d.index.range_into(enc_low, enc_high, want, slot_ids);
            let exhausted = slot_ids.len() < want;
            for (j, sid) in slot_ids[done..].iter().enumerate() {
                // Source-bound re-checks are needed only on *boundary*
                // slots: distinct slots hold distinct padded byte
                // strings, so at most the scan's first returned slot can
                // tie with the low bound's encoding and at most the
                // fetch's last with the high bound's. Strict padded-byte
                // inequality implies the same strict source order (order
                // preservation; see DESIGN.md "Encoded-key comparison"),
                // so every interior slot lies strictly inside the source
                // range and its keys are emitted without a compare. A
                // non-final fetch's last slot is checked conservatively.
                let abs = done + j;
                let boundary = abs == 0 || abs + 1 == slot_ids.len();
                for &ei in &d.slots[*sid as usize] {
                    let Some(e) = visible_at(&d.entries, ei, at) else { continue };
                    if boundary {
                        let past_resume = match after {
                            Some(a) => e.key.as_ref() > a,
                            None => e.key.as_ref() >= low,
                        };
                        if !past_resume || e.key.as_ref() > high {
                            continue;
                        }
                    }
                    f(&e.key, &e.value);
                    emitted += 1;
                    if emitted == limit {
                        return Ok(emitted);
                    }
                }
            }
            if exhausted {
                return Ok(emitted);
            }
            done = slot_ids.len();
            want = want.saturating_mul(2);
        }
    }

    /// Snapshot the live entries in source order, the log watermark
    /// (everything appended after it is what the swap must replay), and,
    /// per live entry, the encoded padded byte string it is indexed under
    /// (entries in the same slot share bytes) — the input of a merge
    /// rebuild, which splices these encodings verbatim for keys the
    /// dictionary diff proved unchanged.
    pub(crate) fn snapshot_live_encoded(&self) -> LiveEncoded<V> {
        let d = self.read();
        let mut slot_ids: Vec<SlotId> = Vec::with_capacity(d.slots.len());
        d.index.scan_into(&[], usize::MAX, &mut slot_ids);
        let mut live = Vec::with_capacity(d.live);
        let mut encs = Vec::with_capacity(d.live);
        for sid in slot_ids {
            for &ei in &d.slots[sid as usize] {
                live.push(d.entries[ei as usize].clone());
                encs.push(d.encs[sid as usize].clone());
            }
        }
        (live, encs, d.entries.len())
    }

    /// Total encoded bytes across the live entries (entries in the same
    /// slot each count its bytes) — the full-rebuild counterpart of
    /// [`MergeStats::reencoded_bytes`], so the two paths report on the
    /// same scale.
    pub(crate) fn encoded_live_bytes(&self) -> u64 {
        let d = self.read();
        d.slots.iter().zip(&d.encs).map(|(slot, enc)| slot.len() as u64 * enc.len() as u64).sum()
    }

    /// Clone of the log entries appended after `watermark`, in order.
    pub(crate) fn entries_since(&self, watermark: usize) -> Vec<Entry<V>> {
        let d = self.read();
        d.entries[watermark.min(d.entries.len())..].to_vec()
    }

    /// `(live keys, total log entries)` — the gap between the two is dead
    /// log garbage a rebuild would compact away.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        let d = self.read();
        (d.live, d.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope::{HopeBuilder, Scheme};

    fn build_gen(pairs: &[(&str, u64)]) -> Generation<u64> {
        let sample: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.as_bytes().to_vec()).collect();
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
        let mut sorted: Vec<Entry<u64>> =
            pairs.iter().map(|(k, v)| Entry::new(k.as_bytes().into(), *v)).collect();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        let index: Box<dyn OrderedIndex<SlotId>> = Box::new(hope_btree::BPlusTree::plain());
        Generation::build(7, hope, 1.5, index, sorted, 8)
    }

    #[test]
    fn bulk_load_and_get() {
        let g = build_gen(&[("com.gmail@a", 1), ("com.gmail@b", 2), ("org.acm@c", 3)]);
        assert_eq!(g.epoch(), 7);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(b"com.gmail@a").unwrap(), Some(1));
        assert_eq!(g.get(b"org.acm@c").unwrap(), Some(3));
        assert_eq!(g.get(b"com.gmail@zz").unwrap(), None);
        assert_eq!(g.get_with(b"com.gmail@b", |v| v + 100).unwrap(), Some(102));
        assert!(g.memory_bytes() > 0);
        // Probe-side validation surfaces as an error, not a panic.
        let giant = vec![b'x'; hope::MAX_KEY_BYTES + 1];
        assert!(matches!(g.get(&giant), Err(StoreError::Codec(_))));
    }

    #[test]
    fn insert_update_and_log_replay_watermark() {
        let g = build_gen(&[("com.gmail@a", 1)]);
        let (_, _, w0) = g.snapshot_live_encoded();
        assert_eq!(g.insert(b"com.gmail@b", 2).unwrap().0, None);
        assert_eq!(g.insert(b"com.gmail@a", 9).unwrap().0, Some(1));
        assert_eq!(g.get(b"com.gmail@a").unwrap(), Some(9));
        assert_eq!(g.len(), 2);
        // The log after the watermark replays both mutations in order.
        let delta = g.entries_since(w0);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].key.as_ref(), b"com.gmail@b");
        assert_eq!(delta[1].value, 9);
    }

    #[test]
    fn range_with_is_inclusive_and_source_ordered() {
        let g = build_gen(&[
            ("com.gmail@a", 1),
            ("com.gmail@b", 2),
            ("com.gmail@c", 3),
            ("org.acm@d", 4),
        ]);
        let collect = |low: &[u8], high: &[u8], limit: usize| {
            let mut out: Vec<(Vec<u8>, u64)> = Vec::new();
            let n = g.range_with(low, high, limit, |k, v| out.push((k.to_vec(), *v))).unwrap();
            assert_eq!(n, out.len());
            out
        };
        let got = collect(b"com.gmail@a", b"com.gmail@c", 10);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"com.gmail@a"[..], b"com.gmail@b", b"com.gmail@c"]);
        assert_eq!(collect(b"com.gmail@a", b"com.gmail@c", 2).len(), 2);
        assert!(collect(b"x", b"a", 10).is_empty());
        assert!(collect(b"zz", b"zzz", 10).is_empty());
        assert!(collect(b"a", b"b", 0).is_empty());
        // The deprecated allocating shim agrees with the visitor.
        #[allow(deprecated)]
        {
            assert_eq!(g.range(b"com.gmail@a", b"com.gmail@c", 10), got);
        }
    }

    #[test]
    fn range_visit_resumes_strictly_after_a_key() {
        let g = build_gen(&[("a", 1), ("ab", 2), ("abc", 3), ("b", 4)]);
        let mut scratch = EncodeScratch::new();
        let mut slot_ids = Vec::new();
        let mut seen: Vec<Vec<u8>> = Vec::new();
        let n = g
            .range_visit(Some(b"ab"), b"a", b"b", 10, None, &mut scratch, &mut slot_ids, |k, _| {
                seen.push(k.to_vec())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(seen, vec![b"abc".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn snapshot_live_is_sorted_and_deduplicated() {
        let g = build_gen(&[("b", 2), ("a", 1)]);
        g.insert(b"c", 3).unwrap();
        g.insert(b"a", 10).unwrap();
        let (live, _, _) = g.snapshot_live_encoded();
        let keys: Vec<&[u8]> = live.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"c"]);
        assert_eq!(live[0].value, 10, "snapshot must carry the updated value");
    }

    #[test]
    fn write_log_capacity_back_pressures_instead_of_panicking() {
        let g = build_gen(&[("com.gmail@a", 1)]).with_context(3, 3);
        // Entry 0 is the bulk load; two appends fit under the cap of 3.
        assert!(g.insert(b"com.gmail@b", 2).is_ok());
        assert!(g.insert(b"com.gmail@c", 3).is_ok());
        let err = g.insert(b"com.gmail@d", 4).unwrap_err();
        assert!(matches!(err, StoreError::WriteLogFull { shard: 3, capacity: 3 }), "got {err:?}");
        // The rejected insert left the generation fully serviceable.
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(b"com.gmail@c").unwrap(), Some(3));
        assert_eq!(g.get(b"com.gmail@d").unwrap(), None);
        // Updates are appends too: same back-pressure.
        assert!(matches!(g.insert(b"com.gmail@a", 9), Err(StoreError::WriteLogFull { .. })));
        assert_eq!(g.get(b"com.gmail@a").unwrap(), Some(1));
    }

    #[test]
    fn watermark_reads_observe_the_point_in_time_state() {
        let g = build_gen(&[("a", 1), ("c", 3)]);
        g.insert(b"a", 10).unwrap();
        let (_, _, w) = g.snapshot_live_encoded();
        // Post-watermark: update a again, add a new key between a and c.
        g.insert(b"a", 100).unwrap();
        g.insert(b"b", 2).unwrap();

        assert_eq!(g.get_at(b"a", w).unwrap(), Some(10), "chain resolves to the pre-W version");
        assert_eq!(g.get_at(b"b", w).unwrap(), None, "key born after W is invisible");
        assert_eq!(g.get_at(b"c", w).unwrap(), Some(3));
        // And the live view still sees everything.
        assert_eq!(g.get(b"a").unwrap(), Some(100));
        assert_eq!(g.get(b"b").unwrap(), Some(2));

        let mut at_w: Vec<(Vec<u8>, u64)> = Vec::new();
        g.range_with_from(None, b"a", b"z", 10, Some(w), |k, v| at_w.push((k.to_vec(), *v)))
            .unwrap();
        assert_eq!(at_w, vec![(b"a".to_vec(), 10), (b"c".to_vec(), 3)]);
    }

    #[test]
    fn build_merged_splices_reused_runs_exactly() {
        let pairs = &[("com.gmail@a", 1u64), ("com.gmail@b", 2), ("org.acm@c", 3)];
        let g = build_gen(pairs);
        let (live, old_encs, _) = g.snapshot_live_encoded();
        assert_eq!(live.len(), 3);
        assert_eq!(old_encs.len(), 3);
        assert!(g.encoded_live_bytes() > 0);

        // Same dictionary (deterministic Hu-Tucker on the same sample) ⇒
        // every key reusable; reuse two of three and force one re-encode.
        let sample: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.as_bytes().to_vec()).collect();
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
        let index: Box<dyn OrderedIndex<SlotId>> = Box::new(hope_btree::BPlusTree::plain());
        let reuse = vec![true, false, true];
        let source = MergeSource { pairs: live, old_encs, reuse };
        let (merged, stats) = Generation::build_merged(8, hope, 1.5, index, source, 8);
        assert_eq!(merged.epoch(), 8);
        assert_eq!(merged.len(), 3);
        assert!(stats.reused_bytes > 0);
        assert!(stats.reencoded_bytes > 0);
        assert_eq!(stats.reused_bytes + stats.reencoded_bytes, merged.encoded_live_bytes());
        for (k, v) in pairs {
            assert_eq!(merged.get(k.as_bytes()).unwrap(), Some(*v), "{k}");
        }
        let mut scanned: Vec<Vec<u8>> = Vec::new();
        merged.range_with(b"com", b"os", 10, |k, _| scanned.push(k.to_vec())).unwrap();
        assert_eq!(scanned.len(), 3, "merged index must scan in source order");
    }

    #[test]
    fn generic_payloads_round_trip() {
        let sample: Vec<Vec<u8>> = vec![b"k1".to_vec(), b"k2".to_vec()];
        let hope = HopeBuilder::new(Scheme::SingleChar).build_from_sample(sample).unwrap();
        let index: Box<dyn OrderedIndex<SlotId>> = Box::new(hope_btree::BPlusTree::plain());
        let pairs = vec![
            Entry::new(b"k1".as_slice().into(), b"one".to_vec()),
            Entry::new(b"k2".as_slice().into(), b"two".to_vec()),
        ];
        let g: Generation<Vec<u8>> = Generation::build(1, hope, 1.0, index, pairs, 4);
        assert_eq!(g.get(b"k2").unwrap(), Some(b"two".to_vec()));
        assert_eq!(g.insert(b"k1", b"uno".to_vec()).unwrap().0, Some(b"one".to_vec()));
        assert_eq!(g.get_with(b"k1", |v| v.len()).unwrap(), Some(3));
    }
}
