//! One dictionary **generation** of a shard: an immutable HOPE compressor
//! plus the ordered index of keys encoded under it.
//!
//! A generation is the unit of the epoch-based hot-swap: readers clone the
//! shard's `Arc<Generation>` and keep using it even while a replacement is
//! being built; when the swap lands, stale readers simply drain and the
//! old generation is dropped with its last `Arc`.
//!
//! ## Exactness under padded-byte ties
//!
//! Trees index the *padded bytes* of an encoding. Padded-byte comparison
//! preserves source order except that two distinct keys can **tie** (the
//! zero-extension corner, see DESIGN.md "Encoded-key comparison"). A
//! generation therefore never maps encoded bytes straight to a value:
//! index values are ids into a slot table, and each slot holds the entries
//! of every live key sharing that byte string, ordered by source key.
//! Point lookups re-check the source key inside the slot and range scans
//! re-check the source bounds, so the store is exact for arbitrary byte
//! keys — not just keys where ties cannot occur.

use std::cell::RefCell;
use std::sync::RwLock;

use hope::{EncodeScratch, Hope, OrderedIndex};

thread_local! {
    /// Per-thread encode buffers for the probe hot paths (`get`, `insert`,
    /// `range`): every probe reuses the same writer and byte buffers
    /// instead of allocating an `EncodedKey` per call. Thread-local rather
    /// than per-generation so readers on many threads never contend.
    static SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::new());

    /// Per-thread slot-id buffer for the scan path (`range_with`): the
    /// index fills it in place (`OrderedIndex::range_into`), so a scan of
    /// N hits performs no heap allocation once the buffer is warm.
    static SCAN: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One stored record: the original (uncompressed) key and its value.
///
/// The source key must be retained anyway to re-encode the shard under a
/// new dictionary at swap time; keeping it per entry also gives the slot
/// table something authoritative to compare against.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub key: Box<[u8]>,
    pub value: u64,
}

/// The mutable interior of a generation.
///
/// `entries` is an **append-only log**: updates append a fresh entry and
/// re-point the slot at it rather than overwriting in place. That makes
/// the swap protocol trivial — everything a writer did after the rebuild
/// snapshot is exactly `entries[watermark..]`, replayable in order — at
/// the cost of dead log entries that the next rebuild compacts away.
#[derive(Debug)]
pub(crate) struct GenData {
    /// Ordered index over encoded padded bytes; values are slot ids.
    pub index: Box<dyn OrderedIndex>,
    /// Append-only entry log (live and superseded).
    pub entries: Vec<Entry>,
    /// Slot id → live entry indices, ordered by source key.
    pub slots: Vec<Vec<u32>>,
    /// Number of live keys.
    pub live: usize,
}

/// An immutable dictionary plus the index of keys encoded under it.
#[derive(Debug)]
pub struct Generation {
    epoch: u64,
    hope: Hope,
    baseline_cpr: f64,
    data: RwLock<GenData>,
}

/// Encode-side footprint of one insert, accumulated into the shard's
/// drift statistics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EncodeFootprint {
    /// Uncompressed key bytes.
    pub src_bytes: u64,
    /// Padded encoded bytes.
    pub enc_bytes: u64,
}

impl Generation {
    /// Build a generation from **sorted, deduplicated** `(key, value)`
    /// pairs, batch-encoding the keys with the sorted-batch prefix-reuse
    /// optimization (Appendix B) in blocks of `batch_block`.
    pub(crate) fn build(
        epoch: u64,
        hope: Hope,
        baseline_cpr: f64,
        mut index: Box<dyn OrderedIndex>,
        pairs: Vec<Entry>,
        batch_block: usize,
    ) -> Generation {
        debug_assert!(pairs.windows(2).all(|w| w[0].key < w[1].key), "bulk load must be sorted");
        let keys: Vec<&[u8]> = pairs.iter().map(|e| e.key.as_ref()).collect();
        let encoded = hope.encode_batch(&keys, batch_block.max(1));
        let live = pairs.len();
        // Sorted input keeps equal encodings adjacent: open a new slot on
        // every change of byte string, append to the current one on a tie.
        let mut slots: Vec<Vec<u32>> = Vec::new();
        let mut prev: Option<Vec<u8>> = None;
        for (i, enc) in encoded.into_iter().enumerate() {
            let bytes = enc.into_bytes();
            if prev.as_deref() == Some(bytes.as_slice()) {
                slots.last_mut().expect("tie follows an opened slot").push(i as u32);
            } else {
                slots.push(vec![i as u32]);
                index.insert(&bytes, (slots.len() - 1) as u64);
                prev = Some(bytes);
            }
        }
        let data = GenData { index, entries: pairs, slots, live };
        Generation { epoch, hope, baseline_cpr, data: RwLock::new(data) }
    }

    /// The epoch this generation was installed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compression rate of the dictionary on its own build sample — the
    /// reference the shard's observed CPR is compared against.
    pub fn baseline_cpr(&self) -> f64 {
        self.baseline_cpr
    }

    /// The compressor of this generation.
    pub fn hope(&self) -> &Hope {
        &self.hope
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.data.read().unwrap().live
    }

    /// True if the generation holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory footprint: index structure + entry log + slot table.
    pub fn memory_bytes(&self) -> usize {
        let d = self.data.read().unwrap();
        d.index.memory_bytes()
            + d.entries.iter().map(|e| e.key.len() + std::mem::size_of::<Entry>()).sum::<usize>()
            + d.slots.iter().map(|s| s.len() * 4 + std::mem::size_of::<Vec<u32>>()).sum::<usize>()
    }

    /// Point lookup by source key. The probe key is encoded into a
    /// thread-local scratch — no allocation on this path.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        SCRATCH.with_borrow_mut(|scratch| {
            let enc = self.hope.encode_to(key, scratch);
            let d = self.data.read().unwrap();
            let slot = d.index.get(enc)?;
            let slot = &d.slots[slot as usize];
            slot.iter()
                .map(|&ei| &d.entries[ei as usize])
                .find(|e| e.key.as_ref() == key)
                .map(|e| e.value)
        })
    }

    /// Insert or update; returns the previous value (if any) and the
    /// encode footprint for drift accounting. Encoding happens into a
    /// thread-local scratch before the data lock is taken; the index's own
    /// `insert` copies the bytes it keeps.
    pub(crate) fn insert(&self, key: &[u8], value: u64) -> (Option<u64>, EncodeFootprint) {
        SCRATCH.with_borrow_mut(|scratch| self.insert_encoded(key, value, scratch))
    }

    fn insert_encoded(
        &self,
        key: &[u8],
        value: u64,
        scratch: &mut EncodeScratch,
    ) -> (Option<u64>, EncodeFootprint) {
        let bytes = self.hope.encode_to(key, scratch);
        let footprint =
            EncodeFootprint { src_bytes: key.len() as u64, enc_bytes: bytes.len() as u64 };
        let mut d = self.data.write().unwrap();
        // Slot entries are u32; the log is compacted by rebuilds long
        // before this bound in any maintained deployment.
        let new_idx = u32::try_from(d.entries.len())
            .expect("generation write log exceeded u32::MAX entries without a rebuild");
        d.entries.push(Entry { key: key.into(), value });
        let existing = d.index.get(bytes);
        let GenData { index, entries, slots, live } = &mut *d;
        match existing {
            Some(slot_id) => {
                let slot = &mut slots[slot_id as usize];
                match slot.iter().position(|&ei| entries[ei as usize].key.as_ref() >= key) {
                    Some(pos) if entries[slot[pos] as usize].key.as_ref() == key => {
                        // Update: re-point the slot, keep the old log entry
                        // as garbage for the swap replay to supersede.
                        let old = entries[slot[pos] as usize].value;
                        slot[pos] = new_idx;
                        (Some(old), footprint)
                    }
                    Some(pos) => {
                        slot.insert(pos, new_idx);
                        *live += 1;
                        (None, footprint)
                    }
                    None => {
                        slot.push(new_idx);
                        *live += 1;
                        (None, footprint)
                    }
                }
            }
            None => {
                slots.push(vec![new_idx]);
                index.insert(bytes, (slots.len() - 1) as u64);
                *live += 1;
                (None, footprint)
            }
        }
    }

    /// Bounded range query by source keys, inclusive on both ends:
    /// `(key, value)` pairs in source order, at most `limit`.
    ///
    /// Allocates the returned pairs; scan loops should prefer
    /// [`Generation::range_with`], which borrows every hit.
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v)));
        out
    }

    /// Visitor form of [`Generation::range`]: call `f(key, value)` for up
    /// to `limit` hits in source order and return the hit count. The two
    /// bounds are pair-encoded (one dictionary traversal for their common
    /// prefix) into a thread-local scratch and the index fills a
    /// thread-local slot buffer in place, so a scan of N hits performs
    /// **zero heap allocations** after warm-up — the keys handed to `f`
    /// are borrowed from the generation.
    ///
    /// `f` runs under the generation's data read lock: keep it short and
    /// never call back into this store from inside it.
    pub fn range_with<F>(&self, low: &[u8], high: &[u8], limit: usize, mut f: F) -> usize
    where
        F: FnMut(&[u8], u64),
    {
        if low > high || limit == 0 {
            return 0;
        }
        SCRATCH.with_borrow_mut(|scratch| {
            SCAN.with_borrow_mut(|slot_ids| {
                let (enc_low, enc_high) = self.hope.encode_range_bounds_to(low, high, scratch);
                let d = self.data.read().unwrap();
                // Boundary slots may mix keys inside and outside the source
                // range (padded-byte ties), so a slot-limited query can come
                // up short after filtering; grow the slot budget until
                // satisfied or the encoded range is exhausted. The index
                // state is frozen under the read lock and `range_into`
                // results are a stable prefix under a growing limit, so the
                // retry only needs to process the newly returned tail.
                let mut want = limit.saturating_add(2);
                let mut done = 0usize;
                let mut emitted = 0usize;
                loop {
                    slot_ids.clear();
                    d.index.range_into(enc_low, enc_high, want, slot_ids);
                    let exhausted = slot_ids.len() < want;
                    for sid in &slot_ids[done..] {
                        for &ei in &d.slots[*sid as usize] {
                            let e = &d.entries[ei as usize];
                            if e.key.as_ref() >= low && e.key.as_ref() <= high {
                                f(&e.key, e.value);
                                emitted += 1;
                                if emitted == limit {
                                    return emitted;
                                }
                            }
                        }
                    }
                    if exhausted {
                        return emitted;
                    }
                    done = slot_ids.len();
                    want = want.saturating_mul(2);
                }
            })
        })
    }

    /// Snapshot the live entries in source order plus the log watermark;
    /// everything appended after `watermark` is what the swap must replay.
    pub(crate) fn snapshot_live(&self) -> (Vec<Entry>, usize) {
        let d = self.data.read().unwrap();
        let slot_ids = d.index.scan(&[], usize::MAX);
        let mut live = Vec::with_capacity(d.live);
        for sid in slot_ids {
            for &ei in &d.slots[sid as usize] {
                live.push(d.entries[ei as usize].clone());
            }
        }
        (live, d.entries.len())
    }

    /// Clone of the log entries appended after `watermark`, in order.
    pub(crate) fn entries_since(&self, watermark: usize) -> Vec<Entry> {
        let d = self.data.read().unwrap();
        d.entries[watermark.min(d.entries.len())..].to_vec()
    }

    /// `(live keys, total log entries)` — the gap between the two is dead
    /// log garbage a rebuild would compact away.
    pub(crate) fn occupancy(&self) -> (usize, usize) {
        let d = self.data.read().unwrap();
        (d.live, d.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope::{HopeBuilder, Scheme};

    fn build_gen(pairs: &[(&str, u64)]) -> Generation {
        let sample: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.as_bytes().to_vec()).collect();
        let hope = HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample).unwrap();
        let mut sorted: Vec<Entry> =
            pairs.iter().map(|(k, v)| Entry { key: k.as_bytes().into(), value: *v }).collect();
        sorted.sort_by(|a, b| a.key.cmp(&b.key));
        let index: Box<dyn OrderedIndex> = Box::new(hope_btree::BPlusTree::plain());
        Generation::build(7, hope, 1.5, index, sorted, 8)
    }

    #[test]
    fn bulk_load_and_get() {
        let g = build_gen(&[("com.gmail@a", 1), ("com.gmail@b", 2), ("org.acm@c", 3)]);
        assert_eq!(g.epoch(), 7);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(b"com.gmail@a"), Some(1));
        assert_eq!(g.get(b"org.acm@c"), Some(3));
        assert_eq!(g.get(b"com.gmail@zz"), None);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn insert_update_and_log_replay_watermark() {
        let g = build_gen(&[("com.gmail@a", 1)]);
        let (_, w0) = g.snapshot_live();
        assert_eq!(g.insert(b"com.gmail@b", 2).0, None);
        assert_eq!(g.insert(b"com.gmail@a", 9).0, Some(1));
        assert_eq!(g.get(b"com.gmail@a"), Some(9));
        assert_eq!(g.len(), 2);
        // The log after the watermark replays both mutations in order.
        let delta = g.entries_since(w0);
        assert_eq!(delta.len(), 2);
        assert_eq!(delta[0].key.as_ref(), b"com.gmail@b");
        assert_eq!(delta[1].value, 9);
    }

    #[test]
    fn range_is_inclusive_and_source_ordered() {
        let g = build_gen(&[
            ("com.gmail@a", 1),
            ("com.gmail@b", 2),
            ("com.gmail@c", 3),
            ("org.acm@d", 4),
        ]);
        let got = g.range(b"com.gmail@a", b"com.gmail@c", 10);
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"com.gmail@a"[..], b"com.gmail@b", b"com.gmail@c"]);
        assert_eq!(g.range(b"com.gmail@a", b"com.gmail@c", 2).len(), 2);
        assert!(g.range(b"x", b"a", 10).is_empty());
        assert!(g.range(b"zz", b"zzz", 10).is_empty());
    }

    #[test]
    fn range_with_visits_the_same_hits_as_range() {
        let g = build_gen(&[("a", 1), ("ab", 2), ("abc", 3), ("b", 4)]);
        for (low, high, limit) in [
            (b"a".as_slice(), b"b".as_slice(), 10usize),
            (b"a", b"abz", 2),
            (b"x", b"z", 10),
            (b"b", b"a", 10),
            (b"a", b"b", 0),
        ] {
            let mut seen = Vec::new();
            let n = g.range_with(low, high, limit, |k, v| seen.push((k.to_vec(), v)));
            assert_eq!(n, seen.len());
            assert_eq!(seen, g.range(low, high, limit), "{low:?}..={high:?} limit {limit}");
        }
    }

    #[test]
    fn snapshot_live_is_sorted_and_deduplicated() {
        let g = build_gen(&[("b", 2), ("a", 1)]);
        g.insert(b"c", 3);
        g.insert(b"a", 10);
        let (live, _) = g.snapshot_live();
        let keys: Vec<&[u8]> = live.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![&b"a"[..], b"b", b"c"]);
        assert_eq!(live[0].value, 10, "snapshot must carry the updated value");
    }
}
