//! # hope_store — a concurrent, sharded store over HOPE-compressed keys
//!
//! The paper's dictionaries are static: built once from a sample, then
//! frozen. Appendix C (`fig15_distribution_shift`) shows what that costs a
//! long-running system — when the key distribution drifts, the compression
//! rate quietly decays. This crate adds the serving layer the ROADMAP
//! calls for: an order-preserving compressed key-value store that keeps
//! its dictionaries *fresh* without ever blocking readers.
//!
//! ## Architecture
//!
//! * **Generic values** — [`HopeStore<V>`] serves any
//!   [`hope::Value`] payload (`Clone + Send + Sync + Debug + 'static`):
//!   `u64` record ids (the default), `Vec<u8>` documents, `Arc<T>`
//!   handles. Only *keys* are HOPE-compressed; values live in each
//!   shard's entry log.
//! * **Sharding** — keys are split across N partitions on encoded-key
//!   ranges (quantiles of the bulk-load's encoded sort order; because the
//!   encoding is order-preserving the same split points, kept in source
//!   form, stay valid across dictionary swaps). Each shard owns an
//!   independent dictionary, index, statistics and epoch.
//! * **Pluggable trees** — every shard indexes the encoded padded bytes
//!   in any [`OrderedIndex`] backend: the repo's B+tree (plain or
//!   prefix), its ART, its HOT, `std`'s `BTreeMap` as reference, or a
//!   user-supplied factory ([`Backend::Custom`]).
//! * **Cursor-based ranges** — range queries go through a lazy
//!   [`RangeCursor`]: pull hits one at a time (`next_hit`), stream them
//!   zero-copy (`for_each`), or collect (`collect_into`). See the
//!   [`cursor`] module for the consistency story across swaps.
//! * **O(1) snapshots** — [`HopeStore::snapshot`] captures a store-wide
//!   point-in-time [`Snapshot`] in O(shard count): per shard, an `Arc`
//!   clone of the generation handle plus its write-log watermark. Reads
//!   on the handle (point, range, cursor) observe exactly the capture
//!   instant while writers and swaps proceed (the [`versioned`] module).
//! * **Epoch-based dictionary hot-swap** — each shard tracks the CPR its
//!   inserts actually achieve; when it degrades past a threshold of the
//!   build-time baseline, [`HopeStore::maintain`] rebuilds the dictionary
//!   from a reservoir sample of recent traffic, re-encodes the shard into
//!   a fresh [`Generation`] in the background, replays the writes that
//!   landed meanwhile, and flips the shard's `Arc` epoch handle. Readers
//!   on the old generation drain gracefully; none ever block.
//!
//! Every fallible operation returns [`StoreError`] — no panics, no bare
//! `Option`s on failure paths (see `DESIGN.md`, "Public API v1").
//!
//! ```
//! use hope_store::prelude::*;
//!
//! let pairs = (0..1000u64).map(|i| (format!("com.gmail@user{i:04}").into_bytes(), i));
//! let store = HopeStore::build(StoreConfig::default(), pairs)?;
//! assert_eq!(store.get(b"com.gmail@user0007")?, Some(7));
//! store.insert(b"com.gmail@newcomer".to_vec(), 9999)?;
//!
//! // Lazy cursor: pull hits one at a time, borrowed from the cursor.
//! let mut cur = store.cursor(b"com.gmail@user0100", b"com.gmail@user0102", 10)?;
//! let mut hits = 0;
//! while let Some((key, value)) = cur.next_hit() {
//!     assert!(key.starts_with(b"com.gmail@user010"));
//!     let _ = value;
//!     hits += 1;
//! }
//! assert_eq!(hits, 3);
//! # Ok::<(), hope_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cursor;
mod error;
mod generation;
pub mod serving;
mod shard;
pub mod telemetry;
pub mod versioned;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hope::stats;
use hope::{Hope, HopeBuilder, HopeError, OrderedIndex, Scheme, Value};

pub use cursor::RangeCursor;
pub use error::StoreError;
pub use generation::Generation;
pub use versioned::Snapshot;

use error::validate_key;
use generation::Entry;
use shard::{Shard, ShardTelemetry};
use telemetry::{Event, EventKind, ProbeSpans, Telemetry, TelemetrySnapshot};

/// The value type every shard *index* stores: an id into the shard's slot
/// table. The index is always slot-id-valued regardless of the store's
/// payload type `V` — exactness under padded-byte ties requires the
/// indirection (see DESIGN.md, "The serving layer") — so a
/// custom [`Backend`] factory produces `OrderedIndex<SlotId>` instances.
pub type SlotId = u64;

/// Factory for a user-supplied shard index ([`Backend::Custom`]).
pub type IndexFactory = fn() -> Box<dyn OrderedIndex<SlotId>>;

/// Which ordered-index structure each shard runs on.
///
/// `#[non_exhaustive]`: future PRs may add backends without a breaking
/// change, so downstream matches need a wildcard arm. Deliberately **not**
/// `PartialEq` (a pre-v1 regression): [`Backend::Custom`] holds a function
/// pointer, and function-pointer equality is not meaningful (addresses are
/// neither unique nor stable across codegen units) — compare via
/// `matches!` on the variant instead.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum Backend {
    /// Plain TLX-style B+tree (`hope_btree`).
    BTree,
    /// Prefix-truncating B+tree (`hope_btree`).
    PrefixBTree,
    /// Adaptive Radix Tree (`hope_art`).
    Art,
    /// Height-optimized trie (`hope_hot`).
    Hot,
    /// `std::collections::BTreeMap` — the reference backend.
    BTreeMap,
    /// A user-supplied index: any [`OrderedIndex<SlotId>`] implementation
    /// behind a factory function.
    ///
    /// ```
    /// use hope_store::{Backend, SlotId};
    /// use std::collections::BTreeMap;
    ///
    /// fn my_index() -> Box<dyn hope::OrderedIndex<SlotId>> {
    ///     Box::<BTreeMap<Vec<u8>, SlotId>>::default()
    /// }
    /// let backend = Backend::Custom(my_index);
    /// assert!(backend.new_index().is_empty());
    /// ```
    Custom(IndexFactory),
}

impl Backend {
    /// Fresh empty index of this kind.
    pub fn new_index(&self) -> Box<dyn OrderedIndex<SlotId>> {
        match self {
            Backend::BTree => Box::new(hope_btree::BPlusTree::plain()),
            Backend::PrefixBTree => Box::new(hope_btree::BPlusTree::prefix()),
            Backend::Art => Box::new(hope_art::Art::new()),
            Backend::Hot => Box::new(hope_hot::Hot::new()),
            Backend::BTreeMap => Box::<std::collections::BTreeMap<Vec<u8>, SlotId>>::default(),
            Backend::Custom(factory) => factory(),
        }
    }
}

/// Store construction and maintenance parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of partitions (≥ 1).
    pub shards: usize,
    /// Compression scheme for every shard dictionary.
    pub scheme: Scheme,
    /// Target dictionary entries (variable-size schemes).
    pub dict_entries: usize,
    /// Tree backend indexing the encoded keys.
    pub backend: Backend,
    /// Keys held in each shard's traffic reservoir.
    pub reservoir_capacity: usize,
    /// Rebuild triggers when observed CPR falls below this fraction of
    /// the generation's build-time baseline CPR.
    pub degrade_ratio: f64,
    /// Minimum inserted source bytes before drift is judged at all.
    pub min_observed_bytes: u64,
    /// Block size for the sorted-batch bulk encode (Appendix B).
    pub batch_block: usize,
    /// Seed for the reservoir sampling decisions.
    pub seed: u64,
    /// Capacity of the telemetry event ring (lifecycle events retained
    /// for [`HopeStore::telemetry`] snapshots; oldest are dropped — and
    /// counted — past this). Clamped to at least 1.
    pub event_capacity: usize,
    /// Maximum entries in one generation's append-only write log. Writes
    /// past this back-pressure with [`StoreError::WriteLogFull`] instead
    /// of corrupting the slot table (slot ids are `u32`; the default
    /// leaves the capacity effectively unbounded while still refusing the
    /// one index reserved as the version-chain sentinel).
    pub write_log_capacity: u32,
    /// Minimum fraction of a shard's live **encoded bytes** the retrained
    /// dictionary must leave byte-identical for a rebuild to take the
    /// incremental merge path (splice reused runs, re-encode only changed
    /// keys). Below it, the rebuild falls back to the full re-encode.
    /// Must lie in `[0, 1]`; `1.0` effectively disables merging.
    pub incremental_min_reuse: f64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            scheme: Scheme::DoubleChar,
            dict_entries: 1 << 16,
            backend: Backend::BTree,
            reservoir_capacity: 2048,
            degrade_ratio: 0.9,
            min_observed_bytes: 64 * 1024,
            batch_block: 16,
            seed: 42,
            event_capacity: 1024,
            write_log_capacity: u32::MAX,
            incremental_min_reuse: 0.5,
        }
    }
}

/// What one successful dictionary hot-swap did.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Shard that swapped.
    pub shard: usize,
    /// Epoch of the superseded generation.
    pub old_epoch: u64,
    /// Epoch of the freshly installed generation.
    pub new_epoch: u64,
    /// CPR observed on the old generation's insert traffic at swap time.
    pub observed_cpr: Option<f64>,
    /// Build-time baseline CPR of the superseded dictionary.
    pub old_baseline_cpr: f64,
    /// Build-time baseline CPR of the new dictionary.
    pub new_baseline_cpr: f64,
    /// Live keys re-encoded into the new generation.
    pub live_keys: usize,
    /// Writes replayed from the log tail during the splice.
    pub replayed: usize,
    /// Whether the rebuild took the incremental merge path (reusing
    /// already-encoded runs) rather than the full re-encode.
    pub incremental: bool,
    /// Encoded bytes spliced verbatim from the old generation. Zero on
    /// the full path.
    pub reused_bytes: u64,
    /// Encoded bytes freshly produced by the new dictionary. On the full
    /// path this is every live entry's encoded length.
    pub reencoded_bytes: u64,
}

/// Point-in-time health of one shard.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard id (position in split order).
    pub shard: usize,
    /// Current epoch.
    pub epoch: u64,
    /// Live keys.
    pub keys: usize,
    /// CPR observed on insert traffic since the current generation.
    pub observed_cpr: Option<f64>,
    /// The dictionary's build-time baseline CPR.
    pub baseline_cpr: f64,
    /// Dictionary memory in bytes.
    pub dict_bytes: usize,
    /// Index + record memory in bytes.
    pub index_bytes: usize,
}

/// A concurrent, sharded key-value store over HOPE-compressed keys and
/// `V`-typed values.
///
/// All operations take `&self`; the store is `Send + Sync` and designed to
/// sit behind an `Arc` with many reader and writer threads.
#[derive(Debug)]
pub struct HopeStore<V: Value = u64> {
    cfg: StoreConfig,
    /// Source-form split points, `boundaries.len() == shards - 1`; shard
    /// `i` holds keys in `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<Vec<u8>>,
    shards: Vec<Shard<V>>,
    epoch_counter: AtomicU64,
    telemetry: Arc<Telemetry>,
}

/// Fallback dictionary sample when a shard has no traffic and no resident
/// keys to learn from: enough short strings that every scheme's selector
/// finds patterns to divide on.
fn default_sample() -> Vec<Vec<u8>> {
    (0..64u32).map(|i| format!("hope-default-{i:04}").into_bytes()).collect()
}

/// Build one shard dictionary, substituting the default sample when the
/// provided one is empty (variable-size schemes reject empty samples).
pub(crate) fn build_hope_for(cfg: &StoreConfig, sample: &[Vec<u8>]) -> Result<Hope, HopeError> {
    let builder = HopeBuilder::new(cfg.scheme).dictionary_entries(cfg.dict_entries);
    if sample.is_empty() {
        builder.build_from_sample(default_sample())
    } else {
        builder.build_from_sample(sample.iter().cloned())
    }
}

impl<V: Value> HopeStore<V> {
    /// Build a store from an initial key-value load.
    ///
    /// Duplicate keys keep the last value. The load is sorted once; shard
    /// split points are the quantiles of the sorted **encoded** order
    /// (identical to source order — the encoding is order-preserving), and
    /// every shard bulk-loads its slice with the Appendix-B sorted-batch
    /// encoder.
    ///
    /// # Errors
    ///
    /// * [`StoreError::InvalidConfig`] — `shards == 0` or `degrade_ratio`
    ///   outside `(0, 1]`;
    /// * [`StoreError::Codec`] — a load key fails validation
    ///   ([`HopeError::KeyTooLong`]) or a shard dictionary fails to build.
    pub fn build<I>(cfg: StoreConfig, pairs: I) -> Result<HopeStore<V>, StoreError>
    where
        I: IntoIterator<Item = (Vec<u8>, V)>,
    {
        if cfg.shards == 0 {
            return Err(StoreError::InvalidConfig { reason: "need at least one shard" });
        }
        if !(cfg.degrade_ratio > 0.0 && cfg.degrade_ratio <= 1.0) {
            return Err(StoreError::InvalidConfig { reason: "degrade_ratio must be in (0, 1]" });
        }
        if !(cfg.incremental_min_reuse >= 0.0 && cfg.incremental_min_reuse <= 1.0) {
            return Err(StoreError::InvalidConfig {
                reason: "incremental_min_reuse must be in [0, 1]",
            });
        }
        // Last write wins, sorted by source key; keys validated up front.
        let mut sorted: std::collections::BTreeMap<Vec<u8>, V> = std::collections::BTreeMap::new();
        for (k, v) in pairs {
            validate_key(&k)?;
            sorted.insert(k, v);
        }
        let sorted: Vec<(Vec<u8>, V)> = sorted.into_iter().collect();

        // Split points at the quantiles of the (encoded) sort order.
        let n = sorted.len();
        let boundaries: Vec<Vec<u8>> = (1..cfg.shards)
            .map(|i| {
                if n == 0 {
                    // No data to learn a split from: divide the byte space.
                    vec![(i * 256 / cfg.shards) as u8]
                } else {
                    sorted[(i * n / cfg.shards).min(n - 1)].0.clone()
                }
            })
            .collect();

        let epoch_counter = AtomicU64::new(0);
        let telemetry = Arc::new(Telemetry::new(cfg.event_capacity));
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut sorted = sorted.into_iter().peekable();
        for s in 0..cfg.shards {
            let build_started = std::time::Instant::now();
            // Each shard takes the load up to its boundary; the last shard
            // (no boundary above it) takes the remainder.
            let mut slice: Vec<Entry<V>> = Vec::new();
            while let Some((k, _)) = sorted.peek() {
                if let Some(b) = boundaries.get(s) {
                    if k >= b {
                        break;
                    }
                }
                let (k, v) = sorted.next().expect("peeked");
                slice.push(Entry::new(k.into(), v));
            }

            // Per-shard dictionary from an evenly spaced sample of the
            // shard's own load.
            let step = (slice.len() / cfg.reservoir_capacity.max(1)).max(1);
            let sample: Vec<Vec<u8>> = slice.iter().step_by(step).map(|e| e.key.to_vec()).collect();
            let hope = build_hope_for(&cfg, &sample)?;
            let baseline_cpr = if sample.is_empty() {
                stats::measure(&hope, &default_sample()).cpr()
            } else {
                stats::measure(&hope, &sample).cpr()
            };
            let epoch = epoch_counter.fetch_add(1, Ordering::Relaxed) + 1;
            let generation = Generation::build(
                epoch,
                hope,
                baseline_cpr,
                cfg.backend.new_index(),
                slice,
                cfg.batch_block,
            )
            .with_context(s, cfg.write_log_capacity);
            telemetry.events().record(Event {
                kind: EventKind::GenerationBuilt,
                shard: s as u32,
                epoch,
                keys: generation.len() as u64,
                bytes: generation.hope().dict_memory_bytes() as u64,
                duration_ns: build_started.elapsed().as_nanos() as u64,
                ..Event::default()
            });
            let shard_tel = ShardTelemetry::new(Arc::clone(&telemetry), s as u32);
            shards.push(Shard::new(
                generation,
                cfg.reservoir_capacity,
                cfg.seed ^ (s as u64),
                shard_tel,
            ));
        }
        Ok(HopeStore { cfg, boundaries, shards, epoch_counter, telemetry })
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Shard index responsible for `key`.
    pub(crate) fn route(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// The shard structure itself (cursor internals).
    pub(crate) fn shard_ref(&self, shard: usize) -> &Shard<V> {
        &self.shards[shard]
    }

    /// Which shard serves `key` (diagnostics; routing is internal).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.route(key)
    }

    /// Epoch handle of one shard's current generation (diagnostics: lets
    /// harnesses measure the live dictionary without racing a swap).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchShard`] when `shard` is out of range.
    pub fn generation(&self, shard: usize) -> Result<Arc<Generation<V>>, StoreError> {
        match self.shards.get(shard) {
            Some(s) => Ok(s.current()),
            None => Err(StoreError::NoSuchShard { shard, shards: self.shards.len() }),
        }
    }

    /// Point lookup, cloning the value out (a copy for `u64` ids). For
    /// heavyweight payloads, [`HopeStore::get_with`] borrows instead.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails validation.
    pub fn get(&self, key: &[u8]) -> Result<Option<V>, StoreError> {
        self.shards[self.route(key)].get(key)
    }

    /// Zero-clone point lookup: run `f` on a borrow of the stored value
    /// (under a shard read lock — keep `f` short) and return its result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails validation.
    pub fn get_with<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&V) -> R,
    ) -> Result<Option<R>, StoreError> {
        self.shards[self.route(key)].get_with(key, f)
    }

    /// Insert or update; returns the previous value if the key existed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails validation
    /// ([`HopeError::KeyTooLong`]); the store is unchanged in that case.
    pub fn insert(&self, key: Vec<u8>, value: V) -> Result<Option<V>, StoreError> {
        // No up-front validation: the generation's `encode_to` call
        // validates the key before anything is mutated.
        self.shards[self.route(&key)].insert(&key, value)
    }

    /// Open a lazy [`RangeCursor`] over `low..=high` (inclusive), capped
    /// at `limit` hits, in global source-key order. Inverted bounds or a
    /// zero limit yield an empty cursor (not an error), matching ordered-
    /// map conventions.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn cursor(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
    ) -> Result<RangeCursor<'_, V>, StoreError> {
        validate_key(low)?;
        validate_key(high)?;
        Ok(RangeCursor::new(self, low, high, limit))
    }

    /// Visitor-form range scan: call `f(key, value)` for up to `limit`
    /// hits in source-key order (possibly spanning shards) and return the
    /// hit count. A thin wrapper over the cursor's push engine (what a
    /// fresh [`RangeCursor::for_each`] runs), taken over borrowed bounds —
    /// zero heap allocations per scan after warm-up; the key and value
    /// are borrowed and valid only for the duration of the callback.
    ///
    /// `f` runs under a shard generation's read lock: keep it short and
    /// never call back into the store from inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn range_with<F>(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        validate_key(low)?;
        validate_key(high)?;
        cursor::push_scan(self, low, high, limit, f)
    }

    /// Collect-form range scan: append up to `limit` `(key, value)` pairs
    /// to `out` and return the count appended. A thin wrapper over
    /// [`RangeCursor::collect_into`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn range_into(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        out: &mut Vec<(Vec<u8>, V)>,
    ) -> Result<usize, StoreError> {
        self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v.clone())))
    }

    /// Bounded range query, inclusive on both ends: up to `limit`
    /// `(key, value)` pairs in source-key order, possibly spanning shards.
    ///
    /// One deliberate deviation from the pre-v1 method this shim
    /// replaces: bounds longer than [`hope::MAX_KEY_BYTES`] now yield an
    /// **empty result** (v1 validates bounds; the shim's signature has
    /// nowhere to surface the error). Migrate to `range_into`, which
    /// returns it.
    ///
    /// ```
    /// use hope_store::prelude::*;
    ///
    /// let pairs = (0..100u64).map(|i| (format!("user{i:03}").into_bytes(), i));
    /// let store = HopeStore::build(StoreConfig::default(), pairs)?;
    /// // The shim returns exactly what the cursor collects.
    /// #[allow(deprecated)]
    /// let hits = store.range(b"user010", b"user012", 10);
    /// let mut out = Vec::new();
    /// store.range_into(b"user010", b"user012", 10, &mut out)?;
    /// assert_eq!(hits, out);
    /// assert_eq!(hits.len(), 3);
    /// # Ok::<(), StoreError>(())
    /// ```
    #[deprecated(
        since = "0.2.0",
        note = "allocates every hit and swallows errors; use `cursor()` (lazy), \
                `range_with` (visitor) or `range_into` (collect)"
    )]
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, V)> {
        let mut out = Vec::new();
        let _ = self.range_into(low, high, limit, &mut out);
        out
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.current().len()).sum()
    }

    /// True if no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.current().epoch()).collect()
    }

    /// Capture an O(1) copy-on-write [`Snapshot`] of the whole store: a
    /// point-in-time view that [`Snapshot::get`] and the snapshot's
    /// range surface read while writers and dictionary hot-swaps proceed
    /// unhindered (see the [`versioned`] module docs for the mechanism
    /// and lifetime story).
    ///
    /// Cost is `shards × (Arc clone + two usize reads)` — independent of
    /// key count; no key, value, or index node is copied. The capture
    /// briefly holds every shard's writer mutex (ascending order) so the
    /// per-shard watermarks form one cross-shard instant; readers are
    /// never blocked, and writers only for the pointer reads themselves.
    ///
    /// ```
    /// use hope_store::prelude::*;
    ///
    /// let pairs = (0..300u64).map(|i| (format!("user{i:04}").into_bytes(), i));
    /// let store = HopeStore::build(StoreConfig::default(), pairs)?;
    /// let snap = store.snapshot();
    /// store.insert(b"user0042".to_vec(), 999)?;
    /// assert_eq!(snap.get(b"user0042")?, Some(42)); // frozen
    /// assert_eq!(store.get(b"user0042")?, Some(999)); // live
    /// # Ok::<(), StoreError>(())
    /// ```
    pub fn snapshot(&self) -> Snapshot<V> {
        // Every shard's writer mutex, ascending — the one code path that
        // holds more than one (see `Shard::writer_lock`), so the global
        // order keeps it deadlock-free. With all writers excluded, the
        // per-shard `(generation, watermark)` pairs are one instant: no
        // insert or swap splice can land between the first read and the
        // last.
        let _guards: Vec<_> = self.shards.iter().map(|s| s.writer_lock()).collect();
        let pins = self
            .shards
            .iter()
            .map(|s| {
                let generation = s.current();
                let (live, watermark) = generation.occupancy();
                versioned::Pin { generation, watermark, live }
            })
            .collect();
        Snapshot::capture(pins, self.boundaries.clone(), Arc::clone(&self.telemetry))
    }

    /// One maintenance pass: every shard whose observed compression rate
    /// has degraded past the threshold (or whose write log wants
    /// compacting) gets its dictionary rebuilt from the reservoir sample
    /// and hot-swapped. Returns a report per swap.
    ///
    /// Shards whose rebuild *fails* (a [`StoreError`] from the dictionary
    /// pipeline) keep serving their current generation; the error is
    /// returned alongside the successful swaps. Concurrent passes (a
    /// [`Maintainer`] thread plus a direct call) never double-rebuild a
    /// shard: the trigger is re-checked under the shard's rebuild lock.
    pub fn maintain(&self) -> (Vec<SwapReport>, Vec<(usize, StoreError)>) {
        let mut swaps = Vec::new();
        let mut errors = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.needs_rebuild(&self.cfg) {
                match shard.maybe_rebuild(i, &self.cfg, &self.epoch_counter) {
                    Ok(Some(report)) => swaps.push(report),
                    Ok(None) => {} // a concurrent pass already swapped it
                    Err(e) => errors.push((i, e)),
                }
            }
        }
        (swaps, errors)
    }

    /// Install a fault-injection plan on every shard's maintenance path:
    /// rebuild attempts the plan selects ([`FaultPlan::rebuild_fails`])
    /// fail with [`StoreError::FaultInjected`] *before* any build work,
    /// and flow through the shard's normal failure handling — the old
    /// generation keeps serving, `store.shard.{i}.rebuild_errors` and
    /// `store.faults.injected_rebuild_failures` tick, and a
    /// [`RebuildFailed`](telemetry::EventKind::RebuildFailed) event lands
    /// in the ring. Installing resets every shard's attempt counter;
    /// [`HopeStore::clear_faults`] uninstalls.
    ///
    /// [`FaultPlan::rebuild_fails`]: serving::FaultPlan::rebuild_fails
    ///
    /// ```
    /// use hope_store::prelude::*;
    ///
    /// let pairs = (0..500u64).map(|i| (format!("user{i:04}").into_bytes(), i));
    /// let store = HopeStore::build(StoreConfig::default(), pairs)?;
    /// store.inject_faults(FaultPlan { rebuild_fail_every: 2, ..FaultPlan::default() });
    /// // Attempt 0 is forced to fail; the shard keeps serving …
    /// assert!(matches!(store.force_rebuild(0), Err(StoreError::FaultInjected { .. })));
    /// assert_eq!(store.get(b"user0007")?, Some(7));
    /// // … and attempt 1 heals it.
    /// assert!(store.force_rebuild(0).is_ok());
    /// # Ok::<(), StoreError>(())
    /// ```
    pub fn inject_faults(&self, plan: serving::FaultPlan) {
        for s in &self.shards {
            s.set_fault_plan(Some(plan));
        }
    }

    /// Remove any installed fault-injection plan (see
    /// [`HopeStore::inject_faults`]).
    pub fn clear_faults(&self) {
        for s in &self.shards {
            s.set_fault_plan(None);
        }
    }

    /// Unconditionally rebuild and swap one shard (testing/operations).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchShard`] for an out-of-range shard;
    /// [`StoreError::Codec`] when the replacement dictionary fails to
    /// build (the shard keeps serving its current generation).
    pub fn force_rebuild(&self, shard: usize) -> Result<SwapReport, StoreError> {
        match self.shards.get(shard) {
            Some(s) => s.rebuild_forced(shard, &self.cfg, &self.epoch_counter),
            None => Err(StoreError::NoSuchShard { shard, shards: self.shards.len() }),
        }
    }

    /// Point-in-time telemetry snapshot: every registered metric, the
    /// resident tail of the lifecycle event ring, and freshly refreshed
    /// per-shard / codec gauges. Export it with
    /// [`TelemetrySnapshot::to_json`] or
    /// [`TelemetrySnapshot::to_prometheus`].
    ///
    /// ```
    /// use hope_store::prelude::*;
    ///
    /// let pairs = (0..500u64).map(|i| (format!("user{i:04}").into_bytes(), i));
    /// let store = HopeStore::build(StoreConfig::default(), pairs)?;
    /// store.get(b"user0007")?;
    /// let snap = store.telemetry();
    /// // Every shard built one generation at load time.
    /// assert_eq!(snap.events_of(EventKind::GenerationBuilt).count(), 4);
    /// assert!(snap.gauge("store.shard.0.epoch").is_some());
    /// assert!(snap.to_prometheus().contains("store_shard_0_epoch"));
    /// # Ok::<(), StoreError>(())
    /// ```
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.refresh_gauges();
        self.telemetry.snapshot()
    }

    /// Shared handle to the live telemetry hub — register additional
    /// metrics, or read the event ring without taking a full snapshot.
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Publish the derived per-shard and codec gauges into the registry.
    /// Ratios are exported in milli-units (`×1000`, truncated) — the
    /// registry is integer-valued by design.
    fn refresh_gauges(&self) {
        let reg = self.telemetry.registry();
        let mut codec = hope::CodecStats::default();
        for (i, s) in self.shards.iter().enumerate() {
            let g = s.current();
            reg.gauge(&format!("store.shard.{i}.epoch")).set(g.epoch());
            reg.gauge(&format!("store.shard.{i}.keys")).set(g.len() as u64);
            reg.gauge(&format!("store.shard.{i}.dict_bytes"))
                .set(g.hope().dict_memory_bytes() as u64);
            reg.gauge(&format!("store.shard.{i}.index_bytes")).set(g.memory_bytes() as u64);
            let baseline = g.baseline_cpr();
            reg.gauge(&format!("store.shard.{i}.baseline_cpr_milli"))
                .set((baseline * 1000.0) as u64);
            let observed = s.observed_cpr().unwrap_or(0.0);
            reg.gauge(&format!("store.shard.{i}.observed_cpr_milli"))
                .set((observed * 1000.0) as u64);
            // Drift score: observed/baseline. 1000 = holding the baseline;
            // a rebuild triggers when it sinks under degrade_ratio × 1000.
            let drift = if baseline > 0.0 && observed > 0.0 { observed / baseline } else { 0.0 };
            reg.gauge(&format!("store.shard.{i}.drift_milli")).set((drift * 1000.0) as u64);
            let cs = s.codec_stats();
            codec.fast_encode_keys += cs.fast_encode_keys;
            codec.generic_encode_keys += cs.generic_encode_keys;
            codec.automaton_fallback_takes += cs.automaton_fallback_takes;
            codec.fast_decode_keys += cs.fast_decode_keys;
            codec.walk_decode_keys += cs.walk_decode_keys;
        }
        reg.gauge("store.codec.fast_encode_keys").set(codec.fast_encode_keys);
        reg.gauge("store.codec.generic_encode_keys").set(codec.generic_encode_keys);
        reg.gauge("store.codec.automaton_fallback_takes").set(codec.automaton_fallback_takes);
        reg.gauge("store.codec.fast_decode_keys").set(codec.fast_decode_keys);
        reg.gauge("store.codec.walk_decode_keys").set(codec.walk_decode_keys);
    }

    /// [`HopeStore::get`] with per-stage span timing (encode vs probe) —
    /// the serving layer's sampled tracing path. Semantically identical
    /// to `get`; the spans cost two extra `Instant` reads, which is why
    /// the untraced path stays separate.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails validation.
    pub fn get_traced(&self, key: &[u8]) -> Result<(Option<V>, ProbeSpans), StoreError> {
        self.shards[self.route(key)].get_traced(key)
    }

    /// [`HopeStore::insert`] with per-stage span timing (encode vs the
    /// index/log mutation, reported as the probe span).
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the key fails validation; the store is
    /// unchanged in that case.
    pub fn insert_traced(
        &self,
        key: Vec<u8>,
        value: V,
    ) -> Result<(Option<V>, ProbeSpans), StoreError> {
        self.shards[self.route(&key)].insert_traced(&key, value)
    }

    /// Per-shard health snapshot.
    pub fn stats(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = s.current();
                ShardReport {
                    shard: i,
                    epoch: g.epoch(),
                    keys: g.len(),
                    observed_cpr: s.observed_cpr(),
                    baseline_cpr: g.baseline_cpr(),
                    dict_bytes: g.hope().dict_memory_bytes(),
                    index_bytes: g.memory_bytes(),
                }
            })
            .collect()
    }
}

/// Handle for a background maintenance thread; stops (and joins) the
/// thread when dropped or on an explicit [`Maintainer::stop`].
#[derive(Debug)]
pub struct Maintainer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    log: Arc<Mutex<MaintenanceLog>>,
}

/// Everything a [`Maintainer`] thread did: successful swaps and rebuild
/// failures (shard id + error). Failed shards keep serving their current
/// generation; the errors are surfaced here so operators can act.
#[derive(Debug, Default, Clone)]
pub struct MaintenanceLog {
    /// Completed hot-swaps, in the order they happened.
    pub swaps: Vec<SwapReport>,
    /// Rebuild failures as `(shard, error)` pairs.
    pub errors: Vec<(usize, StoreError)>,
}

impl Maintainer {
    /// Spawn a thread that calls [`HopeStore::maintain`] every `interval`
    /// until stopped, collecting swap reports and rebuild errors.
    pub fn spawn<V: Value>(store: Arc<HopeStore<V>>, interval: std::time::Duration) -> Maintainer {
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(MaintenanceLog::default()));
        let (stop2, log2) = (Arc::clone(&stop), Arc::clone(&log));
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let (reports, errors) = store.maintain();
                if !reports.is_empty() || !errors.is_empty() {
                    let mut log = log2.lock().unwrap_or_else(PoisonError::into_inner);
                    log.swaps.extend(reports);
                    log.errors.extend(errors);
                }
                std::thread::sleep(interval);
            }
        });
        Maintainer { stop, handle: Some(handle), log }
    }

    /// Stop the thread, join it, and return everything it did — swaps
    /// *and* rebuild failures.
    pub fn stop(mut self) -> MaintenanceLog {
        self.shutdown();
        std::mem::take(&mut *self.log.lock().unwrap_or_else(PoisonError::into_inner))
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One-stop import for the store's v1 public API.
pub mod prelude {
    pub use crate::serving::{
        AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionReport, FaultAction,
        FaultPlan, FaultTally, Request, Response, Server, ServingConfig, ServingReport, Ticket,
        WorkerStats,
    };
    pub use crate::telemetry::{
        Event, EventKind, EventLog, HistogramSummary, LatencyHistogram, MetricsRegistry,
        ProbeSpans, Telemetry, TelemetrySnapshot, TraceSampler,
    };
    pub use crate::{
        Backend, HopeStore, IndexFactory, Maintainer, MaintenanceLog, RangeCursor, ShardReport,
        SlotId, Snapshot, StoreConfig, StoreError, SwapReport,
    };
    pub use hope::prelude::*;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            shards: 4,
            reservoir_capacity: 256,
            min_observed_bytes: 512,
            ..StoreConfig::default()
        }
    }

    fn load(n: u64) -> Vec<(Vec<u8>, u64)> {
        (0..n).map(|i| (format!("com.gmail@user{i:05}").into_bytes(), i)).collect()
    }

    /// Collect a range through the cursor (the tests' standard scan).
    fn collect(
        store: &HopeStore<u64>,
        low: &[u8],
        high: &[u8],
        limit: usize,
    ) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        let n = store.range_into(low, high, limit, &mut out).unwrap();
        assert_eq!(n, out.len());
        out
    }

    #[test]
    fn build_get_insert_range_across_shards() {
        let store = HopeStore::build(small_cfg(), load(2000)).unwrap();
        assert_eq!(store.len(), 2000);
        assert_eq!(store.epochs(), vec![1, 2, 3, 4]);
        assert_eq!(store.get(b"com.gmail@user00123").unwrap(), Some(123));
        assert_eq!(store.get(b"com.gmail@missing").unwrap(), None);
        assert_eq!(store.get_with(b"com.gmail@user00123", |v| v * 2).unwrap(), Some(246));
        assert_eq!(store.insert(b"com.gmail@user00123".to_vec(), 9).unwrap(), Some(123));
        assert_eq!(store.get(b"com.gmail@user00123").unwrap(), Some(9));
        // A range spanning every shard boundary.
        let all = collect(&store, b"com.gmail@user00000", b"com.gmail@user01999", usize::MAX);
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "range not sorted");
        assert_eq!(collect(&store, b"com.gmail@user00500", b"com.gmail@user00504", 3).len(), 3);
        // The deprecated shim returns the same pairs.
        #[allow(deprecated)]
        {
            assert_eq!(store.range(b"com.gmail@user00500", b"com.gmail@user00504", 3).len(), 3);
        }
    }

    #[test]
    fn every_backend_serves_identically() {
        let pairs = load(600);
        fn custom_index() -> Box<dyn OrderedIndex<SlotId>> {
            Box::<std::collections::BTreeMap<Vec<u8>, SlotId>>::default()
        }
        for backend in [
            Backend::BTree,
            Backend::PrefixBTree,
            Backend::Art,
            Backend::Hot,
            Backend::BTreeMap,
            Backend::Custom(custom_index),
        ] {
            let cfg = StoreConfig { backend, ..small_cfg() };
            let store = HopeStore::build(cfg, pairs.clone()).unwrap();
            assert_eq!(store.get(b"com.gmail@user00042").unwrap(), Some(42), "{backend:?}");
            let r = collect(&store, b"com.gmail@user00010", b"com.gmail@user00013", 10);
            assert_eq!(r.len(), 4, "{backend:?}");
            assert_eq!(store.len(), 600, "{backend:?}");
        }
    }

    #[test]
    fn cursor_pull_matches_push_across_shards() {
        let store = HopeStore::build(small_cfg(), load(900)).unwrap();
        for (low, high, limit) in [
            (b"com.gmail@user00000".as_slice(), b"com.gmail@user00899".as_slice(), usize::MAX),
            (b"com.gmail@user00100", b"com.gmail@user00500", 7),
            (b"a", b"z", 25),
            (b"x", b"a", 10),
        ] {
            let mut pushed = Vec::new();
            let n =
                store.range_with(low, high, limit, |k, v| pushed.push((k.to_vec(), *v))).unwrap();
            assert_eq!(n, pushed.len());
            let mut pulled = Vec::new();
            let mut cur = store.cursor(low, high, limit).unwrap();
            while let Some((k, v)) = cur.next_hit() {
                pulled.push((k.to_vec(), *v));
            }
            assert!(cur.error().is_none());
            assert_eq!(pulled, pushed, "{low:?}..={high:?}");
        }
    }

    #[test]
    fn cursor_mixes_pull_then_push() {
        let store = HopeStore::build(small_cfg(), load(500)).unwrap();
        let mut cur = store.cursor(b"com.gmail@user00000", b"com.gmail@user00499", 400).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (k, v) = cur.next_hit().expect("hits available");
            seen.push((k.to_vec(), *v));
        }
        let n = cur.for_each(|k, v| seen.push((k.to_vec(), *v))).unwrap();
        assert_eq!(seen.len(), 3 + n);
        assert_eq!(seen.len(), 400);
        assert_eq!(seen, collect(&store, b"com.gmail@user00000", b"com.gmail@user00499", 400));
    }

    #[test]
    fn empty_store_works_and_accepts_inserts() {
        let store = HopeStore::build(small_cfg(), Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(b"anything").unwrap(), None);
        assert!(collect(&store, b"a", b"z", 10).is_empty());
        store.insert(b"k1".to_vec(), 1).unwrap();
        store.insert(b"zz".to_vec(), 2).unwrap();
        assert_eq!(store.get(b"k1").unwrap(), Some(1));
        assert_eq!(store.len(), 2);
        assert_eq!(collect(&store, b"a", b"zz", 10).len(), 2);
    }

    #[test]
    fn invalid_config_and_keys_error_instead_of_panicking() {
        let cfg = StoreConfig { shards: 0, ..StoreConfig::default() };
        assert!(matches!(
            HopeStore::<u64>::build(cfg, Vec::new()),
            Err(StoreError::InvalidConfig { .. })
        ));
        let cfg = StoreConfig { degrade_ratio: 1.5, ..StoreConfig::default() };
        assert!(matches!(
            HopeStore::<u64>::build(cfg, Vec::new()),
            Err(StoreError::InvalidConfig { .. })
        ));
        let cfg = StoreConfig { incremental_min_reuse: 1.5, ..StoreConfig::default() };
        assert!(matches!(
            HopeStore::<u64>::build(cfg, Vec::new()),
            Err(StoreError::InvalidConfig { .. })
        ));
        let giant = vec![b'x'; hope::MAX_KEY_BYTES + 1];
        assert!(matches!(
            HopeStore::build(StoreConfig::default(), vec![(giant.clone(), 1u64)]),
            Err(StoreError::Codec(hope::HopeError::KeyTooLong { .. }))
        ));
        let store = HopeStore::build(small_cfg(), load(10)).unwrap();
        assert!(store.insert(giant.clone(), 1).is_err());
        assert!(store.get(&giant).is_err());
        assert!(store.cursor(&giant, b"z", 1).is_err());
        assert!(matches!(store.generation(99), Err(StoreError::NoSuchShard { .. })));
        assert!(matches!(store.force_rebuild(99), Err(StoreError::NoSuchShard { .. })));
    }

    #[test]
    fn forced_swap_preserves_contents_and_bumps_epoch() {
        let store = HopeStore::build(small_cfg(), load(800)).unwrap();
        store.insert(b"org.acm@drift".to_vec(), 7777).unwrap();
        let shard = store.shard_of(b"org.acm@drift");
        let before = store.epochs();
        let report = store.force_rebuild(shard).unwrap();
        assert_eq!(report.old_epoch, before[shard]);
        assert!(report.new_epoch > before[shard]);
        assert_eq!(store.get(b"org.acm@drift").unwrap(), Some(7777));
        assert_eq!(store.len(), 801);
        for i in (0..800).step_by(97) {
            let k = format!("com.gmail@user{i:05}");
            assert_eq!(store.get(k.as_bytes()).unwrap(), Some(i), "{k}");
        }
    }

    #[test]
    fn maintain_triggers_only_after_drift() {
        let cfg = StoreConfig { shards: 1, min_observed_bytes: 2048, ..StoreConfig::default() };
        let store = HopeStore::build(cfg, load(1500)).unwrap();
        // Matching traffic (a continuation of the loaded population): no swap.
        for i in 0..200u64 {
            store.insert(format!("com.gmail@user{:05}", 1500 + i).into_bytes(), 1500 + i).unwrap();
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert!(swaps.is_empty(), "stable traffic must not trigger a swap");
        // Radically different traffic: CPR collapses, swap fires.
        for i in 0..600u64 {
            store.insert(format!("XQ#{i:)>6}!!zw|{i:x}").into_bytes(), i).unwrap();
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert_eq!(swaps.len(), 1, "drifted traffic must trigger the swap");
        let r = &swaps[0];
        assert!(r.new_epoch > r.old_epoch);
        assert!(r.new_baseline_cpr > 0.0, "new dictionary must have a baseline");
        assert_eq!(store.len(), 1500 + 200 + 600);
        assert_eq!(store.get(b"com.gmail@user00003").unwrap(), Some(3));
    }

    #[test]
    fn update_heavy_stable_traffic_compacts_the_log() {
        let cfg = StoreConfig { shards: 1, ..StoreConfig::default() };
        let store = HopeStore::build(cfg, load(100)).unwrap();
        // Stable distribution, pure updates: CPR never degrades, but the
        // append-only log fills with superseded entries.
        for round in 1..=51u64 {
            for i in 0..100u64 {
                store
                    .insert(format!("com.gmail@user{i:05}").into_bytes(), round * 1000 + i)
                    .unwrap();
            }
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert_eq!(swaps.len(), 1, "log garbage should trigger a compacting swap");
        assert_eq!(store.len(), 100);
        assert_eq!(store.get(b"com.gmail@user00007").unwrap(), Some(51_000 + 7));
        // The swap compacted the log back to the live set.
        let generation = store.generation(0).unwrap();
        assert_eq!(generation.len(), 100);
        assert!(generation.memory_bytes() > 0);
    }

    #[test]
    fn snapshots_freeze_a_point_in_time_across_writes_and_swaps() {
        let store = HopeStore::build(small_cfg(), load(1200)).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.len(), 1200);
        assert!(!snap.is_empty());
        assert_eq!(snap.shards(), 4);
        assert_eq!(snap.epochs(), store.epochs());
        // Mutate the live store and hot-swap every shard under the
        // snapshot's feet.
        store.insert(b"com.gmail@user00042".to_vec(), 999).unwrap();
        store.insert(b"aaa@newcomer".to_vec(), 7).unwrap();
        for s in 0..4 {
            store.force_rebuild(s).unwrap();
        }
        store.insert(b"com.gmail@user00100".to_vec(), 123_456).unwrap();
        assert_eq!(store.get(b"com.gmail@user00042").unwrap(), Some(999));
        assert_eq!(store.len(), 1201);
        // The snapshot still reads the capture instant in every shard.
        assert_eq!(snap.get(b"com.gmail@user00042").unwrap(), Some(42));
        assert_eq!(snap.get(b"com.gmail@user00100").unwrap(), Some(100));
        assert_eq!(snap.get(b"aaa@newcomer").unwrap(), None);
        assert_eq!(snap.len(), 1200);
        // Snapshot ranges span shards in source order and exclude every
        // post-capture write.
        let mut out = Vec::new();
        let n = snap
            .range_into(b"com.gmail@user00000", b"com.gmail@user01199", usize::MAX, &mut out)
            .unwrap();
        assert_eq!(n, 1200);
        for (i, (k, v)) in out.iter().enumerate() {
            assert_eq!(k, format!("com.gmail@user{i:05}").as_bytes());
            assert_eq!(*v, i as u64);
        }
        // Pull cursor agrees with the push path and reports only pinned
        // epochs (all pre-swap).
        let pinned = snap.epochs();
        let mut cur = snap.cursor(b"com.gmail@user00000", b"com.gmail@user01199", 500).unwrap();
        let mut pulled = 0usize;
        while let Some((_, _)) = cur.next_hit() {
            assert!(pinned.contains(&cur.hit_epoch().unwrap()), "cursor escaped its pins");
            pulled += 1;
        }
        assert!(cur.error().is_none());
        assert_eq!(pulled, 500);
        // Lifecycle telemetry: one taken, zero dropped … then the drop.
        let t = store.telemetry();
        assert_eq!(t.counter("store.snapshot.taken"), Some(1));
        assert_eq!(t.gauge("store.snapshot.active"), Some(1));
        assert_eq!(t.events_of(EventKind::SnapshotCreated).count(), 1);
        drop(snap);
        let t = store.telemetry();
        assert_eq!(t.counter("store.snapshot.dropped"), Some(1));
        assert_eq!(t.gauge("store.snapshot.active"), Some(0));
        assert_eq!(t.events_of(EventKind::SnapshotDropped).count(), 1);
    }

    #[test]
    fn snapshot_of_empty_store_is_empty() {
        let store: HopeStore<u64> = HopeStore::build(small_cfg(), Vec::new()).unwrap();
        let snap = store.snapshot();
        store.insert(b"k1".to_vec(), 1).unwrap();
        assert!(snap.is_empty());
        assert_eq!(snap.get(b"k1").unwrap(), None);
        let mut out = Vec::new();
        assert_eq!(snap.range_into(b"a", b"z", 10, &mut out).unwrap(), 0);
    }

    #[test]
    fn rebuilds_report_their_path_and_preserve_contents() {
        // min_reuse 0: any same-scheme retrain qualifies for the merge
        // path, however few keys it can reuse — the deterministic way to
        // exercise the splice.
        let cfg = StoreConfig { shards: 1, incremental_min_reuse: 0.0, ..small_cfg() };
        let store = HopeStore::build(cfg, load(800)).unwrap();
        let r = store.force_rebuild(0).unwrap();
        assert!(r.incremental, "min_reuse 0 must take the merge path");
        assert!(r.reused_bytes + r.reencoded_bytes > 0);
        for i in (0..800).step_by(41) {
            let k = format!("com.gmail@user{i:05}");
            assert_eq!(store.get(k.as_bytes()).unwrap(), Some(i), "{k}");
        }
        let t = store.telemetry();
        assert_eq!(t.counter("store.rebuild.incremental"), Some(1));
        assert_eq!(t.events_of(EventKind::RebuildIncremental).count(), 1);
        let ev = t.events_of(EventKind::RebuildIncremental).next().unwrap();
        assert_eq!(ev.replayed, r.reused_bytes);
        assert_eq!(ev.bytes, r.reencoded_bytes);

        // min_reuse 1.0 + drifted traffic: the retrained codes move, so
        // the bar is unreachable and the rebuild goes full.
        let cfg = StoreConfig { shards: 1, incremental_min_reuse: 1.0, ..small_cfg() };
        let store = HopeStore::build(cfg, load(800)).unwrap();
        for i in 0..600u64 {
            store.insert(format!("XQ#{i:)>6}!!zw|{i:x}").into_bytes(), i).unwrap();
        }
        let r = store.force_rebuild(0).unwrap();
        assert!(!r.incremental, "drifted retrain cannot reuse 100% of the bytes");
        assert_eq!(r.reused_bytes, 0);
        assert!(r.reencoded_bytes > 0, "full path must account every live entry's bytes");
        assert_eq!(store.get(b"com.gmail@user00003").unwrap(), Some(3));
        assert_eq!(store.len(), 1400);
        let t = store.telemetry();
        assert_eq!(t.counter("store.rebuild.full"), Some(1));
        assert_eq!(t.events_of(EventKind::RebuildFull).count(), 1);
    }

    #[test]
    fn maintainer_thread_runs_and_stops() {
        let store = Arc::new(HopeStore::build(small_cfg(), load(400)).unwrap());
        let m = Maintainer::spawn(Arc::clone(&store), std::time::Duration::from_millis(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let log = m.stop();
        // Stable traffic: the thread ran but had nothing to do.
        assert!(log.swaps.is_empty());
        assert!(log.errors.is_empty());
        assert_eq!(store.len(), 400);
    }

    #[test]
    fn non_u64_payloads_round_trip() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..300u32)
            .map(|i| {
                (format!("com.gmail@user{i:04}").into_bytes(), format!("doc-{i}").into_bytes())
            })
            .collect();
        let store: HopeStore<Vec<u8>> = HopeStore::build(small_cfg(), pairs.clone()).unwrap();
        assert_eq!(store.get(b"com.gmail@user0042").unwrap(), Some(b"doc-42".to_vec()));
        assert_eq!(store.get_with(b"com.gmail@user0007", |v| v.len()).unwrap(), Some(5));
        let old = store.insert(b"com.gmail@user0042".to_vec(), b"doc-42b".to_vec()).unwrap();
        assert_eq!(old, Some(b"doc-42".to_vec()));
        let mut hits = Vec::new();
        store.range_into(b"com.gmail@user0100", b"com.gmail@user0102", 10, &mut hits).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].1, b"doc-100".to_vec());
        // Swaps re-encode keys but carry the payloads through untouched.
        store.force_rebuild(0).unwrap();
        assert_eq!(store.get(b"com.gmail@user0042").unwrap(), Some(b"doc-42b".to_vec()));
        assert_eq!(store.len(), 300);
    }
}
