//! # hope_store — a concurrent, sharded store over HOPE-compressed keys
//!
//! The paper's dictionaries are static: built once from a sample, then
//! frozen. Appendix C (`fig15_distribution_shift`) shows what that costs a
//! long-running system — when the key distribution drifts, the compression
//! rate quietly decays. This crate adds the serving layer the ROADMAP
//! calls for: an order-preserving compressed key-value store that keeps
//! its dictionaries *fresh* without ever blocking readers.
//!
//! ## Architecture
//!
//! * **Sharding** — keys are split across N partitions on encoded-key
//!   ranges (quantiles of the bulk-load's encoded sort order; because the
//!   encoding is order-preserving the same split points, kept in source
//!   form, stay valid across dictionary swaps). Each shard owns an
//!   independent dictionary, index, statistics and epoch.
//! * **Pluggable trees** — every shard indexes the encoded padded bytes
//!   in any [`OrderedIndex`] backend: the repo's B+tree (plain or prefix),
//!   its ART, or `std`'s `BTreeMap` as reference.
//! * **Epoch-based dictionary hot-swap** — each shard tracks the CPR its
//!   inserts actually achieve; when it degrades past a threshold of the
//!   build-time baseline, [`HopeStore::maintain`] rebuilds the dictionary
//!   from a reservoir sample of recent traffic, re-encodes the shard into
//!   a fresh [`Generation`] in the background, replays the writes that
//!   landed meanwhile, and flips the shard's `Arc` epoch handle. Readers
//!   on the old generation drain gracefully; none ever block.
//!
//! ```
//! use hope_store::{HopeStore, StoreConfig};
//!
//! let pairs = (0..1000u64).map(|i| (format!("com.gmail@user{i:04}").into_bytes(), i));
//! let store = HopeStore::build(StoreConfig::default(), pairs).unwrap();
//! assert_eq!(store.get(b"com.gmail@user0007"), Some(7));
//! store.insert(b"com.gmail@newcomer".to_vec(), 9999);
//! let hits = store.range(b"com.gmail@user0100", b"com.gmail@user0102", 10);
//! assert_eq!(hits.len(), 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod generation;
mod shard;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hope::stats;
use hope::{Hope, HopeBuilder, HopeError, OrderedIndex, Scheme};

pub use generation::Generation;

use generation::Entry;
use shard::Shard;

/// Which ordered-index structure each shard runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain TLX-style B+tree (`hope_btree`).
    BTree,
    /// Prefix-truncating B+tree (`hope_btree`).
    PrefixBTree,
    /// Adaptive Radix Tree (`hope_art`).
    Art,
    /// `std::collections::BTreeMap` — the reference backend.
    BTreeMap,
}

impl Backend {
    /// Fresh empty index of this kind.
    pub fn new_index(&self) -> Box<dyn OrderedIndex> {
        match self {
            Backend::BTree => Box::new(hope_btree::BPlusTree::plain()),
            Backend::PrefixBTree => Box::new(hope_btree::BPlusTree::prefix()),
            Backend::Art => Box::new(hope_art::Art::new()),
            Backend::BTreeMap => Box::<std::collections::BTreeMap<Vec<u8>, u64>>::default(),
        }
    }
}

/// Store construction and maintenance parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Number of partitions (≥ 1).
    pub shards: usize,
    /// Compression scheme for every shard dictionary.
    pub scheme: Scheme,
    /// Target dictionary entries (variable-size schemes).
    pub dict_entries: usize,
    /// Tree backend indexing the encoded keys.
    pub backend: Backend,
    /// Keys held in each shard's traffic reservoir.
    pub reservoir_capacity: usize,
    /// Rebuild triggers when observed CPR falls below this fraction of
    /// the generation's build-time baseline CPR.
    pub degrade_ratio: f64,
    /// Minimum inserted source bytes before drift is judged at all.
    pub min_observed_bytes: u64,
    /// Block size for the sorted-batch bulk encode (Appendix B).
    pub batch_block: usize,
    /// Seed for the reservoir sampling decisions.
    pub seed: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            scheme: Scheme::DoubleChar,
            dict_entries: 1 << 16,
            backend: Backend::BTree,
            reservoir_capacity: 2048,
            degrade_ratio: 0.9,
            min_observed_bytes: 64 * 1024,
            batch_block: 16,
            seed: 42,
        }
    }
}

/// What one successful dictionary hot-swap did.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// Shard that swapped.
    pub shard: usize,
    /// Epoch of the superseded generation.
    pub old_epoch: u64,
    /// Epoch of the freshly installed generation.
    pub new_epoch: u64,
    /// CPR observed on the old generation's insert traffic at swap time.
    pub observed_cpr: Option<f64>,
    /// Build-time baseline CPR of the superseded dictionary.
    pub old_baseline_cpr: f64,
    /// Build-time baseline CPR of the new dictionary.
    pub new_baseline_cpr: f64,
    /// Live keys re-encoded into the new generation.
    pub live_keys: usize,
    /// Writes replayed from the log tail during the splice.
    pub replayed: usize,
}

/// Point-in-time health of one shard.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard id (position in split order).
    pub shard: usize,
    /// Current epoch.
    pub epoch: u64,
    /// Live keys.
    pub keys: usize,
    /// CPR observed on insert traffic since the current generation.
    pub observed_cpr: Option<f64>,
    /// The dictionary's build-time baseline CPR.
    pub baseline_cpr: f64,
    /// Dictionary memory in bytes.
    pub dict_bytes: usize,
    /// Index + record memory in bytes.
    pub index_bytes: usize,
}

/// A concurrent, sharded key-value store over HOPE-compressed keys.
///
/// All operations take `&self`; the store is `Send + Sync` and designed to
/// sit behind an `Arc` with many reader and writer threads.
#[derive(Debug)]
pub struct HopeStore {
    cfg: StoreConfig,
    /// Source-form split points, `boundaries.len() == shards - 1`; shard
    /// `i` holds keys in `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<Vec<u8>>,
    shards: Vec<Shard>,
    epoch_counter: AtomicU64,
}

/// Fallback dictionary sample when a shard has no traffic and no resident
/// keys to learn from: enough short strings that every scheme's selector
/// finds patterns to divide on.
fn default_sample() -> Vec<Vec<u8>> {
    (0..64u32).map(|i| format!("hope-default-{i:04}").into_bytes()).collect()
}

/// Build one shard dictionary, substituting the default sample when the
/// provided one is empty (variable-size schemes reject empty samples).
pub(crate) fn build_hope_for(cfg: &StoreConfig, sample: &[Vec<u8>]) -> Result<Hope, HopeError> {
    let builder = HopeBuilder::new(cfg.scheme).dictionary_entries(cfg.dict_entries);
    if sample.is_empty() {
        builder.build_from_sample(default_sample())
    } else {
        builder.build_from_sample(sample.iter().cloned())
    }
}

impl HopeStore {
    /// Build a store from an initial key-value load.
    ///
    /// Duplicate keys keep the last value. The load is sorted once; shard
    /// split points are the quantiles of the sorted **encoded** order
    /// (identical to source order — the encoding is order-preserving), and
    /// every shard bulk-loads its slice with the Appendix-B sorted-batch
    /// encoder. Surfaces dictionary-build failures as [`HopeError`]
    /// instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics on a nonsensical configuration — `shards == 0` or
    /// `degrade_ratio` outside `(0, 1]` — which is a programming error,
    /// not a runtime build failure.
    pub fn build<I>(cfg: StoreConfig, pairs: I) -> Result<HopeStore, HopeError>
    where
        I: IntoIterator<Item = (Vec<u8>, u64)>,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.degrade_ratio > 0.0 && cfg.degrade_ratio <= 1.0, "degrade_ratio in (0, 1]");
        // Last write wins, sorted by source key.
        let sorted: std::collections::BTreeMap<Vec<u8>, u64> = pairs.into_iter().collect();
        let sorted: Vec<(Vec<u8>, u64)> = sorted.into_iter().collect();

        // Split points at the quantiles of the (encoded) sort order.
        let n = sorted.len();
        let boundaries: Vec<Vec<u8>> = (1..cfg.shards)
            .map(|i| {
                if n == 0 {
                    // No data to learn a split from: divide the byte space.
                    vec![(i * 256 / cfg.shards) as u8]
                } else {
                    sorted[(i * n / cfg.shards).min(n - 1)].0.clone()
                }
            })
            .collect();

        let epoch_counter = AtomicU64::new(0);
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut at = 0usize;
        for s in 0..cfg.shards {
            // The last shard (no boundary above it) takes the remainder.
            let end = match boundaries.get(s) {
                Some(b) => sorted[at..].partition_point(|(k, _)| k < b) + at,
                None => n,
            };
            let slice = &sorted[at..end];
            at = end;

            // Per-shard dictionary from an evenly spaced sample of the
            // shard's own load.
            let step = (slice.len() / cfg.reservoir_capacity.max(1)).max(1);
            let sample: Vec<Vec<u8>> = slice.iter().step_by(step).map(|(k, _)| k.clone()).collect();
            let hope = build_hope_for(&cfg, &sample)?;
            let baseline_cpr = if sample.is_empty() {
                stats::measure(&hope, &default_sample()).cpr()
            } else {
                stats::measure(&hope, &sample).cpr()
            };
            let entries: Vec<Entry> =
                slice.iter().map(|(k, v)| Entry { key: k.as_slice().into(), value: *v }).collect();
            let epoch = epoch_counter.fetch_add(1, Ordering::Relaxed) + 1;
            let generation = Generation::build(
                epoch,
                hope,
                baseline_cpr,
                cfg.backend.new_index(),
                entries,
                cfg.batch_block,
            );
            shards.push(Shard::new(generation, cfg.reservoir_capacity, cfg.seed ^ (s as u64)));
        }
        Ok(HopeStore { cfg, boundaries, shards, epoch_counter })
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Shard index responsible for `key`.
    fn route(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// Which shard serves `key` (diagnostics; routing is internal).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.route(key)
    }

    /// Epoch handle of one shard's current generation (diagnostics: lets
    /// harnesses measure the live dictionary without racing a swap).
    pub fn generation(&self, shard: usize) -> Arc<Generation> {
        self.shards[shard].current()
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.shards[self.route(key)].get(key)
    }

    /// Insert or update; returns the previous value if the key existed.
    pub fn insert(&self, key: Vec<u8>, value: u64) -> Option<u64> {
        self.shards[self.route(&key)].insert(&key, value)
    }

    /// Bounded range query, inclusive on both ends: up to `limit`
    /// `(key, value)` pairs in source-key order, possibly spanning shards.
    ///
    /// Allocates the returned pairs; scan loops should prefer
    /// [`HopeStore::range_with`], which borrows every hit and performs no
    /// per-hit allocation.
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v)));
        out
    }

    /// Visitor form of [`HopeStore::range`]: call `f(key, value)` for up
    /// to `limit` hits in source-key order (possibly spanning shards) and
    /// return the hit count. Bounds are pair-encoded into thread-local
    /// scratch and the index scan fills a thread-local slot buffer, so a
    /// scan of N hits performs **zero heap allocations** after warm-up;
    /// the key slices are borrowed and valid only for the duration of the
    /// callback.
    ///
    /// `f` runs under a shard generation's read lock: keep it short and
    /// never call back into the store from inside it.
    pub fn range_with<F>(&self, low: &[u8], high: &[u8], limit: usize, mut f: F) -> usize
    where
        F: FnMut(&[u8], u64),
    {
        if low > high || limit == 0 {
            return 0;
        }
        let (s0, s1) = (self.route(low), self.route(high));
        let mut emitted = 0usize;
        for s in s0..=s1 {
            if emitted == limit {
                break;
            }
            emitted += self.shards[s].range_with(low, high, limit - emitted, &mut f);
        }
        emitted
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.current().len()).sum()
    }

    /// True if no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.current().epoch()).collect()
    }

    /// One maintenance pass: every shard whose observed compression rate
    /// has degraded past the threshold (or whose write log wants
    /// compacting) gets its dictionary rebuilt from the reservoir sample
    /// and hot-swapped. Returns a report per swap.
    ///
    /// Shards whose rebuild *fails* (a [`HopeError`] from the dictionary
    /// pipeline) keep serving their current generation; the error is
    /// returned alongside the successful swaps. Concurrent passes (a
    /// [`Maintainer`] thread plus a direct call) never double-rebuild a
    /// shard: the trigger is re-checked under the shard's rebuild lock.
    pub fn maintain(&self) -> (Vec<SwapReport>, Vec<(usize, HopeError)>) {
        let mut swaps = Vec::new();
        let mut errors = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.needs_rebuild(&self.cfg) {
                match shard.rebuild(i, &self.cfg, &self.epoch_counter, false) {
                    Ok(Some(report)) => swaps.push(report),
                    Ok(None) => {} // a concurrent pass already swapped it
                    Err(e) => errors.push((i, e)),
                }
            }
        }
        (swaps, errors)
    }

    /// Unconditionally rebuild and swap one shard (testing/operations).
    pub fn force_rebuild(&self, shard: usize) -> Result<SwapReport, HopeError> {
        let report = self.shards[shard].rebuild(shard, &self.cfg, &self.epoch_counter, true)?;
        Ok(report.expect("forced rebuild always swaps"))
    }

    /// Per-shard health snapshot.
    pub fn stats(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let g = s.current();
                ShardReport {
                    shard: i,
                    epoch: g.epoch(),
                    keys: g.len(),
                    observed_cpr: s.observed_cpr(),
                    baseline_cpr: g.baseline_cpr(),
                    dict_bytes: g.hope().dict_memory_bytes(),
                    index_bytes: g.memory_bytes(),
                }
            })
            .collect()
    }
}

/// Handle for a background maintenance thread; stops (and joins) the
/// thread when dropped or on an explicit [`Maintainer::stop`].
#[derive(Debug)]
pub struct Maintainer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    log: Arc<Mutex<MaintenanceLog>>,
}

/// Everything a [`Maintainer`] thread did: successful swaps and rebuild
/// failures (shard id + error). Failed shards keep serving their current
/// generation; the errors are surfaced here so operators can act.
#[derive(Debug, Default, Clone)]
pub struct MaintenanceLog {
    /// Completed hot-swaps, in the order they happened.
    pub swaps: Vec<SwapReport>,
    /// Rebuild failures as `(shard, error)` pairs.
    pub errors: Vec<(usize, HopeError)>,
}

impl Maintainer {
    /// Spawn a thread that calls [`HopeStore::maintain`] every `interval`
    /// until stopped, collecting swap reports and rebuild errors.
    pub fn spawn(store: Arc<HopeStore>, interval: std::time::Duration) -> Maintainer {
        let stop = Arc::new(AtomicBool::new(false));
        let log = Arc::new(Mutex::new(MaintenanceLog::default()));
        let (stop2, log2) = (Arc::clone(&stop), Arc::clone(&log));
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                let (reports, errors) = store.maintain();
                if !reports.is_empty() || !errors.is_empty() {
                    let mut log = log2.lock().unwrap();
                    log.swaps.extend(reports);
                    log.errors.extend(errors);
                }
                std::thread::sleep(interval);
            }
        });
        Maintainer { stop, handle: Some(handle), log }
    }

    /// Stop the thread, join it, and return everything it did — swaps
    /// *and* rebuild failures.
    pub fn stop(mut self) -> MaintenanceLog {
        self.shutdown();
        std::mem::take(&mut *self.log.lock().unwrap())
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Maintainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StoreConfig {
        StoreConfig {
            shards: 4,
            reservoir_capacity: 256,
            min_observed_bytes: 512,
            ..StoreConfig::default()
        }
    }

    fn load(n: u64) -> Vec<(Vec<u8>, u64)> {
        (0..n).map(|i| (format!("com.gmail@user{i:05}").into_bytes(), i)).collect()
    }

    #[test]
    fn build_get_insert_range_across_shards() {
        let store = HopeStore::build(small_cfg(), load(2000)).unwrap();
        assert_eq!(store.len(), 2000);
        assert_eq!(store.epochs(), vec![1, 2, 3, 4]);
        assert_eq!(store.get(b"com.gmail@user00123"), Some(123));
        assert_eq!(store.get(b"com.gmail@missing"), None);
        assert_eq!(store.insert(b"com.gmail@user00123".to_vec(), 9), Some(123));
        assert_eq!(store.get(b"com.gmail@user00123"), Some(9));
        // A range spanning every shard boundary.
        let all = store.range(b"com.gmail@user00000", b"com.gmail@user01999", usize::MAX);
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "range not sorted");
        assert_eq!(store.range(b"com.gmail@user00500", b"com.gmail@user00504", 3).len(), 3);
    }

    #[test]
    fn every_backend_serves_identically() {
        let pairs = load(600);
        for backend in [Backend::BTree, Backend::PrefixBTree, Backend::Art, Backend::BTreeMap] {
            let cfg = StoreConfig { backend, ..small_cfg() };
            let store = HopeStore::build(cfg, pairs.clone()).unwrap();
            assert_eq!(store.get(b"com.gmail@user00042"), Some(42), "{backend:?}");
            let r = store.range(b"com.gmail@user00010", b"com.gmail@user00013", 10);
            assert_eq!(r.len(), 4, "{backend:?}");
            assert_eq!(store.len(), 600, "{backend:?}");
        }
    }

    #[test]
    fn range_with_matches_range_across_shards() {
        let store = HopeStore::build(small_cfg(), load(900)).unwrap();
        for (low, high, limit) in [
            (b"com.gmail@user00000".as_slice(), b"com.gmail@user00899".as_slice(), usize::MAX),
            (b"com.gmail@user00100", b"com.gmail@user00500", 7),
            (b"a", b"z", 25),
            (b"x", b"a", 10),
        ] {
            let mut seen = Vec::new();
            let n = store.range_with(low, high, limit, |k, v| seen.push((k.to_vec(), v)));
            assert_eq!(n, seen.len());
            assert_eq!(seen, store.range(low, high, limit), "{low:?}..={high:?}");
        }
    }

    #[test]
    fn empty_store_works_and_accepts_inserts() {
        let store = HopeStore::build(small_cfg(), Vec::new()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.get(b"anything"), None);
        assert!(store.range(b"a", b"z", 10).is_empty());
        store.insert(b"k1".to_vec(), 1);
        store.insert(b"zz".to_vec(), 2);
        assert_eq!(store.get(b"k1"), Some(1));
        assert_eq!(store.len(), 2);
        let r = store.range(b"a", b"zz", 10);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn forced_swap_preserves_contents_and_bumps_epoch() {
        let store = HopeStore::build(small_cfg(), load(800)).unwrap();
        store.insert(b"org.acm@drift".to_vec(), 7777);
        let shard = store.route(b"org.acm@drift");
        let before = store.epochs();
        let report = store.force_rebuild(shard).unwrap();
        assert_eq!(report.old_epoch, before[shard]);
        assert!(report.new_epoch > before[shard]);
        assert_eq!(store.get(b"org.acm@drift"), Some(7777));
        assert_eq!(store.len(), 801);
        for i in (0..800).step_by(97) {
            let k = format!("com.gmail@user{i:05}");
            assert_eq!(store.get(k.as_bytes()), Some(i), "{k}");
        }
    }

    #[test]
    fn maintain_triggers_only_after_drift() {
        let cfg = StoreConfig { shards: 1, min_observed_bytes: 2048, ..StoreConfig::default() };
        let store = HopeStore::build(cfg, load(1500)).unwrap();
        // Matching traffic (a continuation of the loaded population): no swap.
        for i in 0..200u64 {
            store.insert(format!("com.gmail@user{:05}", 1500 + i).into_bytes(), 1500 + i);
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert!(swaps.is_empty(), "stable traffic must not trigger a swap");
        // Radically different traffic: CPR collapses, swap fires.
        for i in 0..600u64 {
            store.insert(format!("XQ#{i:)>6}!!zw|{i:x}").into_bytes(), i);
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert_eq!(swaps.len(), 1, "drifted traffic must trigger the swap");
        let r = &swaps[0];
        assert!(r.new_epoch > r.old_epoch);
        assert!(r.new_baseline_cpr > 0.0, "new dictionary must have a baseline");
        assert_eq!(store.len(), 1500 + 200 + 600);
        assert_eq!(store.get(b"com.gmail@user00003"), Some(3));
    }

    #[test]
    fn update_heavy_stable_traffic_compacts_the_log() {
        let cfg = StoreConfig { shards: 1, ..StoreConfig::default() };
        let store = HopeStore::build(cfg, load(100)).unwrap();
        // Stable distribution, pure updates: CPR never degrades, but the
        // append-only log fills with superseded entries.
        for round in 1..=51u64 {
            for i in 0..100u64 {
                store.insert(format!("com.gmail@user{i:05}").into_bytes(), round * 1000 + i);
            }
        }
        let (swaps, errors) = store.maintain();
        assert!(errors.is_empty());
        assert_eq!(swaps.len(), 1, "log garbage should trigger a compacting swap");
        assert_eq!(store.len(), 100);
        assert_eq!(store.get(b"com.gmail@user00007"), Some(51_000 + 7));
        // The swap compacted the log back to the live set.
        let (live, log) = (store.generation(0).len(), store.generation(0).memory_bytes());
        assert_eq!(live, 100);
        assert!(log > 0);
    }

    #[test]
    fn maintainer_thread_runs_and_stops() {
        let store = Arc::new(HopeStore::build(small_cfg(), load(400)).unwrap());
        let m = Maintainer::spawn(Arc::clone(&store), std::time::Duration::from_millis(1));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let log = m.stop();
        // Stable traffic: the thread ran but had nothing to do.
        assert!(log.swaps.is_empty());
        assert!(log.errors.is_empty());
        assert_eq!(store.len(), 400);
    }
}
