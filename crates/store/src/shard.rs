//! One shard: an epoch handle over the current [`Generation`], live drift
//! statistics, and the rebuild/swap machinery.
//!
//! The probe paths (`get` / `range` / `insert`) delegate to the current
//! generation, which encodes probe keys into thread-local scratch buffers
//! (see [`crate::generation`]) — a shard probe performs no per-key
//! allocation on the encode side.
//!
//! ## Concurrency protocol
//!
//! * **Readers** (`get`/range cursors) clone the `Arc<Generation>` out of
//!   the epoch slot (a short `RwLock` read) and run against that
//!   generation — they never block on writers or on a rebuild, and a
//!   reader holding a superseded generation drains gracefully because the
//!   `Arc` keeps it alive.
//! * **Writers** (`insert`) serialize on the shard's writer mutex, then
//!   mutate the current generation through its interior lock.
//! * **Rebuild** does the expensive work — dictionary build, Hu-Tucker,
//!   re-encoding the live keys — with *no* locks held; writers contend
//!   only with the initial snapshot clone (a data read-lock hold) and the
//!   final splice (writer mutex: replay the log tail, flip the epoch
//!   slot). Lock order is always `writer → epoch slot → generation data`,
//!   so the protocol is deadlock-free.
//!
//! Shard locks recover from poisoning like the generation's interior lock
//! does (see [`crate::generation`], "Lock discipline").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

use hope::stats;
use hope::{CodecStats, Value};

use crate::error::StoreError;
use crate::generation::{Entry, Generation, MergeSource};
use crate::serving::FaultPlan;
use crate::telemetry::{Counter, Event, EventKind, ProbeSpans, Telemetry};
use crate::{StoreConfig, SwapReport};

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard's slice of the store-wide telemetry hub: the shared hub (for
/// the event ring), the shard id stamped on every event, and the shard's
/// pre-registered rebuild counters (`store.shard.{i}.rebuilds` /
/// `.rebuild_errors`).
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    hub: Arc<Telemetry>,
    shard: u32,
    rebuilds: Counter,
    rebuild_errors: Counter,
}

impl ShardTelemetry {
    pub(crate) fn new(hub: Arc<Telemetry>, shard: u32) -> Self {
        let reg = hub.registry();
        let rebuilds = reg.counter(&format!("store.shard.{shard}.rebuilds"));
        let rebuild_errors = reg.counter(&format!("store.shard.{shard}.rebuild_errors"));
        ShardTelemetry { hub, shard, rebuilds, rebuild_errors }
    }

    /// Event template stamped with this shard's id.
    fn event(&self, kind: EventKind) -> Event {
        Event { kind, shard: self.shard, ..Event::default() }
    }
}

/// The maintenance-path fault hook: an optionally installed [`FaultPlan`]
/// plus the per-shard rebuild-attempt counter its decisions key on. The
/// counter only advances while a plan is installed, so an injection
/// window's attempt numbering is deterministic regardless of what the
/// store did before it.
#[derive(Debug)]
pub(crate) struct ShardFaults {
    plan: Mutex<Option<FaultPlan>>,
    attempts: AtomicU64,
}

impl ShardFaults {
    fn new() -> Self {
        ShardFaults { plan: Mutex::new(None), attempts: AtomicU64::new(0) }
    }

    /// The injection decision for one rebuild attempt (`None` = proceed).
    fn check(&self, shard: usize) -> Option<StoreError> {
        let plan = (*lock(&self.plan))?;
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        plan.rebuild_fails(shard as u32, attempt)
            .then_some(StoreError::FaultInjected { shard, attempt })
    }
}

/// Uniform reservoir sample (algorithm R) over the keys inserted since the
/// current generation was installed; reset at every swap so the sample
/// tracks the *current* traffic mix rather than the whole shard lifetime.
#[derive(Debug)]
pub(crate) struct Reservoir {
    keys: Vec<Vec<u8>>,
    cap: usize,
    seen: u64,
    state: u64,
}

impl Reservoir {
    pub(crate) fn new(cap: usize, seed: u64) -> Self {
        Reservoir { keys: Vec::new(), cap: cap.max(1), seen: 0, state: seed | 1 }
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64; good enough for sampling decisions.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn offer(&mut self, key: &[u8]) {
        self.seen += 1;
        if self.keys.len() < self.cap {
            self.keys.push(key.to_vec());
        } else {
            let j = self.next_rand() % self.seen;
            if (j as usize) < self.cap {
                self.keys[j as usize] = key.to_vec();
            }
        }
    }

    fn reset(&mut self) {
        self.keys.clear();
        self.seen = 0;
    }
}

/// One partition of the store's key space.
#[derive(Debug)]
pub(crate) struct Shard<V: Value = u64> {
    /// The epoch slot: the current generation, swapped atomically.
    gen: RwLock<Arc<Generation<V>>>,
    /// Serializes writers against each other and against the swap splice.
    writer: Mutex<()>,
    /// Serializes whole rebuilds: two overlapping rebuilds could otherwise
    /// both snapshot the same generation and the later flip would drop the
    /// earlier one's replayed writes.
    rebuilding: Mutex<()>,
    /// Source bytes encoded by inserts since the current generation.
    obs_src: AtomicU64,
    /// Padded encoded bytes produced by those inserts.
    obs_enc: AtomicU64,
    /// Traffic sample feeding the next dictionary rebuild.
    reservoir: Mutex<Reservoir>,
    /// Telemetry slice: rebuild counters and the shared event ring.
    tel: ShardTelemetry,
    /// Fault-injection hook on the rebuild path (testing/acceptance).
    faults: ShardFaults,
    /// Codec path counters accumulated from superseded generations at
    /// swap time (their `Hope` dies with the old `Arc`), so store-level
    /// codec telemetry stays monotone across swaps.
    retired: Mutex<CodecStats>,
}

impl<V: Value> Shard<V> {
    pub(crate) fn new(
        generation: Generation<V>,
        reservoir_capacity: usize,
        seed: u64,
        tel: ShardTelemetry,
    ) -> Self {
        Shard {
            gen: RwLock::new(Arc::new(generation)),
            writer: Mutex::new(()),
            rebuilding: Mutex::new(()),
            obs_src: AtomicU64::new(0),
            obs_enc: AtomicU64::new(0),
            reservoir: Mutex::new(Reservoir::new(reservoir_capacity, seed)),
            tel,
            faults: ShardFaults::new(),
            retired: Mutex::new(CodecStats::default()),
        }
    }

    /// Install (or clear) the rebuild fault-injection plan. Installing
    /// resets the attempt counter so injection cadences start from
    /// attempt 0.
    pub(crate) fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *lock(&self.faults.plan) = plan;
        self.faults.attempts.store(0, Ordering::Relaxed);
    }

    /// Clone the current generation out of the epoch slot.
    pub(crate) fn current(&self) -> Arc<Generation<V>> {
        Arc::clone(&self.gen.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Hold this shard's writer mutex. The store-wide snapshot capture
    /// takes every shard's writer lock (ascending shard order) so no
    /// insert or swap splice can interleave between its per-shard
    /// `(generation, watermark)` reads — the only code path that ever
    /// holds more than one writer lock, which keeps it deadlock-free.
    pub(crate) fn writer_lock(&self) -> MutexGuard<'_, ()> {
        lock(&self.writer)
    }

    pub(crate) fn get(&self, key: &[u8]) -> Result<Option<V>, StoreError> {
        self.current().get(key)
    }

    pub(crate) fn get_with<R>(
        &self,
        key: &[u8],
        f: impl FnOnce(&V) -> R,
    ) -> Result<Option<R>, StoreError> {
        self.current().get_with(key, f)
    }

    pub(crate) fn insert(&self, key: &[u8], value: V) -> Result<Option<V>, StoreError> {
        let _w = lock(&self.writer);
        let generation = self.current();
        let (old, footprint) = generation.insert(key, value)?;
        self.obs_src.fetch_add(footprint.src_bytes, Ordering::Relaxed);
        self.obs_enc.fetch_add(footprint.enc_bytes, Ordering::Relaxed);
        lock(&self.reservoir).offer(key);
        Ok(old)
    }

    /// [`Shard::get`] with per-stage span timing (sampled tracing path).
    pub(crate) fn get_traced(&self, key: &[u8]) -> Result<(Option<V>, ProbeSpans), StoreError> {
        self.current().get_spanned(key)
    }

    /// [`Shard::insert`] with per-stage span timing (sampled tracing
    /// path); drift accounting is identical to the untraced insert.
    pub(crate) fn insert_traced(
        &self,
        key: &[u8],
        value: V,
    ) -> Result<(Option<V>, ProbeSpans), StoreError> {
        let _w = lock(&self.writer);
        let generation = self.current();
        let (old, footprint, spans) = generation.insert_spanned(key, value)?;
        self.obs_src.fetch_add(footprint.src_bytes, Ordering::Relaxed);
        self.obs_enc.fetch_add(footprint.enc_bytes, Ordering::Relaxed);
        lock(&self.reservoir).offer(key);
        Ok((old, spans))
    }

    /// Codec path counters: the live generation's compressor plus
    /// everything accumulated from superseded generations at swap time.
    /// (Readers still draining on a superseded generation after the flip
    /// may contribute a handful of uncounted probes — the totals are
    /// observability, not accounting.)
    pub(crate) fn codec_stats(&self) -> CodecStats {
        let retired = *lock(&self.retired);
        let live = self.current().hope().codec_stats();
        CodecStats {
            fast_encode_keys: retired.fast_encode_keys + live.fast_encode_keys,
            generic_encode_keys: retired.generic_encode_keys + live.generic_encode_keys,
            automaton_fallback_takes: retired.automaton_fallback_takes
                + live.automaton_fallback_takes,
            fast_decode_keys: retired.fast_decode_keys + live.fast_decode_keys,
            walk_decode_keys: retired.walk_decode_keys + live.walk_decode_keys,
        }
    }

    /// CPR observed on the insert traffic of the current generation, or
    /// `None` until any insert has been encoded.
    pub(crate) fn observed_cpr(&self) -> Option<f64> {
        let enc = self.obs_enc.load(Ordering::Relaxed);
        let src = self.obs_src.load(Ordering::Relaxed);
        (enc > 0).then(|| src as f64 / enc as f64)
    }

    /// Observed source bytes since the current generation.
    pub(crate) fn observed_src_bytes(&self) -> u64 {
        self.obs_src.load(Ordering::Relaxed)
    }

    /// True when the shard should retrain: either the observed CPR has
    /// degraded past the configured fraction of the generation's
    /// build-time baseline (after enough traffic to judge), or the
    /// append-only write log has accumulated enough dead entries that a
    /// compacting rebuild pays for itself even with a stable distribution.
    pub(crate) fn needs_rebuild(&self, cfg: &StoreConfig) -> bool {
        let generation = self.current();
        let (live, log) = generation.occupancy();
        if log > live.saturating_mul(4) + 4096 {
            return true; // update-heavy stable traffic: compact the log
        }
        if self.observed_src_bytes() < cfg.min_observed_bytes {
            return false;
        }
        match self.observed_cpr() {
            Some(cpr) => cpr < cfg.degrade_ratio * generation.baseline_cpr(),
            None => false,
        }
    }

    /// Drift-triggered rebuild: re-checks the trigger under the rebuild
    /// lock (a concurrent maintenance pass may have just swapped this
    /// shard, resetting its statistics and reservoir, in which case a
    /// second back-to-back rebuild would only churn the epoch) and
    /// returns `Ok(None)` when the rebuild was skipped for that reason.
    pub(crate) fn maybe_rebuild(
        &self,
        shard_id: usize,
        cfg: &StoreConfig,
        epoch_counter: &AtomicU64,
    ) -> Result<Option<SwapReport>, StoreError> {
        let guard = lock(&self.rebuilding);
        if !self.needs_rebuild(cfg) {
            return Ok(None);
        }
        self.rebuild_locked(shard_id, cfg, epoch_counter, guard).map(Some)
    }

    /// Unconditional rebuild (testing/operations): always swaps.
    pub(crate) fn rebuild_forced(
        &self,
        shard_id: usize,
        cfg: &StoreConfig,
        epoch_counter: &AtomicU64,
    ) -> Result<SwapReport, StoreError> {
        let guard = lock(&self.rebuilding);
        self.rebuild_locked(shard_id, cfg, epoch_counter, guard)
    }

    /// Build a new generation from the reservoir sample and hot-swap it
    /// into the epoch slot. Readers keep serving the old generation until
    /// the flip and never block. Writers are paused twice: during the
    /// snapshot clone (it holds the generation's data read lock) and
    /// during the replay+flip splice; the expensive dictionary build and
    /// re-encode in between run with no locks held.
    fn rebuild_locked(
        &self,
        shard_id: usize,
        cfg: &StoreConfig,
        epoch_counter: &AtomicU64,
        _rebuild_guard: MutexGuard<'_, ()>,
    ) -> Result<SwapReport, StoreError> {
        let started = Instant::now();
        let prev_epoch = self.current().epoch();
        // epoch == prev_epoch by contract: nothing installed yet.
        self.tel.hub.events().record(Event {
            prev_epoch,
            epoch: prev_epoch,
            ..self.tel.event(EventKind::SwapBegin)
        });
        match self.rebuild_inner(shard_id, cfg, epoch_counter) {
            Ok((report, dict_bytes)) => {
                self.tel.rebuilds.inc();
                self.tel.hub.events().record(Event {
                    prev_epoch: report.old_epoch,
                    epoch: report.new_epoch,
                    keys: report.live_keys as u64,
                    replayed: report.replayed as u64,
                    bytes: dict_bytes as u64,
                    duration_ns: started.elapsed().as_nanos() as u64,
                    ..self.tel.event(EventKind::SwapEnd)
                });
                // Path attribution: which rebuild strategy ran, and the
                // byte split it achieved (repurposed fields documented on
                // the event kinds).
                let kind = if report.incremental {
                    EventKind::RebuildIncremental
                } else {
                    EventKind::RebuildFull
                };
                self.tel.hub.events().record(Event {
                    prev_epoch: report.old_epoch,
                    epoch: report.new_epoch,
                    keys: report.live_keys as u64,
                    replayed: report.reused_bytes,
                    bytes: report.reencoded_bytes,
                    duration_ns: started.elapsed().as_nanos() as u64,
                    ..self.tel.event(kind)
                });
                let reg = self.tel.hub.registry();
                reg.counter("store.rebuild.reused_bytes").add(report.reused_bytes);
                reg.counter("store.rebuild.reencoded_bytes").add(report.reencoded_bytes);
                reg.counter(if report.incremental {
                    "store.rebuild.incremental"
                } else {
                    "store.rebuild.full"
                })
                .inc();
                Ok(report)
            }
            Err(e) => {
                self.tel.rebuild_errors.inc();
                // epoch == prev_epoch by contract: nothing new installed.
                self.tel.hub.events().record(Event {
                    prev_epoch,
                    epoch: prev_epoch,
                    duration_ns: started.elapsed().as_nanos() as u64,
                    ..self.tel.event(EventKind::RebuildFailed)
                });
                Err(e)
            }
        }
    }

    /// The rebuild itself (runs under the caller-held rebuild guard);
    /// returns the report plus the new dictionary's memory footprint for
    /// the swap-end event.
    fn rebuild_inner(
        &self,
        shard_id: usize,
        cfg: &StoreConfig,
        epoch_counter: &AtomicU64,
    ) -> Result<(SwapReport, usize), StoreError> {
        // The fault hook fires before any build work: an injected failure
        // costs nothing, mutates nothing, and flows through the same
        // error path (rebuild_errors counter + RebuildFailed event) a
        // real dictionary-build failure would.
        if let Some(e) = self.faults.check(shard_id) {
            self.tel.hub.registry().counter("store.faults.injected_rebuild_failures").inc();
            return Err(e);
        }
        let old = self.current();
        let (live, old_encs, watermark) = old.snapshot_live_encoded();

        // Sample = reservoir (recent traffic), topped up with resident
        // keys when traffic alone is too thin to train a dictionary.
        let mut sample: Vec<Vec<u8>> = lock(&self.reservoir).keys.clone();
        if sample.len() < cfg.reservoir_capacity {
            let need = cfg.reservoir_capacity - sample.len();
            let step = (live.len() / need.max(1)).max(1);
            sample.extend(live.iter().step_by(step).map(|e| e.key.to_vec()));
        }

        let hope = crate::build_hope_for(cfg, &sample)?;
        let baseline_cpr = stats::measure(&hope, &sample).cpr();
        let epoch = epoch_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let live_keys = live.len();

        // Merge-path decision: diff the old dictionary against the
        // retrained one and measure, in *bytes*, how much of the already
        // encoded data the new dictionary would reproduce verbatim. Only
        // when that fraction clears `incremental_min_reuse` is the merge
        // build worth its bookkeeping; otherwise (or when no diff is
        // possible) fall back to the full re-encode.
        let mut reuse: Vec<bool> = Vec::new();
        let mut reusable_bytes = 0u64;
        let mut live_bytes = 0u64;
        if let Some(diff) = old.hope().encoding_diff(&hope) {
            reuse.reserve(live.len());
            for (e, enc) in live.iter().zip(&old_encs) {
                let unchanged = diff.key_unchanged(&e.key);
                live_bytes += enc.len() as u64;
                if unchanged {
                    reusable_bytes += enc.len() as u64;
                }
                reuse.push(unchanged);
            }
        }
        let incremental = live_bytes > 0
            && reusable_bytes as f64 >= cfg.incremental_min_reuse * live_bytes as f64;

        let (next, merge_stats) = if incremental {
            let (g, stats) = Generation::build_merged(
                epoch,
                hope,
                baseline_cpr,
                cfg.backend.new_index(),
                MergeSource { pairs: live, old_encs, reuse },
                cfg.batch_block,
            );
            (g, Some(stats))
        } else {
            let g = Generation::build(
                epoch,
                hope,
                baseline_cpr,
                cfg.backend.new_index(),
                live,
                cfg.batch_block,
            );
            (g, None)
        };
        let next = next.with_context(shard_id, cfg.write_log_capacity);
        let (reused_bytes, reencoded_bytes) = match merge_stats {
            Some(s) => (s.reused_bytes, s.reencoded_bytes),
            None => (0, next.encoded_live_bytes()),
        };

        // Splice: block writers, replay their log tail, flip the epoch.
        // Replay inserts re-encode keys that already passed validation at
        // their original insert, so a failure here (which would abort the
        // swap and keep the old generation serving) cannot happen in
        // practice; `?` still propagates it honestly if it ever does.
        let _w = lock(&self.writer);
        let delta = old.entries_since(watermark);
        let replayed = delta.len();
        for Entry { key, value, .. } in delta {
            next.insert(&key, value)?;
        }
        let report = SwapReport {
            shard: shard_id,
            old_epoch: old.epoch(),
            new_epoch: epoch,
            observed_cpr: self.observed_cpr(),
            old_baseline_cpr: old.baseline_cpr(),
            new_baseline_cpr: baseline_cpr,
            live_keys,
            replayed,
            incremental,
            reused_bytes,
            reencoded_bytes,
        };
        let dict_bytes = next.hope().dict_memory_bytes();
        // The old generation's codec counters die with its `Arc`; fold
        // them into the retired total before the flip retires it.
        let old_codec = old.hope().codec_stats();
        {
            let mut retired = lock(&self.retired);
            retired.fast_encode_keys += old_codec.fast_encode_keys;
            retired.generic_encode_keys += old_codec.generic_encode_keys;
            retired.automaton_fallback_takes += old_codec.automaton_fallback_takes;
            retired.fast_decode_keys += old_codec.fast_decode_keys;
            retired.walk_decode_keys += old_codec.walk_decode_keys;
        }
        *self.gen.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
        self.obs_src.store(0, Ordering::Relaxed);
        self.obs_enc.store(0, Ordering::Relaxed);
        lock(&self.reservoir).reset();
        Ok((report, dict_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_bounded_and_uniformish() {
        let mut r = Reservoir::new(64, 1);
        for i in 0..10_000u32 {
            r.offer(format!("key{i:05}").as_bytes());
        }
        assert_eq!(r.keys.len(), 64);
        assert_eq!(r.seen, 10_000);
        // Late keys must be able to displace early ones.
        let late = r.keys.iter().filter(|k| k.as_slice() >= b"key05000".as_slice()).count();
        assert!(late > 10, "late keys under-represented: {late}/64");
        r.reset();
        assert!(r.keys.is_empty());
    }
}
