//! # First-class telemetry: metrics registry, event log, request tracing
//!
//! Everything the store and serving stack measure flows through this
//! module, in three layers:
//!
//! * **[`MetricsRegistry`]** — named [`Counter`] / [`Gauge`] / [`Histo`]
//!   handles under hierarchical dot names (`store.shard.3.rebuilds`,
//!   `serving.worker.0.queue_depth_peak`). Handles are cheap `Arc`-backed
//!   clones; the hot-path ops (`inc`, `add`, `set`) are `#[inline]`
//!   relaxed atomics, so instrumented code pays one uncontended atomic
//!   per observation and never a lock or a map lookup.
//! * **[`EventLog`]** — a fixed-capacity lock-free ring of dictionary
//!   lifecycle [`Event`]s (swap begin/end, rebuild failures) that
//!   readers snapshot without tearing (see [`EventLog`] docs).
//! * **[`TraceSampler`] / [`ProbeSpans`]** — deterministic 1-in-N request
//!   tracing with per-stage spans (queue-wait, encode, probe, decode),
//!   recorded into registry histograms by the serving workers.
//!
//! [`Telemetry`] bundles the first two; every
//! [`HopeStore`](crate::HopeStore) owns one and exposes point-in-time
//! [`TelemetrySnapshot`]s via
//! [`HopeStore::telemetry`](crate::HopeStore::telemetry) — exportable as
//! hand-rolled JSON (the `BENCH_*.json` convention; this workspace is
//! serde-free) or Prometheus text.
//!
//! ```
//! use hope_store::telemetry::Telemetry;
//!
//! let tel = Telemetry::new(64);
//! tel.registry().counter("demo.requests").add(3);
//! tel.registry().gauge("demo.backlog").set(17);
//! tel.registry().histo("demo.latency").record(1_500);
//!
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("demo.requests"), Some(3));
//! assert_eq!(snap.gauge("demo.backlog"), Some(17));
//! assert!(snap.to_json().contains("\"demo.requests\": 3"));
//! assert!(snap.to_prometheus().contains("demo_requests 3"));
//! ```

mod event;
mod hist;
mod trace;

pub use event::{Event, EventKind, EventLog};
pub use hist::LatencyHistogram;
pub use trace::{ProbeSpans, TraceSampler};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter handle.
///
/// Clones share the same underlying atomic; a handle detached from any
/// registry ([`Counter::detached`]) still counts — it is just not
/// exported — which lets instrumented components default to zero-cost
/// wiring in tests.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (counts, but is never exported).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (with a max-tracking helper for
/// peak-style gauges). Clones share the same underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not registered anywhere (records, but is never exported).
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Add 1 (live-object gauges: snapshots outstanding, cursors open).
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract 1, saturating at 0 — a stray extra `dec` must not wrap a
    /// live-object gauge to `u64::MAX`.
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared [`LatencyHistogram`] handle (mutex-guarded; meant for
/// sampled or per-batch recording, not per-request hot loops — workers
/// keep thread-local histograms and [`Histo::merge`] them at exit).
#[derive(Debug, Clone, Default)]
pub struct Histo(Arc<Mutex<LatencyHistogram>>);

impl Histo {
    /// A histogram not registered anywhere.
    pub fn detached() -> Histo {
        Histo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyHistogram> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.lock().record(ns);
    }

    /// Fold a locally accumulated histogram in (one lock per merge).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.lock().merge(other);
    }

    /// Copy the current distribution out.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.lock().clone()
    }
}

/// What [`MetricsRegistry::collect`] hands to the snapshot: sorted
/// `(name, value)` lists for counters and gauges plus summarized
/// histograms.
type CollectedMetrics = (Vec<(String, u64)>, Vec<(String, u64)>, Vec<(String, HistogramSummary)>);

#[derive(Debug, Clone)]
enum MetricSlot {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

/// The name → handle table: get-or-create typed handles under
/// hierarchical dot names.
///
/// Registration takes a lock; the returned handles do not (hold on to
/// them — don't re-register per operation on a hot path). Registering a
/// name that already exists under a **different** kind returns a
/// detached handle instead of panicking: telemetry must never take the
/// serving path down, and hierarchical names make such collisions a
/// programming error that the missing export surfaces quickly.
///
/// ```
/// use hope_store::telemetry::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let ops = reg.counter("store.shard.0.rebuilds");
/// ops.inc();
/// ops.add(2);
/// // Same name → same underlying counter.
/// assert_eq!(reg.counter("store.shard.0.rebuilds").get(), 3);
/// // Kind mismatch → detached handle, not a panic.
/// reg.gauge("store.shard.0.rebuilds").set(99);
/// assert_eq!(reg.counter("store.shard.0.rebuilds").get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, MetricSlot>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn slots(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, MetricSlot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| MetricSlot::Counter(Counter::default()))
        {
            MetricSlot::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots();
        match slots.entry(name.to_string()).or_insert_with(|| MetricSlot::Gauge(Gauge::default())) {
            MetricSlot::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// Get or create the histogram registered under `name`.
    pub fn histo(&self, name: &str) -> Histo {
        let mut slots = self.slots();
        match slots.entry(name.to_string()).or_insert_with(|| MetricSlot::Histo(Histo::default())) {
            MetricSlot::Histo(h) => h.clone(),
            _ => Histo::detached(),
        }
    }

    /// Copy every registered metric out, sorted by name.
    fn collect(&self) -> CollectedMetrics {
        let slots = self.slots();
        let (mut counters, mut gauges, mut histos) = (Vec::new(), Vec::new(), Vec::new());
        for (name, slot) in slots.iter() {
            match slot {
                MetricSlot::Counter(c) => counters.push((name.clone(), c.get())),
                MetricSlot::Gauge(g) => gauges.push((name.clone(), g.get())),
                MetricSlot::Histo(h) => {
                    histos.push((name.clone(), HistogramSummary::from(&h.snapshot())))
                }
            }
        }
        (counters, gauges, histos)
    }
}

/// The store-wide telemetry hub: one [`MetricsRegistry`] plus one
/// [`EventLog`]. Every [`HopeStore`](crate::HopeStore) owns one behind an
/// `Arc`; the serving [`Server`](crate::serving::Server) records into the
/// same hub through the store handle.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: EventLog,
}

impl Telemetry {
    /// New hub whose event ring holds `event_capacity` events (min 1).
    pub fn new(event_capacity: usize) -> Telemetry {
        Telemetry { registry: MetricsRegistry::new(), events: EventLog::new(event_capacity) }
    }

    /// The metric name table.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The lifecycle event ring.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Point-in-time copy of every metric and resident event.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (counters, gauges, histograms) = self.registry.collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            events: self.events.snapshot(),
            dropped_events: self.events.dropped(),
        }
    }
}

/// Five-point summary of one histogram in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample (ns).
    pub mean_ns: f64,
    /// Median (ns, bucket floor).
    pub p50_ns: u64,
    /// 99th percentile (ns, bucket floor).
    pub p99_ns: u64,
    /// 99.9th percentile (ns, bucket floor).
    pub p999_ns: u64,
    /// Largest sample (exact, ns).
    pub max_ns: u64,
    /// Saturating sum of all samples (ns) — the Prometheus `_sum` series.
    pub sum_ns: u64,
}

impl From<&LatencyHistogram> for HistogramSummary {
    fn from(h: &LatencyHistogram) -> HistogramSummary {
        let (p50_ns, p99_ns, p999_ns) = h.slo_points();
        HistogramSummary {
            count: h.count(),
            mean_ns: h.mean_ns(),
            p50_ns,
            p99_ns,
            p999_ns,
            max_ns: h.max_ns(),
            sum_ns: h.sum_ns(),
        }
    }
}

/// A point-in-time copy of everything a [`Telemetry`] hub knows: metric
/// values sorted by name, histogram summaries, and the resident tail of
/// the event ring. Plain data — safe to hold, print, or ship across
/// threads; see [`TelemetrySnapshot::to_json`] and
/// [`TelemetrySnapshot::to_prometheus`] for the export formats.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Resident lifecycle events, oldest first (ascending `seq`).
    pub events: Vec<Event>,
    /// Events lost to ring-capacity overflow before this snapshot.
    pub dropped_events: u64,
}

/// Append `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped — names are normally `[a-z0-9._]` but the registry
/// accepts anything).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Sanitize a dot name into a Prometheus metric name (`[a-zA-Z0-9_]`,
/// non-conforming bytes become `_`).
fn prom_name(name: &str) -> String {
    let mut s: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

impl TelemetrySnapshot {
    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Summary of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Events of one kind, in `seq` order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Serialize as pretty-printed JSON (hand-rolled — the workspace is
    /// serde-free by design, matching the `BENCH_*.json` convention).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut s, name);
            s.push_str(&format!(": {v}"));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut s, name);
            s.push_str(&format!(": {v}"));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_str(&mut s, name);
            s.push_str(&format!(
                ": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \
                 \"p999_ns\": {}, \"max_ns\": {}}}",
                h.count, h.mean_ns, h.p50_ns, h.p99_ns, h.p999_ns, h.max_ns
            ));
        }
        s.push_str("\n  },\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            s.push_str(if i == 0 { "\n    " } else { ",\n    " });
            s.push_str(&format!(
                "{{\"seq\": {}, \"kind\": \"{}\", \"shard\": {}, \"prev_epoch\": {}, \
                 \"epoch\": {}, \"keys\": {}, \"replayed\": {}, \"bytes\": {}, \
                 \"duration_ns\": {}}}",
                e.seq,
                e.kind.name(),
                e.shard,
                e.prev_epoch,
                e.epoch,
                e.keys,
                e.replayed,
                e.bytes,
                e.duration_ns
            ));
        }
        s.push_str(&format!("\n  ],\n  \"dropped_events\": {}\n}}\n", self.dropped_events));
        s
    }

    /// Serialize in the Prometheus text exposition format: counters and
    /// gauges as-is, histograms as summaries (`{quantile=...}` series
    /// plus `_count` / `_sum`), dot names sanitized to underscores.
    /// Events are not metrics and are not exported here (use
    /// [`TelemetrySnapshot::to_json`]); the drop counter is.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            s.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            s.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            s.push_str(&format!("# TYPE {n} summary\n"));
            s.push_str(&format!("{n}{{quantile=\"0.5\"}} {}\n", h.p50_ns));
            s.push_str(&format!("{n}{{quantile=\"0.99\"}} {}\n", h.p99_ns));
            s.push_str(&format!("{n}{{quantile=\"0.999\"}} {}\n", h.p999_ns));
            s.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum_ns, h.count));
        }
        s.push_str(&format!(
            "# TYPE telemetry_events_dropped counter\ntelemetry_events_dropped {}\n",
            self.dropped_events
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_share_state_and_kinds_collide_safely() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.ops");
        let b = reg.counter("x.ops");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x.ops").get(), 5);
        let g = reg.gauge("x.depth");
        g.set(3);
        g.record_max(9);
        g.record_max(2);
        assert_eq!(g.get(), 9);
        g.inc();
        assert_eq!(g.get(), 10);
        g.set(1);
        g.dec();
        g.dec(); // saturates at zero, never wraps
        assert_eq!(g.get(), 0);
        let h = reg.histo("x.lat");
        h.record(100);
        assert_eq!(h.snapshot().count(), 1);
        // Kind mismatch: detached, never a panic, original untouched.
        reg.histo("x.ops").record(123);
        assert_eq!(reg.counter("x.ops").get(), 5);
    }

    #[test]
    fn snapshot_sorts_names_and_looks_itself_up() {
        let tel = Telemetry::new(4);
        tel.registry().counter("b.second").add(2);
        tel.registry().counter("a.first").add(1);
        tel.registry().gauge("c.third").set(3);
        let mut local = LatencyHistogram::new();
        local.record(1_000);
        local.record(2_000);
        tel.registry().histo("d.lat").merge(&local);
        tel.events().record(Event { kind: EventKind::SwapEnd, epoch: 2, ..Event::default() });

        let snap = tel.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
        assert_eq!(snap.counter("a.first"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("c.third"), Some(3));
        let h = snap.histogram("d.lat").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.mean_ns > 1_000.0);
        assert_eq!(snap.events_of(EventKind::SwapEnd).count(), 1);
        assert_eq!(snap.events_of(EventKind::SwapBegin).count(), 0);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn json_and_prometheus_exports_carry_every_section() {
        let tel = Telemetry::new(4);
        tel.registry().counter("store.ops").add(7);
        tel.registry().gauge("store.shard.0.epoch").set(3);
        tel.registry().histo("serving.trace.encode").record(500);
        tel.events().record(Event {
            kind: EventKind::SwapEnd,
            shard: 1,
            prev_epoch: 3,
            epoch: 5,
            keys: 10,
            ..Event::default()
        });
        let snap = tel.snapshot();

        let json = snap.to_json();
        assert!(json.contains("\"store.ops\": 7"), "{json}");
        assert!(json.contains("\"store.shard.0.epoch\": 3"));
        assert!(json.contains("\"kind\": \"swap_end\""));
        assert!(json.contains("\"dropped_events\": 0"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("store_ops 7"), "{prom}");
        assert!(prom.contains("# TYPE store_ops counter"));
        assert!(prom.contains("store_shard_0_epoch 3"));
        assert!(prom.contains("serving_trace_encode{quantile=\"0.5\"} "));
        assert!(prom.contains("serving_trace_encode_count 1"));
        assert!(prom.contains("telemetry_events_dropped 0"));
    }

    #[test]
    fn json_escapes_hostile_names() {
        let tel = Telemetry::new(1);
        tel.registry().counter("we\"ird\\name\n").inc();
        let json = tel.snapshot().to_json();
        assert!(json.contains("we\\\"ird\\\\name\\u000a"), "{json}");
    }
}
