//! The swap/rebuild event ring: a fixed-capacity, lock-free log of
//! lifecycle [`Event`]s that any number of writers record into and any
//! number of readers snapshot — without ever tearing an event.
//!
//! ## Protocol (safe code only — no `unsafe`)
//!
//! Each event packs into [`EVENT_WORDS`] `u64` words stored in a slot of
//! per-word atomics guarded by a per-slot **sequence** atomic (a seqlock):
//!
//! * A writer takes a global ticket `t` (`head.fetch_add`), claims slot
//!   `t % capacity` by CAS-ing its sequence from the previous occupant's
//!   *published* value to the *writing* value `2t + 1` (this serializes
//!   lapped writers on the same slot), stores the payload words, then
//!   publishes with `2t + 2`.
//! * A reader loads the sequence, the words, and the sequence again; the
//!   event is accepted only when both loads saw the same *published*
//!   value — a concurrent rewrite flips the sequence and the reader skips
//!   that slot instead of returning a torn event.
//!
//! All slot accesses use `SeqCst`: events are recorded at swap/rebuild
//! frequency (not per request), so the protocol is tuned for
//! obviousness, not nanoseconds.
//!
//! Capacity overflow drops the **oldest** events first — slot `t % cap`
//! is, by construction, always overwritten by the lap-`t` writer — and
//! the count of dropped events is exact: `head - capacity`, clamped at 0
//! ([`EventLog::dropped`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// `u64` payload words one packed event occupies in a ring slot.
const EVENT_WORDS: usize = 7;

/// What kind of lifecycle moment an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A generation was built and installed at store construction.
    GenerationBuilt,
    /// A dictionary rebuild started (snapshot taken, build beginning).
    SwapBegin,
    /// A rebuilt generation was spliced in; `epoch` is now serving.
    SwapEnd,
    /// A rebuild failed; the shard keeps serving `prev_epoch`.
    RebuildFailed,
    /// The admission controller raised a worker's shed level. The packed
    /// fields are repurposed: `shard` = worker, `prev_epoch`/`epoch` =
    /// from/to shed percent, `keys` = the sealed window, `bytes` = the
    /// window's p99 ratio ×1000.
    AdmissionEngage,
    /// The admission controller lowered a worker's shed level (same
    /// field repurposing as [`EventKind::AdmissionEngage`]).
    AdmissionRelease,
    /// A rebuild took the incremental merge path: already-encoded runs
    /// were reused and only keys whose codes changed were re-encoded.
    /// Emitted alongside the shard's [`EventKind::SwapEnd`] with fields
    /// repurposed: `replayed` = encoded bytes reused verbatim, `bytes` =
    /// bytes re-encoded.
    RebuildIncremental,
    /// A rebuild took the full re-encode path (the diff found too little
    /// reuse, or no diff was possible). Same field repurposing as
    /// [`EventKind::RebuildIncremental`]: `replayed` = 0, `bytes` =
    /// bytes re-encoded.
    RebuildFull,
    /// A store-wide snapshot was taken. Fields repurposed: `keys` = the
    /// shard count pinned, `prev_epoch`/`epoch` = the minimum/maximum
    /// pinned generation epoch.
    SnapshotCreated,
    /// A [`Snapshot`](crate::versioned::Snapshot) handle was dropped,
    /// releasing its generation pins (same field repurposing as
    /// [`EventKind::SnapshotCreated`]).
    SnapshotDropped,
}

impl EventKind {
    fn to_code(self) -> u64 {
        match self {
            EventKind::GenerationBuilt => 0,
            EventKind::SwapBegin => 1,
            EventKind::SwapEnd => 2,
            EventKind::RebuildFailed => 3,
            EventKind::AdmissionEngage => 4,
            EventKind::AdmissionRelease => 5,
            EventKind::RebuildIncremental => 6,
            EventKind::RebuildFull => 7,
            EventKind::SnapshotCreated => 8,
            EventKind::SnapshotDropped => 9,
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        match code {
            0 => Some(EventKind::GenerationBuilt),
            1 => Some(EventKind::SwapBegin),
            2 => Some(EventKind::SwapEnd),
            3 => Some(EventKind::RebuildFailed),
            4 => Some(EventKind::AdmissionEngage),
            5 => Some(EventKind::AdmissionRelease),
            6 => Some(EventKind::RebuildIncremental),
            7 => Some(EventKind::RebuildFull),
            8 => Some(EventKind::SnapshotCreated),
            9 => Some(EventKind::SnapshotDropped),
            _ => None,
        }
    }

    /// Stable lowercase name (JSON/Prometheus exports).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GenerationBuilt => "generation_built",
            EventKind::SwapBegin => "swap_begin",
            EventKind::SwapEnd => "swap_end",
            EventKind::RebuildFailed => "rebuild_failed",
            EventKind::AdmissionEngage => "admission_engage",
            EventKind::AdmissionRelease => "admission_release",
            EventKind::RebuildIncremental => "rebuild_incremental",
            EventKind::RebuildFull => "rebuild_full",
            EventKind::SnapshotCreated => "snapshot_created",
            EventKind::SnapshotDropped => "snapshot_dropped",
        }
    }
}

/// One lifecycle event of a shard's dictionary (see [`EventKind`]).
///
/// `seq` is assigned by [`EventLog::record`] (the global ticket) and is
/// strictly increasing across the whole store — snapshot order is the
/// order things happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global record order (assigned by the log; input value is ignored).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Shard the event belongs to.
    pub shard: u32,
    /// Epoch serving *before* the event (for `SwapEnd`: the superseded
    /// generation).
    pub prev_epoch: u64,
    /// Epoch the event installed or refers to (for `SwapBegin` /
    /// `RebuildFailed` this equals `prev_epoch`: nothing new installed).
    pub epoch: u64,
    /// Live keys involved (built or re-encoded).
    pub keys: u64,
    /// Write-log entries replayed during the splice (`SwapEnd` only).
    pub replayed: u64,
    /// Dictionary memory of the (new) generation in bytes.
    pub bytes: u64,
    /// Wall-clock duration of the whole rebuild (`SwapEnd` only), ns.
    pub duration_ns: u64,
}

impl Default for Event {
    fn default() -> Self {
        Event {
            seq: 0,
            kind: EventKind::GenerationBuilt,
            shard: 0,
            prev_epoch: 0,
            epoch: 0,
            keys: 0,
            replayed: 0,
            bytes: 0,
            duration_ns: 0,
        }
    }
}

impl Event {
    fn pack(&self) -> [u64; EVENT_WORDS] {
        [
            self.kind.to_code() | (u64::from(self.shard) << 32),
            self.prev_epoch,
            self.epoch,
            self.keys,
            self.replayed,
            self.bytes,
            self.duration_ns,
        ]
    }

    fn unpack(seq: u64, w: [u64; EVENT_WORDS]) -> Option<Event> {
        Some(Event {
            seq,
            kind: EventKind::from_code(w[0] & 0xFFFF_FFFF)?,
            shard: (w[0] >> 32) as u32,
            prev_epoch: w[1],
            epoch: w[2],
            keys: w[3],
            replayed: w[4],
            bytes: w[5],
            duration_ns: w[6],
        })
    }
}

#[derive(Debug)]
struct Slot {
    /// `0` = never written; `2t + 1` = ticket `t` writing; `2t + 2` =
    /// ticket `t` published.
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { seq: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A fixed-capacity, lock-free ring of lifecycle [`Event`]s (module docs
/// describe the seqlock protocol).
///
/// ```
/// use hope_store::telemetry::{Event, EventKind, EventLog};
///
/// let log = EventLog::new(2);
/// for epoch in 1..=3u64 {
///     log.record(Event { kind: EventKind::SwapEnd, epoch, ..Event::default() });
/// }
/// let events = log.snapshot();
/// assert_eq!(events.len(), 2); // capacity 2: the oldest was dropped
/// assert_eq!(log.dropped(), 1);
/// assert_eq!((events[0].epoch, events[1].epoch), (2, 3));
/// assert!(events[0].seq < events[1].seq);
/// ```
#[derive(Debug)]
pub struct EventLog {
    /// Tickets issued == events ever recorded.
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl EventLog {
    /// New ring holding the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventLog {
        let capacity = capacity.max(1);
        EventLog { head: AtomicU64::new(0), slots: (0..capacity).map(|_| Slot::new()).collect() }
    }

    /// Events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Events lost to capacity overflow, oldest-first — exact by
    /// construction: `recorded() - capacity()`, clamped at zero.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Record one event; returns the global sequence number it got.
    /// Lock-free: writers serialize per slot only when the ring has
    /// lapped, and never against readers.
    pub fn record(&self, ev: Event) -> u64 {
        let cap = self.slots.len() as u64;
        let t = self.head.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(t % cap) as usize];
        // Claim the slot from its previous occupant (ticket `t - cap`,
        // or the pristine 0 on the first lap). Lapped writers on the
        // same slot publish in ticket order because each waits for its
        // predecessor's published value.
        let prev = if t >= cap { 2 * (t - cap) + 2 } else { 0 };
        while slot
            .seq
            .compare_exchange(prev, 2 * t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            std::hint::spin_loop();
        }
        for (w, v) in slot.words.iter().zip(ev.pack()) {
            w.store(v, Ordering::SeqCst);
        }
        slot.seq.store(2 * t + 2, Ordering::SeqCst);
        t
    }

    /// Copy out the resident events, oldest first (ascending `seq`).
    ///
    /// Wait-free for the caller: slots mid-rewrite by a concurrent
    /// writer are skipped (their *previous* occupant is gone, their next
    /// value not yet published), never returned torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out);
        out
    }

    /// [`EventLog::snapshot`] into a caller-owned buffer (cleared first).
    pub fn snapshot_into(&self, out: &mut Vec<Event>) {
        out.clear();
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::SeqCst);
        for t in head.saturating_sub(cap)..head {
            let slot = &self.slots[(t % cap) as usize];
            let published = 2 * t + 2;
            if slot.seq.load(Ordering::SeqCst) != published {
                continue; // not yet published, or already lapped
            }
            let words = std::array::from_fn(|i| slot.words[i].load(Ordering::SeqCst));
            if slot.seq.load(Ordering::SeqCst) != published {
                continue; // rewritten while we read: skip, don't tear
            }
            if let Some(ev) = Event::unpack(t, words) {
                out.push(ev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swap_end(shard: u32, epoch: u64) -> Event {
        Event {
            kind: EventKind::SwapEnd,
            shard,
            prev_epoch: epoch - 1,
            epoch,
            keys: 10 * epoch,
            replayed: epoch,
            bytes: 100 * epoch,
            duration_ns: 7,
            ..Event::default()
        }
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let log = EventLog::new(8);
        assert_eq!(log.record(swap_end(3, 5)), 0);
        assert_eq!(log.record(swap_end(1, 6)), 1);
        let evs = log.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].shard, 3);
        assert_eq!(evs[0].kind, EventKind::SwapEnd);
        assert_eq!(evs[0].keys, 50);
        assert_eq!(evs[1], Event { seq: 1, ..swap_end(1, 6) });
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.recorded(), 2);
    }

    #[test]
    fn overflow_drops_oldest_first_and_counts() {
        let log = EventLog::new(4);
        for e in 1..=11u64 {
            log.record(swap_end(0, e));
        }
        assert_eq!(log.dropped(), 7);
        let evs = log.snapshot();
        assert_eq!(evs.len(), 4);
        let epochs: Vec<u64> = evs.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![8, 9, 10, 11], "the resident tail is the newest events");
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn every_kind_survives_the_pack_unpack_trip() {
        let log = EventLog::new(16);
        let kinds = [
            EventKind::GenerationBuilt,
            EventKind::SwapBegin,
            EventKind::SwapEnd,
            EventKind::RebuildFailed,
            EventKind::AdmissionEngage,
            EventKind::AdmissionRelease,
            EventKind::RebuildIncremental,
            EventKind::RebuildFull,
            EventKind::SnapshotCreated,
            EventKind::SnapshotDropped,
        ];
        for kind in kinds {
            log.record(Event { kind, shard: u32::MAX, epoch: u64::MAX, ..Event::default() });
        }
        let evs = log.snapshot();
        assert_eq!(evs.len(), kinds.len());
        for (ev, kind) in evs.iter().zip(kinds) {
            assert_eq!(ev.kind, kind);
            assert_eq!(ev.shard, u32::MAX);
            assert_eq!(ev.epoch, u64::MAX);
        }
        assert_eq!(evs[0].kind.name(), "generation_built");
        assert_eq!(evs[6].kind.name(), "rebuild_incremental");
        assert_eq!(evs[9].kind.name(), "snapshot_dropped");
    }
}
