//! The reusable log-linear latency histogram.
//!
//! [`LatencyHistogram`] is a fixed-size log-linear histogram (HdrHistogram
//! shape, no dependencies): one bucket per nanosecond below 256 ns (the
//! sub-µs probe and span region records *exactly*), then octaves of 32
//! linear sub-buckets with ≤ 3.2% relative bucket width all the way to
//! `u64::MAX` ns — plenty for p50/p99/p999 gates — in 16 KiB of counters
//! that merge with a single pass. Recording is branch-light (a
//! leading-zeros and two shifts), so the workers can stamp every request
//! without the measurement becoming the workload.
//!
//! Grew up in `serving::metrics` (which still re-exports it); promoted
//! here so every layer — serving phases, sampled request traces, user
//! code — records into the same shape through a registry
//! [`Histo`](crate::telemetry::Histo) handle.

/// Values below this many ns get one bucket each (exact recording).
const EXACT: u64 = 256;
/// log2 of [`EXACT`].
const EXACT_BITS: u32 = 8;
/// Linear sub-buckets per power-of-two octave above the exact region.
const SUB: usize = 32;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 5;
/// Octaves above the exact region: msb 8 ..= 63 covers all of `u64`.
const OCTAVES: usize = 56;
/// Total bucket count.
const BUCKETS: usize = EXACT as usize + SUB * OCTAVES;

/// A log-linear latency histogram over nanosecond values.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], total: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Bucket index of a nanosecond value.
    fn bucket(ns: u64) -> usize {
        if ns < EXACT {
            // The exact region: one bucket per nanosecond.
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let octave = (msb - EXACT_BITS) as usize;
        let sub = ((ns >> (msb - SUB_BITS)) as usize) & (SUB - 1);
        (EXACT as usize + octave * SUB + sub).min(BUCKETS - 1)
    }

    /// Lower bound (ns) of bucket `i` — what quantiles report.
    fn bucket_floor(i: usize) -> u64 {
        if i < EXACT as usize {
            return i as u64;
        }
        let r = i - EXACT as usize;
        let (octave, sub) = (r / SUB, (r % SUB) as u64);
        let base = 1u64 << (octave as u32 + EXACT_BITS);
        base + sub * (base >> SUB_BITS)
    }

    /// Record one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// holding that rank — a deterministic, conservative-by-≤3.2% figure.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        Self::bucket_floor(BUCKETS - 1)
    }

    /// `(p50, p99, p999)` in nanoseconds.
    pub fn slo_points(&self) -> (u64, u64, u64) {
        (self.quantile_ns(0.50), self.quantile_ns(0.99), self.quantile_ns(0.999))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut prev_floor = 0;
        for i in 1..BUCKETS {
            let f = LatencyHistogram::bucket_floor(i);
            assert!(f > prev_floor, "floor not monotone at {i}");
            prev_floor = f;
        }
        for ns in [0u64, 1, 31, 32, 33, 255, 256, 257, 1000, 123_456, u64::MAX / 2, u64::MAX] {
            let b = LatencyHistogram::bucket(ns);
            assert!(b < BUCKETS);
            assert!(LatencyHistogram::bucket_floor(b) <= ns, "floor above sample at {ns}");
        }
        // The exact region records sub-256ns values without rounding.
        for ns in 0..EXACT {
            assert_eq!(LatencyHistogram::bucket_floor(LatencyHistogram::bucket(ns)), ns);
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 1000 samples: 989 at ~1 µs, 10 at ~100 µs, 1 at ~10 ms. Rank
        // 990 (p99) is the first 100 µs sample; rank 999 (p999) the last;
        // rank 1000 (the max) is the 10 ms outlier.
        for _ in 0..989 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        h.record(10_000_000);
        assert_eq!(h.count(), 1000);
        let (p50, p99, p999) = h.slo_points();
        assert!((900..=1_100).contains(&p50), "p50 = {p50}");
        assert!((90_000..=110_000).contains(&p99), "p99 = {p99}");
        assert!((90_000..=110_000).contains(&p999), "p999 = {p999}");
        assert!((9_000_000..=10_500_000).contains(&h.quantile_ns(1.0)));
        assert_eq!(h.max_ns(), 10_000_000);
        assert!(h.mean_ns() > 1_000.0);
        assert!(h.sum_ns() > 989 * 1_000);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [5u64, 70, 3_000, 40_000];
        let samples_b = [9u64, 800, 800, 2_000_000];
        let (mut a, mut b, mut both) =
            (LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new());
        for &s in &samples_a {
            a.record(s);
            both.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            both.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.slo_points(), both.slo_points());
        assert_eq!(a.max_ns(), both.max_ns());
    }
}
