//! Sampled request tracing: a deterministic 1-in-N sampler plus the
//! per-stage span record the traced probe paths fill in.
//!
//! Tracing a request costs a handful of `Instant::now()` calls and one
//! histogram lock per stage; sampling keeps that off the common path.
//! The `telemetry_overhead` gate in `perf_baseline` holds the total at
//! ≤ 2% over the untraced path at the default 1-in-64 rate.

/// Deterministic 1-in-N sampler (`every == 0` disables sampling).
///
/// Counting, not random: over any window of `every` requests exactly one
/// is traced, so two runs over the same op sequence trace the same
/// requests — which keeps the deterministic `--quick` benches honest.
///
/// ```
/// use hope_store::telemetry::TraceSampler;
///
/// let mut s = TraceSampler::new(3);
/// let picks: Vec<bool> = (0..6).map(|_| s.tick()).collect();
/// assert_eq!(picks, vec![false, false, true, false, false, true]);
/// assert!(!TraceSampler::new(0).tick(), "0 disables sampling entirely");
/// ```
#[derive(Debug, Clone)]
pub struct TraceSampler {
    every: u32,
    seen: u32,
}

impl TraceSampler {
    /// Sampler tracing one request in `every` (`0` = never).
    pub fn new(every: u32) -> TraceSampler {
        TraceSampler { every, seen: 0 }
    }

    /// True when sampling is configured at all.
    pub fn is_enabled(&self) -> bool {
        self.every > 0
    }

    /// Count one request; true when this one should be traced.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.seen += 1;
        if self.seen >= self.every {
            self.seen = 0;
            true
        } else {
            false
        }
    }
}

/// Per-stage wall-clock spans of one traced request, in nanoseconds.
///
/// Stages mirror the probe pipeline: dictionary **encode** of the probe
/// key, index **probe** (descent + slot check, or the whole mutation for
/// an insert), and **decode** (a scan's pull loop; point ops never
/// decode — keys are kept in source form). Queue wait is recorded
/// separately by the serving worker (it is a property of the envelope,
/// not of the store call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeSpans {
    /// Probe-key (or scan-bound) encode time.
    pub encode_ns: u64,
    /// Index descent + slot resolution (scans: time to first hit).
    pub probe_ns: u64,
    /// Result decode / scan pull-loop time (0 for point ops).
    pub decode_ns: u64,
}

impl ProbeSpans {
    /// Sum of all stages.
    pub fn total_ns(&self) -> u64 {
        self.encode_ns.saturating_add(self.probe_ns).saturating_add(self.decode_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_periodic_and_zero_disables() {
        let mut s = TraceSampler::new(4);
        assert!(s.is_enabled());
        let picks: Vec<bool> = (0..12).map(|_| s.tick()).collect();
        assert_eq!(picks.iter().filter(|&&p| p).count(), 3);
        assert!(picks[3] && picks[7] && picks[11]);
        let mut off = TraceSampler::new(0);
        assert!(!off.is_enabled());
        assert!((0..100).all(|_| !off.tick()));
    }

    #[test]
    fn spans_total() {
        let sp = ProbeSpans { encode_ns: 10, probe_ns: 20, decode_ns: 30 };
        assert_eq!(sp.total_ns(), 60);
        assert_eq!(ProbeSpans::default().total_ns(), 0);
    }
}
