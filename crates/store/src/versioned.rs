//! [`Snapshot`]: O(1) copy-on-write point-in-time views of the store.
//!
//! [`HopeStore::snapshot`](crate::HopeStore::snapshot) freezes a
//! store-wide point in time without copying a single key. The trick is
//! that the store already keeps everything a snapshot needs:
//!
//! * each shard serves from an [`Arc<Generation>`] epoch handle — cloning
//!   the `Arc` pins the generation against reclamation, exactly as an
//!   in-flight [`RangeCursor`] does across a hot-swap;
//! * each generation's write log is **append-only** between swaps, so
//!   "the state when the log held `w` entries" is fully recoverable: an
//!   entry's slot position never changes after it is appended, and every
//!   update links to the entry it superseded
//!   (`Entry::prev`). Reads resolve a slot's
//!   head entry through that version chain until they reach an entry
//!   older than the watermark.
//!
//! A snapshot is therefore `shards × (Arc clone + usize)` — O(shard
//! count), independent of key count — and costs nothing to maintain:
//! writers keep appending to the same log, never copying, never blocking
//! on readers of any vintage. The one write the capture excludes is a
//! concurrent dictionary swap: capture holds every shard's writer mutex
//! (ascending order, the sole multi-lock path) so the per-shard
//! watermarks form a single cross-shard instant — no shard can admit a
//! write between the first and last watermark read.
//!
//! ## Lifetime
//!
//! The pins keep superseded generations alive for as long as the handle
//! lives: a shard that hot-swaps after the capture retires its old
//! generation to exactly the snapshots (and cursors) still holding it.
//! Dropping the last handle releases the memory — the
//! `store.snapshot.active` gauge and the snapshot lifecycle events
//! ([`EventKind::SnapshotCreated`] / [`EventKind::SnapshotDropped`])
//! track the population.

use std::sync::Arc;

use hope::Value;

use crate::cursor::{self, RangeCursor};
use crate::error::{validate_key, StoreError};
use crate::generation::Generation;
use crate::telemetry::{Event, EventKind, Telemetry};

/// One shard's contribution to a snapshot: the pinned generation, the
/// write-log watermark at capture, and the live-key count then.
#[derive(Debug)]
pub(crate) struct Pin<V: Value> {
    pub(crate) generation: Arc<Generation<V>>,
    pub(crate) watermark: usize,
    pub(crate) live: usize,
}

/// A point-in-time view of a whole [`HopeStore`](crate::HopeStore),
/// captured in O(shard count) by
/// [`HopeStore::snapshot`](crate::HopeStore::snapshot).
///
/// Reads ([`Snapshot::get`], [`Snapshot::range_with`],
/// [`Snapshot::cursor`]) observe exactly the store's state at capture:
/// writes and dictionary swaps that land afterwards are invisible, with
/// no coordination beyond the capture itself. The handle is `Send +
/// Sync`; ship it to an analytics thread while writers proceed.
///
/// ```
/// use hope_store::prelude::*;
///
/// let pairs = (0..500u64).map(|i| (format!("user{i:04}").into_bytes(), i));
/// let store = HopeStore::build(StoreConfig::default(), pairs)?;
/// let snap = store.snapshot();
/// store.insert(b"user0100".to_vec(), 777)?;
/// store.insert(b"zzz-new".to_vec(), 888)?;
/// // The live store moved on; the snapshot did not.
/// assert_eq!(store.get(b"user0100")?, Some(777));
/// assert_eq!(snap.get(b"user0100")?, Some(100));
/// assert_eq!(snap.get(b"zzz-new")?, None);
/// assert_eq!(snap.len(), 500);
/// # Ok::<(), StoreError>(())
/// ```
#[derive(Debug)]
pub struct Snapshot<V: Value = u64> {
    pins: Vec<Pin<V>>,
    /// Source-form shard split points, cloned from the store (the store
    /// may outlive the snapshot or vice versa; no borrow either way).
    boundaries: Vec<Vec<u8>>,
    telemetry: Arc<Telemetry>,
    /// Minimum and maximum pinned generation epoch (lifecycle events).
    min_epoch: u64,
    max_epoch: u64,
    len: usize,
}

impl<V: Value> Snapshot<V> {
    /// Assemble a snapshot from per-shard pins taken under all writer
    /// locks, and emit its creation telemetry.
    pub(crate) fn capture(
        pins: Vec<Pin<V>>,
        boundaries: Vec<Vec<u8>>,
        telemetry: Arc<Telemetry>,
    ) -> Snapshot<V> {
        let min_epoch = pins.iter().map(|p| p.generation.epoch()).min().unwrap_or(0);
        let max_epoch = pins.iter().map(|p| p.generation.epoch()).max().unwrap_or(0);
        let len = pins.iter().map(|p| p.live).sum();
        let snap = Snapshot { pins, boundaries, telemetry, min_epoch, max_epoch, len };
        let reg = snap.telemetry.registry();
        reg.counter("store.snapshot.taken").inc();
        reg.gauge("store.snapshot.active").inc();
        snap.telemetry.events().record(Event {
            kind: EventKind::SnapshotCreated,
            keys: snap.pins.len() as u64,
            prev_epoch: snap.min_epoch,
            epoch: snap.max_epoch,
            ..Event::default()
        });
        snap
    }

    /// Shard index responsible for `key` (same routing as the store: the
    /// split points are immutable for the store's lifetime).
    pub(crate) fn route(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// The pinned generation and watermark of one shard (cursor
    /// internals).
    pub(crate) fn pin(&self, shard: usize) -> (Arc<Generation<V>>, usize) {
        let p = &self.pins[shard];
        (Arc::clone(&p.generation), p.watermark)
    }

    /// Point lookup as of the capture instant.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the probe key fails validation.
    pub fn get(&self, key: &[u8]) -> Result<Option<V>, StoreError> {
        let p = &self.pins[self.route(key)];
        p.generation.get_at(key, p.watermark)
    }

    /// Visitor-form range scan over the snapshot: call `f(key, value)`
    /// for up to `limit` hits in source-key order (possibly spanning
    /// shards) and return the hit count — the point-in-time counterpart
    /// of [`HopeStore::range_with`](crate::HopeStore::range_with), with
    /// the same zero-allocation engine underneath.
    ///
    /// `f` runs under a generation's read lock: keep it short and never
    /// call back into the store from inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn range_with<F>(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        f: F,
    ) -> Result<usize, StoreError>
    where
        F: FnMut(&[u8], &V),
    {
        validate_key(low)?;
        validate_key(high)?;
        cursor::snap_scan(self, low, high, limit, f)
    }

    /// Collect-form range scan: append up to `limit` `(key, value)`
    /// pairs to `out` and return the count appended.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn range_into(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
        out: &mut Vec<(Vec<u8>, V)>,
    ) -> Result<usize, StoreError> {
        self.range_with(low, high, limit, |k, v| out.push((k.to_vec(), v.clone())))
    }

    /// Open a lazy [`RangeCursor`] over `low..=high` (inclusive), capped
    /// at `limit` hits, reading the snapshot's point in time. The cursor
    /// borrows the snapshot; unlike a live cursor it never re-pins — all
    /// generations were pinned at capture, so arbitrarily many swaps may
    /// complete mid-scan without the cursor ever observing one.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when a bound fails validation.
    pub fn cursor(
        &self,
        low: &[u8],
        high: &[u8],
        limit: usize,
    ) -> Result<RangeCursor<'_, V>, StoreError> {
        validate_key(low)?;
        validate_key(high)?;
        Ok(RangeCursor::new_snap(self, low, high, limit))
    }

    /// Live keys at the capture instant, summed across shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the store held no key at the capture instant.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Epoch of every pinned generation, in shard order. Swaps completed
    /// after the capture do not change these — the diagnostic mirror of
    /// [`HopeStore::epochs`](crate::HopeStore::epochs).
    pub fn epochs(&self) -> Vec<u64> {
        self.pins.iter().map(|p| p.generation.epoch()).collect()
    }

    /// Number of shards pinned.
    pub fn shards(&self) -> usize {
        self.pins.len()
    }
}

impl<V: Value> Drop for Snapshot<V> {
    fn drop(&mut self) {
        let reg = self.telemetry.registry();
        reg.counter("store.snapshot.dropped").inc();
        reg.gauge("store.snapshot.active").dec();
        self.telemetry.events().record(Event {
            kind: EventKind::SnapshotDropped,
            keys: self.pins.len() as u64,
            prev_epoch: self.min_epoch,
            epoch: self.max_epoch,
            ..Event::default()
        });
    }
}
