//! The store's error surface: [`StoreError`].
//!
//! Every fallible `hope_store` operation reports through this one type —
//! construction, probes, maintenance — replacing the mix of panics and
//! `Option`s the pre-v1 surface had. Codec-level failures (dictionary
//! build, key validation, stream corruption) arrive wrapped as
//! [`StoreError::Codec`], so `?` composes across the layers.

use hope::HopeError;

/// Errors from the `hope_store` serving stack.
///
/// The enum is `#[non_exhaustive]`: future PRs may add variants without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A nonsensical [`StoreConfig`](crate::StoreConfig) — zero shards,
    /// a degrade ratio outside `(0, 1]`, and the like. Reported from
    /// [`HopeStore::build`](crate::HopeStore::build) instead of panicking.
    InvalidConfig {
        /// Which invariant the configuration violates.
        reason: &'static str,
    },
    /// The codec rejected a key or a stored encoding: dictionary-build
    /// failures, over-long keys ([`HopeError::KeyTooLong`]), corrupt
    /// streams. The inner error says which.
    Codec(HopeError),
    /// A shard index out of range was passed to a per-shard operation
    /// ([`HopeStore::generation`](crate::HopeStore::generation),
    /// [`HopeStore::force_rebuild`](crate::HopeStore::force_rebuild)).
    NoSuchShard {
        /// The requested shard.
        shard: usize,
        /// How many shards the store has.
        shards: usize,
    },
    /// A shard's write log reached its configured capacity
    /// ([`StoreConfig::write_log_capacity`](crate::StoreConfig::write_log_capacity),
    /// at most `u32::MAX` — entry indices are 32-bit). The insert was
    /// **not** applied; the shard keeps serving. This is back-pressure,
    /// not corruption: run
    /// [`HopeStore::maintain`](crate::HopeStore::maintain) or
    /// [`HopeStore::force_rebuild`](crate::HopeStore::force_rebuild) to
    /// compact the log, then retry.
    WriteLogFull {
        /// Shard whose log is full.
        shard: usize,
        /// The capacity the log hit.
        capacity: u32,
    },
    /// A rebuild forced to fail by an installed fault-injection plan
    /// ([`HopeStore::inject_faults`](crate::HopeStore::inject_faults)) —
    /// the deterministic test double for a real dictionary-build failure.
    /// The shard keeps serving its current generation, exactly as it
    /// would for [`StoreError::Codec`].
    FaultInjected {
        /// Shard whose rebuild was failed.
        shard: usize,
        /// 0-based rebuild attempt (per shard, counted while the plan is
        /// installed) the plan chose to fail.
        attempt: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::InvalidConfig { reason } => {
                write!(f, "invalid store configuration: {reason}")
            }
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::NoSuchShard { shard, shards } => {
                write!(f, "shard {shard} out of range (store has {shards})")
            }
            StoreError::WriteLogFull { shard, capacity } => {
                write!(
                    f,
                    "shard {shard} write log full ({capacity} entries): rebuild to compact, \
                     then retry"
                )
            }
            StoreError::FaultInjected { shard, attempt } => {
                write!(f, "injected fault: shard {shard} rebuild attempt {attempt} forced to fail")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HopeError> for StoreError {
    fn from(e: HopeError) -> Self {
        StoreError::Codec(e)
    }
}

/// Key validation for paths that must reject keys *before* any encoding
/// work (bulk loads feeding the unvalidated batch encoder, cursor
/// bounds). Delegates to the codec's own rule so the limit can never
/// drift between the layers.
pub(crate) fn validate_key(key: &[u8]) -> Result<(), StoreError> {
    Ok(hope::codec::validate_key_len(key)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StoreError::InvalidConfig { reason: "need at least one shard" };
        assert!(e.to_string().contains("one shard"));
        let e: StoreError = HopeError::EmptySample.into();
        assert!(matches!(e, StoreError::Codec(HopeError::EmptySample)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(StoreError::NoSuchShard { shard: 9, shards: 4 }.to_string().contains("9"));
        let e = StoreError::WriteLogFull { shard: 2, capacity: 128 };
        assert!(e.to_string().contains("write log full"), "{e}");
        assert!(e.to_string().contains("128"));
    }
}
